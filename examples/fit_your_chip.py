#!/usr/bin/env python3
"""Calibrate the power model to *your* measurements.

The paper's parting goal is that others "build accurate power models"
from its data. Suppose you measured a different Piton-class part on the
open-source test board: static 455 mW, idle 2310 mW, and two
Linux-boot Fmax points. This example refits the model's global anchors
to those numbers, verifies the refit through the virtual bench, and
then re-derives a headline result (the add/ldx EPI pair) on the newly
calibrated chip.

Run:  python examples/fit_your_chip.py
"""

from __future__ import annotations

from repro.power.fitting import fit_fmax, fit_static_idle
from repro.power.technology import fmax_hz
from repro.power.epi import energy_per_instruction
from repro.isa.operands import OperandPolicy
from repro.system import PitonSystem
from repro.workloads.epi_tests import build_named_epi_workload

# --- your bench measurements -------------------------------------------------
MEASURED_STATIC_W = 0.455
MEASURED_IDLE_W = 2.310
MEASURED_FMAX = [(0.85, 340e6), (1.00, 540e6)]


def main() -> None:
    print("fitting static/idle anchors ...")
    calib = fit_static_idle(MEASURED_STATIC_W, MEASURED_IDLE_W)
    calib = fit_fmax(MEASURED_FMAX, base=calib)

    system = PitonSystem.default(calib=calib, seed=21)
    static = system.measure_static().core
    idle = system.measure_idle().core
    print(f"  bench check: static {static.format(1e-3)} mW "
          f"(target {MEASURED_STATIC_W * 1e3:.1f})")
    print(f"  bench check: idle   {idle.format(1e-3)} mW "
          f"(target {MEASURED_IDLE_W * 1e3:.1f})")
    for vdd, hz in MEASURED_FMAX:
        predicted = fmax_hz(vdd, calib=calib)
        print(f"  Fmax({vdd:.2f}V) = {predicted / 1e6:.1f} MHz "
              f"(target {hz / 1e6:.1f})")

    print("\nre-deriving the recompute-vs-load tradeoff on this chip:")
    p_idle = idle
    cores = 4
    for name in ("add", "ldx"):
        workload = {}
        test = None
        for tile in range(cores):
            test, tp = build_named_epi_workload(
                name, OperandPolicy.RANDOM, tile
            )
            workload[tile] = tp
        run = system.run_workload(
            workload, warmup_cycles=12_000, window_cycles=5_000
        )
        epi = energy_per_instruction(
            run.measurement.core, p_idle, system.freq_hz,
            test.latency_cycles, cores=cores,
        )
        print(f"  EPI({name}) = {epi.format(1e-12, 1)} pJ")
    print(
        "\nthe 3-adds-per-load identity holds on the refit chip too — "
        "it is a property of the design, not of one die's calibration."
    )


if __name__ == "__main__":
    main()
