#!/usr/bin/env python3
"""Quickstart: build a Piton system, measure it, run a workload.

Reproduces in ~10 seconds the core of the paper's bench flow:

1. measure static power (clocks grounded) and idle power (clocks
   running) — the Table V anchors;
2. assemble a small SPARC-subset program, run it on a few tiles, and
   measure the chip while it runs;
3. apply the paper's EPI methodology to get the energy of an ``add``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.isa import assemble
from repro.power.epi import energy_per_instruction
from repro.system import PitonSystem
from repro.workloads.base import TileProgram


def main() -> None:
    system = PitonSystem.default(seed=0)

    # --- 1. bench measurements ---------------------------------------------
    static = system.measure_static()
    idle = system.measure_idle()
    print("Chip #2 at the Table III defaults (1.0V / 1.05V, 500.05 MHz)")
    print(f"  static power : {static.core.format(1e-3)} mW "
          "(paper: 389.3±1.5)")
    print(f"  idle power   : {idle.core.format(1e-3)} mW "
          "(paper: 2015.3±1.5)")

    # --- 2. run a program on 4 tiles ----------------------------------------
    program = assemble(
        """
loop:
    add %r1, %r2, %r3
    add %r3, %r2, %r4
    add %r4, %r2, %r5
    add %r5, %r2, %r6
    add %r6, %r2, %r7
    bne %r31, loop
"""
    )
    tile = TileProgram(
        programs=[program],
        init_regs={1: 0x0123456789ABCDEF, 2: 0x00FF00FF00FF00FF, 31: 1},
    )
    cores = 4
    run = system.run_workload(
        {t: tile for t in range(cores)},
        warmup_cycles=1_000,
        window_cycles=5_000,
    )
    print(f"\nRunning an add loop on {cores} tiles:")
    print(f"  chip power   : {run.measurement.core.format(1e-3)} mW")
    print(f"  aggregate IPC: {run.ipc:.2f}")

    # --- 3. the paper's EPI methodology --------------------------------------
    epi = energy_per_instruction(
        run.measurement.core,
        idle.core,
        system.freq_hz,
        latency_cycles=1,  # Table VI: add takes one cycle
        cores=cores,
    )
    # The loop is 5 adds + 1 branch: correct for the branch share.
    print(f"  EPI(add-loop): {epi.format(1e-12, 1)} pJ per instruction "
          "(paper: EPI(add) ~95 pJ, plus loop-branch overhead)")


if __name__ == "__main__":
    main()
