#!/usr/bin/env python3
"""Design-space exploration beyond the paper: how do the paper's NoC
and memory-energy conclusions change with mesh size?

The paper stresses (Section IV-K) that its "NoC energy is small"
finding is tied to Piton's geometry: bigger meshes mean longer routes.
This example uses the library's configurable mesh to quantify that —
for 3x3, 5x5, and 7x7 tile arrays it reports the worst-case and mean
NoC transit energy per 64B-line transfer against the energy of the L2
access it accompanies.

Run:  python examples/mesh_design_space.py
"""

from __future__ import annotations

from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.cache.latency import MemoryLatencyModel
from repro.power.calibration import EVENT_ENERGIES
from repro.util.tables import render_table

#: Flits per L2 read transaction: 3-flit request + 3-flit response.
TRANSACTION_FLITS = 6
#: Random-data switching fraction.
ACTIVITY = 0.5


def transit_energy_pj(hops: int) -> float:
    """NoC energy of one L2 transaction over ``hops`` mesh hops."""
    router = EVENT_ENERGIES["noc1.router_pass"].base_pj
    wire = EVENT_ENERGIES["noc1.flit_hop"].act_pj * ACTIVITY
    per_flit_hop = router + wire
    return TRANSACTION_FLITS * hops * per_flit_hop


def l2_access_energy_pj() -> float:
    read = EVENT_ENERGIES["l2.read"]
    dir_ = EVENT_ENERGIES["dir.lookup"]
    return (
        read.base_pj
        + read.act_pj * ACTIVITY
        + dir_.base_pj
        + dir_.act_pj * ACTIVITY
    )


def mean_hops(config: PitonConfig) -> float:
    fp = Floorplan(config)
    total = count = 0
    for src in fp.all_tiles():
        for dst in fp.all_tiles():
            total += fp.hops(src, dst)
            count += 1
    return total / count


def main() -> None:
    latency = MemoryLatencyModel()
    l2_pj = l2_access_energy_pj()
    rows = []
    for width in (3, 5, 7, 9):
        config = PitonConfig().with_mesh(width, width)
        avg = mean_hops(config)
        worst = config.max_hops
        rows.append(
            (
                f"{width}x{width}",
                config.tile_count,
                round(avg, 2),
                round(transit_energy_pj(avg), 1),
                round(transit_energy_pj(worst), 1),
                round(transit_energy_pj(avg) / l2_pj, 2),
                latency.l2_hit(worst, 1),
            )
        )
    print(
        render_table(
            [
                "mesh",
                "tiles",
                "mean hops",
                "mean NoC pJ/txn",
                "worst NoC pJ/txn",
                "NoC/L2 energy ratio",
                "worst L2 hit (cyc)",
            ],
            rows,
            title="NoC transit energy vs mesh size "
            f"(L2 access ~{l2_pj:.0f} pJ; Piton is the 5x5 row)",
        )
    )
    print(
        "\ntakeaway: at Piton's 5x5 size the mean NoC transit costs a "
        "fraction of one L2 access — the paper's 'on-chip data "
        "transmission energy is low' — but the ratio grows with mesh "
        "diameter, exactly the caveat of Section IV-K."
    )


if __name__ == "__main__":
    main()
