#!/usr/bin/env python3
"""Run any of the paper's tables/figures from the command line.

Run:  python examples/run_experiment.py             # list experiments
      python examples/run_experiment.py fig9        # full fidelity
      python examples/run_experiment.py table7 --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, RunContext, get_experiment


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce one table/figure from the paper."
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (omit to list all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps / fewer cores (seconds instead of minutes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiments that fan out "
        "simulations (results identical for any value)",
    )
    args = parser.parse_args(argv)

    if not args.experiment:
        print("available experiments:")
        for eid, spec in EXPERIMENTS.items():
            print(f"  {eid:8s} {spec.description}")
        return 0

    runner = get_experiment(args.experiment)
    start = time.perf_counter()
    result = runner(RunContext(quick=args.quick, jobs=args.jobs))
    elapsed = time.perf_counter() - start
    print(result.render())
    print(f"\n[{args.experiment} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
