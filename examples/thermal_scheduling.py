#!/usr/bin/env python3
"""Thermal-aware scheduling exploration (Section IV-J extended).

The paper compares synchronized versus interleaved scheduling of a
two-phase app and finds interleaving runs 0.22 C cooler. This example
generalizes the question: for a range of phase-stagger fractions
(0 = fully synchronized, 0.5 = perfectly interleaved), it integrates
the power-temperature feedback loop and reports mean/peak temperature
and the hysteresis-loop area — a small scheduling-policy study built
on the library's thermal substrate.

Run:  python examples/thermal_scheduling.py
"""

from __future__ import annotations

from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.silicon.variation import THERMAL_CHIP
from repro.thermal.cooling import no_heatsink_at_angle
from repro.thermal.feedback import PowerTemperatureSimulator
from repro.util.tables import render_table

OPERATING = OperatingPoint(vdd=0.90, vcs=0.95, freq_hz=100.01e6)
PERIOD_S = 40.0
TOTAL_THREADS = 50
#: Per-thread activity power of the compute phase at this operating
#: point (from the Fig 18 experiment's cycle simulations).
COMPUTE_W_PER_THREAD = 0.0042
IDLE_PHASE_W_PER_THREAD = 0.0009


def make_power_fn(stagger: float, model: ChipPowerModel):
    """Power trace for a schedule staggering ``stagger`` of the threads
    by half a period."""

    def compute_threads(t: float) -> float:
        phase_a = (t % PERIOD_S) < PERIOD_S / 2
        group_a = TOTAL_THREADS * (1.0 - stagger)
        group_b = TOTAL_THREADS * stagger
        return group_a if phase_a else group_b

    def power(die_temp: float, t: float) -> float:
        idle = model.idle_power(
            OperatingPoint(
                vdd=OPERATING.vdd,
                vcs=OPERATING.vcs,
                freq_hz=OPERATING.freq_hz,
                temp_c=die_temp,
            )
        ).total_w
        n_compute = compute_threads(t)
        n_idle = TOTAL_THREADS - n_compute
        return (
            idle
            + n_compute * COMPUTE_W_PER_THREAD
            + n_idle * IDLE_PHASE_W_PER_THREAD
        )

    return power


def main() -> None:
    model = ChipPowerModel(THERMAL_CHIP)
    cooling = no_heatsink_at_angle(40.0)
    rows = []
    for stagger in (0.0, 0.125, 0.25, 0.375, 0.48):
        sim = PowerTemperatureSimulator(cooling)
        power_fn = make_power_fn(stagger, model)
        sim.settle(lambda temp, t: power_fn(temp, 0.0))
        samples = sim.run(power_fn, duration_s=160.0, dt_s=0.25)
        steady = samples[len(samples) // 4:]
        temps = [s.surface_temp_c for s in steady]
        powers = [s.power_w for s in steady]
        rows.append(
            (
                f"{stagger:.3f}",
                round(sum(powers) / len(powers) * 1e3, 1),
                round((max(powers) - min(powers)) * 1e3, 1),
                round(sum(temps) / len(temps), 3),
                round(max(temps), 3),
                round(
                    PowerTemperatureSimulator.hysteresis_area(steady), 3
                ),
            )
        )
    print(
        render_table(
            [
                "stagger",
                "mean power (mW)",
                "swing (mW)",
                "mean temp (C)",
                "peak temp (C)",
                "hysteresis (W*C)",
            ],
            rows,
            title="Phase stagger vs thermal behaviour "
            "(0 = synchronized, ~0.5 = interleaved)",
        )
    )
    print(
        "\ntakeaway: staggering phases across threads cuts the power "
        "swing, peak temperature, and the power-temperature hysteresis "
        "loop — the paper's Fig 18 point, now as a tunable policy."
    )


if __name__ == "__main__":
    main()
