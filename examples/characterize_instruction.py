#!/usr/bin/env python3
"""Characterize any instruction's energy, the paper's Section IV-E way.

Builds the unrolled assembly test for the instruction you name, sweeps
minimum / random / maximum operand values, runs it on all 25 cores,
and applies the EPI equation — the exact flow behind Figure 11, usable
for your own instruction of interest.

Run:  python examples/characterize_instruction.py [mnemonic] [cores]
      python examples/characterize_instruction.py mulx 9
"""

from __future__ import annotations

import sys

from repro.isa.operands import OperandPolicy
from repro.power.epi import energy_per_instruction
from repro.system import PitonSystem
from repro.util.tables import render_table
from repro.workloads.epi_tests import build_named_epi_workload


def characterize(mnemonic: str, cores: int) -> None:
    system = PitonSystem.default(seed=1)
    p_idle = system.measure_idle().core

    rows = []
    for policy in OperandPolicy:
        workload = {}
        test = None
        for tile in range(cores):
            test, tile_program = build_named_epi_workload(
                mnemonic, policy, tile
            )
            workload[tile] = tile_program
        run = system.run_workload(
            workload, warmup_cycles=12_000, window_cycles=6_000
        )
        epi = energy_per_instruction(
            run.measurement.core,
            p_idle,
            system.freq_hz,
            test.latency_cycles,
            cores=cores,
        )
        rows.append(
            (
                policy.value,
                test.latency_cycles,
                round(epi.value / 1e-12, 1),
                round(epi.sigma / 1e-12, 1),
                f"{run.measurement.core.format(1e-3)} mW",
            )
        )
    print(
        render_table(
            ["operands", "latency (cyc)", "EPI (pJ)", "±(pJ)", "P_inst"],
            rows,
            title=f"EPI characterization: {mnemonic} on {cores} cores",
        )
    )
    print(
        "\nmethodology: EPI = (1/N) x (P_inst - P_idle)/f x L "
        f"with P_idle = {p_idle.format(1e-3)} mW"
    )


def main() -> None:
    mnemonic = sys.argv[1] if len(sys.argv) > 1 else "mulx"
    cores = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    characterize(mnemonic, cores)


if __name__ == "__main__":
    main()
