#!/usr/bin/env python3
"""NoC traffic study: where do the flits (and their energy) go?

Uses the flit-level mesh simulator with three traffic patterns —
uniform random, hot-home (everyone reading one L2 slice), and the
paper's Figure 12 stream — and reports link utilization, the hottest
links, and per-router heatmaps. Shows the structural skew of
dimension-ordered routing (X rows load up before Y columns) and what a
hot home slice does to its row, context for the paper's note that its
low NoC-energy finding is tied to Piton's modest mesh.

Run:  python examples/noc_traffic_study.py
"""

from __future__ import annotations

import numpy as np

from repro.arch.params import PitonConfig
from repro.noc.analysis import NocAnalysis
from repro.noc.flit import Packet
from repro.noc.mesh import MeshNetwork
from repro.power.chip_power import ChipPowerModel, OperatingPoint


def run_pattern(name: str, packets: list[tuple[int, int]]) -> None:
    mesh = MeshNetwork(PitonConfig(), network_id=1)
    for src, dst in packets:
        mesh.inject(Packet.build(dst, [0x5555555555555555, 0]), src)
    mesh.drain()
    analysis = NocAnalysis(mesh)
    model = ChipPowerModel()
    op = OperatingPoint()
    noc_w = model.event_power(mesh.ledger, max(1, mesh.now), op)
    hottest = analysis.hottest_link()
    print(f"--- {name} ({len(packets)} packets) ---")
    print(analysis.heatmap())
    print(
        f"flit-hops {analysis.total_flit_hops()}, "
        f"link utilization {analysis.utilization():.3f}, "
        f"hottest link {hottest.src}->{hottest.dst} "
        f"({hottest.flits} flits)"
    )
    energy_nj = noc_w.total_w * mesh.now / 500.05e6 / 1e-9
    print(f"NoC energy this run: {energy_nj:.1f} nJ over "
          f"{mesh.now} cycles\n")


def main() -> None:
    rng = np.random.default_rng(5)
    uniform = [
        (int(rng.integers(25)), int(rng.integers(25)))
        for _ in range(120)
    ]
    run_pattern("uniform random", uniform)

    hot_home = [(int(rng.integers(25)), 12) for _ in range(120)]
    run_pattern("hot home slice (tile 12)", hot_home)

    fig12_stream = [(0, 24)] * 60
    run_pattern("Figure 12 stream (tile 0 -> tile 24)", fig12_stream)

    print(
        "takeaway: dimension-ordered routing concentrates uniform "
        "traffic on the mesh's inner columns, and a hot home slice "
        "saturates its row — but even the hottest run's NoC energy is "
        "tens of nanojoules, the paper's 'computation dominates' point."
    )


if __name__ == "__main__":
    main()
