#!/usr/bin/env python3
"""Multi-tenant cloud scenario: the workload Piton's intro motivates.

Piton was built as "a manycore processor for multitenant clouds": CDR
restricts each tenant's coherence domain, MITTS shapes each tenant's
memory bandwidth. This example co-schedules two tenants on one chip —
a latency-sensitive service (Hist-style shared-memory work on 4 tiles)
and a batch memory-streaming job (8 tiles) — and shows the isolation
knobs working:

1. CDR confines each tenant's shared data to its own tiles (violations
   trap);
2. MITTS throttles the batch tenant's DRAM traffic;
3. the block-level power report attributes the chip's activity power
   to each subsystem under the co-scheduled load.

Run:  python examples/multitenant_cloud.py
"""

from __future__ import annotations

from repro.cache.cdr import CdrRegistry, CdrViolation
from repro.noc.mitts import MittsBin, MittsShaper
from repro.power.chip_power import OperatingPoint
from repro.power.report import PowerReport
from repro.system import PitonSystem
from repro.util.events import EventLedger
from repro.workloads.memtests import build_memtest
from repro.workloads.microbench import hist_workload

SERVICE_TILES = [0, 1, 2, 3]
BATCH_TILES = [10, 11, 12, 13, 14, 15, 16, 17]


def main() -> None:
    system = PitonSystem.default(seed=11)

    # --- 1. carve the coherence domains --------------------------------------
    cdr = CdrRegistry()
    service_domain = cdr.create_domain("service", SERVICE_TILES)
    batch_domain = cdr.create_domain("batch", BATCH_TILES)
    # Hist's shared structures (lock + buckets, then the input array)
    # live in the service domain; the batch tenant gets a high region.
    cdr.assign_region(service_domain, 0x0020_0000, 0x2000)
    cdr.assign_region(service_domain, 0x0030_0000, 0x2000)
    cdr.assign_region(batch_domain, 0x4000_0000, 0x1000_0000)

    ledger = EventLedger()
    engine = system.new_engine(ledger)
    engine.memsys.cdr = cdr

    # --- 2. schedule the tenants ---------------------------------------------
    service = hist_workload(SERVICE_TILES, 2, total_elements=512)
    for tile, tp in service.tiles.items():
        engine.add_core(tile, tp.programs, tp.init_regs, tp.init_fregs)
        engine.memory.load_image(tp.memory_image)
    for tile in BATCH_TILES:
        tp = build_memtest("l2_miss_local", tile, system.config).tile_program
        engine.add_core(tile, tp.programs, tp.init_regs, tp.init_fregs)
        engine.memory.load_image(tp.memory_image)
        # MITTS: cap the batch tenant's DRAM request rate.
        engine.memsys.set_mitts(
            tile,
            MittsShaper(
                [MittsBin(0, 0), MittsBin(400, 6), MittsBin(1600, 3)],
                epoch_cycles=8_000,
            ),
        )

    engine.run(cycles=20_000)
    engine.memsys.check_invariants()

    # CDR in action: the batch tenant cannot touch service memory.
    try:
        engine.memsys.load(BATCH_TILES[0], 0x0020_0000)
    except CdrViolation as exc:
        print(f"CDR trap (as designed): {exc}\n")

    # --- 3. power attribution -------------------------------------------------
    temp = system.bench.settle_temperature(ledger, engine.now)
    op = OperatingPoint(temp_c=temp)
    report = PowerReport(system.persona, system.calib)
    print(report.render(ledger, engine.now, op))

    measurement = system.bench.measure_workload(ledger, engine.now)
    mitts_stalls = ledger.count("mitts.stall_cycle")
    print(
        f"\nchip power under co-schedule: "
        f"{measurement.core.format(1e-3)} mW"
    )
    print(f"MITTS held the batch tenant back {mitts_stalls:.0f} cycles")
    print(
        "service histogram progressing under contention: "
        f"{sum(1 for _ in service.tiles)} tiles live, "
        "coherence invariants clean"
    )


if __name__ == "__main__":
    main()
