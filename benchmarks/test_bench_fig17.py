"""Benchmark: regenerate the paper's Figure 17 power vs temperature."""

from __future__ import annotations

import pytest

from repro.experiments import fig17_thermal as experiment

from conftest import run_once


def test_bench_fig17(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    p0 = result.series["0_threads_power_mw"]
    assert p0 == sorted(p0)
