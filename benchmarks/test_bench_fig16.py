"""Benchmark: regenerate the paper's Figure 16 power time series over gcc-166."""

from __future__ import annotations

import pytest

from repro.experiments import fig16_timeseries as experiment

from conftest import run_once


def test_bench_fig16(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    rows = {r[0]: r for r in result.rows}
    assert 1700 < rows["Core (VDD)"][1] < 1850
