"""Benchmark: regenerate the paper's Figure 11 energy per instruction (and Table VI)."""

from __future__ import annotations

import pytest

from repro.experiments import fig11_epi as experiment

from conftest import run_once


def test_bench_fig11(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    rows = result.row_dict()
    assert 3 * rows["add"][3] == pytest.approx(rows["ldx"][3], rel=0.15)
    for label, values in result.series.items():
        if len(values) == 3:
            assert values[0] < values[1] < values[2], label
