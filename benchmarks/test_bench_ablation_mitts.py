"""Benchmark: MITTS two-tenant bandwidth shaping (extension ablation)."""

from __future__ import annotations

import pytest

from repro.experiments import ablation_mitts as experiment

from conftest import run_once


def test_bench_ablation_mitts(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    assert result.series["shaped_a_share"][0] > result.series["unshaped_a_share"][0]
