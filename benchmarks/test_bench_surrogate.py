"""Benchmark: two-tier fidelity on a dense distinct-timing-class sweep.

A 200-frequency sweep of the Table VII L2-hit loop is the workload
batching can do nothing about: the loop touches memory, so every clock
is its own timing class and ``--tier sim`` pays one full cycle-level
simulation per point. The calibrated surrogate replaces each of those
simulations with a microsecond interpolation priced by the exact power
equations.

The benchmark times the *simulation stage* of both tiers — the stage
the surrogate replaces; the serial measurement replay downstream is
byte-identical and common to both. The sim tier is timed on a
20-point subset and extrapolated linearly (simulations are
embarrassingly independent and identically sized), because actually
paying 200 cycle-level runs is exactly what this PR makes obsolete.

Asserts the acceptance-criteria >=100x speedup plus accuracy: every
served point within the profile's persisted error bars. Regression CI
gates on the wall time via ``results/BENCH_<rev>.json``.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.experiments.parallel import parallel_simulate
from repro.obs.trace import Tracer
from repro.surrogate import (
    GATE_METRICS,
    FidelityPolicy,
    ProfileStore,
    SurrogateModel,
    outcome_metrics,
)
from repro.surrogate.calibrate import calibrate_request
from repro.surrogate.workloads import CALIBRATION_WORKLOADS

from conftest import run_once  # noqa: F401  (shared harness import style)

POINTS = 200
SUBSET = 20
ANCHORS = [150e6, 400e6, 650e6, 900e6]
FREQS = [
    150e6 + i * (900e6 - 150e6) / (POINTS - 1) for i in range(POINTS)
]


def _requests():
    base = CALIBRATION_WORKLOADS["mem_l2"].base_request(quick=False)
    return [replace(base, freq_hz=f) for f in FREQS]


def test_bench_surrogate_sweep(benchmark, tmp_path):
    requests = _requests()

    # One-time calibration cost (reported, not part of the per-sweep
    # comparison: it amortizes over every sweep that reuses the store).
    start = time.perf_counter()
    profile, report = calibrate_request(
        requests[0], workload_name="mem_l2", anchor_freqs=ANCHORS
    )
    store = ProfileStore(tmp_path)
    store.save(profile)
    calibrate_s = time.perf_counter() - start
    assert report.error_bound < 0.10, (
        "full-window calibration should fit tight bars; got "
        f"{report.error_bound:.4%}"
    )

    # Sim tier, subset + linear extrapolation.
    start = time.perf_counter()
    subset_outcomes = list(
        parallel_simulate(requests[:SUBSET], fidelity=None)
    )
    sim_subset_s = time.perf_counter() - start
    sim_estimate_s = sim_subset_s * (POINTS / SUBSET)

    # Auto tier, the full 200 points, every one surrogate-served.
    tracer = Tracer()
    policy = FidelityPolicy(
        store=store,
        tolerance=report.error_bound + 0.01,
        tracer=tracer,
    )

    def _auto_sweep():
        return list(parallel_simulate(requests, fidelity=policy))

    auto_outcomes = benchmark.pedantic(
        _auto_sweep, rounds=1, iterations=1
    )
    auto_s = benchmark.stats.stats.mean

    assert tracer.resilience["surrogate_hits"] == POINTS
    assert "surrogate_fallbacks" not in tracer.resilience
    assert all(o.tier == "fast" for o in auto_outcomes)

    # Accuracy against the cycle-level subset we already paid for:
    # every gated metric inside the persisted bars, noise-free.
    model = SurrogateModel(profile)
    for request, actual in zip(requests[:SUBSET], subset_outcomes):
        predicted = outcome_metrics(
            model.predict(request), request.freq_hz
        )
        reference = outcome_metrics(actual, request.freq_hz)
        for metric in GATE_METRICS:
            err = abs(predicted[metric] - reference[metric]) / max(
                abs(reference[metric]), 1e-18
            )
            assert err <= profile.error_bounds[metric], (
                f"{metric} error {err:.4%} exceeds bar at "
                f"{request.freq_hz/1e6:.0f} MHz"
            )

    speedup = sim_estimate_s / auto_s
    print(
        f"\n{POINTS}-point distinct-timing-class sweep: "
        f"sim {sim_estimate_s:.2f}s (extrapolated from {SUBSET} "
        f"points at {sim_subset_s/SUBSET*1e3:.1f}ms each), "
        f"auto {auto_s:.3f}s, speedup {speedup:.0f}x "
        f"(one-time calibration {calibrate_s:.2f}s, "
        f"bound {report.error_bound:.3%})"
    )
    assert speedup >= 100.0, (
        f"surrogate speedup {speedup:.0f}x below the 100x acceptance "
        f"bar (sim est {sim_estimate_s:.2f}s, auto {auto_s:.3f}s)"
    )
