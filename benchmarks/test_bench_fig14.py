"""Benchmark: regenerate the paper's Figure 14 multithreading vs multicore."""

from __future__ import annotations

import pytest

from repro.experiments import fig14_mt_mc as experiment

from conftest import run_once


def test_bench_fig14(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    assert any("Hist" in n for n in result.notes)
