"""Benchmark: regenerate the paper's Figure 18 scheduling power/temperature."""

from __future__ import annotations

import pytest

from repro.experiments import fig18_scheduling as experiment

from conftest import run_once


def test_bench_fig18(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    rows = {r[0]: r for r in result.rows}
    assert rows["interleaved"][3] < rows["synchronized"][3]
