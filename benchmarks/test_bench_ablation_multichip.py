"""Benchmark: cross-socket access cost / CDR saving (extension ablation)."""

from __future__ import annotations

import pytest

from repro.experiments import ablation_multichip as experiment

from conftest import run_once


def test_bench_ablation_multichip(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    p21 = result.series["2x1_penalty"][0]
    p42 = result.series["4x2_penalty"][0]
    assert p42 > p21 > 100
