"""Benchmark: regenerate the paper's Figure 10 static and idle power (and Table V)."""

from __future__ import annotations

import pytest

from repro.experiments import fig10_static_idle as experiment

from conftest import run_once


def test_bench_fig10(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    assert abs(result.series["table5_static_mw"][0] - 389.3) < 10
    assert abs(result.series["table5_idle_mw"][0] - 2015.3) < 45
