"""Benchmark: energy-optimal DVFS point (extension ablation)."""

from __future__ import annotations

import pytest

from repro.experiments import ablation_dvfs as experiment

from conftest import run_once


def test_bench_ablation_dvfs(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    energies = result.series["energy_mj"]
    assert min(energies) < energies[-1]  # running flat-out is not optimal
