"""Benchmark: regenerate the paper's Figure 13 power vs core count."""

from __future__ import annotations

import pytest

from repro.experiments import fig13_scaling as experiment

from conftest import run_once


def test_bench_fig13(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    s = {k: v[0] for k, v in result.series.items() if "slope" in k}
    assert s["Hist_1tc_slope_mw"] < s["Int_1tc_slope_mw"] < s["HP_1tc_slope_mw"]
    assert s["Int_2tc_slope_mw"] == pytest.approx(37.4, rel=0.3)
