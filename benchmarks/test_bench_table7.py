"""Benchmark: regenerate the paper's Table VII memory system energy."""

from __future__ import annotations

import pytest

from repro.experiments import table7_memory as experiment

from conftest import run_once


def test_bench_table7(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    rows = result.row_dict()
    assert rows["L1 hit"][3] == pytest.approx(0.28646, rel=0.12)
    assert rows["L1 miss, local L2 hit"][3] == pytest.approx(1.54, rel=0.15)
    assert rows["L1 miss, local L2 miss"][3] == pytest.approx(308.7, rel=0.25)
