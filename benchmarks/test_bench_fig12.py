"""Benchmark: regenerate the paper's Figure 12 NoC energy per flit."""

from __future__ import annotations

import pytest

from repro.experiments import fig12_noc as experiment

from conftest import run_once


def test_bench_fig12(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    slopes = {p: result.series[f"{p}_slope_pj"][0] for p in ("NSW", "HSW", "FSW", "FSWA")}
    assert slopes["NSW"] < slopes["HSW"] < slopes["FSW"]
    assert slopes["NSW"] == pytest.approx(3.58, abs=1.5)
    assert slopes["HSW"] == pytest.approx(11.16, abs=3.0)
    assert slopes["FSW"] == pytest.approx(16.68, abs=3.5)
