"""Benchmark: batched multi-persona execution (repro.batch).

A dense Figure-9-style V/f sweep — three chip personas, eight supply
voltages each, Fmax at every point, one shared integer workload — is
the worst case for serial execution: 24 simulations that all decode
and execute the identical instruction stream. Batching coalesces the
whole grid into one simulation with 24 accumulation lanes.

The benchmark asserts the two paths produce *identical* records and
that batching is at least 5x faster; this is the acceptance-criteria
speedup from the batching PR and the regression CI gates on it via
``results/BENCH_<rev>.json``.
"""

from __future__ import annotations

from repro.experiments.sweep import SweepPoint, sweep
from repro.silicon.variation import CHIP1, CHIP2, CHIP3
from repro.workloads.microbench import int_tile

from conftest import run_once  # noqa: F401  (shared harness import style)

#: 3 personas x 8 VDDs = 24 grid points, one timing class.
VDDS = [0.80, 0.85, 0.90, 0.95, 1.00, 1.05, 1.10, 1.15]
POINTS = [
    SweepPoint(persona=p, vdd=v)
    for p in (CHIP1, CHIP2, CHIP3)
    for v in VDDS
]

WINDOW_CYCLES = 20_000
WARMUP_CYCLES = 2_000


def _sweep(batch: bool):
    return sweep(
        POINTS,
        lambda tile: int_tile(),
        warmup_cycles=WARMUP_CYCLES,
        window_cycles=WINDOW_CYCLES,
        batch=batch,
    )


def test_bench_batch_vf_sweep(benchmark):
    import time

    start = time.perf_counter()
    serial = _sweep(batch=False)
    serial_s = time.perf_counter() - start

    batched = benchmark.pedantic(
        _sweep, args=(True,), rounds=1, iterations=1
    )
    batched_s = benchmark.stats.stats.mean

    assert batched.records == serial.records, (
        "batched sweep must be bit-identical to serial"
    )
    speedup = serial_s / batched_s
    print(
        f"\n{len(POINTS)}-point V/f sweep: serial {serial_s:.3f}s, "
        f"batched {batched_s:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"batching speedup {speedup:.1f}x below the 5x acceptance bar "
        f"(serial {serial_s:.3f}s, batched {batched_s:.3f}s)"
    )
