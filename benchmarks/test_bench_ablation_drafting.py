"""Benchmark: Execution Drafting energy saving (extension ablation)."""

from __future__ import annotations

import pytest

from repro.experiments import ablation_drafting as experiment

from conftest import run_once


def test_bench_ablation_drafting(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    saving = result.series["energy_saving_fraction"][0]
    assert 0.02 < saving < 0.35
