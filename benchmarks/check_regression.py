"""Gate benchmark wall times against the committed baseline.

Reads a ``results/BENCH_<rev>.json`` summary (written by the
benchmark conftest) and compares every benchmark that has a recorded
baseline in ``benchmarks/baseline.json``. A benchmark slower than
``baseline * (1 + threshold)`` is a regression and fails the check;
benchmarks without a baseline are reported as new but never fail.

Usage::

    python benchmarks/check_regression.py results/BENCH_abc1234.json
    python benchmarks/check_regression.py --latest   # newest BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"
DEFAULT_THRESHOLD = 0.25  # fail if >25% slower than baseline
#: Benchmarks faster than this are below the timing noise floor; a
#: 25% swing on a few milliseconds is scheduler jitter, not a
#: regression, so they are reported but never gated.
DEFAULT_MIN_WALL_S = 0.05


def find_latest(results_dir: Path) -> Path:
    candidates = sorted(
        results_dir.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime
    )
    if not candidates:
        raise SystemExit(f"no BENCH_*.json under {results_dir}")
    return candidates[-1]


def check(
    bench_path: Path,
    baseline_path: Path = DEFAULT_BASELINE,
    threshold: float = DEFAULT_THRESHOLD,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> int:
    bench = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    baseline_times = {
        name: float(entry["wall_s"])
        for name, entry in baseline.get("benchmarks", {}).items()
    }

    failures: list[str] = []
    print(f"bench:    {bench_path} (rev {bench.get('rev', '?')})")
    print(f"baseline: {baseline_path}")
    for name, entry in sorted(bench.get("benchmarks", {}).items()):
        wall = float(entry["wall_s"])
        base = baseline_times.get(name)
        if base is None:
            print(f"  NEW   {name}: {wall:.3f}s (no baseline)")
            continue
        ratio = wall / base if base > 0 else float("inf")
        if wall < min_wall_s and base < min_wall_s:
            print(
                f"  noise {name}: {wall:.3f}s vs baseline {base:.3f}s "
                f"(below {min_wall_s:.2f}s noise floor, not gated)"
            )
            continue
        status = "OK   " if ratio <= 1.0 + threshold else "SLOW "
        print(
            f"  {status}{name}: {wall:.3f}s vs baseline {base:.3f}s "
            f"({ratio:.2f}x)"
        )
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: {wall:.3f}s is {ratio:.2f}x baseline "
                f"{base:.3f}s (limit {1.0 + threshold:.2f}x)"
            )
    for missing in sorted(set(baseline_times) - set(bench.get("benchmarks", {}))):
        print(f"  MISS  {missing}: in baseline but not in this run")

    if failures:
        print(f"\n{len(failures)} regression(s) over {threshold:.0%} threshold:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nno regressions")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench", nargs="?", type=Path, help="BENCH_<rev>.json to check"
    )
    parser.add_argument(
        "--latest",
        action="store_true",
        help="check the newest results/BENCH_*.json",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed slowdown fraction (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=DEFAULT_MIN_WALL_S,
        help="noise floor in seconds; faster benches are not gated",
    )
    args = parser.parse_args(argv)
    if args.bench is None:
        if not args.latest:
            parser.error("give a BENCH_<rev>.json path or --latest")
        args.bench = find_latest(REPO_ROOT / "results")
    return check(args.bench, args.baseline, args.threshold, args.min_wall)


if __name__ == "__main__":
    sys.exit(main())
