"""Benchmark: dynamic thermal management ablation (extension)."""

from __future__ import annotations

import pytest

from repro.experiments import ablation_dtm as experiment

from conftest import run_once


def test_bench_ablation_dtm(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)
    reactive = result.series["reactive_work_ratio"][0]
    assert reactive > 1.1  # DTM beats the static-safe clock
    assert result.series["reactive_peak_c"][0] < 92.0
