"""Benchmark: regenerate the paper's Figure 15 memory latency breakdown."""

from __future__ import annotations

import pytest

from repro.experiments import fig15_latency as experiment

from conftest import run_once


def test_bench_fig15(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    assert result.series["total_cycles"][0] == 395
