"""Benchmark: regenerate the paper's Figure 9 Fmax vs VDD for three chips."""

from __future__ import annotations

import pytest

from repro.experiments import fig9_vf as experiment

from conftest import run_once


def test_bench_fig9(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    minima = result.series["min"]
    paper = list(result.paper_reference.values())
    for measured, expected in zip(minima, paper):
        assert abs(measured - expected) / expected < 0.15
