"""Benchmark harness: one benchmark per paper table/figure.

Each benchmark runs its experiment at full fidelity (the quick flags
off), times it with pytest-benchmark, prints the reproduced rows, and
writes them to ``results/<experiment>.txt`` so EXPERIMENTS.md can be
regenerated from a benchmark run.

Set ``REPRO_BENCH_JOBS=N`` to fan each experiment's simulations across
N worker processes (experiments that support ``jobs``); reproduced
numbers are identical either way, only the wall-clock changes.

Every benchmark session also writes a machine-readable summary to
``results/BENCH_<rev>.json`` (``<rev>`` is the current git short
hash): per-benchmark wall time, the committed baseline time from
``benchmarks/baseline.json``, and the speedup versus that baseline.
CI uploads the file as an artifact and gates on it with
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS, RunContext
from repro.experiments.result import ExperimentResult
from repro.util.charts import line_chart
from repro.util.io import atomic_write_text

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

#: test name -> call-phase wall seconds, filled per session.
_WALL_TIMES: dict[str, float] = {}


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "local"


def load_baseline() -> dict[str, float]:
    """Committed per-benchmark wall times (empty if none recorded)."""
    if not BASELINE_PATH.exists():
        return {}
    data = json.loads(BASELINE_PATH.read_text())
    return {
        name: float(entry["wall_s"])
        for name, entry in data.get("benchmarks", {}).items()
    }


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.passed:
        _WALL_TIMES[item.name] = report.duration


def pytest_sessionfinish(session, exitstatus):
    if not _WALL_TIMES:
        return
    baseline = load_baseline()
    entries = {}
    for name, wall_s in sorted(_WALL_TIMES.items()):
        base = baseline.get(name)
        entries[name] = {
            "wall_s": wall_s,
            "baseline_s": base,
            "speedup": (base / wall_s) if base and wall_s > 0 else None,
        }
    doc = {
        "schema_version": 1,
        "rev": _git_rev(),
        "jobs": int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        "benchmarks": entries,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{doc['rev']}.json"
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nbenchmark summary written to {path}")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Save and print an experiment's rendered table."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        text = result.render()
        (results_dir / f"{result.experiment_id}.txt").write_text(
            text + "\n"
        )
        spec = EXPERIMENTS.get(result.experiment_id)
        if spec is not None and spec.chart is not None:
            series = {
                k: result.series[k]
                for k in spec.chart.series
                if k in result.series
            }
            if series:
                chart = line_chart(
                    series,
                    title=f"{result.experiment_id}: {result.title}",
                    y_label=spec.chart.y_label,
                )
                (results_dir / f"{result.experiment_id}.chart.txt").write_text(
                    chart + "\n"
                )
        print()
        print(text)
        return result

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """Time exactly one full execution of an experiment.

    Runners take a ``RunContext``; set ``REPRO_BENCH_JOBS=N`` to fan
    the per-point simulations across worker processes (experiments
    that never fan out ignore it).
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    quick = bool(kwargs.pop("quick", False))
    kwargs.setdefault("ctx", RunContext(quick=quick, jobs=jobs))
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
