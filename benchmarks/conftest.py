"""Benchmark harness: one benchmark per paper table/figure.

Each benchmark runs its experiment at full fidelity (the quick flags
off), times it with pytest-benchmark, prints the reproduced rows, and
writes them to ``results/<experiment>.txt`` so EXPERIMENTS.md can be
regenerated from a benchmark run.

Set ``REPRO_BENCH_JOBS=N`` to fan each experiment's simulations across
N worker processes (experiments that support ``jobs``); reproduced
numbers are identical either way, only the wall-clock changes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS, RunContext
from repro.experiments.result import ExperimentResult
from repro.util.charts import line_chart

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Save and print an experiment's rendered table."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        text = result.render()
        (results_dir / f"{result.experiment_id}.txt").write_text(
            text + "\n"
        )
        spec = EXPERIMENTS.get(result.experiment_id)
        if spec is not None and spec.chart is not None:
            series = {
                k: result.series[k]
                for k in spec.chart.series
                if k in result.series
            }
            if series:
                chart = line_chart(
                    series,
                    title=f"{result.experiment_id}: {result.title}",
                    y_label=spec.chart.y_label,
                )
                (results_dir / f"{result.experiment_id}.chart.txt").write_text(
                    chart + "\n"
                )
        print()
        print(text)
        return result

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """Time exactly one full execution of an experiment.

    Runners take a ``RunContext``; set ``REPRO_BENCH_JOBS=N`` to fan
    the per-point simulations across worker processes (experiments
    that never fan out ignore it).
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    quick = bool(kwargs.pop("quick", False))
    kwargs.setdefault("ctx", RunContext(quick=quick, jobs=jobs))
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
