"""Benchmark: regenerate the paper's Table X processor comparison survey."""

from __future__ import annotations

import pytest

from repro.experiments import table10_related as experiment

from conftest import run_once


def test_bench_table10(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    assert result.series["open_and_characterized_count"] == [1.0]
