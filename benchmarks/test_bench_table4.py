"""Benchmark: regenerate the paper's Table IV chip testing statistics."""

from __future__ import annotations

import pytest

from repro.experiments import table4_yield as experiment

from conftest import run_once


def test_bench_table4(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    assert sum(row[3] for row in result.rows) == 32
    good_pct = result.rows[0][4]
    assert 40.0 <= good_pct <= 80.0
