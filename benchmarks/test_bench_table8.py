"""Benchmark: regenerate the paper's Table VIII system specifications."""

from __future__ import annotations

import pytest

from repro.experiments import table8_specs as experiment

from conftest import run_once


def test_bench_table8(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    assert result.series["piton_memory_latency_ns"][0] == pytest.approx(848, rel=0.02)
