"""Benchmark: regenerate the paper's Table IX SPECint performance, power, energy."""

from __future__ import annotations

import pytest

from repro.experiments import table9_spec as experiment

from conftest import run_once


def test_bench_table9(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    for name, ref in result.paper_reference.items():
        row = result.row_dict()[name]
        assert row[3] == pytest.approx(ref["slowdown"], rel=0.05)
