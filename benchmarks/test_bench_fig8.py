"""Benchmark: regenerate the paper's Figure 8 area breakdown."""

from __future__ import annotations

import pytest

from repro.experiments import fig8_area as experiment

from conftest import run_once


def test_bench_fig8(benchmark, record_result):
    result = run_once(benchmark, experiment.run)
    record_result(result)

    assert result.series["chip_total_mm2"][0] == 35.97552
