"""Benchmark: supervision and journaling must be near-zero overhead.

The resilience layer's contract is "zero cost when idle": a serial
no-journal run is byte-for-byte the historical code path, and a
supervised pool run costs only its heartbeat bookkeeping on top of
``multiprocessing.Pool``. This benchmark times the same fixed grid
under each execution mode and bounds the overhead ratios; the
per-mode wall times land in the pytest-benchmark report.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.experiments.parallel import (
    _simulate_stripped,
    parallel_map,
    parallel_simulate,
)
from repro.resilience import CheckpointJournal, Supervision
from repro.silicon.variation import CHIP3
from repro.system import PitonSystem
from repro.workloads.microbench import hist_workload, microbench_core_ids

#: Generous bound: the claim is "<5%" on a quiet machine; CI boxes are
#: not quiet machines, so the hard gate only catches regressions that
#: would actually hurt (an accidental serialization, a sync stall).
MAX_OVERHEAD_RATIO = 1.25

REPEATS = 3


def _grid():
    system = PitonSystem.default(persona=CHIP3, seed=13)
    return [
        system.sim_request(
            hist_workload(microbench_core_ids(tiles), 1).tiles,
            warmup_cycles=2_000,
            window_cycles=8_000,
        )
        for tiles in (2, 3, 4, 5, 6, 7, 8, 9)
    ]


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_serial_journal_overhead(benchmark, tmp_path):
    requests = _grid()

    def legacy():
        list(parallel_simulate(requests, jobs=1))

    def journaled():
        journal = CheckpointJournal(tmp_path / "bench", resume=False)
        list(
            parallel_simulate(
                requests,
                jobs=1,
                supervision=Supervision(journal=journal),
            )
        )

    baseline = _best_of(legacy)
    benchmark.pedantic(journaled, rounds=REPEATS, iterations=1)
    supervised = min(b for b in benchmark.stats.stats.data)
    ratio = supervised / baseline
    print(
        f"\nserial: legacy {baseline:.3f}s, journaled {supervised:.3f}s "
        f"(ratio {ratio:.3f})"
    )
    assert ratio < MAX_OVERHEAD_RATIO


def test_bench_supervised_pool_overhead(benchmark):
    requests = _grid()

    def bare_pool():
        parallel_map(_simulate_stripped, requests, jobs=4)

    def supervised_pool():
        list(
            parallel_simulate(
                requests, jobs=4, supervision=Supervision()
            )
        )

    baseline = _best_of(bare_pool)
    benchmark.pedantic(supervised_pool, rounds=REPEATS, iterations=1)
    supervised = min(b for b in benchmark.stats.stats.data)
    ratio = supervised / baseline
    print(
        f"\npooled: bare Pool {baseline:.3f}s, supervised "
        f"{supervised:.3f}s (ratio {ratio:.3f})"
    )
    assert ratio < MAX_OVERHEAD_RATIO
