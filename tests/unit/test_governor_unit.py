"""Unit tests for the repro.governor control subsystem.

Covers the ladder builder, each policy's decision rule in isolation
(hand-built ticks, no simulator), the GovernedTrace document contract,
the governor invariant checkers with their fault-injection coverage —
including the deliberately mis-tuned PI the check suite exists to
catch — and the single shared 17 Hz poll-rate constant.
"""

from __future__ import annotations

import inspect

import pytest

from repro.board import MONITOR_POLL_HZ
from repro.board.monitor import MeasurementProtocol
from repro.board.powerlog import PowerLogger
from repro.check import (
    CheckError,
    CheckSuite,
    GOVERNOR_FAULT_KINDS,
    inject_governor_fault,
)
from repro.silicon.variation import PERSONAS

from repro.governor import (
    DEFAULT_VDD_GRID,
    GOVERNED_TRACE_SCHEMA_VERSION,
    GovernedTrace,
    Governor,
    PaceToDeadlinePolicy,
    PIPowerCapPolicy,
    PolicyTick,
    RaceToIdlePolicy,
    ReactiveCapPolicy,
    ScenarioSpec,
    StaticPolicy,
    ThermalTripPolicy,
    run_scenario,
    vf_ladder,
)


# ------------------------------------------------------- shared poll rate
class TestPollRate:
    def test_constant_value(self):
        assert MONITOR_POLL_HZ == 17.0

    def test_three_sites_share_one_constant(self):
        """Monitor protocol, power logger, and governor must all
        default to the same shared constant — the 17 Hz literal lives
        in exactly one place (repro.board)."""
        sites = {
            "monitor": inspect.signature(
                MeasurementProtocol.__init__
            ).parameters["poll_hz"].default,
            "powerlog": inspect.signature(
                PowerLogger.__init__
            ).parameters["poll_hz"].default,
            "governor": inspect.signature(
                Governor.__init__
            ).parameters["poll_hz"].default,
        }
        assert sites == {name: MONITOR_POLL_HZ for name in sites}


# ----------------------------------------------------------------- ladder
class TestLadder:
    def test_chip2_ladder_shape(self):
        ladder = vf_ladder(PERSONAS["chip2"])
        assert len(ladder) == len(DEFAULT_VDD_GRID)
        assert [s.level for s in ladder] == list(range(len(ladder)))
        vdds = [s.vdd for s in ladder]
        freqs = [s.freq_hz for s in ladder]
        assert vdds == sorted(vdds)
        assert freqs == sorted(set(freqs))  # strictly ascending
        for step in ladder:
            assert step.vcs == pytest.approx(step.vdd + 0.05)

    def test_chip1_droop_point_dropped(self):
        """Chip #1's 1.2 V point clocks *lower* than 1.15 V (the
        paper's droop) — a dominated rung must not enter the ladder."""
        ladder = vf_ladder(PERSONAS["chip1"])
        assert len(ladder) < len(DEFAULT_VDD_GRID)
        assert max(s.vdd for s in ladder) < 1.20
        freqs = [s.freq_hz for s in ladder]
        assert freqs == sorted(set(freqs))

    def test_unsorted_grid_rejected(self):
        with pytest.raises(ValueError):
            vf_ladder(PERSONAS["chip2"], vdd_grid=(1.0, 0.9))


def _tick(level, ladder_len=5, *, t_s=0.0, temp=50.0, measured=1.0,
          work=0.0, predict=None):
    ladder = vf_ladder(PERSONAS["chip2"], vdd_grid=DEFAULT_VDD_GRID[:ladder_len])
    return PolicyTick(
        k=int(t_s * MONITOR_POLL_HZ),
        t_s=t_s,
        dt_s=1.0 / MONITOR_POLL_HZ,
        die_temp_c=temp,
        measured_w=measured,
        level=level,
        ladder=ladder,
        work_done_cycles=work,
        predict_w=predict or (lambda lv: 1.0 + lv),
    )


# --------------------------------------------------------------- policies
class TestPolicies:
    def test_static_holds_level(self):
        pol = StaticPolicy()
        assert pol.start(5) == 4
        assert pol.decide(_tick(4)) == 4
        assert StaticPolicy(level=2).start(5) == 2
        with pytest.raises(ValueError):
            StaticPolicy(level=9).start(5)

    def test_thermal_trip_hysteresis(self):
        pol = ThermalTripPolicy(trip_c=88.0, clear_c=82.0, min_dwell_s=1.0)
        assert pol.start(5) == 4
        # Between clear and trip: hold.
        assert pol.decide(_tick(4, temp=85.0)) == 4
        # Over trip: one rung down.
        assert pol.decide(_tick(4, temp=90.0, t_s=0.0)) == 3
        # Still dwelling: hold even though still hot.
        assert pol.decide(_tick(3, temp=95.0, t_s=0.5)) == 3
        # Dwell expired: another rung.
        assert pol.decide(_tick(3, temp=95.0, t_s=1.0)) == 2
        # Cooled under clear (after dwell): one rung back up.
        assert pol.decide(_tick(2, temp=80.0, t_s=2.5)) == 3

    def test_thermal_trip_validates(self):
        with pytest.raises(ValueError):
            ThermalTripPolicy(trip_c=80.0, clear_c=85.0, min_dwell_s=1.0)
        with pytest.raises(ValueError):
            ThermalTripPolicy(trip_c=88.0, clear_c=82.0, min_dwell_s=-1.0)

    def test_reactive_cap_picks_highest_feasible(self):
        pol = ReactiveCapPolicy(cap_w=3.5)
        assert pol.start(5) == 0
        # predict_w = 1 + level, so levels 0..2 fit under 3.5 W.
        assert pol.decide(_tick(0)) == 2
        # Nothing but the bottom fits: fall to 0.
        tight = ReactiveCapPolicy(cap_w=0.5)
        assert tight.decide(_tick(4)) == 0

    def test_pi_protective_never_commits_over_budget(self):
        pol = PIPowerCapPolicy(cap_w=3.5, kp=0.0, ki=2000.0)
        pol.start(5)
        # Huge integral gain slams the command to the top; protection
        # walks it back to the highest rung the model prices in budget.
        level = pol.decide(_tick(0, measured=0.5))
        assert level == 2  # predict 1+level <= 3.5

    def test_pi_unprotected_exposes_mistuning(self):
        pol = PIPowerCapPolicy(
            cap_w=3.5, kp=0.0, ki=2000.0, protective=False
        )
        pol.start(5)
        assert pol.decide(_tick(0, measured=0.5)) == 4  # over budget

    def test_race_and_pace(self):
        race = RaceToIdlePolicy(work_cycles=1e9)
        assert race.decide(_tick(4, work=0.0)) == 4
        assert race.decide(_tick(4, work=1e9)) == 0

        pace = PaceToDeadlinePolicy(work_cycles=1e9, deadline_s=10.0)
        assert pace.start(5) == 0
        # Needs 1e9/10 = 100 MHz: the bottom rung (278 MHz) suffices.
        assert pace.decide(_tick(0, t_s=0.0)) == 0
        # Done: idle.
        assert pace.decide(_tick(0, t_s=5.0, work=1e9)) == 0
        # Past due with work left: flat out.
        assert pace.decide(_tick(0, t_s=9.99, work=0.0)) == 4


# ------------------------------------------------------------------ trace
SHORT_SPEC = ScenarioSpec(
    name="unit",
    policy="reactive_cap",
    persona="chip2",
    duration_s=20.0,
    phases=((0.0, 1.2),),
    cap_w=3.5,
    settle_s=2.0,
)


@pytest.fixture(scope="module")
def short_trace() -> GovernedTrace:
    return run_scenario(SHORT_SPEC)


class TestGovernedTrace:
    def test_document_round_trip(self, short_trace):
        doc = short_trace.to_dict()
        assert doc["schema_version"] == GOVERNED_TRACE_SCHEMA_VERSION
        clone = GovernedTrace.from_dict(doc)
        assert clone.to_dict() == doc
        assert clone.samples == short_trace.samples

    def test_tick_grid_and_counters(self, short_trace):
        assert short_trace.gov_samples == int(20.0 * MONITOR_POLL_HZ)
        assert short_trace.samples[0].t_s == 0.0
        assert short_trace.poll_hz == MONITOR_POLL_HZ
        assert short_trace.cap_violations() == 0

    def test_settle_window(self, short_trace):
        assert short_trace.in_settle_window(0.5)
        assert not short_trace.in_settle_window(10.0)


# ------------------------------------------------- checker + fault coverage
EXPECTED_CHECKER = {
    "gov_cap_breach": "gov_cap",
    "gov_offtick_sample": "gov_tick",
    "gov_chatter": "gov_dwell",
    "gov_energy_leak": "gov_energy",
}


class TestGovernorChecks:
    def test_clean_trace_passes(self, short_trace):
        suite = CheckSuite()
        suite.check_governor(short_trace)
        assert suite.violations == 0
        assert suite.counts["governor"] == 1

    def test_fault_kinds_table_is_exhaustive(self):
        assert set(GOVERNOR_FAULT_KINDS) == set(EXPECTED_CHECKER)

    @pytest.mark.parametrize("kind", GOVERNOR_FAULT_KINDS)
    def test_each_fault_caught_by_intended_checker(self, kind):
        # Chatter needs a dwell-guaranteeing policy to corrupt.
        spec = (
            SHORT_SPEC
            if kind != "gov_chatter"
            else ScenarioSpec(
                name="unit",
                policy="thermal_trip",
                persona="chip1",
                duration_s=60.0,
                phases=((0.0, 2.4),),
                trip_c=70.0,
                clear_c=60.0,
                warm_start=True,
            )
        )
        trace = run_scenario(spec)
        report = inject_governor_fault(kind, trace, seed=7)
        assert report.kind == kind
        with pytest.raises(CheckError) as err:
            CheckSuite().check_governor(trace)
        assert err.value.checker == EXPECTED_CHECKER[kind]

    def test_mistuned_pi_is_caught_live(self):
        """A classic over-gained integrator (protection off) limit
        cycles across the whole ladder and breaches the cap; the
        governor's own end-of-run audit must refuse the trace."""
        spec = ScenarioSpec(
            name="mistuned",
            policy="pi_cap",
            persona="chip2",
            duration_s=60.0,
            phases=((0.0, 0.9), (45.0, 2.2)),
            cap_w=3.5,
            kp=0.0,
            ki=2000.0,
            protective=False,
            sensor_seed=2018,
            settle_s=10.0,
        )
        with pytest.raises(CheckError) as err:
            run_scenario(spec, checker=CheckSuite())
        assert err.value.checker == "gov_cap"

        trace = run_scenario(spec)
        assert trace.cap_violations() > 0


# --------------------------------------------------------------- registry
class TestRegistration:
    def test_ctl_experiments_registered(self):
        from repro.experiments import EXPERIMENTS

        ctl = {
            "ctl_thermal",
            "ctl_powercap",
            "ctl_race_vs_pace",
            "ctl_fan_failure",
        }
        assert ctl <= set(EXPERIMENTS)
        for eid in ctl:
            assert EXPERIMENTS[eid].supports_jobs

    def test_ctl_goldens_committed(self):
        from repro.check import golden_path

        for eid in (
            "ctl_thermal",
            "ctl_powercap",
            "ctl_race_vs_pace",
            "ctl_fan_failure",
        ):
            assert golden_path(eid).exists(), eid
