"""Unit tests for the experiments framework itself (result container,
registry plumbing, renderers) — cheap, no simulation."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.result import ExperimentResult


class TestExperimentResult:
    def make(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="demo",
            headers=["k", "v"],
        )
        result.rows.append(("a", 1))
        result.rows.append(("b", 2))
        return result

    def test_render_contains_rows_and_notes(self):
        result = self.make()
        result.notes.append("remark")
        text = result.render()
        assert "figX: demo" in text
        assert "remark" in text
        assert "a" in text and "b" in text

    def test_row_dict(self):
        result = self.make()
        assert result.row_dict()["a"] == ("a", 1)
        assert result.row_dict(key_column=1)[2] == ("b", 2)

    def test_series_default_empty(self):
        assert self.make().series == {}


class TestRegistry:
    def test_all_entries_resolvable(self):
        for eid in EXPERIMENTS:
            runner = get_experiment(eid)
            assert callable(runner)

    def test_descriptions_non_empty(self):
        for eid, (module, description) in EXPERIMENTS.items():
            assert module.startswith("repro.experiments."), eid
            assert len(description) > 10, eid

    def test_core_paper_results_covered(self):
        """Every evaluation table/figure of the paper has an entry."""
        expected = {
            "table4", "fig8", "fig9", "fig10", "fig11", "table7",
            "fig12", "fig13", "fig14", "table8", "table9", "fig15",
            "fig16", "fig17", "fig18", "table10",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extensions_registered(self):
        assert {
            "ablation_drafting",
            "ablation_dvfs",
            "ablation_mitts",
            "ablation_multichip",
        } <= set(EXPERIMENTS)

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("fig0")
