"""Unit tests for the experiments framework itself (result container,
registry plumbing, renderers) — cheap, no simulation."""

from __future__ import annotations

import json

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, get_spec
from repro.experiments.result import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
)


class TestExperimentResult:
    def make(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="demo",
            headers=["k", "v"],
        )
        result.rows.append(("a", 1))
        result.rows.append(("b", 2))
        return result

    def test_render_contains_rows_and_notes(self):
        result = self.make()
        result.notes.append("remark")
        text = result.render()
        assert "figX: demo" in text
        assert "remark" in text
        assert "a" in text and "b" in text

    def test_row_dict(self):
        result = self.make()
        assert result.row_dict()["a"] == ("a", 1)
        assert result.row_dict(key_column=1)[2] == ("b", 2)

    def test_series_default_empty(self):
        assert self.make().series == {}

    def test_to_dict_versioned(self):
        d = self.make().to_dict()
        assert d["schema_version"] == RESULT_SCHEMA_VERSION
        assert d["experiment_id"] == "figX"
        assert d["rows"] == [["a", 1], ["b", 2]]

    def test_json_round_trip(self):
        result = self.make()
        result.series["s"] = [1.0, 2.0]
        result.paper_reference = {"a": 1.5}
        result.notes.append("remark")
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.experiment_id == result.experiment_id
        assert restored.rows == result.rows
        assert restored.series == result.series
        assert restored.paper_reference == result.paper_reference
        assert restored.notes == result.notes

    def test_json_round_trip_rows_are_tuples(self):
        restored = ExperimentResult.from_json(self.make().to_json())
        assert all(isinstance(row, tuple) for row in restored.rows)

    def test_from_dict_rejects_unknown_version(self):
        d = self.make().to_dict()
        d["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            ExperimentResult.from_dict(d)

    def make_tiered(self):
        """A result whose manifest carries two-tier accounting."""
        from repro.obs.manifest import RunManifest

        result = self.make()
        result.manifest = RunManifest(
            experiment_id="figX",
            quick=True,
            jobs=1,
            telemetry=True,
            wall_s_total=0.5,
            tier="auto",
            resilience={
                "surrogate_hits": 7,
                "surrogate_fallbacks": 2,
                "points_tier_rejected": 1,
            },
            extra={"surrogate_max_err": 0.0123},
        )
        return result

    def test_round_trip_preserves_tier_and_counters(self):
        restored = ExperimentResult.from_json(
            self.make_tiered().to_json()
        )
        manifest = restored.manifest
        assert manifest is not None
        assert manifest.tier == "auto"
        assert manifest.resilience == {
            "surrogate_hits": 7,
            "surrogate_fallbacks": 2,
            "points_tier_rejected": 1,
        }
        assert manifest.extra["surrogate_max_err"] == 0.0123

    def test_round_trip_defaults_tier_for_old_documents(self):
        # Documents written before the surrogate existed have no tier
        # key; loading them must not invent a non-sim tier.
        d = self.make_tiered().to_dict()
        del d["manifest"]["tier"]  # type: ignore[index]
        restored = ExperimentResult.from_dict(d)
        assert restored.manifest is not None
        assert restored.manifest.tier == "sim"

    def test_from_dict_rejects_unknown_manifest_version(self):
        # The PR 4 guard extends to the nested manifest document: the
        # tier fields ride inside it, so a future manifest bump must
        # not be silently misread as today's layout.
        d = self.make_tiered().to_dict()
        d["manifest"]["schema_version"] = 999  # type: ignore[index]
        with pytest.raises(ValueError, match="manifest schema_version"):
            ExperimentResult.from_dict(d)

    def test_to_json_is_valid_json(self):
        parsed = json.loads(self.make().to_json())
        assert parsed["title"] == "demo"


class TestRegistry:
    def test_all_entries_resolvable(self):
        for eid in EXPERIMENTS:
            runner = get_experiment(eid)
            assert callable(runner)

    def test_descriptions_non_empty(self):
        for eid, spec in EXPERIMENTS.items():
            assert spec.module.startswith("repro.experiments."), eid
            assert len(spec.description) > 10, eid
            assert spec.experiment_id == eid

    def test_supports_jobs_marks_fan_out_experiments(self):
        assert get_spec("fig11").supports_jobs
        assert get_spec("fig13").supports_jobs
        assert not get_spec("fig8").supports_jobs

    def test_chart_specs_well_formed(self):
        chartable = {
            eid for eid, spec in EXPERIMENTS.items() if spec.chartable
        }
        assert {"fig9", "fig13", "fig16"} <= chartable
        for eid in chartable:
            chart = get_spec(eid).chart
            assert chart.series, eid
            assert chart.y_label, eid

    def test_metadata_is_json_serializable(self):
        for spec in EXPERIMENTS.values():
            meta = spec.metadata()
            text = json.dumps(meta)
            assert spec.experiment_id in text
            assert meta["supports_jobs"] == spec.supports_jobs

    def test_core_paper_results_covered(self):
        """Every evaluation table/figure of the paper has an entry."""
        expected = {
            "table4", "fig8", "fig9", "fig10", "fig11", "table7",
            "fig12", "fig13", "fig14", "table8", "table9", "fig15",
            "fig16", "fig17", "fig18", "table10",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extensions_registered(self):
        assert {
            "ablation_drafting",
            "ablation_dvfs",
            "ablation_mitts",
            "ablation_multichip",
        } <= set(EXPERIMENTS)

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("fig0")
