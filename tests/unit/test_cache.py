"""Unit tests for repro.cache: tag stores, addressing, latency,
directory, and the coherent memory system."""

from __future__ import annotations

import pytest

from repro.arch.params import CacheParams, PitonConfig
from repro.cache.addressing import AddressMap, Interleave
from repro.cache.coherence import CoherenceError, DirectoryEntry, MesiState
from repro.cache.latency import MemoryLatencyModel
from repro.cache.setassoc import SetAssocCache
from repro.cache.system import CoherentMemorySystem, fixed_offchip_model
from repro.util.events import EventLedger


class TestSetAssocCache:
    def make(self, sets=4, ways=2, line=16):
        return SetAssocCache(CacheParams(sets * ways * line, ways, line))

    def test_miss_then_fill_then_hit(self):
        c = self.make()
        assert not c.access(0x40).hit
        c.fill(0x40)
        assert c.access(0x40).hit
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_same_line_different_bytes(self):
        c = self.make()
        c.fill(0x40)
        assert c.access(0x4F).hit  # same 16B line

    def test_lru_eviction(self):
        c = self.make(sets=1, ways=2)
        c.fill(0x00)
        c.fill(0x10)
        c.access(0x00)  # make 0x00 MRU
        result = c.fill(0x20)
        assert result.evicted_line_addr == 0x10

    def test_dirty_eviction_reported(self):
        c = self.make(sets=1, ways=1)
        c.fill(0x00, dirty=True)
        result = c.fill(0x10)
        assert result.evicted_dirty
        assert c.stats.writebacks == 1

    def test_probe_does_not_touch_lru(self):
        c = self.make(sets=1, ways=2)
        c.fill(0x00)
        c.fill(0x10)
        c.probe(0x00)  # probe must NOT refresh
        result = c.fill(0x20)
        assert result.evicted_line_addr == 0x00

    def test_invalidate(self):
        c = self.make()
        c.fill(0x40)
        assert c.invalidate(0x40)
        assert not c.access(0x40).hit
        assert not c.invalidate(0x40)

    def test_dirty_tracking(self):
        c = self.make()
        c.fill(0x40)
        assert not c.is_dirty(0x40)
        c.access(0x40, write=True)
        assert c.is_dirty(0x40)
        c.set_dirty(0x40, False)
        assert not c.is_dirty(0x40)

    def test_set_dirty_missing_line_raises(self):
        with pytest.raises(KeyError):
            self.make().set_dirty(0x40)

    def test_fill_existing_refreshes(self):
        c = self.make(sets=1, ways=2)
        c.fill(0x00)
        c.fill(0x10)
        c.fill(0x00)  # refresh, no eviction
        assert c.stats.evictions == 0
        assert sorted(c.resident_lines()) == [0x00, 0x10]

    def test_flush(self):
        c = self.make()
        c.fill(0x40)
        c.flush()
        assert c.resident_lines() == []


class TestAddressMap:
    def test_low_interleave_consecutive_lines(self):
        amap = AddressMap(PitonConfig(), Interleave.LOW)
        homes = [amap.home_tile(64 * i) for i in range(25)]
        assert homes == list(range(25))

    def test_high_interleave_coarse(self):
        amap = AddressMap(PitonConfig(), Interleave.HIGH)
        assert amap.home_tile(0) == amap.home_tile(1 << 20)

    def test_middle_interleave(self):
        amap = AddressMap(PitonConfig(), Interleave.MIDDLE)
        assert amap.home_tile(0) == amap.home_tile(64)
        assert amap.home_tile(0) != amap.home_tile(1 << 16)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            AddressMap().home_tile(-1)

    @pytest.mark.parametrize("tile", [0, 7, 24])
    def test_address_homed_at(self, tile):
        amap = AddressMap()
        for seq in range(5):
            addr = amap.address_homed_at(tile, seq)
            assert amap.home_tile(addr) == tile

    def test_homed_at_with_set_constraint(self):
        config = PitonConfig()
        amap = AddressMap(config)
        for tile in (0, 13, 24):
            addrs = [
                amap.address_homed_at(
                    tile, sequence=i, set_index=5, cache=config.l1d
                )
                for i in range(8)
            ]
            assert len(set(addrs)) == 8
            for addr in addrs:
                assert amap.home_tile(addr) == tile
                assert (addr // 16) % config.l1d.num_sets == 5

    def test_homed_at_l2_set_constraint(self):
        config = PitonConfig()
        amap = AddressMap(config)
        addrs = [
            amap.address_homed_at(
                3, sequence=i, set_index=9, cache=config.l2_slice
            )
            for i in range(6)
        ]
        for addr in addrs:
            assert (addr // 64) % config.l2_slice.num_sets == 9
            assert amap.home_tile(addr) == 3

    def test_bad_tile(self):
        with pytest.raises(ValueError):
            AddressMap().address_homed_at(99)


class TestLatencyModel:
    """Table VII's latencies must emerge from the named composition."""

    def test_table7_values(self):
        m = MemoryLatencyModel()
        assert m.l1_hit == 3
        assert m.local_l2_hit() == 34
        assert m.l2_hit(4, 0) == 42
        assert m.l2_hit(8, 1) == 52

    def test_miss_adds_offchip(self):
        m = MemoryLatencyModel()
        assert m.l2_miss(0, 0, 390) == 424

    def test_store_buffer_latency(self):
        assert MemoryLatencyModel().store_buffer == 10


class TestDirectoryEntry:
    def test_owner_and_sharers_exclusive(self):
        entry = DirectoryEntry(owner=3)
        with pytest.raises(CoherenceError):
            entry.add_sharer(4)

    def test_set_owner_with_sharers_rejected(self):
        entry = DirectoryEntry()
        entry.add_sharer(1)
        with pytest.raises(CoherenceError):
            entry.set_owner(2)

    def test_downgrade(self):
        entry = DirectoryEntry(owner=3)
        assert entry.downgrade_owner_to_sharer() == 3
        assert entry.owner is None and entry.sharers == {3}

    def test_downgrade_without_owner(self):
        with pytest.raises(CoherenceError):
            DirectoryEntry().downgrade_owner_to_sharer()

    def test_drop(self):
        entry = DirectoryEntry(owner=3)
        entry.drop(3)
        assert entry.uncached
        entry.add_sharer(1)
        entry.drop(1)
        assert entry.uncached

    def test_check_detects_corruption(self):
        entry = DirectoryEntry(owner=1)
        entry.sharers.add(2)  # corrupt directly
        with pytest.raises(CoherenceError):
            entry.check()


class TestCoherentMemorySystem:
    def make(self):
        ledger = EventLedger()
        return (
            CoherentMemorySystem(
                PitonConfig(),
                ledger=ledger,
                offchip=fixed_offchip_model(390),
            ),
            ledger,
        )

    def test_first_load_goes_to_memory(self):
        ms, _ = self.make()
        out = ms.load(0, 0x0)
        assert out.level == "mem"
        assert out.latency == 34 + 390

    def test_second_load_hits_l1(self):
        ms, _ = self.make()
        ms.load(0, 0x0)
        out = ms.load(0, 0x0)
        assert out.level == "l1"
        assert out.latency == 3

    def test_local_vs_remote_latency(self):
        ms, _ = self.make()
        # Line 0 homes at tile 0 under LOW interleave.
        ms.load(0, 0x0)
        ms.l1d[0].invalidate(0x0)
        ms.l15[0].invalidate(0x0)
        ms._l15_state[0].pop(0, None)
        out_local = ms.load(0, 0x0)
        assert out_local.level == "l2_local"
        assert out_local.latency == 34

    def test_remote_l2_hit_latency_4hops(self):
        ms, _ = self.make()
        addr = 4 * 64  # homes at tile 4
        ms.load(4, addr)  # owner fetches (local)
        out = ms.load(0, addr)  # 4 straight hops from tile 0
        assert out.level == "l2_remote"
        assert out.hops == 4 and out.turns == 0
        # Owner downgrade adds the forward trip to the base 42.
        assert out.latency >= 42

    def test_read_sharing_grants_shared(self):
        ms, _ = self.make()
        addr = 0x0
        ms.load(0, addr)
        ms.load(1, addr)
        assert ms._l15_state[0][0] is MesiState.SHARED
        assert ms._l15_state[1][0] is MesiState.SHARED
        ms.check_invariants()

    def test_first_reader_gets_exclusive(self):
        ms, _ = self.make()
        ms.load(3, 3 * 64)
        line = ms._l15_line(3, 3 * 64)
        assert ms._l15_state[3][line] is MesiState.EXCLUSIVE

    def test_store_invalidates_sharers(self):
        ms, _ = self.make()
        addr = 0x0
        ms.load(0, addr)
        ms.load(1, addr)
        ms.store(2, addr)
        assert 0 not in ms._l15_state[0]
        assert 0 not in ms._l15_state[1]
        assert ms._l15_state[2][0] is MesiState.MODIFIED
        ms.check_invariants()

    def test_silent_e_to_m_upgrade(self):
        ms, ledger = self.make()
        addr = 0x0
        ms.load(0, addr)  # E
        flits_before = ledger.count("noc1.flit")
        out = ms.store(0, addr)
        assert ledger.count("noc1.flit") == flits_before  # no traffic
        assert out.latency == 10
        assert ms._l15_state[0][0] is MesiState.MODIFIED

    def test_shared_store_upgrades(self):
        ms, _ = self.make()
        addr = 0x0
        ms.load(0, addr)
        ms.load(1, addr)  # both S
        ms.store(0, addr)
        assert ms._l15_state[0][0] is MesiState.MODIFIED
        assert 0 not in ms._l15_state[1]

    def test_dirty_writeback_on_remote_read(self):
        ms, ledger = self.make()
        addr = 0x0
        ms.store(0, addr)  # M at tile 0
        before = ledger.count("l2.write")
        ms.load(1, addr)  # downgrade + writeback
        assert ledger.count("l2.write") > before
        assert ms._l15_state[0][0] is MesiState.SHARED
        ms.check_invariants()

    def test_atomic_leaves_line_uncached(self):
        ms, _ = self.make()
        addr = 0x0
        ms.load(0, addr)
        ms.atomic(1, addr)
        assert 0 not in ms._l15_state[0]
        assert 0 not in ms._l15_state[1]
        ms.check_invariants()

    def test_l15_capacity_eviction_notifies_home(self):
        config = PitonConfig()
        ms, _ = self.make()
        # 5 addresses aliasing one L1.5 set (4 ways): first evicts.
        stride = config.l15.num_sets * config.l15.line_bytes * 25
        addrs = [i * stride for i in range(5)]
        for a in addrs:
            ms.load(0, a)
        ms.check_invariants()
        home0 = ms.address_map.home_tile(addrs[0])
        entry = ms.l2[home0].directory.get(
            ms.l2[home0].line_addr(addrs[0])
        )
        assert entry is None  # dropped after eviction notification

    def test_fetch_instruction(self):
        ms, ledger = self.make()
        out1 = ms.fetch(0, 0x5000)
        out2 = ms.fetch(0, 0x5000)
        assert out2.level == "l1" and out2.latency == 1
        assert ledger.count("l1i.fill") == 1
        assert out1.latency > out2.latency

    def test_events_recorded(self):
        ms, ledger = self.make()
        ms.load(0, 0x0)
        assert ledger.count("l1d.read") == 1
        assert ledger.count("l15.read") == 1
        assert ledger.count("l2.read") == 1
        assert ledger.count("mem.line_fetch") == 1
