"""Unit tests for repro.isa: instructions, operands, programs,
assembler."""

from __future__ import annotations

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import (
    INSTRUCTION_SET,
    InstrClass,
    Unit,
    WORD_MASK,
    opcode,
)
from repro.isa.operands import (
    OperandPolicy,
    activity_factor,
    bit_pattern,
    float_bits,
    hamming_distance,
    hamming_weight,
    operand_value,
    switching_factor,
)
from repro.isa.program import Instruction, Program, flat_program

import numpy as np


class TestInstructionSet:
    """Latencies must match the paper's Table VI exactly."""

    TABLE_VI = {
        "nop": 1,
        "and": 1,
        "add": 1,
        "mulx": 11,
        "sdivx": 72,
        "faddd": 22,
        "fmuld": 25,
        "fdivd": 79,
        "fadds": 22,
        "fmuls": 25,
        "fdivs": 50,
        "ldx": 3,
        "stx": 10,
        "beq": 3,
        "bne": 3,
    }

    @pytest.mark.parametrize("name,latency", sorted(TABLE_VI.items()))
    def test_table6_latency(self, name, latency):
        assert opcode(name).latency == latency

    def test_unknown_opcode(self):
        with pytest.raises(KeyError, match="unknown opcode"):
            opcode("vadd")

    def test_classes(self):
        assert opcode("add").instr_class is InstrClass.INT_ADD
        assert opcode("and").instr_class is InstrClass.INT_LOGIC
        assert opcode("fdivd").instr_class is InstrClass.FP_DIV_D

    def test_units(self):
        assert opcode("mulx").unit is Unit.MUL
        assert opcode("ldx").unit is Unit.MEM
        assert opcode("beq").unit is Unit.BRANCH

    def test_flags(self):
        assert opcode("ldx").is_load and not opcode("ldx").is_store
        assert opcode("stx").is_store and not opcode("stx").has_dest
        assert opcode("beq").is_branch
        assert opcode("faddd").is_fp

    def test_every_opcode_well_formed(self):
        for name, info in INSTRUCTION_SET.items():
            assert info.name == name
            assert info.latency >= 1


class TestOperands:
    def test_minimum(self):
        assert operand_value(OperandPolicy.MINIMUM) == 0
        assert operand_value(OperandPolicy.MINIMUM, fp=True) == 0.0

    def test_maximum_int(self):
        assert operand_value(OperandPolicy.MAXIMUM) == WORD_MASK

    def test_maximum_fp_is_finite_dense(self):
        v = operand_value(OperandPolicy.MAXIMUM, fp=True)
        assert v > 0 and v != float("inf")
        assert hamming_weight(float_bits(v)) > 48

    def test_random_requires_rng(self):
        with pytest.raises(ValueError):
            operand_value(OperandPolicy.RANDOM)

    def test_random_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = operand_value(OperandPolicy.RANDOM, rng)
            assert 0 <= v <= WORD_MASK

    def test_hamming(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(WORD_MASK) == 64
        assert hamming_distance(0, WORD_MASK) == 64
        assert hamming_distance(0xF0, 0x0F) == 8

    def test_activity_factor_bounds(self):
        assert activity_factor(0) == 0.0
        assert activity_factor(WORD_MASK) == 1.0
        assert activity_factor(0.0) == 0.0

    def test_switching_factor(self):
        assert switching_factor(0, WORD_MASK) == 1.0
        assert switching_factor(5, 5) == 0.0

    def test_bit_pattern_float(self):
        assert bit_pattern(1.0) == float_bits(1.0)
        assert bit_pattern(7) == 7


class TestProgram:
    def test_validate_branch_target(self):
        program = Program([Instruction("beq", rs1=1, target=5)])
        with pytest.raises(ValueError, match="out of range"):
            program.validate()

    def test_validate_missing_target(self):
        program = Program([Instruction("beq", rs1=1)])
        with pytest.raises(ValueError, match="without target"):
            program.validate()

    def test_bad_register(self):
        program = Program([Instruction("add", rd=40, rs1=1, rs2=2)])
        with pytest.raises(ValueError, match="register"):
            program.validate()

    def test_instruction_mix(self):
        program = flat_program(
            [Instruction("nop"), Instruction("nop"),
             Instruction("add", rd=1, rs1=1, rs2=2)]
        )
        assert program.instruction_mix() == {"nop": 2, "add": 1}

    def test_str(self):
        text = str(Instruction("add", rd=3, rs1=1, rs2=2))
        assert text.startswith("add")
        assert "rd=3" in text


class TestAssembler:
    def test_three_operand(self):
        p = assemble("add %r1, %r2, %r3")
        instr = p[0]
        assert (instr.op, instr.rs1, instr.rs2, instr.rd) == (
            "add", 1, 2, 3,
        )

    def test_immediate_operand(self):
        p = assemble("and %r1, 0xff, %r2")
        assert p[0].imm == 255
        assert p[0].rs2 is None

    def test_negative_immediate(self):
        assert assemble("add %r1, -8, %r2")[0].imm == -8

    def test_load(self):
        p = assemble("ldx [%r4 + 16], %r5")
        instr = p[0]
        assert (instr.rs1, instr.imm, instr.rd) == (4, 16, 5)

    def test_load_negative_offset(self):
        assert assemble("ldx [%r4 - 8], %r5")[0].imm == -8

    def test_load_no_offset(self):
        assert assemble("ldx [%r4], %r5")[0].imm == 0

    def test_store(self):
        p = assemble("stx %r5, [%r4 + 16]")
        instr = p[0]
        assert (instr.rs1, instr.rs2, instr.imm) == (5, 4, 16)

    def test_branch_and_label(self):
        p = assemble("loop:\n  nop\n  bne %r1, loop")
        assert p[1].target == 0
        assert p.labels["loop"] == 0

    def test_forward_label(self):
        p = assemble("  beq %r0, end\n  nop\nend:\n  nop")
        assert p[0].target == 2

    def test_label_sharing_line(self):
        p = assemble("start: nop")
        assert p.labels["start"] == 0

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\na:\n nop")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble("bne %r1, nowhere")

    def test_comments(self):
        p = assemble("nop ! comment\n# whole line\nnop")
        assert len(p) == 2

    def test_set(self):
        p = assemble("set 1000, %r1")
        assert (p[0].imm, p[0].rd) == (1000, 1)

    def test_mov(self):
        p = assemble("mov %r1, %r2")
        assert (p[0].rs1, p[0].rd) == (1, 2)

    def test_fp(self):
        p = assemble("faddd %f0, %f2, %f4")
        assert (p[0].rs1, p[0].rs2, p[0].rd) == (0, 2, 4)

    def test_fp_immediate_rejected(self):
        with pytest.raises(AssemblerError, match="register operands"):
            assemble("faddd %f0, 3, %f4")

    def test_cas(self):
        p = assemble("cas [%r4], %r9, %r8")
        instr = p[0]
        assert (instr.rs1, instr.rs2, instr.rd) == (4, 9, 8)

    def test_cas_offset_rejected(self):
        with pytest.raises(AssemblerError, match="no address offset"):
            assemble("cas [%r4 + 8], %r9, %r8")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown opcode"):
            assemble("frobnicate %r1, %r2, %r3")

    def test_register_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("add %r1, %r2, %r99")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expected"):
            assemble("add %r1, %r2")

    def test_nop_with_operands_rejected(self):
        with pytest.raises(AssemblerError, match="takes no operands"):
            assemble("nop %r1")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus %r1, %r2, %r3")
