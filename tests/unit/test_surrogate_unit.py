"""Unit tests for the surrogate package: profiles, store, model,
dispatch, and the RunContext tier plumbing — no cycle-level simulation
except one cheap frequency-independent request build."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import RunContext
from repro.obs import Tracer
from repro.surrogate import (
    GATE_METRICS,
    PROFILE_SCHEMA_VERSION,
    AnchorRun,
    FidelityPolicy,
    ProfileStore,
    SurrogateModel,
    WorkloadProfile,
    accepts_cached_outcome,
    profile_key,
)
from repro.surrogate.workloads import CALIBRATION_WORKLOADS
from repro.system import SimOutcome


def make_anchor(freq_hz: float, cycles: int = 1000, **over) -> AnchorRun:
    fields = dict(
        freq_hz=freq_hz,
        cycles=cycles,
        instructions=cycles // 2,
        completed=True,
        counts={"alu": float(cycles), "mem": freq_hz / 1e6},
        weights={"alu": 0.5},
        sim_wall_s=0.1,
    )
    fields.update(over)
    return AnchorRun(**fields)


def make_profile(**over) -> WorkloadProfile:
    fields = dict(
        key="a" * 64,
        workload="demo",
        freq_independent=False,
        anchors=[make_anchor(200e6), make_anchor(800e6, cycles=4000)],
        error_bounds={"total_w": 0.02, "epi_pj": 0.03, "cycles": 0.4},
    )
    fields.update(over)
    return WorkloadProfile(**fields)


class TestWorkloadProfile:
    def test_json_round_trip(self):
        profile = make_profile(
            validation=[{"freq_hz": 500e6, "total_w": 0.01}]
        )
        restored = WorkloadProfile.from_json(profile.to_json())
        assert restored.key == profile.key
        assert restored.freq_independent is False
        assert [a.freq_hz for a in restored.anchors] == [200e6, 800e6]
        assert restored.anchors[0].counts == profile.anchors[0].counts
        assert restored.error_bounds == profile.error_bounds
        assert restored.validation == profile.validation

    def test_rejects_unknown_schema_version(self):
        doc = make_profile().to_dict()
        doc["schema_version"] = PROFILE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="repro calibrate"):
            WorkloadProfile.from_dict(doc)

    def test_requires_anchors(self):
        with pytest.raises(ValueError, match="at least one anchor"):
            make_profile(anchors=[])

    def test_rejects_duplicate_anchor_clocks(self):
        with pytest.raises(ValueError, match="distinct"):
            make_profile(
                anchors=[make_anchor(200e6), make_anchor(200e6)]
            )

    def test_anchors_sorted_by_clock(self):
        profile = make_profile(
            anchors=[make_anchor(800e6), make_anchor(200e6)]
        )
        assert profile.freq_min_hz == 200e6
        assert profile.freq_max_hz == 800e6

    def test_error_bound_gates_on_reported_figures_only(self):
        # The huge 'cycles' bar (integer granularity on short windows)
        # must not block dispatch; only the power/EPI figures gate.
        profile = make_profile()
        assert "cycles" not in GATE_METRICS
        assert profile.error_bound == pytest.approx(0.03)

    def test_empty_bounds_mean_exact(self):
        assert make_profile(error_bounds={}).error_bound == 0.0


class TestProfileStore:
    def test_save_then_get_round_trips(self, tmp_path):
        store = ProfileStore(tmp_path)
        profile = make_profile()
        path = store.save(profile)
        assert path.is_file()
        fresh = ProfileStore(tmp_path)  # no warm cache
        got = fresh.get(profile.key)
        assert got is not None
        assert got.to_dict() == profile.to_dict()

    def test_missing_key_is_none(self, tmp_path):
        assert ProfileStore(tmp_path).get("b" * 64) is None

    def test_damaged_file_reads_as_none(self, tmp_path):
        store = ProfileStore(tmp_path)
        profile = make_profile()
        store.save(profile)
        store.path_for(profile.key).write_text("{truncated")
        assert ProfileStore(tmp_path).get(profile.key) is None

    def test_foreign_key_file_reads_as_none(self, tmp_path):
        # A profile copied under another digest's name must not be
        # served for that digest.
        store = ProfileStore(tmp_path)
        profile = make_profile()
        store.save(profile)
        wrong = "c" * 64
        store.path_for(wrong).write_text(
            store.path_for(profile.key).read_text()
        )
        assert ProfileStore(tmp_path).get(wrong) is None

    def test_lookups_are_cached(self, tmp_path):
        store = ProfileStore(tmp_path)
        profile = make_profile()
        store.save(profile)
        assert store.get(profile.key) is not None
        store.path_for(profile.key).unlink()
        assert store.get(profile.key) is not None  # served from cache

    def test_keys_lists_saved_profiles(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.save(make_profile())
        assert store.keys() == ["a" * 64]
        assert ("a" * 64) in store


class TestSurrogateModel:
    def request(self, freq_hz: float):
        """A real request reshaped onto the synthetic profile's key."""
        req = CALIBRATION_WORKLOADS["int"].base_request(quick=True)
        return replace(req, freq_hz=freq_hz)

    def model(self, **over) -> SurrogateModel:
        return SurrogateModel(make_profile(**over))

    def test_envelope(self):
        model = self.model()
        assert model.in_envelope(self.request(200e6))
        assert model.in_envelope(self.request(500e6))
        assert model.in_envelope(self.request(800e6))
        assert not model.in_envelope(self.request(100e6))
        assert not model.in_envelope(self.request(900e6))

    def test_freq_independent_envelope_is_unbounded(self):
        model = self.model(
            freq_independent=True, anchors=[make_anchor(500e6)]
        )
        assert model.in_envelope(self.request(50e6))
        outcome = model.predict(self.request(50e6))
        assert outcome.tier == "fast"
        assert outcome.tier_err == 0.0
        assert outcome.result.cycles == 1000

    def test_predict_at_anchor_is_exact(self):
        outcome = self.model().predict(self.request(800e6))
        assert outcome.tier == "fast"
        assert outcome.tier_err == 0.0  # anchor replay, no interpolation
        assert outcome.result.cycles == 4000
        assert outcome.ledger.counts["alu"] == 4000.0

    def test_predict_interpolates_between_anchors(self):
        outcome = self.model().predict(self.request(500e6))
        assert outcome.result.cycles == 2500  # midpoint of 1000/4000
        assert outcome.ledger.counts["alu"] == pytest.approx(2500.0)
        assert outcome.ledger.counts["mem"] == pytest.approx(500.0)
        assert outcome.ledger.weights["alu"] == pytest.approx(0.5)
        assert outcome.tier_err == pytest.approx(0.03)

    def test_out_of_envelope_raises(self):
        with pytest.raises(ValueError, match="outside"):
            self.model().predict(self.request(900e6))


def fast_outcome(tier_err: float) -> SimOutcome:
    from repro.core.multicore import RunResult
    from repro.util.events import EventLedger

    return SimOutcome(
        ledger=EventLedger(),
        result=RunResult(cycles=1, instructions=1, completed=True),
        engine=None,
        tier="fast",
        tier_err=tier_err,
    )


def sim_outcome() -> SimOutcome:
    out = fast_outcome(0.0)
    out.tier = "sim"
    return out


class TestFidelityPolicy:
    def calibrated(self, tmp_path, request, **profile_over):
        store = ProfileStore(tmp_path)
        store.save(
            make_profile(key=profile_key(request), **profile_over)
        )
        return store

    def request(self, freq_hz: float = 500e6, checks: bool = False):
        req = CALIBRATION_WORKLOADS["int"].base_request(quick=True)
        return replace(req, freq_hz=freq_hz, checks=checks)

    def test_rejects_tier_sim(self, tmp_path):
        with pytest.raises(ValueError, match="no policy"):
            FidelityPolicy(store=ProfileStore(tmp_path), tier="sim")

    def test_uncalibrated_request_falls_back(self, tmp_path):
        tracer = Tracer()
        policy = FidelityPolicy(
            store=ProfileStore(tmp_path), tracer=tracer
        )
        assert policy.predict(self.request()) is None
        assert tracer.resilience["surrogate_fallbacks"] == 1

    def test_checked_request_always_falls_back(self, tmp_path):
        request = self.request(checks=True)
        # Key ignores nothing: a checks=True request has a different
        # digest, but even a matching profile must not serve it.
        store = self.calibrated(tmp_path, request)
        policy = FidelityPolicy(store=store)
        assert policy.predict(request) is None

    def test_auto_serves_within_tolerance(self, tmp_path):
        request = self.request()
        tracer = Tracer()
        policy = FidelityPolicy(
            store=self.calibrated(tmp_path, request),
            tolerance=0.05,
            tracer=tracer,
        )
        outcome = policy.predict(request)
        assert outcome is not None and outcome.tier == "fast"
        assert tracer.resilience["surrogate_hits"] == 1
        assert tracer.meta["surrogate_max_err"] == pytest.approx(0.03)

    def test_auto_falls_back_over_tolerance(self, tmp_path):
        request = self.request()
        policy = FidelityPolicy(
            store=self.calibrated(tmp_path, request), tolerance=0.01
        )
        assert policy.predict(request) is None

    def test_fast_serves_regardless_of_bound(self, tmp_path):
        request = self.request()
        policy = FidelityPolicy(
            store=self.calibrated(tmp_path, request),
            tier="fast",
            tolerance=0.0001,
        )
        assert policy.predict(request) is not None

    def test_out_of_envelope_falls_back_even_under_fast(self, tmp_path):
        request = self.request(freq_hz=50e6)
        tracer = Tracer()
        policy = FidelityPolicy(
            store=self.calibrated(tmp_path, request),
            tier="fast",
            tracer=tracer,
        )
        assert policy.predict(request) is None
        assert tracer.resilience["surrogate_fallbacks"] == 1


class TestAcceptsCachedOutcome:
    def policy(self, tmp_path, tier="auto", tolerance=0.05):
        return FidelityPolicy(
            store=ProfileStore(tmp_path), tier=tier, tolerance=tolerance
        )

    def test_sim_points_satisfy_every_tier(self, tmp_path):
        assert accepts_cached_outcome(sim_outcome(), None)
        assert accepts_cached_outcome(
            sim_outcome(), self.policy(tmp_path)
        )
        assert accepts_cached_outcome(
            sim_outcome(), self.policy(tmp_path, tier="fast")
        )

    def test_fast_points_rejected_without_policy(self):
        # --tier sim resume of an auto journal re-simulates, never
        # silently keeps a surrogate point.
        assert not accepts_cached_outcome(fast_outcome(0.001), None)

    def test_fast_points_gated_by_auto_tolerance(self, tmp_path):
        policy = self.policy(tmp_path, tolerance=0.05)
        assert accepts_cached_outcome(fast_outcome(0.03), policy)
        assert not accepts_cached_outcome(fast_outcome(0.10), policy)

    def test_fast_policy_accepts_any_fast_point(self, tmp_path):
        policy = self.policy(tmp_path, tier="fast", tolerance=0.0001)
        assert accepts_cached_outcome(fast_outcome(0.5), policy)


class TestRunContextTier:
    def test_default_is_sim_with_no_policy(self):
        ctx = RunContext()
        assert ctx.tier == "sim"
        assert ctx.fidelity_policy() is None

    def test_auto_builds_policy(self, tmp_path):
        ctx = RunContext(
            tier="auto", fidelity=0.08, profile_dir=str(tmp_path)
        )
        policy = ctx.fidelity_policy()
        assert policy is not None
        assert policy.tier == "auto"
        assert policy.tolerance == 0.08
        assert policy.store.root == tmp_path

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="tier"):
            RunContext(tier="warp")

    def test_rejects_nonpositive_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            RunContext(fidelity=0.0)
