"""Unit tests for the power logger and the instruction tracer."""

from __future__ import annotations

import math

import pytest

from repro.board.powerlog import (
    POWERLOG_SCHEMA_VERSION,
    PowerLog,
    PowerLogger,
)
from repro.core.multicore import MulticoreEngine
from repro.core.trace import TraceRecorder
from repro.isa.assembler import assemble
from repro.power.chip_power import RailPower


class TestPowerLog:
    def make_log(self):
        log = PowerLog()
        log.append(0.0, RailPower(2.0, 0.3, 0.1))
        log.append(1.0, RailPower(2.2, 0.3, 0.1))
        log.append(2.0, RailPower(2.0, 0.3, 0.1))
        return log

    def test_summary(self):
        summary = self.make_log().summary("vdd")
        assert summary["mean_w"] == pytest.approx(2.0667, rel=1e-3)
        assert summary["peak_to_peak_w"] == pytest.approx(0.2)

    def test_unknown_rail(self):
        with pytest.raises(KeyError):
            self.make_log().rail("vaux")

    def test_empty_summary(self):
        with pytest.raises(ValueError):
            PowerLog().summary("vdd")

    def test_total_energy_trapezoidal(self):
        log = PowerLog()
        log.append(0.0, RailPower(1.0, 0.0, 0.0))
        log.append(2.0, RailPower(3.0, 0.0, 0.0))
        assert log.total_energy_j() == pytest.approx(4.0)

    def test_energy_of_single_sample_is_zero(self):
        log = PowerLog()
        log.append(0.0, RailPower(1.0, 0.0, 0.0))
        assert log.total_energy_j() == 0.0

    def test_csv_round_trip(self):
        log = self.make_log()
        restored = PowerLog.from_csv(log.to_csv())
        assert len(restored) == len(log)
        assert restored.vdd_w == pytest.approx(log.vdd_w)
        assert restored.times_s == pytest.approx(log.times_s)

    def test_csv_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            PowerLog.from_csv("a,b,c,d\n1,2,3,4\n")

    def test_json_round_trip(self):
        log = self.make_log()
        restored = PowerLog.from_json(log.to_json())
        assert len(restored) == len(log)
        assert restored.times_s == pytest.approx(log.times_s)
        assert restored.vdd_w == pytest.approx(log.vdd_w)
        assert restored.vio_w == pytest.approx(log.vio_w)

    def test_json_document_has_summary_and_energy(self):
        doc = self.make_log().to_dict()
        assert doc["schema_version"] == POWERLOG_SCHEMA_VERSION
        assert doc["samples"] == 3
        assert doc["summary"]["vdd"]["mean_w"] == pytest.approx(
            2.0667, rel=1e-3
        )
        assert doc["total_energy_j"] == pytest.approx(
            self.make_log().total_energy_j()
        )

    def test_json_empty_log(self):
        doc = PowerLog().to_dict()
        assert doc["samples"] == 0
        assert doc["summary"] == {}
        assert len(PowerLog.from_dict(doc)) == 0

    def test_json_bad_version(self):
        doc = self.make_log().to_dict()
        doc["schema_version"] = 0
        with pytest.raises(ValueError, match="schema_version"):
            PowerLog.from_dict(doc)

    def test_logger_sampling(self):
        logger = PowerLogger(poll_hz=10.0)

        def source(t: float) -> RailPower:
            return RailPower(2.0 + math.sin(t), 0.3, 0.1)

        log = logger.record(source, duration_s=2.0)
        assert len(log) == 20
        assert log.times_s[1] - log.times_s[0] == pytest.approx(0.1)

    def test_logger_validation(self):
        with pytest.raises(ValueError):
            PowerLogger(poll_hz=0)
        with pytest.raises(ValueError):
            PowerLogger().record(lambda t: RailPower(1, 1, 1), 0)


class TestTraceRecorder:
    def run_traced(self, source, threads=1, capacity=1000):
        engine = MulticoreEngine()
        programs = [assemble(source) for _ in range(threads)]
        core = engine.add_core(0, programs, init_regs={31: 1})
        recorder = TraceRecorder(core, capacity=capacity)
        with recorder:
            engine.run(until_done=True, max_cycles=100_000)
        return recorder

    def test_records_every_issue(self):
        trace = self.run_traced("nop\nnop\nadd %r1, 1, %r1")
        assert trace.ops() == ["nop", "nop", "add"]

    def test_no_extraneous_activity_check(self):
        trace = self.run_traced("nop\nadd %r1, 1, %r1")
        assert trace.only_ops({"nop", "add"})
        assert not trace.only_ops({"nop"})

    def test_two_threads_attributed(self):
        trace = self.run_traced("nop\nnop", threads=2)
        threads_seen = {e.thread for e in trace.entries}
        assert threads_seen == {0, 1}
        assert len(trace.entries) == 4

    def test_capacity_bounds_memory(self):
        trace = self.run_traced("\n".join(["nop"] * 50), capacity=10)
        assert len(trace.entries) == 10  # only the most recent kept

    def test_detach_restores(self):
        engine = MulticoreEngine()
        core = engine.add_core(0, [assemble("nop")])
        recorder = TraceRecorder(core)
        recorder.attach()
        assert "step" in core.__dict__  # shimmed
        recorder.detach()
        assert "step" not in core.__dict__  # class method restored

    def test_double_attach_rejected(self):
        engine = MulticoreEngine()
        core = engine.add_core(0, [assemble("nop")])
        recorder = TraceRecorder(core).attach()
        with pytest.raises(RuntimeError):
            recorder.attach()
        recorder.detach()

    def test_issues_per_cycle(self):
        trace = self.run_traced("\n".join(["add %r1, 1, %r1"] * 20))
        assert trace.issues_per_cycle() == pytest.approx(1.0, abs=0.1)

    def test_capacity_validation(self):
        engine = MulticoreEngine()
        core = engine.add_core(0, [assemble("nop")])
        with pytest.raises(ValueError):
            TraceRecorder(core, capacity=0)
