"""Unit tests for repro.noc: flits, routing, mesh timing/energy, MITTS."""

from __future__ import annotations

import pytest

from repro.arch.params import PitonConfig
from repro.noc.flit import (
    Flit,
    Packet,
    coupling_factor,
    make_invalidation_packet,
    switching_bits,
)
from repro.noc.mesh import MeshNetwork
from repro.noc.mitts import MittsBin, MittsShaper
from repro.noc.router import Port, Router, is_turn
from repro.util.events import EventLedger

ONES = (1 << 64) - 1
AAAA = 0xAAAAAAAAAAAAAAAA
FIVES = 0x5555555555555555


class TestFlit:
    def test_head_needs_dest(self):
        with pytest.raises(ValueError):
            Flit(payload=0, is_head=True)

    def test_payload_bounds(self):
        with pytest.raises(ValueError):
            Flit(payload=1 << 64)

    def test_packet_build(self):
        p = Packet.build(dest=7, payloads=[1, 2, 3])
        assert len(p) == 4
        assert p.flits[0].is_head and p.flits[0].dest == 7
        assert p.flits[-1].is_tail

    def test_header_only_packet(self):
        p = Packet.build(dest=3, payloads=[])
        assert len(p) == 1
        assert p.flits[0].is_head and p.flits[0].is_tail

    def test_invalidation_packet_shape(self):
        p = make_invalidation_packet(9, [0] * 6)
        assert len(p) == 7  # 1 header + 6 payload, as in the paper
        with pytest.raises(ValueError):
            make_invalidation_packet(9, [0] * 5)

    def test_switching_bits(self):
        assert switching_bits(0, ONES) == 64
        assert switching_bits(5, 5) == 0

    def test_coupling_fswa_is_max(self):
        assert coupling_factor(AAAA, FIVES) == pytest.approx(1.0)

    def test_coupling_fsw_is_zero(self):
        assert coupling_factor(ONES, 0) == 0.0
        assert coupling_factor(0, ONES) == 0.0

    def test_coupling_no_switching(self):
        assert coupling_factor(123, 123) == 0.0


class TestRouterRouting:
    def test_route_port_xy(self):
        r = Router(tile_id=12, x=2, y=2)
        assert r.route_port(4, 2) is Port.EAST
        assert r.route_port(0, 0) is Port.WEST  # X before Y
        assert r.route_port(2, 4) is Port.SOUTH
        assert r.route_port(2, 0) is Port.NORTH
        assert r.route_port(2, 2) is Port.LOCAL

    def test_is_turn(self):
        assert is_turn(Port.EAST, Port.SOUTH)
        assert not is_turn(Port.EAST, Port.WEST)
        assert not is_turn(Port.LOCAL, Port.EAST)

    def test_queue_capacity(self):
        r = Router(0, 0, 0)
        flit = Flit(payload=0, is_head=True, is_tail=True, dest=1)
        for _ in range(Router.INPUT_QUEUE_DEPTH):
            r.enqueue(Port.LOCAL, flit)
        assert not r.can_accept(Port.LOCAL)
        with pytest.raises(OverflowError):
            r.enqueue(Port.LOCAL, flit)


class TestMeshNetwork:
    def make(self):
        return MeshNetwork(PitonConfig(), EventLedger(), network_id=1)

    def deliver(self, mesh, dest, payloads=(1, 2)):
        packet = Packet.build(dest, list(payloads))
        mesh.inject(packet, 0)
        mesh.drain()
        return packet

    def test_delivery(self):
        mesh = self.make()
        packet = self.deliver(mesh, dest=24)
        assert packet.delivered_at is not None
        assert mesh.in_flight == 0

    def test_zero_hop_delivery(self):
        mesh = self.make()
        packet = self.deliver(mesh, dest=0)
        assert packet.latency is not None
        assert mesh.total_flit_hops == 0

    def test_hop_latency_linear(self):
        """One cycle per hop: latency grows ~1 cycle per extra hop."""
        latencies = {}
        for dest, hops in [(1, 1), (2, 2), (3, 3), (4, 4)]:
            mesh = self.make()
            packet = self.deliver(mesh, dest)
            latencies[hops] = packet.latency
        deltas = [
            latencies[h + 1] - latencies[h] for h in (1, 2, 3)
        ]
        assert all(d == 1 for d in deltas)

    def test_turn_costs_extra_cycle(self):
        straight = self.make()
        p_straight = self.deliver(straight, dest=2)  # 2 hops, no turn
        turned = self.make()
        p_turned = self.deliver(turned, dest=6)  # 2 hops with a turn
        assert p_turned.latency == p_straight.latency + 1

    def test_flit_hop_count(self):
        mesh = self.make()
        self.deliver(mesh, dest=4, payloads=[1, 2, 3])  # 4 flits x 4 hops
        assert mesh.total_flit_hops == 16
        assert mesh.ledger.count("noc1.flit_hop") == 16

    def test_switching_activity_recorded(self):
        mesh = self.make()
        packet = Packet.build(1, [ONES, 0, ONES, 0])
        mesh.inject(packet, 0)
        mesh.drain()
        # Full switching between consecutive payload flits.
        assert mesh.ledger.mean_activity("noc1.flit_hop") > 0.5

    def test_nsw_zero_wire_activity(self):
        mesh = self.make()
        # All-zero payloads to tile 1: only the header differs from 0.
        packet = Packet.build(1, [0, 0, 0, 0, 0, 0])
        mesh.inject(packet, 0)
        mesh.drain()
        assert mesh.ledger.mean_activity("noc1.flit_hop") < 0.05

    def test_multiple_packets_fifo_to_same_dest(self):
        mesh = self.make()
        p1 = Packet.build(5, [1])
        p2 = Packet.build(5, [2])
        mesh.inject(p1, 0)
        mesh.inject(p2, 0)
        mesh.drain()
        assert p1.delivered_at <= p2.delivered_at

    def test_wormhole_no_interleave(self):
        """Two packets from different sources to one destination must
        not interleave flits (wormhole locking)."""
        mesh = self.make()
        a = Packet.build(12, [1, 1, 1, 1])
        b = Packet.build(12, [2, 2, 2, 2])
        mesh.inject(a, 2)
        mesh.inject(b, 10)
        mesh.drain()
        assert len(mesh.delivered) == 2

    def test_drain_detects_stuck(self):
        mesh = self.make()
        with pytest.raises(RuntimeError):
            # Nothing injected, but force a bogus in-flight count by
            # injecting into a full queue scenario is hard; instead
            # check drain succeeds trivially.
            mesh.inject(Packet.build(1, [0]), 0)
            mesh.drain(max_cycles=1)


class TestMitts:
    def test_unlimited_passthrough(self):
        shaper = MittsShaper.unlimited()
        assert shaper.release_time(5) == 5
        assert shaper.release_time(6) == 6

    def test_credit_consumption(self):
        shaper = MittsShaper(
            [MittsBin(0, 2)], epoch_cycles=100
        )
        assert shaper.release_time(0) == 0
        assert shaper.release_time(1) == 1
        # Credits exhausted: next request waits for the epoch refill.
        assert shaper.release_time(2) == 100

    def test_longer_gap_uses_longer_bin(self):
        shaper = MittsShaper(
            [MittsBin(0, 0), MittsBin(50, 5)], epoch_cycles=1000
        )
        # Short-gap request must age into the 50-cycle bin.
        t0 = shaper.release_time(0)
        assert t0 == 0  # first request has no prior gap: longest bin
        t1 = shaper.release_time(10)
        assert t1 >= 50

    def test_increasing_bins_required(self):
        with pytest.raises(ValueError):
            MittsShaper([MittsBin(10, 1), MittsBin(5, 1)])

    def test_empty_bins_rejected(self):
        with pytest.raises(ValueError):
            MittsShaper([])

    def test_stall_accounting(self):
        shaper = MittsShaper([MittsBin(0, 1)], epoch_cycles=50)
        shaper.release_time(0)
        shaper.release_time(1)  # stalls to 50
        assert shaper.stalled_cycles_total >= 49
        assert shaper.requests == 2
