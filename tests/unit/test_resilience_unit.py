"""Unit coverage for the resilience layer: policies, the checkpoint
journal's framing and corruption handling, atomic writes, signal
plumbing, and the worker fault injectors."""

from __future__ import annotations

import os
import signal

import pytest

from repro.check.faults import (
    WORKER_FAULT_ENV,
    active_worker_fault,
    arm_worker_fault,
    disarm_worker_fault,
    inject_checkpoint_truncation,
)
from repro.experiments.context import RunContext, resolve_auto_jobs
from repro.resilience import (
    EXIT_RESUMABLE,
    CheckpointJournal,
    GridInterrupted,
    RetryPolicy,
    backoff_schedule,
    derive_deadline,
    journal_status,
    request_digest,
    resumable_signals,
)
from repro.util.io import atomic_write_bytes, atomic_write_text


# ------------------------------------------------------------------ policy
def test_backoff_first_attempt_is_free():
    assert backoff_schedule(0) == 0.0
    assert backoff_schedule(-3) == 0.0


def test_backoff_grows_geometrically_then_caps():
    waits = [
        backoff_schedule(n, base_s=0.25, factor=2.0, cap_s=5.0)
        for n in (1, 2, 3, 4, 5, 6, 20)
    ]
    assert waits == [0.25, 0.5, 1.0, 2.0, 4.0, 5.0, 5.0]


def test_derive_deadline_needs_observations():
    assert derive_deadline([]) is None


def test_derive_deadline_scales_slowest_point_with_floor():
    # 8x the slowest completed point, but never below the floor.
    assert derive_deadline([0.1, 2.0], floor_s=5.0, factor=8.0) == 16.0
    assert derive_deadline([0.01], floor_s=5.0, factor=8.0) == 5.0


def test_retry_policy_validates():
    with pytest.raises(ValueError, match="retries"):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError, match="deadline_s"):
        RetryPolicy(deadline_s=0.0)


def test_retry_policy_explicit_deadline_wins():
    policy = RetryPolicy(deadline_s=3.0)
    assert policy.deadline_for([100.0]) == 3.0
    adaptive = RetryPolicy()
    assert adaptive.deadline_for([]) is None
    assert adaptive.deadline_for([2.0]) == 16.0


# ----------------------------------------------------------------- journal
@pytest.fixture
def outcome_payload():
    return {"ledger": {"alu": 42}, "cycles": 1234}


def test_journal_roundtrip(tmp_path, outcome_payload):
    journal = CheckpointJournal(tmp_path / "j")
    digest = request_digest(("req", 0))
    journal.append(3, digest, outcome_payload)
    assert 3 in journal and len(journal) == 1
    assert journal.get(3, digest) == outcome_payload


def test_journal_digest_mismatch_is_a_miss(tmp_path, outcome_payload):
    journal = CheckpointJournal(tmp_path / "j")
    journal.append(0, request_digest("grid A"), outcome_payload)
    reopened = CheckpointJournal(tmp_path / "j", resume=True)
    # Same index from a different grid shape must never be served.
    assert reopened.get(0, request_digest("grid B")) is None
    assert reopened.get(0, request_digest("grid A")) == outcome_payload


def test_journal_fresh_open_resets(tmp_path, outcome_payload):
    path = tmp_path / "j"
    CheckpointJournal(path).append(
        0, request_digest("x"), outcome_payload
    )
    fresh = CheckpointJournal(path, resume=False)
    assert len(fresh) == 0
    assert not list(path.glob("point-*.seg"))


def test_journal_detects_truncated_segment(tmp_path, outcome_payload):
    path = tmp_path / "j"
    journal = CheckpointJournal(path)
    digests = [request_digest(("req", i)) for i in range(3)]
    for i, digest in enumerate(digests):
        journal.append(i, digest, outcome_payload)

    report = inject_checkpoint_truncation(path, drop_bytes=5)
    assert "point-000002.seg" in report.detail

    resumed = CheckpointJournal(path, resume=True)
    # Only the damaged tail is absent; intact points still serve.
    assert resumed.damaged == ["point-000002.seg"]
    assert resumed.get(0, digests[0]) == outcome_payload
    assert resumed.get(1, digests[1]) == outcome_payload
    assert resumed.get(2, digests[2]) is None


def test_journal_detects_corruption_after_scan(tmp_path, outcome_payload):
    path = tmp_path / "j"
    journal = CheckpointJournal(path)
    digest = request_digest("req")
    seg = journal.append(0, digest, outcome_payload)
    blob = bytearray(seg.read_bytes())
    blob[-1] ^= 0xFF  # flip a payload bit under the CRC
    seg.write_bytes(bytes(blob))
    assert journal.get(0, digest) is None  # CRC re-check on read
    assert journal.damaged == ["point-000000.seg"]


def test_journal_complete_removes_directory(tmp_path, outcome_payload):
    path = tmp_path / "j"
    journal = CheckpointJournal(path)
    journal.write_meta(experiment_id="fig13", points_expected=2)
    journal.append(0, request_digest("a"), outcome_payload)
    journal.complete()
    assert not path.exists()


def test_journal_sweeps_stale_temp_files(tmp_path):
    path = tmp_path / "j"
    path.mkdir()
    (path / ".tmp-stale").write_bytes(b"half a segment")
    CheckpointJournal(path, resume=True)
    assert not (path / ".tmp-stale").exists()


def test_journal_status_reports_counts(tmp_path, outcome_payload):
    path = tmp_path / "j"
    journal = CheckpointJournal(path)
    journal.write_meta(experiment_id="fig13", points_expected=5)
    for i in range(2):
        journal.append(i, request_digest(i), outcome_payload)
    status = journal_status(path)
    assert status.exists
    assert status.experiment_id == "fig13"
    assert (status.points, status.points_expected) == (2, 5)
    assert status.complete is False
    assert status.bytes > 0
    missing = journal_status(tmp_path / "nope")
    assert not missing.exists and missing.points == 0


def test_request_digest_stable_and_discriminating():
    req = {"tiles": [0, 1], "window": 4000}
    assert request_digest(req) == request_digest(
        {"tiles": [0, 1], "window": 4000}
    )
    assert request_digest(req) != request_digest(
        {"tiles": [0, 1], "window": 4001}
    )
    assert len(request_digest(req)) == 32


# ----------------------------------------------------------- atomic writes
def test_atomic_write_replaces_content(tmp_path):
    target = tmp_path / "out.json"
    target.write_text("old")
    atomic_write_text(target, "new")
    assert target.read_text() == "new"
    assert not list(tmp_path.glob(".*tmp*"))  # no temp litter


def test_atomic_write_ensure_newline(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "line", ensure_newline=True)
    assert target.read_text() == "line\n"


def test_atomic_write_failure_leaves_old_file(tmp_path, monkeypatch):
    target = tmp_path / "out.bin"
    target.write_bytes(b"old")

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        atomic_write_bytes(target, b"new")
    assert target.read_bytes() == b"old"
    assert not list(tmp_path.glob(".*tmp*"))


# -------------------------------------------------------------- RunContext
def test_run_context_jobs_zero_means_auto():
    ctx = RunContext(jobs=0)
    assert ctx.jobs == resolve_auto_jobs() >= 1


def test_run_context_validates_resilience_knobs():
    with pytest.raises(ValueError, match="retries"):
        RunContext(retries=-1)
    with pytest.raises(ValueError, match="deadline_s"):
        RunContext(deadline_s=-2.0)


def test_run_context_supervision_default_is_none(tmp_path):
    # The idle library default: serial, nothing journaled, no pool —
    # supervision must cost nothing.
    assert RunContext().supervision("fig13") is None


def test_run_context_supervision_wires_policy_and_journal(tmp_path):
    ctx = RunContext(
        jobs=2,
        retries=5,
        deadline_s=9.0,
        checkpoint_dir=str(tmp_path / "ckpt"),
    )
    sup = ctx.supervision("fig13")
    assert sup.policy.retries == 5
    assert sup.policy.deadline_s == 9.0
    assert sup.journal is not None
    assert sup.journal.path == tmp_path / "ckpt" / "fig13"
    assert sup.experiment_id == "fig13"
    sup.journal.complete()


def test_run_context_resume_uses_default_checkpoint_dir(
    tmp_path, monkeypatch
):
    monkeypatch.chdir(tmp_path)  # default dir is CWD-relative
    ctx = RunContext(resume=True)
    sup = ctx.supervision("fig11")
    assert sup is not None and sup.journal.resume
    sup.journal.complete()


# ------------------------------------------------------------ worker faults
@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv(WORKER_FAULT_ENV, raising=False)


def test_worker_fault_arm_parse_disarm():
    assert active_worker_fault() is None
    arm_worker_fault("worker_crash", point=7)
    assert os.environ[WORKER_FAULT_ENV] == "worker_crash:7"
    assert active_worker_fault() == ("worker_crash", 7)
    disarm_worker_fault()
    assert active_worker_fault() is None


def test_worker_fault_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown worker fault"):
        arm_worker_fault("coffee_spill")


def test_worker_fault_malformed_spec_raises(monkeypatch):
    monkeypatch.setenv(WORKER_FAULT_ENV, "worker_crash")
    with pytest.raises(ValueError, match="malformed"):
        active_worker_fault()
    monkeypatch.setenv(WORKER_FAULT_ENV, "segfault:1")
    with pytest.raises(ValueError, match="unknown worker fault kind"):
        active_worker_fault()


def test_checkpoint_truncation_requires_segments(tmp_path):
    with pytest.raises(RuntimeError, match="no checkpoint segments"):
        inject_checkpoint_truncation(tmp_path)


# ---------------------------------------------------------------- signals
def test_exit_resumable_is_ex_tempfail():
    assert EXIT_RESUMABLE == 75


def test_grid_interrupted_is_a_keyboard_interrupt():
    # Pre-existing `except KeyboardInterrupt` cleanup must keep firing.
    assert issubclass(GridInterrupted, KeyboardInterrupt)
    assert GridInterrupted(signal.SIGTERM).signum == signal.SIGTERM


def test_resumable_signals_raise_and_restore():
    before = signal.getsignal(signal.SIGINT)
    with resumable_signals():
        with pytest.raises(GridInterrupted) as exc_info:
            os.kill(os.getpid(), signal.SIGINT)
        assert exc_info.value.signum == signal.SIGINT
    assert signal.getsignal(signal.SIGINT) is before
