"""Unit tests for repro.sweepspec: the shared grid enumerators and
the JSON-round-trippable SweepSpec request document.

The grid helpers' enumeration *order* is load-bearing — measurements
replay serially in grid order and the goldens pin the historical
nested-loop order — so these tests assert exact sequences, not sets.
"""

from __future__ import annotations

import json

import pytest

from repro.sweepspec import (
    SWEEPSPEC_SCHEMA_VERSION,
    SpecError,
    SweepSpec,
    describe_spec,
    expand_grid,
    grid_product,
    linspace,
    load_spec,
)


# --------------------------------------------------------------- grid helpers
class TestGridProduct:
    def test_last_axis_fastest(self):
        cells = grid_product(a=(1, 2), b=("x", "y"))
        assert cells == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_matches_nested_loop_order(self):
        """The lift contract: identical to `for a: for b: for c:`."""
        axes = {"a": (1, 2, 3), "b": (10, 20), "c": ("p", "q")}
        nested = [
            {"a": a, "b": b, "c": c}
            for a in axes["a"]
            for b in axes["b"]
            for c in axes["c"]
        ]
        assert grid_product(**axes) == nested

    def test_where_filters_preserving_order(self):
        cells = grid_product(
            where=lambda c: c["n"] % c["d"] == 0,
            n=(2, 3, 4),
            d=(1, 2),
        )
        assert cells == [
            {"n": 2, "d": 1},
            {"n": 2, "d": 2},
            {"n": 3, "d": 1},
            {"n": 4, "d": 1},
            {"n": 4, "d": 2},
        ]

    def test_no_axes_single_empty_cell(self):
        assert grid_product() == [{}]

    def test_empty_axis_empty_grid(self):
        assert grid_product(a=(), b=(1, 2)) == []


class TestExpandGrid:
    def test_inner_depends_on_outer(self):
        pairs = expand_grid(
            ("add", "nop"),
            lambda n: ("min", "max") if n == "add" else ("rnd",),
        )
        assert pairs == [
            ("add", "min"),
            ("add", "max"),
            ("nop", "rnd"),
        ]

    def test_consumes_generators_once(self):
        pairs = expand_grid((c for c in "ab"), lambda c: range(2))
        assert pairs == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]


class TestLinspace:
    def test_inclusive_endpoints(self):
        values = linspace(0.9, 1.1, 3)
        assert values[0] == pytest.approx(0.9)
        assert values[-1] == pytest.approx(1.1)
        assert len(values) == 3

    def test_count_below_two_collapses_to_lo(self):
        # Historical CLI axis behavior; specs built from flags must
        # match old grids exactly.
        assert linspace(200.0, 850.0, 1) == (200.0,)
        assert linspace(200.0, 850.0, 0) == (200.0,)


# ------------------------------------------------------------------- the spec
class TestSweepSpecValidation:
    def test_unknown_workload_names_known_ones(self):
        with pytest.raises(SpecError) as exc:
            SweepSpec(workload="nope")
        assert exc.value.spec_field == "workload"
        assert "mem_l2" in (exc.value.hint or "")

    def test_unknown_persona_rejected(self):
        with pytest.raises(SpecError) as exc:
            SweepSpec(workload="mem_l2", personas=("chip9",))
        assert exc.value.spec_field == "personas"
        assert "chip9" in str(exc.value)

    def test_empty_personas_rejected(self):
        with pytest.raises(SpecError, match="no personas"):
            SweepSpec(workload="mem_l2", personas=())

    def test_non_numeric_axis_rejected(self):
        with pytest.raises(SpecError) as exc:
            SweepSpec(workload="mem_l2", vdd=(0.9, "high"))
        assert exc.value.spec_field == "vdd"
        assert "element 1" in str(exc.value)

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="axis is empty"):
            SweepSpec(workload="mem_l2", freq_mhz=())

    def test_implausible_values_rejected_with_units_hint(self):
        with pytest.raises(SpecError, match="volts / MHz"):
            SweepSpec(workload="mem_l2", vdd=(5.0,))
        with pytest.raises(SpecError, match="plausible range"):
            SweepSpec(workload="mem_l2", freq_mhz=(1e6,))

    def test_non_finite_rejected(self):
        with pytest.raises(SpecError, match="not finite"):
            SweepSpec(workload="mem_l2", vdd=(float("nan"),))


class TestSweepSpecIdentity:
    def test_point_order_personas_vdd_freq(self):
        spec = SweepSpec(
            workload="mem_l2",
            personas=("chip1", "chip2"),
            vdd=(0.9, 1.0),
            freq_mhz=(200.0, 500.0),
        )
        points = spec.points()
        assert len(points) == spec.n_points == 8
        # Frequency is the fastest axis, personas the slowest.
        freqs = [p.freq_hz for p in points]
        assert freqs[:2] == [200e6, 500e6]
        vdds = [p.vdd for p in points]
        assert vdds[:4] == [0.9, 0.9, 1.0, 1.0]

    def test_digest_stable_and_field_sensitive(self):
        a = SweepSpec(workload="mem_l2", quick=True)
        b = SweepSpec(workload="mem_l2", quick=True)
        c = SweepSpec(workload="mem_l2", quick=False)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
        assert len(a.digest()) == 64

    def test_request_digests_stable_across_instances(self):
        spec = SweepSpec(
            workload="mem_l2", vdd=(0.9,), freq_mhz=(500.0,), quick=True
        )
        again = SweepSpec.from_dict(spec.to_dict())
        assert spec.request_digests() == again.request_digests()

    def test_experiment_id_matches_cli_journal_id(self):
        assert SweepSpec(workload="mem_l2").experiment_id == "sweep-mem_l2"


class TestSweepSpecSerialization:
    def test_round_trip(self):
        spec = SweepSpec(
            workload="mem_l2",
            personas=("chip3",),
            vdd=(0.95, 1.05),
            freq_mhz=(300.0,),
            quick=True,
        )
        restored = SweepSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest() == spec.digest()

    def test_missing_schema_version_rejected_with_hint(self):
        with pytest.raises(SpecError) as exc:
            SweepSpec.from_dict({"workload": "mem_l2"})
        assert exc.value.spec_field == "schema_version"
        assert str(SWEEPSPEC_SCHEMA_VERSION) in (exc.value.hint or "")

    def test_unsupported_version_rejected(self):
        with pytest.raises(SpecError, match="unsupported version"):
            SweepSpec.from_dict(
                {"schema_version": 99, "workload": "mem_l2"}
            )

    def test_unknown_field_named_with_allowed_list(self):
        with pytest.raises(SpecError) as exc:
            SweepSpec.from_dict(
                {
                    "schema_version": SWEEPSPEC_SCHEMA_VERSION,
                    "workload": "mem_l2",
                    "voltage": [0.9],
                }
            )
        assert exc.value.spec_field == "voltage"
        assert "freq_mhz" in (exc.value.hint or "")

    def test_missing_workload_rejected(self):
        with pytest.raises(SpecError, match="workload"):
            SweepSpec.from_dict(
                {"schema_version": SWEEPSPEC_SCHEMA_VERSION}
            )

    def test_bare_string_persona_promoted(self):
        spec = SweepSpec.from_dict(
            {
                "schema_version": SWEEPSPEC_SCHEMA_VERSION,
                "workload": "mem_l2",
                "personas": "chip1",
            }
        )
        assert spec.personas == ("chip1",)

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            SweepSpec.from_json("{nope")

    def test_non_object_document_rejected(self):
        with pytest.raises(SpecError, match="expected a JSON object"):
            SweepSpec.from_dict([1, 2])


class TestFromRanges:
    def test_matches_historical_cli_axes(self):
        spec = SweepSpec.from_ranges("mem_l2")
        assert spec.personas == ("chip2",)
        assert spec.vdd == pytest.approx((0.9, 1.0, 1.1))
        assert len(spec.freq_mhz) == 5
        assert spec.freq_mhz[0] == pytest.approx(200.0)
        assert spec.freq_mhz[-1] == pytest.approx(850.0)

    def test_single_point_axes(self):
        spec = SweepSpec.from_ranges(
            "mem_l2", vdd_points=1, freq_points=1
        )
        assert spec.n_points == 1


class TestLoadSpec:
    def test_loads_valid_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(SweepSpec(workload="mem_l2").to_json())
        assert load_spec(str(path)).workload == "mem_l2"

    def test_missing_file_is_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="no such spec file"):
            load_spec(str(tmp_path / "absent.json"))


class TestDescribeSpec:
    def test_mentions_the_load_bearing_facts(self):
        spec = SweepSpec(workload="mem_l2", quick=True)
        text = describe_spec(spec)
        assert "mem_l2" in text
        assert spec.digest() in text
        assert str(spec.n_points) in text
        assert spec.experiment_id in text
