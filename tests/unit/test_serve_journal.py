"""Unit coverage for the daemon's hardening layers.

The durable job journal (CRC framing, atomic updates, quarantine of
torn records), the per-client token-bucket rate limiter (injectable
clock, no sleeps), and the CAS lifecycle operations (stats, LRU gc,
scrub quarantine) — each exercised in isolation, with the fault
injectors proving the failure paths actually engage.
"""

from __future__ import annotations

import pytest

from repro.check.faults import (
    SERVE_FAULT_ENV,
    active_serve_fault,
    arm_serve_fault,
    disarm_serve_fault,
    inject_job_journal_truncation,
)
from repro.serve.cas import ResultCache
from repro.serve.journal import JobJournal, RECOVERABLE_STATES
from repro.serve.ratelimit import RateLimiter, TokenBucket


# ------------------------------------------------------------- job journal
class TestJobJournal:
    def test_record_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("run", "abc123", "accepted", {"params": {"x": 1}})
        rec = journal.get("run", "abc123")
        assert rec is not None
        assert rec.kind == "run"
        assert rec.state == "accepted"
        assert rec.request == {"params": {"x": 1}}
        assert len(journal) == 1

    def test_update_preserves_created_at(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("run", "abc", "accepted", {"params": {}})
        first = journal.get("run", "abc")
        journal.record("run", "abc", "running", {"params": {}})
        second = journal.get("run", "abc")
        assert second.state == "running"
        assert second.created_at == first.created_at
        assert len(journal) == 1  # same identity, same record

    def test_terminal_states_are_unjournalable(self, tmp_path):
        journal = JobJournal(tmp_path)
        with pytest.raises(ValueError, match="retired"):
            journal.record("run", "abc", "done", {})

    def test_retire_forgets(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("sweep", "d1", "running", {"spec": {}})
        journal.retire("sweep", "d1")
        assert journal.get("sweep", "d1") is None
        assert len(journal) == 0

    def test_scan_orders_by_created_at(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("run", "first", "accepted", {})
        journal.record("run", "second", "running", {})
        records, damaged = journal.scan()
        assert [r.digest for r in records] == ["first", "second"]
        assert damaged == []
        assert all(r.state in RECOVERABLE_STATES for r in records)

    def test_truncated_record_is_quarantined_not_fatal(self, tmp_path):
        """The torn-tail injector must cost one job, not the scan."""
        journal = JobJournal(tmp_path)
        journal.record("run", "good", "accepted", {"params": {}})
        journal.record("run", "torn", "running", {"params": {}})
        report = inject_job_journal_truncation(tmp_path, drop_bytes=7)
        assert "truncated" in report.detail
        records, damaged = journal.scan()
        assert [r.digest for r in records] == ["good"]
        assert len(damaged) == 1
        # Quarantined aside, inspectable, never rescanned.
        assert len(list(tmp_path.glob("*.damaged"))) == 1
        again, damaged_again = journal.scan()
        assert len(again) == 1 and damaged_again == []

    def test_mark_interrupted_keeps_the_record(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("sweep", "d2", "running", {"spec": {"a": 1}})
        journal.mark_interrupted("sweep", "d2")
        rec = journal.get("sweep", "d2")
        assert rec.state == "interrupted"
        assert rec.request == {"spec": {"a": 1}}
        records, _ = journal.scan()
        assert len(records) == 1  # still recoverable

    def test_stale_temp_files_swept_on_open(self, tmp_path):
        (tmp_path / ".tmp-orphan").write_bytes(b"half a record")
        JobJournal(tmp_path)
        assert not list(tmp_path.glob(".tmp-*"))


# ------------------------------------------------------------- rate limiting
class TestTokenBucket:
    def test_burst_then_refusal_with_honest_wait(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)  # one token at 1/s

    def test_refill_is_elapsed_time_not_polling(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        now[0] += 0.5  # exactly one token at 2/s
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: now[0])
        now[0] += 100.0  # idle forever != unlimited burst
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0


class TestRateLimiter:
    def test_disabled_by_default(self):
        limiter = RateLimiter()
        assert not limiter.enabled
        assert limiter.check("anyone") == 0.0

    def test_clients_have_independent_buckets(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert limiter.check("alice") == 0.0
        assert limiter.check("alice") > 0.0  # alice exhausted
        assert limiter.check("bob") == 0.0  # bob untouched

    def test_bucket_count_is_bounded(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: now[0])
        for i in range(limiter.MAX_CLIENTS + 10):
            now[0] += 0.001  # distinct staleness per bucket
            limiter.check(f"client-{i}")
        assert len(limiter._buckets) <= limiter.MAX_CLIENTS


# ------------------------------------------------------------ fault arming
class TestServeFaultArming:
    def test_arm_roundtrip(self, monkeypatch):
        monkeypatch.delenv(SERVE_FAULT_ENV, raising=False)
        arm_serve_fault("task_delay", 0.25)
        try:
            assert active_serve_fault() == ("task_delay", 0.25)
        finally:
            disarm_serve_fault()
        assert active_serve_fault() is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown serve fault"):
            arm_serve_fault("meteor_strike")

    def test_malformed_spec_raises_loudly(self, monkeypatch):
        monkeypatch.setenv(SERVE_FAULT_ENV, "task_delay")
        with pytest.raises(ValueError, match="malformed"):
            active_serve_fault()


# ------------------------------------------------------------ cas lifecycle
def _fill(cache: ResultCache, n: int, size: int = 64) -> list[str]:
    keys = []
    for i in range(n):
        key = f"{i:02x}" * 32
        cache.put("point", key, bytes([i % 251]) * size)
        keys.append(key)
    return keys


class TestCasLifecycle:
    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3, size=100)
        stats = cache.stats()
        assert stats["entries"] == 3
        # Each frame: 6B magic + 21B header + 100B payload.
        assert stats["bytes"] == 3 * (6 + 21 + 100)

    def test_gc_evicts_least_recently_used_first(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        keys = _fill(cache, 4, size=100)
        # Make LRU order unambiguous without sleeping.
        for rank, key in enumerate(keys):
            path = cache._entry_path("point", key)
            os.utime(path, (1000.0 + rank, 1000.0 + rank))
        # Touch the oldest via a hit: it must survive the gc.
        cache.lookup("point", keys[0])
        one_entry = 6 + 21 + 100
        evicted = cache.gc(quota_bytes=2 * one_entry)
        assert evicted == 2
        assert cache.get("point", keys[0]) is not None  # touched
        assert cache.get("point", keys[1]) is None  # coldest, gone
        assert cache.get("point", keys[2]) is None
        assert cache.get("point", keys[3]) is not None
        assert cache.evictions == 2
        assert cache.stats()["entries"] == 2

    def test_gc_under_quota_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 2)
        assert cache.gc(quota_bytes=1 << 30) == 0
        assert cache.stats()["entries"] == 2

    def test_scrub_quarantines_torn_frames(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill(cache, 3)
        victim = cache._entry_path("point", keys[1])
        blob = victim.read_bytes()
        victim.write_bytes(blob[:-5])  # torn tail
        assert cache.scrub() == 1
        assert cache.scrub_repairs == 1
        # Gone from the read path, preserved for inspection.
        assert cache.get("point", keys[1]) is None
        quarantined = list(
            (tmp_path / ResultCache.QUARANTINE_DIR).glob("*.damaged")
        )
        assert len(quarantined) == 1
        # The other entries are untouched and a rescrub finds nothing.
        assert cache.get("point", keys[0]) is not None
        assert cache.scrub() == 0

    def test_lookup_counts_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill(cache, 1)
        assert cache.lookup("point", keys[0]) is not None
        assert cache.lookup("point", "ff" * 32) is None
        assert cache.hits == 1
        assert cache.misses == 1
