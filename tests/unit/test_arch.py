"""Unit tests for repro.arch: parameters, area database, floorplan."""

from __future__ import annotations

import pytest

from repro.arch.area import AreaBreakdown, CHIP_AREA, CORE_AREA, TILE_AREA
from repro.arch.floorplan import Floorplan, TileCoord
from repro.arch.params import CacheParams, PitonConfig


class TestCacheParams:
    def test_table1_l1d(self):
        l1d = PitonConfig().l1d
        assert l1d.size_bytes == 8 * 1024
        assert l1d.associativity == 4
        assert l1d.line_bytes == 16
        assert l1d.num_sets == 128

    def test_table1_l2(self):
        l2 = PitonConfig().l2_slice
        assert l2.num_sets == 256
        assert l2.num_lines == 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheParams(1000, 3, 16)  # not divisible

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            CacheParams(0, 4, 16)


class TestPitonConfig:
    def test_table1_totals(self, config):
        assert config.tile_count == 25
        assert config.total_threads == 50
        assert config.l2_total_bytes == 25 * 64 * 1024
        assert config.max_hops == 8

    def test_with_mesh(self, config):
        big = config.with_mesh(8, 8)
        assert big.tile_count == 64
        assert big.l1d == config.l1d

    def test_invalid_mesh(self):
        with pytest.raises(ValueError):
            PitonConfig(mesh_width=0)

    def test_clock_defaults(self, config):
        assert config.clocks.dram_phy_hz == pytest.approx(800e6)
        assert config.clocks.uart_baud == 115_200


class TestAreaBreakdown:
    def setup_method(self):
        self.area = AreaBreakdown()

    def test_totals_match_figure8(self):
        assert self.area.total_mm2("chip") == CHIP_AREA == 35.97552
        assert self.area.total_mm2("tile") == TILE_AREA == 1.17459
        assert self.area.total_mm2("core") == CORE_AREA == 0.55205

    @pytest.mark.parametrize("level", ["chip", "tile", "core"])
    def test_percentages_sum_to_100(self, level):
        assert self.area.percent_sum(level) == pytest.approx(100.0, abs=0.1)

    def test_core_share_of_tile(self):
        assert self.area.entries("tile")["core"].percent == 47.00

    def test_block_mm2(self):
        l2 = self.area.block_mm2("tile", "l2_cache")
        assert l2 == pytest.approx(1.17459 * 0.2216, rel=1e-6)

    def test_unknown_block(self):
        with pytest.raises(KeyError, match="no block"):
            self.area.block_mm2("tile", "gpu")

    def test_unknown_level(self):
        with pytest.raises(KeyError, match="unknown level"):
            self.area.total_mm2("rack")

    @pytest.mark.parametrize("level", ["chip", "tile", "core"])
    def test_sram_plus_logic_is_active(self, level):
        total = self.area.active_mm2(level)
        assert self.area.sram_mm2(level) + self.area.logic_mm2(
            level
        ) == pytest.approx(total)
        assert 0 < total < self.area.total_mm2(level)

    def test_filler_excluded_from_active(self):
        active = self.area.active_mm2("tile")
        filler = self.area.block_mm2("tile", "filler")
        assert active + filler < TILE_AREA


class TestFloorplan:
    def setup_method(self):
        self.fp = Floorplan()

    def test_row_major_numbering(self):
        assert self.fp.coord_of(0) == TileCoord(0, 0)
        assert self.fp.coord_of(4) == TileCoord(4, 0)
        assert self.fp.coord_of(24) == TileCoord(4, 4)
        assert self.fp.tile_id_of(TileCoord(2, 3)) == 17

    def test_coord_round_trip(self):
        for tile in self.fp.all_tiles():
            assert self.fp.tile_id_of(self.fp.coord_of(tile)) == tile

    def test_hops(self):
        assert self.fp.hops(0, 0) == 0
        assert self.fp.hops(0, 4) == 4
        assert self.fp.hops(0, 24) == 8
        assert self.fp.hops(12, 12) == 0

    def test_turns(self):
        assert not self.fp.has_turn(0, 4)  # pure X
        assert not self.fp.has_turn(0, 20)  # pure Y
        assert self.fp.has_turn(0, 24)

    def test_route_dimension_ordered(self):
        route = self.fp.route(0, 24)
        assert route[0] == 0 and route[-1] == 24
        assert route == [0, 1, 2, 3, 4, 9, 14, 19, 24]

    def test_route_length(self):
        for src, dst in [(0, 24), (7, 13), (20, 4)]:
            assert len(self.fp.route(src, dst)) == self.fp.hops(src, dst) + 1

    def test_wire_length_uses_pitch(self):
        mm = self.fp.wire_length_mm(0, 1)
        assert mm == pytest.approx(1.14452)
        mm_y = self.fp.wire_length_mm(0, 5)
        assert mm_y == pytest.approx(1.053)

    def test_tile_at_hops_paper_examples(self):
        # Paper: tile1 = 1 hop, tile2 = 2 hops, tile9 = 5 hops from 0.
        assert self.fp.tile_at_hops(0, 1) == 1
        assert self.fp.tile_at_hops(0, 2) == 2
        assert self.fp.hops(0, self.fp.tile_at_hops(0, 5)) == 5
        assert self.fp.hops(0, self.fp.tile_at_hops(0, 8)) == 8

    def test_tile_at_hops_unreachable(self):
        with pytest.raises(ValueError):
            self.fp.tile_at_hops(12, 8)  # centre: max 4 hops

    def test_max_hops_from(self):
        assert self.fp.max_hops_from(0) == 8
        assert self.fp.max_hops_from(12) == 4
        assert self.fp.max_hops_from(2) == 6

    def test_neighbors(self):
        assert sorted(self.fp.neighbors(0)) == [1, 5]
        assert sorted(self.fp.neighbors(12)) == [7, 11, 13, 17]

    def test_bad_tile(self):
        with pytest.raises(ValueError):
            self.fp.coord_of(25)
