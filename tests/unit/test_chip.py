"""Unit tests for repro.chip: chip bridge, DRAM, off-chip path, chipset."""

from __future__ import annotations

import pytest

from repro.arch.params import PitonConfig
from repro.chip.chipbridge import ChipBridge, FRAMING_EFFICIENCY
from repro.chip.chipset import Chipset, default_io_devices
from repro.chip.dram import DdrTimings, DramModel
from repro.chip.offchip import (
    FIG15_SEGMENTS,
    ONCHIP_MISS_OVERHEAD,
    OffChipPath,
    fig15_total_cycles,
)
from repro.util.events import EventLedger


class TestChipBridge:
    def test_raw_bandwidth(self):
        bridge = ChipBridge()
        assert bridge.link_bits_per_second == 32 * 180e6

    def test_paper_traffic_pattern(self):
        """At 500.05 MHz the bridge admits 7 flits per 47 cycles."""
        pattern = ChipBridge().traffic_pattern(500.05e6)
        assert (pattern.valid_flits, pattern.period_cycles) == (7, 47)

    def test_rate_scales_with_core_clock(self):
        bridge = ChipBridge()
        slow = bridge.inbound_flits_per_core_cycle(250e6)
        fast = bridge.inbound_flits_per_core_cycle(500e6)
        assert slow == pytest.approx(2 * fast)

    def test_transfer_records_beats(self):
        ledger = EventLedger()
        bridge = ChipBridge(ledger=ledger)
        bridge.transfer_flits(7)
        # 7 flits x 2 beats + framing overhead.
        assert ledger.count("io.beat") == pytest.approx(
            14 / FRAMING_EFFICIENCY, rel=1e-6
        )
        assert ledger.count("chipbridge.flit") == 7

    def test_negative_flits_rejected(self):
        with pytest.raises(ValueError):
            ChipBridge().transfer_flits(-1)


class TestDdrTimings:
    def test_effective_nanoseconds(self):
        """12 cycles at 800 MHz = 15 ns: exactly the T2000's DDR2
        timings, the paper's Table VIII point."""
        t = DdrTimings()
        assert t.cl * t.ns_per_cycle == pytest.approx(15.0)

    def test_burst_bytes(self):
        assert DdrTimings().burst_bytes() == 32  # 32-bit x BL8

    def test_row_miss_slower_than_hit(self):
        t = DdrTimings()
        assert t.row_miss_ns() > t.row_hit_ns()


class TestDramModel:
    def test_open_row_hit(self):
        dram = DramModel()
        done1 = dram.access_ns(0x0, 0.0)
        done2 = dram.access_ns(0x20, done1)  # same row
        assert dram.stats_row_hits == 1
        assert done2 - done1 < done1  # hit faster than cold miss

    def test_row_conflict(self):
        dram = DramModel(row_bytes=4096)
        dram.access_ns(0x0, 0.0)
        dram.access_ns(8 * 4096, 1000.0)  # same bank (8 banks), new row
        assert dram.stats_row_misses == 2

    def test_queueing(self):
        dram = DramModel()
        done1 = dram.access_ns(0x0, 0.0)
        # Second request arrives while channel busy: waits.
        done2 = dram.access_ns(1 << 20, 0.0)
        assert done2 > done1

    def test_line_access_two_bursts(self):
        """64B lines on a 32-bit bus need two bursts (Table VIII)."""
        dram = DramModel()
        dram.line_access_ns(0x0, 0.0, line_bytes=64)
        assert dram.stats_bursts == 2

    def test_refresh_interferes(self):
        dram = DramModel()
        before = dram.ledger.count("dram.refresh")
        dram.access_ns(0x0, 10_000.0)  # past tREFI
        assert dram.ledger.count("dram.refresh") == before + 1


class TestOffChipPath:
    def test_fig15_total_near_395(self):
        assert fig15_total_cycles() == 395

    def test_segments_have_both_directions(self):
        directions = {s.direction for s in FIG15_SEGMENTS}
        assert directions == {"request", "response", "both"}

    def test_onchip_overhead(self):
        # 28 + 17 tile-array cycles vs the 34-cycle hit path.
        assert ONCHIP_MISS_OVERHEAD == 11

    def test_call_returns_reasonable_cycles(self):
        path = OffChipPath()
        cycles = path(0x0, False, 0)
        # Within a sane band around (395 - 34) for a cold miss.
        assert 300 <= cycles <= 450

    def test_queueing_under_load(self):
        path = OffChipPath()
        first = path(0x0, False, 0)
        # Ten simultaneous misses pile up at the channel.
        last = max(path((1 + i) << 20, False, 0) for i in range(10))
        assert last > first

    def test_records_io_beats(self):
        ledger = EventLedger()
        path = OffChipPath(ledger=ledger)
        path(0x0, False, 0)
        assert ledger.count("io.beat") > 0
        assert ledger.count("chipset.request") == 1

    def test_core_clock_validation(self):
        with pytest.raises(ValueError):
            OffChipPath().set_core_clock(0)


class TestChipset:
    def test_io_devices(self):
        devices = default_io_devices()
        assert devices["uart"].bandwidth_bytes_per_s == pytest.approx(
            11_520
        )
        assert devices["sd"].bandwidth_bytes_per_s == pytest.approx(2.5e6)

    def test_io_transfer_time(self):
        chipset = Chipset()
        t = chipset.io_transfer_s("sd", 1024 * 1024)
        assert t > 0.4  # ~1MB over ~2.5MB/s

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device"):
            Chipset().io_transfer_s("floppy", 1)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            Chipset().io_transfer_s("sd", -1)

    def test_memory_request_routing(self):
        chipset = Chipset()
        chipset.route_memory_request()
        assert chipset.requests_routed == 1

    def test_dram_size(self):
        assert Chipset().dram_bytes == 1 << 30

    def test_config_defaults(self):
        assert Chipset(PitonConfig()).config.tile_count == 25
