"""Coarse performance floor for the simulator's hot loop.

The issue loop is the repo's main cost center; the experiments in
EXPERIMENTS.md are only practical because it sustains a healthy
simulated-instructions-per-second rate. This smoke test runs a fixed
~100k-instruction multicore workload and asserts a deliberately
generous floor — an order of magnitude below current throughput — so
it only trips on a genuine hot-loop regression (e.g. reintroducing
per-event ledger hashing or per-cycle opcode lookups), never on CI
machine jitter.
"""

from __future__ import annotations

import time

from repro.system import PitonSystem
from repro.workloads.base import TileProgram
from repro.workloads.microbench import PATTERN_A, PATTERN_B, int_program

#: Simulated instructions per wall-clock second the hot loop must beat.
#: Current throughput is well above 500k/s on commodity hardware.
MIN_INSTRUCTIONS_PER_SECOND = 50_000


def test_hot_loop_throughput_floor():
    # 4 cores x 2 threads x ~13k instructions each ~= 100k instructions
    # of the Int microbenchmark (ALU-heavy, store-buffer active).
    iterations = 1_600
    tile = TileProgram(
        programs=[int_program(iterations), int_program(iterations)],
        init_regs={8: PATTERN_A, 9: PATTERN_B, 31: 1},
    )
    system = PitonSystem.default(seed=0)

    start = time.perf_counter()
    run = system.run_to_completion({t: tile for t in range(4)})
    elapsed = time.perf_counter() - start

    assert run.result.completed
    assert run.result.instructions >= 100_000
    ips = run.result.instructions / elapsed
    assert ips >= MIN_INSTRUCTIONS_PER_SECOND, (
        f"hot loop regressed: {ips:,.0f} simulated instr/s "
        f"(floor {MIN_INSTRUCTIONS_PER_SECOND:,})"
    )
