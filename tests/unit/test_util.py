"""Unit tests for repro.util: units, rng, stats, events, tables."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.util.events import EventLedger, NullLedger
from repro.util.rng import RngFactory
from repro.util.stats import Measurement, mean_std
from repro.util.tables import render_table
from repro.util.units import MHZ, MW, PJ, from_unit, to_unit


class TestUnits:
    def test_round_trip(self):
        assert to_unit(from_unit(389.3, "mW"), "mW") == pytest.approx(389.3)

    def test_constants(self):
        assert from_unit(1.0, "MHz") == MHZ
        assert from_unit(1.0, "mW") == MW
        assert from_unit(1.0, "pJ") == PJ

    def test_mhz(self):
        assert from_unit(500.05, "MHz") == pytest.approx(500.05e6)

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError, match="unknown unit"):
            to_unit(1.0, "furlongs")
        with pytest.raises(ValueError, match="unknown unit"):
            from_unit(1.0, "parsec")


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).stream("x").normal(size=5)
        b = RngFactory(7).stream("x").normal(size=5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        rngs = RngFactory(7)
        a = rngs.stream("a").normal(size=5)
        b = rngs.stream("b").normal(size=5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        rngs = RngFactory(0)
        assert rngs.stream("x") is rngs.stream("x")

    def test_fresh_resets_position(self):
        rngs = RngFactory(0)
        first = rngs.fresh("x").normal()
        rngs.fresh("x").normal()
        assert rngs.fresh("x").normal() == first

    def test_child_differs_from_parent(self):
        parent = RngFactory(3)
        child = parent.child("sub")
        assert parent.stream("x").normal() != child.stream("x").normal()


class TestMeasurement:
    def test_from_samples(self):
        m = Measurement.from_samples([1.0, 2.0, 3.0])
        assert m.value == pytest.approx(2.0)
        assert m.sigma == pytest.approx(np.std([1, 2, 3]))

    def test_mean_std_empty_raises(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_subtraction_propagates_error(self):
        a = Measurement(10.0, 3.0)
        b = Measurement(4.0, 4.0)
        d = a - b
        assert d.value == pytest.approx(6.0)
        assert d.sigma == pytest.approx(5.0)  # 3-4-5 triangle

    def test_scaling(self):
        m = Measurement(2.0, 0.5) * 4.0
        assert (m.value, m.sigma) == (8.0, 2.0)

    def test_division(self):
        m = Measurement(8.0, 2.0) / 4.0
        assert (m.value, m.sigma) == (2.0, 0.5)

    def test_add_scalar(self):
        m = Measurement(1.0, 0.1) + 2.0
        assert m.value == 3.0
        assert m.sigma == 0.1

    def test_format(self):
        assert Measurement(0.3893, 0.0015).format(1e-3, 1) == "389.3±1.5"

    def test_rsub(self):
        m = 10.0 - Measurement(4.0, 1.0)
        assert m.value == 6.0

    def test_neg(self):
        m = -Measurement(5.0, 1.0)
        assert m.value == -5.0
        assert m.sigma == 1.0


class TestEventLedger:
    def test_record_and_count(self, ledger):
        ledger.record("x", 3)
        ledger.record("x", 2)
        assert ledger.count("x") == 5

    def test_mean_activity(self, ledger):
        ledger.record("x", 1, activity=0.0)
        ledger.record("x", 1, activity=1.0)
        assert ledger.mean_activity("x") == pytest.approx(0.5)

    def test_default_activity(self, ledger):
        ledger.record("x")
        assert ledger.mean_activity("x") == EventLedger.DEFAULT_ACTIVITY

    def test_unrecorded_activity_default(self, ledger):
        assert ledger.mean_activity("never") == 0.5

    def test_negative_count_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.record("x", -1)

    def test_activity_bounds(self, ledger):
        with pytest.raises(ValueError):
            ledger.record("x", 1, activity=1.5)

    def test_merge(self):
        a, b = EventLedger(), EventLedger()
        a.record("x", 2, activity=0.0)
        b.record("x", 2, activity=1.0)
        a.merge(b)
        assert a.count("x") == 4
        assert a.mean_activity("x") == pytest.approx(0.5)

    def test_scaled(self, ledger):
        ledger.record("x", 2, activity=0.25)
        doubled = ledger.scaled(2.0)
        assert doubled.count("x") == 4
        assert doubled.mean_activity("x") == pytest.approx(0.25)

    def test_scaled_negative_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.scaled(-1.0)

    def test_null_ledger_discards(self):
        null = NullLedger()
        null.record("x", 100)
        assert null.count("x") == 0

    def test_clear(self, ledger):
        ledger.record("x")
        ledger.clear()
        assert ledger.count("x") == 0


class TestRenderTable:
    def test_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["xyz", 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "xyz" in out

    def test_title(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = render_table(["v"], [[math.pi]])
        assert "3.142" in out
