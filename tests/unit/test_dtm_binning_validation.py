"""Unit tests for DTM governors, speed binning, and the calibration
validator."""

from __future__ import annotations

import pytest

from repro.power.validation import AnchorCheck, render_report
from repro.silicon.binning import (
    DEFAULT_BINS,
    BinningReport,
    SpeedBin,
    SpeedBinner,
)
from repro.thermal.cooling import STOCK_HEATSINK_FAN
from repro.thermal.dtm import PowerCapGovernor, ThermalThrottleGovernor
from repro.util.rng import RngFactory


def flat_power(watts: float):
    def model(freq_hz: float, temp_c: float) -> float:
        del temp_c
        return watts * freq_hz / 500e6

    return model


class TestThermalThrottleGovernor:
    def test_ladder_validation(self):
        with pytest.raises(ValueError):
            ThermalThrottleGovernor([])
        with pytest.raises(ValueError):
            ThermalThrottleGovernor([2e8, 1e8])
        with pytest.raises(ValueError):
            ThermalThrottleGovernor([1e8], trip_c=80, clear_c=85)

    def test_no_throttle_under_light_load(self):
        governor = ThermalThrottleGovernor([2e8, 5e8], trip_c=85)
        trace = governor.run(
            flat_power(1.0), STOCK_HEATSINK_FAN, duration_s=60.0
        )
        assert trace.throttled_fraction() == 0.0
        assert trace.mean_freq_hz() == 5e8

    def test_throttles_when_hot(self):
        governor = ThermalThrottleGovernor(
            [1e8, 5e8], trip_c=60.0, clear_c=50.0
        )
        trace = governor.run(
            flat_power(8.0), STOCK_HEATSINK_FAN, duration_s=400.0
        )
        assert trace.throttled_fraction() > 0.1
        # Hysteresis keeps the peak near the trip point.
        assert trace.peak_temp_c() < 75.0

    def test_work_done_integrates_frequency(self):
        governor = ThermalThrottleGovernor([5e8], trip_c=1e3, clear_c=999)
        trace = governor.run(
            flat_power(1.0), STOCK_HEATSINK_FAN, duration_s=10.0, dt_s=1.0
        )
        assert trace.work_done() == pytest.approx(5e8 * 9.0, rel=0.01)


class TestPowerCapGovernor:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerCapGovernor([], cap_w=1.0)
        with pytest.raises(ValueError):
            PowerCapGovernor([1e8], cap_w=0.0)

    def test_respects_cap(self):
        governor = PowerCapGovernor([1e8, 3e8, 5e8], cap_w=2.0)
        trace = governor.run(
            flat_power(3.0), STOCK_HEATSINK_FAN, duration_s=30.0
        )
        # After settling, power stays at or under the cap.
        steady = trace.samples[10:]
        assert all(s.power_w <= 2.0 + 1e-9 for s in steady)

    def test_unconstrained_runs_full_speed(self):
        governor = PowerCapGovernor([1e8, 5e8], cap_w=100.0)
        trace = governor.run(
            flat_power(2.0), STOCK_HEATSINK_FAN, duration_s=10.0
        )
        assert trace.mean_freq_hz() == pytest.approx(5e8, rel=0.01)


class TestSpeedBinning:
    def test_bins_ordered_validation(self):
        with pytest.raises(ValueError):
            SpeedBinner(bins=(SpeedBin("a", 400), SpeedBin("b", 500)))
        with pytest.raises(ValueError):
            SpeedBinner(bins=(SpeedBin("a", 500), SpeedBin("b", 500)))

    def test_lot_deterministic(self):
        a = SpeedBinner(rngs=RngFactory(5)).bin_lot(20)
        b = SpeedBinner(rngs=RngFactory(5)).bin_lot(20)
        assert [d.bin_name for d in a.dies] == [
            d.bin_name for d in b.dies
        ]

    def test_every_die_assigned_consistently(self):
        report = SpeedBinner(rngs=RngFactory(1)).bin_lot(60)
        for die in report.dies:
            if die.bin_name is not None:
                threshold = next(
                    b.min_mhz
                    for b in DEFAULT_BINS
                    if b.name == die.bin_name
                )
                assert die.fmax_mhz >= threshold
            else:
                assert die.fmax_mhz < DEFAULT_BINS[-1].min_mhz

    def test_shares_sum_to_one(self):
        report = SpeedBinner(rngs=RngFactory(2)).bin_lot(50)
        names = [b.name for b in DEFAULT_BINS] + [None]
        assert sum(report.share(n) for n in names) == pytest.approx(1.0)

    def test_faster_voltage_bins_higher(self):
        low = SpeedBinner(ship_vdd=0.9, rngs=RngFactory(3)).bin_lot(30)
        high = SpeedBinner(ship_vdd=1.05, rngs=RngFactory(3)).bin_lot(30)
        top = DEFAULT_BINS[0].name
        assert high.count(top) >= low.count(top)

    def test_lot_size_validation(self):
        with pytest.raises(ValueError):
            SpeedBinner().bin_lot(0)

    def test_report_helpers(self):
        report = BinningReport()
        assert report.share("bin-500") == 0.0
        assert report.thermally_limited_count() == 0


class TestValidationReport:
    def test_anchor_check_math(self):
        check = AnchorCheck("x", 100.0, 103.0, "mW", tolerance=0.05)
        assert check.deviation == pytest.approx(0.03)
        assert check.within_tolerance
        bad = AnchorCheck("y", 100.0, 120.0, "mW", tolerance=0.05)
        assert not bad.within_tolerance

    def test_render_report(self):
        checks = [
            AnchorCheck("a", 1.0, 1.01, "W", 0.05),
            AnchorCheck("b", 2.0, 3.0, "W", 0.05),
        ]
        text = render_report(checks)
        assert "1/2 within" in text
        assert "OUT OF TOLERANCE" in text

    @pytest.mark.slow
    def test_validate_anchors_quick(self):
        from repro.power.validation import validate_anchors

        checks = validate_anchors(quick=True)
        names = {c.name for c in checks}
        assert "table5.static_mw" in names
        assert "fig11.ldx_random_pj" in names
        failing = [c.name for c in checks if not c.within_tolerance]
        assert failing == []
