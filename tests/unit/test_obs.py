"""Unit tests for the telemetry layer (repro.obs) and RunContext."""

from __future__ import annotations

import time

import pytest

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    NULL_TRACER,
    RunManifest,
    SpanStats,
    Tracer,
    build_manifest,
    component_of,
    component_rates,
)


class TestSpanStats:
    def test_accumulates(self):
        stats = SpanStats()
        stats.add(0.5)
        stats.add(1.5)
        assert stats.count == 2
        assert stats.total_s == pytest.approx(2.0)
        assert stats.max_s == pytest.approx(1.5)

    def test_as_dict(self):
        stats = SpanStats()
        stats.add(0.25)
        d = stats.as_dict()
        assert d["count"] == 1
        assert d["total_s"] == pytest.approx(0.25)


class TestTracer:
    def test_span_context_manager_records_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.005)
        assert tracer.spans["work"].count == 1
        assert tracer.spans["work"].total_s > 0.0

    def test_nested_distinct_spans(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert set(tracer.spans) == {"outer", "inner"}

    def test_add_span_and_total(self):
        tracer = Tracer()
        tracer.add_span("simulate", 0.3)
        tracer.add_span("simulate", 0.7)
        assert tracer.span_total_s("simulate") == pytest.approx(1.0)
        assert tracer.span_total_s("absent") == 0.0

    def test_points_and_notes(self):
        tracer = Tracer()
        tracer.point(0.1)
        tracer.point(0.2)
        tracer.note("persona", "chip2")
        assert tracer.point_wall_s == pytest.approx([0.1, 0.2])
        assert tracer.meta["persona"] == "chip2"

    def test_observe_ledger_accumulates_counts(self):
        class FakeLedger:
            counts = {"l2.read": 10, "noc1.flit_hop": 4}

            def items(self):
                return self.counts.items()

        tracer = Tracer()
        tracer.observe_ledger(FakeLedger(), cycles=100)
        tracer.observe_ledger(FakeLedger(), cycles=50)
        assert tracer.event_counts["l2.read"] == 20
        assert tracer.sim_cycles == 150


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything"):
            pass
        NULL_TRACER.add_span("x", 1.0)
        NULL_TRACER.point(1.0)
        NULL_TRACER.note("k", "v")
        assert NULL_TRACER.spans == {}
        assert NULL_TRACER.point_wall_s == []
        assert NULL_TRACER.meta == {}

    def test_shared_singleton_via_context(self):
        ctx = RunContext()
        assert ctx.trace is NULL_TRACER


class TestComponentClassification:
    @pytest.mark.parametrize(
        "event,component",
        [
            ("core.issue", "core"),
            ("l1d.read_hit", "core"),
            ("l15.miss", "l15"),
            ("l2.read", "l2"),
            ("dir.lookup", "l2"),
            ("noc2.flit_hop", "noc"),
            ("mitts.throttle", "noc"),
            ("dram.activate", "dram"),
            ("mem.read", "dram"),
            ("chipbridge.flit", "io"),
            ("mystery.event", "other"),
        ],
    )
    def test_component_of(self, event, component):
        assert component_of(event) == component

    def test_rates_per_cycle_and_wall(self):
        rates = component_rates(
            {"l2.read": 50, "l2.write": 50}, sim_cycles=1000, wall_s=2.0
        )
        assert rates["l2"]["events"] == 100
        assert rates["l2"]["per_cycle"] == pytest.approx(0.1)
        assert rates["l2"]["per_wall_s"] == pytest.approx(50.0)

    def test_zero_denominators_safe(self):
        rates = component_rates({"l2.read": 5}, sim_cycles=0, wall_s=0.0)
        assert rates["l2"]["per_cycle"] == 0.0
        assert rates["l2"]["per_wall_s"] == 0.0


class TestRunManifest:
    def make(self):
        tracer = Tracer()
        tracer.note("persona", "chip2")
        tracer.note("interleave", "LOW")
        tracer.note("operating_point", {"freq_mhz": 500.0})
        tracer.add_span("simulate", 1.0)
        tracer.point(0.5)
        tracer.point(0.5)
        tracer.observe_ledger(
            type("L", (), {"counts": {"l2.read": 10}})(), cycles=100
        )
        ctx = RunContext(quick=True, jobs=2, tracer=tracer)
        return build_manifest("figX", ctx, tracer, wall_s_total=2.0)

    def test_build_manifest_fields(self):
        manifest = self.make()
        assert manifest.experiment_id == "figX"
        assert manifest.quick is True
        assert manifest.jobs == 2
        assert manifest.persona == "chip2"
        assert manifest.interleave == "LOW"
        assert manifest.points == 2
        assert manifest.wall_s_total == pytest.approx(2.0)
        assert "simulate" in manifest.spans
        assert manifest.event_rates["l2"]["events"] == 10

    def test_round_trip(self):
        manifest = self.make()
        restored = RunManifest.from_dict(manifest.to_dict())
        assert restored == manifest

    def test_to_dict_versioned(self):
        d = self.make().to_dict()
        assert d["schema_version"] == MANIFEST_SCHEMA_VERSION

    def test_bad_version_rejected(self):
        d = self.make().to_dict()
        d["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            RunManifest.from_dict(d)

    def test_summary_mentions_spans(self):
        text = self.make().summary()
        assert "simulate" in text
        assert "figX" in text


class TestRunContext:
    def test_defaults(self):
        ctx = RunContext()
        assert ctx.quick is False
        assert ctx.jobs == 1
        assert ctx.out_format == "table"

    def test_validation(self):
        with pytest.raises(ValueError):
            RunContext(jobs=-1)
        with pytest.raises(ValueError):
            RunContext(out_format="xml")
        # 0 is not invalid anymore: it means "auto" (one per CPU).
        assert RunContext(jobs=0).jobs >= 1

    def test_resolve_persona_prefers_explicit(self):
        sentinel = object()
        assert RunContext().resolve_persona(sentinel) is sentinel
        override = object()
        ctx = RunContext(persona=override)
        assert ctx.resolve_persona(sentinel) is override

    def test_with_tracer(self):
        tracer = Tracer()
        ctx = RunContext(quick=True).with_tracer(tracer)
        assert ctx.trace is tracer
        assert ctx.quick is True


@experiment_runner
def _demo_runner(ctx: RunContext, scale: int = 3) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="demo", title="demo", headers=["k", "v"]
    )
    result.rows.append(("quick", ctx.quick))
    result.rows.append(("scale", scale))
    return result


class TestExperimentRunnerDecorator:
    def test_context_style(self):
        result = _demo_runner(RunContext(quick=True))
        assert ("quick", True) in result.rows

    def test_manifest_attached(self):
        result = _demo_runner(RunContext(tracer=Tracer()))
        assert result.manifest is not None
        assert result.manifest.experiment_id == "demo"
        assert "experiment" in result.manifest.spans

    def test_no_tracer_still_gets_manifest(self):
        result = _demo_runner(RunContext())
        assert result.manifest is not None
        assert result.manifest.points == 0

    def test_legacy_kwargs_rejected_with_hint(self):
        with pytest.raises(TypeError, match="RunContext"):
            _demo_runner(quick=True)

    def test_legacy_positional_bool_rejected(self):
        with pytest.raises(TypeError, match="RunContext"):
            _demo_runner(True)

    def test_mixing_styles_rejected(self):
        with pytest.raises(TypeError):
            _demo_runner(RunContext(), quick=True)

    def test_extras_pass_through(self):
        result = _demo_runner(RunContext(), scale=7)
        assert ("scale", 7) in result.rows

    def test_wrapped_runner_exposed(self):
        assert callable(_demo_runner.__wrapped_runner__)
