"""Unit tests for the generic operating-point sweep utility."""

from __future__ import annotations

import pytest

from repro.experiments.sweep import SweepPoint, sweep, voltage_grid
from repro.silicon.variation import CHIP1, CHIP2
from repro.workloads.microbench import int_tile


@pytest.fixture(scope="module")
def small_sweep():
    return sweep(
        voltage_grid([0.85, 1.05], personas=[CHIP2]),
        lambda tile: int_tile(),
        tiles=(0,),
        warmup_cycles=500,
        window_cycles=1_500,
    )


class TestSweep:
    def test_grid_size(self, small_sweep):
        assert len(small_sweep.records) == 2

    def test_idle_grows_with_voltage(self, small_sweep):
        idles = small_sweep.column("idle_core_mw")
        assert idles[1] > idles[0]

    def test_energy_per_instr_quadraticish(self, small_sweep):
        energies = small_sweep.column("energy_per_instr_pj")
        # Activity energy scales ~V^2: (1.05/0.85)^2 ~ 1.53.
        assert energies[1] / energies[0] == pytest.approx(1.53, rel=0.2)

    def test_explicit_frequency_respected(self):
        point = SweepPoint(persona=CHIP2, vdd=1.0, freq_hz=123e6)
        assert point.resolved_freq_hz() == 123e6

    def test_fmax_resolution_uses_persona(self):
        fast = SweepPoint(persona=CHIP1, vdd=1.0).resolved_freq_hz()
        typ = SweepPoint(persona=CHIP2, vdd=1.0).resolved_freq_hz()
        assert fast > typ

    def test_render(self, small_sweep):
        text = small_sweep.render()
        assert "persona" in text and "chip2" in text

    def test_voltage_grid_order(self):
        grid = voltage_grid([0.8, 0.9], personas=[CHIP2, CHIP1])
        assert len(grid) == 4
        assert grid[0].persona is CHIP2 and grid[-1].persona is CHIP1
