"""Unit tests for repro.power: calibration, technology, rail
aggregation, VF curve, EPI/EPF methodology."""

from __future__ import annotations

import pytest

from repro.power.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    EVENT_ENERGIES,
    EventEnergy,
)
from repro.power.chip_power import ChipPowerModel, OperatingPoint, RailPower
from repro.power.epf import energy_per_flit, pj_per_hop_trendline
from repro.power.epi import energy_per_instruction, subtract_filler_energy
from repro.power.technology import (
    clock_power_w,
    fmax_hz,
    leakage_scale,
    static_power_w,
)
from repro.power.vf_curve import FREQ_STEP_HZ, VfCurve
from repro.silicon.variation import CHIP1, CHIP2, CHIP3, TYPICAL
from repro.util.events import EventLedger
from repro.util.stats import Measurement


class TestCalibration:
    def test_event_energy_validation(self):
        with pytest.raises(ValueError):
            EventEnergy(base_pj=-1)
        with pytest.raises(ValueError):
            EventEnergy(base_pj=1, vdd_frac=2.0)
        with pytest.raises(ValueError):
            EventEnergy(base_pj=1, rail="aux")

    def test_all_priced_events_valid(self):
        for name, price in EVENT_ENERGIES.items():
            assert price.base_pj >= 0, name
            assert 0 <= price.vdd_frac <= 1, name

    def test_lookup(self):
        calib = DEFAULT_CALIBRATION
        assert calib.energy_for("instr.int_add") is not None
        assert calib.energy_for("no.such.event") is None

    def test_noc_trendline_constants(self):
        """Fig 12 least-squares decomposition: router + wire pieces."""
        router = EVENT_ENERGIES["noc1.router_pass"].base_pj
        wire = EVENT_ENERGIES["noc1.flit_hop"].act_pj
        assert router == pytest.approx(3.7, abs=0.5)
        assert wire == pytest.approx(13.4, abs=1.0)


class TestTechnology:
    def test_leakage_exponential_voltage(self):
        low = leakage_scale(0.9, 25.0)
        nom = leakage_scale(1.0, 25.0)
        high = leakage_scale(1.1, 25.0)
        assert low < nom == 1.0 < high
        assert high / nom == pytest.approx(nom / low, rel=1e-6)

    def test_leakage_exponential_temperature(self):
        cold = leakage_scale(1.0, 25.0)
        hot = leakage_scale(1.0, 75.0)
        assert hot / cold == pytest.approx(
            pow(2.718281828, 0.016 * 50), rel=1e-3
        )

    def test_leakage_clamped(self):
        assert leakage_scale(1.0, 1e6) < float("inf")

    def test_static_power_split(self):
        vdd_w, vcs_w = static_power_w(1.0, 1.05, 25.0)
        total = vdd_w + vcs_w
        assert total == pytest.approx(
            DEFAULT_CALIBRATION.static_total_w, rel=1e-6
        )
        assert vdd_w > vcs_w  # core leakage dominates

    def test_static_scales_with_persona(self):
        nom = sum(static_power_w(1.0, 1.05, 25.0, TYPICAL))
        leaky = sum(static_power_w(1.0, 1.05, 25.0, CHIP1))
        assert leaky == pytest.approx(nom * CHIP1.leak, rel=1e-6)

    def test_clock_power_cv2f(self):
        base = sum(clock_power_w(1.0, 1.05, 500e6))
        double_f = sum(clock_power_w(1.0, 1.05, 1000e6))
        assert double_f == pytest.approx(2 * base, rel=1e-6)
        higher_v = sum(clock_power_w(1.2, 1.25, 500e6))
        assert higher_v > base * 1.3  # ~V^2

    def test_fmax_anchor(self):
        assert fmax_hz(1.0) == pytest.approx(514.33e6, rel=1e-6)

    def test_fmax_below_vth_is_zero(self):
        assert fmax_hz(0.4) == 0.0

    def test_fmax_monotonic(self):
        freqs = [fmax_hz(v) for v in (0.8, 0.9, 1.0, 1.1, 1.2)]
        assert freqs == sorted(freqs)

    def test_fmax_scales_with_speed(self):
        assert fmax_hz(1.0, CHIP1) == pytest.approx(
            CHIP1.speed * fmax_hz(1.0), rel=1e-9
        )


class TestChipPowerModel:
    def setup_method(self):
        self.model = ChipPowerModel(CHIP2)
        self.op = OperatingPoint()

    def test_operating_point_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(freq_hz=0)
        with pytest.raises(ValueError):
            OperatingPoint(vdd=-1)

    def test_idle_above_static(self):
        static = self.model.static_power(self.op)
        idle = self.model.idle_power(self.op)
        assert idle.total_w > static.total_w

    def test_event_power_additive(self):
        a, b, both = EventLedger(), EventLedger(), EventLedger()
        a.record("instr.int_add", 100)
        b.record("l1d.read", 50)
        both.record("instr.int_add", 100)
        both.record("l1d.read", 50)
        pa = self.model.event_power(a, 1000, self.op).total_w
        pb = self.model.event_power(b, 1000, self.op).total_w
        pboth = self.model.event_power(both, 1000, self.op).total_w
        assert pboth == pytest.approx(pa + pb, rel=1e-9)

    def test_event_power_nonnegative(self):
        ledger = EventLedger()
        ledger.record("instr.nop", 10)
        power = self.model.event_power(ledger, 100, self.op)
        assert power.vdd_w >= 0 and power.vcs_w >= 0 and power.vio_w >= 0

    def test_activity_raises_energy(self):
        lo, hi = EventLedger(), EventLedger()
        lo.record("instr.int_add", 100, activity=0.0)
        hi.record("instr.int_add", 100, activity=1.0)
        assert (
            self.model.event_power(hi, 100, self.op).total_w
            > self.model.event_power(lo, 100, self.op).total_w
        )

    def test_voltage_scaling_quadratic(self):
        ledger = EventLedger()
        ledger.record("instr.int_add", 1000)
        low = self.model.event_power(
            ledger, 100, OperatingPoint(vdd=0.8, vcs=0.85)
        )
        nom = self.model.event_power(ledger, 100, self.op)
        assert low.vdd_w / nom.vdd_w == pytest.approx(0.64, rel=1e-6)

    def test_io_events_on_vio(self):
        ledger = EventLedger()
        ledger.record("io.beat", 100)
        power = self.model.event_power(ledger, 100, self.op)
        assert power.vio_w > 0 and power.vdd_w == 0

    def test_unknown_events_reported(self):
        ledger = EventLedger()
        ledger.record("mystery.event", 1)
        assert self.model.unknown_events(ledger) == ["mystery.event"]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            self.model.event_power(EventLedger(), 0, self.op)

    def test_rail_power_arithmetic(self):
        p = RailPower(1.0, 0.5, 0.1) + RailPower(1.0, 0.5, 0.1)
        assert p.total_w == pytest.approx(3.2)
        assert p.core_w == pytest.approx(3.0)


class TestVfCurve:
    def test_chip2_anchor(self):
        point = VfCurve(CHIP2).boot_frequency(1.0)
        assert point.fmax_hz == pytest.approx(514.33e6, rel=0.02)

    def test_quantized_to_grid(self):
        point = VfCurve(CHIP2).boot_frequency(0.9)
        steps = point.fmax_hz / FREQ_STEP_HZ
        assert steps == pytest.approx(round(steps), abs=1e-6)

    def test_chip1_fastest_at_low_voltage(self):
        f1 = VfCurve(CHIP1).boot_frequency(0.85).fmax_hz
        f2 = VfCurve(CHIP2).boot_frequency(0.85).fmax_hz
        f3 = VfCurve(CHIP3).boot_frequency(0.85).fmax_hz
        assert f1 > f2 >= f3

    def test_chip1_thermally_limited_at_high_voltage(self):
        point = VfCurve(CHIP1).boot_frequency(1.20)
        assert point.thermally_limited
        # The droop: slower than at 1.15V.
        at_115 = VfCurve(CHIP1).boot_frequency(1.15)
        assert point.fmax_hz < at_115.fmax_hz

    def test_chip3_unconstrained_at_high_voltage(self):
        point = VfCurve(CHIP3).boot_frequency(1.20)
        assert not point.thermally_limited

    def test_sweep_shapes(self):
        points = VfCurve(CHIP2).sweep([0.8, 1.0, 1.1])
        freqs = [p.fmax_hz for p in points]
        assert freqs == sorted(freqs)


class TestEpiMethodology:
    def test_paper_equation(self):
        """EPI = (1/25) x (P_inst - P_idle)/f x L, verified on round
        numbers."""
        p_inst = Measurement(3.0)
        p_idle = Measurement(2.0)
        epi = energy_per_instruction(p_inst, p_idle, 500e6, 10, cores=25)
        assert epi.value == pytest.approx(1.0 / 25 / 500e6 * 10)

    def test_error_propagation(self):
        epi = energy_per_instruction(
            Measurement(3.0, 0.3), Measurement(2.0, 0.4), 1e9, 1, 1
        )
        assert epi.sigma == pytest.approx(0.5e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_per_instruction(Measurement(1), Measurement(0), 0, 1)
        with pytest.raises(ValueError):
            energy_per_instruction(Measurement(1), Measurement(0), 1, 0)

    def test_filler_subtraction(self):
        """The stx (NF) correction: 9 nops removed."""
        total = Measurement(10.0)
        nop = Measurement(0.5)
        corrected = subtract_filler_energy(total, nop, 9)
        assert corrected.value == pytest.approx(5.5)

    def test_epf_paper_equation(self):
        """EPF = (47/7) x (P_hop - P_base)/f."""
        epf = energy_per_flit(
            Measurement(2.1), Measurement(2.0), 500e6
        )
        assert epf.value == pytest.approx(0.1 * 47 / 7 / 500e6)

    def test_trendline(self):
        slope, intercept = pj_per_hop_trendline(
            [0, 1, 2], [1.0, 3.0, 5.0]
        )
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_trendline_validation(self):
        with pytest.raises(ValueError):
            pj_per_hop_trendline([1], [1.0])
        with pytest.raises(ValueError):
            pj_per_hop_trendline([1, 1], [1.0, 2.0])


class TestAnchorsReproduced:
    """The Table V anchors must come back out of the measured system."""

    def test_chip2_static_and_idle(self, shared_system):
        static = shared_system.measure_static().core
        idle = shared_system.measure_idle().core
        assert static.value == pytest.approx(0.3893, rel=0.02)
        assert idle.value == pytest.approx(2.0153, rel=0.02)

    def test_chip3_static_and_idle(self):
        from repro.system import PitonSystem

        system = PitonSystem.default(persona=CHIP3, seed=1)
        assert system.measure_static().core.value == pytest.approx(
            0.3648, rel=0.02
        )
        assert system.measure_idle().core.value == pytest.approx(
            1.9062, rel=0.02
        )
