"""Corner-case unit tests across modules: L2 slice internals, thread
stats, PSU variants, ledger weight merging, DRAM row mapping, bridge
patterns at other clocks."""

from __future__ import annotations

import pytest

from repro.arch.params import CacheParams
from repro.cache.coherence import CoherenceError
from repro.cache.l2 import L2Slice
from repro.chip.chipbridge import ChipBridge
from repro.chip.dram import DramModel
from repro.core.thread import ThreadStats
from repro.board.psu import OnBoardSupply
from repro.util.events import EventLedger


class TestL2SliceDirect:
    def make(self):
        return L2Slice(0, CacheParams(4 * 2 * 64, 2, 64), EventLedger())

    def test_directory_requires_residency(self):
        slice_ = self.make()
        with pytest.raises(CoherenceError, match="non-resident"):
            slice_.entry(0x0)

    def test_fill_then_entry(self):
        slice_ = self.make()
        slice_.fill(0x0)
        entry = slice_.entry(0x0)
        entry.add_sharer(3)
        assert slice_.entry(0x0).sharers == {3}

    def test_eviction_returns_recall(self):
        slice_ = self.make()  # 4 sets x 2 ways
        # Fill one set (same set index) to overflow.
        stride = 4 * 64  # set stride
        slice_.fill(0x0)
        slice_.entry(0x0).add_sharer(1)
        slice_.fill(stride)
        recall = slice_.fill(2 * stride)  # evicts LRU 0x0
        assert recall is not None
        assert recall.line_addr == 0x0
        assert recall.sharers == {1}
        # The directory entry for the evicted line is gone.
        assert 0x0 not in slice_.directory

    def test_dirty_eviction_flagged(self):
        slice_ = self.make()
        stride = 4 * 64
        slice_.fill(0x0, dirty=True)
        slice_.fill(stride)
        recall = slice_.fill(2 * stride)
        assert recall.dirty_writeback

    def test_writeback_to_nonresident_raises(self):
        slice_ = self.make()
        with pytest.raises(CoherenceError, match="writeback"):
            slice_.writeback_data(0x0)

    def test_invariant_detects_stale_directory(self):
        slice_ = self.make()
        slice_.fill(0x0)
        slice_.directory[0x9999 * 64] = slice_.entry(0x0).__class__()
        with pytest.raises(CoherenceError, match="non-resident"):
            slice_.check_invariants()

    def test_drop_private_cleans_empty_entries(self):
        slice_ = self.make()
        slice_.fill(0x0)
        slice_.entry(0x0).add_sharer(2)
        slice_.drop_private(0x0, 2)
        assert 0x0 not in slice_.directory


class TestThreadStats:
    def test_merge(self):
        a = ThreadStats(instructions=5, loads=2, rollbacks=1)
        b = ThreadStats(instructions=3, stores=4, iterations=2)
        a.merge(b)
        assert a.instructions == 8
        assert a.loads == 2 and a.stores == 4
        assert a.rollbacks == 1 and a.iterations == 2


class TestOnBoardSupply:
    def test_plane_droop(self):
        psu = OnBoardSupply("x", 1.0)
        assert psu.voltage_at_load(5.0) < 1.0

    def test_remote_sense_variant_holds(self):
        psu = OnBoardSupply("vdd", 1.0, remote_sense=True)
        assert psu.voltage_at_load(5.0) == pytest.approx(1.0)

    def test_negative_current(self):
        with pytest.raises(ValueError):
            OnBoardSupply("x", 1.0).voltage_at_load(-1)


class TestLedgerWeights:
    def test_merge_preserves_mean_activity(self):
        a, b = EventLedger(), EventLedger()
        a.record("e", 3, activity=0.0)
        b.record("e", 1, activity=1.0)
        a.merge(b)
        assert a.mean_activity("e") == pytest.approx(0.25)

    def test_names_iteration(self):
        ledger = EventLedger()
        ledger.record("x")
        ledger.record("y")
        assert set(ledger.names()) == {"x", "y"}

    def test_as_dict_copy(self):
        ledger = EventLedger()
        ledger.record("x", 2)
        d = ledger.as_dict()
        d["x"] = 99
        assert ledger.count("x") == 2


class TestDramRowMapping:
    def test_bank_and_row(self):
        dram = DramModel(banks=8, row_bytes=4096)
        bank0, row0 = dram._bank_and_row(0)
        bank1, row1 = dram._bank_and_row(4096)
        assert (bank0, row0) == (0, 0)
        assert bank1 == 1 and row1 == 0
        bank8, row8 = dram._bank_and_row(8 * 4096)
        assert bank8 == 0 and row8 == 1

    def test_parallel_banks_share_channel(self):
        """Bank-level parallelism does not bypass the single channel:
        back-to-back bursts to different banks still serialize."""
        dram = DramModel()
        first = dram.access_ns(0, 0.0)
        second = dram.access_ns(4096, 0.0)  # different bank
        assert second > first


class TestBridgeAtOtherClocks:
    def test_pattern_adapts_to_core_clock(self):
        bridge = ChipBridge()
        fast = bridge.traffic_pattern(1e9)
        slow = bridge.traffic_pattern(250e6)
        assert fast.flits_per_cycle < slow.flits_per_cycle

    def test_pattern_accuracy(self):
        bridge = ChipBridge()
        for clock in (250e6, 500.05e6, 750e6):
            rate = bridge.inbound_flits_per_core_cycle(clock)
            pattern = bridge.traffic_pattern(clock)
            assert pattern.flits_per_cycle == pytest.approx(
                rate, rel=0.02
            )
