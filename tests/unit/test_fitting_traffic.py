"""Unit tests for the calibration fitter and synthetic NoC traffic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.params import PitonConfig
from repro.noc.traffic import (
    bit_complement,
    drive,
    hotspot,
    neighbour,
    transpose,
    uniform_random,
)
from repro.power.fitting import _measured_core_w, fit_fmax, fit_static_idle
from repro.power.technology import fmax_hz
from repro.silicon.variation import CHIP2, TYPICAL


class TestFitStaticIdle:
    def test_recovers_shipped_anchors(self):
        """Fitting to Table V targets must land on (almost) the shipped
        calibration's measured values."""
        calib = fit_static_idle(0.3893, 2.0153, persona=CHIP2)
        static = _measured_core_w(calib, CHIP2, False, calib.r_theta_ja)
        idle = _measured_core_w(calib, CHIP2, True, calib.r_theta_ja)
        assert static == pytest.approx(0.3893, rel=1e-4)
        assert idle == pytest.approx(2.0153, rel=1e-4)

    def test_fits_a_different_chip(self):
        """A hypothetical leakier, hungrier chip."""
        calib = fit_static_idle(0.55, 2.6, persona=TYPICAL)
        static = _measured_core_w(calib, TYPICAL, False, calib.r_theta_ja)
        idle = _measured_core_w(calib, TYPICAL, True, calib.r_theta_ja)
        assert static == pytest.approx(0.55, rel=1e-3)
        assert idle == pytest.approx(2.6, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_static_idle(0.5, 0.4)
        with pytest.raises(ValueError):
            fit_static_idle(0.0, 1.0)


class TestFitFmax:
    def test_single_anchor_moves_reference(self):
        calib = fit_fmax([(1.0, 600e6)])
        assert fmax_hz(1.0, calib=calib) == pytest.approx(600e6)

    def test_two_anchor_fit(self):
        anchors = [(0.8, 285.74e6), (1.0, 514.33e6)]
        calib = fit_fmax(anchors)
        for vdd, hz in anchors:
            assert fmax_hz(vdd, calib=calib) == pytest.approx(
                hz, rel=0.06
            )

    def test_empty_anchors(self):
        with pytest.raises(ValueError):
            fit_fmax([])


class TestTrafficPatterns:
    CONFIG = PitonConfig()

    def test_uniform_random_in_range(self):
        rng = np.random.default_rng(0)
        pairs = uniform_random(100, rng, self.CONFIG)
        assert all(0 <= s < 25 and 0 <= d < 25 for s, d in pairs)

    def test_transpose_symmetry(self):
        pairs = transpose(25, self.CONFIG)
        mapping = dict(pairs)
        for src, dst in pairs:
            assert mapping[dst] == src  # transpose is an involution

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose(10, PitonConfig(mesh_width=4, mesh_height=5))

    def test_bit_complement_extremes(self):
        pairs = bit_complement(25, self.CONFIG)
        assert pairs[0] == (0, 24)
        assert pairs[24] == (24, 0)

    def test_hotspot_concentration(self):
        rng = np.random.default_rng(1)
        pairs = hotspot(400, rng, self.CONFIG, hot_tile=12,
                        hot_fraction=0.7)
        hot = sum(1 for _, d in pairs if d == 12)
        assert hot > 200

    def test_hotspot_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            hotspot(10, rng, self.CONFIG, hot_fraction=1.5)

    def test_neighbour_wraps(self):
        pairs = neighbour(25, self.CONFIG)
        assert (4, 0) in pairs  # east edge wraps to column 0


class TestDrive:
    def test_everything_delivered(self):
        pairs = bit_complement(25, PitonConfig())
        _, stats = drive(pairs)
        assert stats.delivered == stats.injected == 25
        assert stats.mean_latency > 0

    def test_injection_interval_validation(self):
        with pytest.raises(ValueError):
            drive([(0, 1)], inject_every=0)

    def test_hotspot_slower_than_neighbour(self):
        """Contention at one ejection port inflates latency."""
        config = PitonConfig()
        rng = np.random.default_rng(2)
        _, hot = drive(
            hotspot(60, rng, config, hot_fraction=1.0), inject_every=1
        )
        _, near = drive(neighbour(60, config), inject_every=1)
        assert hot.mean_latency > near.mean_latency

    def test_faster_injection_more_contention(self):
        config = PitonConfig()
        rng = np.random.default_rng(3)
        pairs = uniform_random(80, rng, config)
        _, fast = drive(list(pairs), inject_every=1)
        _, slow = drive(list(pairs), inject_every=20)
        assert fast.peak_latency >= slow.peak_latency
