"""Unit tests for the content-addressed result store (repro.serve.cas):
framing, atomicity, corruption handling, the tier-aware acceptance
matrix, and the CasJournal adapter the grid executors consume."""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import pytest

from repro.obs import Tracer
from repro.serve.cas import CacheEntry, CasJournal, ResultCache


@dataclass
class FakeOutcome:
    """Picklable stand-in for SimOutcome (module level on purpose)."""

    value: int = 0
    tier: str = "sim"
    tier_err: float = 0.0


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cas")


DIGEST = b"\xab" * 32


class TestPutGet:
    def test_round_trip(self, cache):
        cache.put("run", "aa" * 32, b"payload bytes")
        entry = cache.get("run", "aa" * 32)
        assert entry == CacheEntry(
            payload=b"payload bytes", tier="sim", tier_err=0.0
        )

    def test_bytes_and_hex_keys_equivalent(self, cache):
        cache.put("point", DIGEST, b"x")
        assert cache.get("point", DIGEST.hex()).payload == b"x"

    def test_absent_is_none(self, cache):
        assert cache.get("run", "00" * 32) is None

    def test_namespaces_isolated(self, cache):
        cache.put("run", DIGEST, b"run-bytes")
        assert cache.get("point", DIGEST) is None

    def test_tier_metadata_survives(self, cache):
        cache.put("point", DIGEST, b"x", tier="fast", tier_err=0.03)
        entry = cache.get("point", DIGEST)
        assert entry.tier == "fast"
        assert entry.tier_err == pytest.approx(0.03)

    def test_overwrite_replaces_atomically(self, cache):
        cache.put("run", DIGEST, b"old")
        cache.put("run", DIGEST, b"new")
        assert cache.get("run", DIGEST).payload == b"new"
        # No temp droppings left behind.
        leftovers = [
            p for p in cache.root.rglob(".tmp-*") if p.is_file()
        ]
        assert leftovers == []

    def test_entry_count(self, cache):
        assert cache.entry_count() == 0
        cache.put("run", "aa" * 32, b"1")
        cache.put("point", "bb" * 32, b"2")
        assert cache.entry_count() == 2
        assert cache.entry_count("point") == 1
        assert cache.entry_count("absent") == 0


class TestCorruption:
    """A torn or tampered frame must read as a miss, never an error —
    the caller's recovery is simply to re-simulate and overwrite."""

    def _path(self, cache):
        cache.put("run", DIGEST, b"good payload")
        [path] = cache.root.rglob("*.cas")
        return path

    def test_flipped_payload_byte_is_a_miss(self, cache):
        path = self._path(cache)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.get("run", DIGEST) is None

    def test_truncated_entry_is_a_miss(self, cache):
        path = self._path(cache)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 3])
        assert cache.get("run", DIGEST) is None

    def test_wrong_magic_is_a_miss(self, cache):
        path = self._path(cache)
        blob = path.read_bytes()
        path.write_bytes(b"XXXX" + blob[4:])
        assert cache.get("run", DIGEST) is None

    def test_empty_file_is_a_miss(self, cache):
        path = self._path(cache)
        path.write_bytes(b"")
        assert cache.get("run", DIGEST) is None

    def test_resimulate_overwrites_corrupt_entry(self, cache):
        path = self._path(cache)
        path.write_bytes(b"garbage")
        assert cache.get("run", DIGEST) is None
        cache.put("run", DIGEST, b"fresh")
        assert cache.get("run", DIGEST).payload == b"fresh"


class TestTierMatrix:
    """sim entries satisfy everything; fast entries satisfy fast
    always, auto within tolerance, sim never."""

    @pytest.mark.parametrize("tier", ["sim", "auto", "fast"])
    def test_sim_entry_satisfies_any_tier(self, tier):
        entry = CacheEntry(b"", tier="sim", tier_err=0.0)
        assert ResultCache.satisfies(entry, tier, tolerance=0.0)

    def test_fast_entry_never_satisfies_sim(self):
        entry = CacheEntry(b"", tier="fast", tier_err=0.0)
        assert not ResultCache.satisfies(entry, "sim", tolerance=1.0)

    def test_fast_entry_always_satisfies_fast(self):
        entry = CacheEntry(b"", tier="fast", tier_err=0.5)
        assert ResultCache.satisfies(entry, "fast", tolerance=0.0)

    def test_fast_entry_satisfies_auto_within_tolerance_only(self):
        entry = CacheEntry(b"", tier="fast", tier_err=0.1)
        assert not ResultCache.satisfies(entry, "auto", tolerance=0.05)
        assert ResultCache.satisfies(entry, "auto", tolerance=0.2)

    def test_lookup_applies_the_gate(self, cache):
        cache.put("point", DIGEST, b"x", tier="fast", tier_err=0.1)
        assert cache.lookup("point", DIGEST, tier="sim") is None
        assert (
            cache.lookup("point", DIGEST, tier="auto", tolerance=0.05)
            is None
        )
        assert (
            cache.lookup("point", DIGEST, tier="auto", tolerance=0.2)
            is not None
        )
        assert cache.lookup("point", DIGEST, tier="fast") is not None


class TestCasJournal:
    def test_append_then_get_round_trips_outcome(self, cache):
        journal = CasJournal(cache)
        journal.append(0, DIGEST, FakeOutcome(value=7))
        # Index is deliberately ignored: pure digest keying means
        # identical points hit from any grid shape.
        outcome = journal.get(999, DIGEST)
        assert outcome == FakeOutcome(value=7)

    def test_counters_land_on_tracer(self, cache):
        tracer = Tracer()
        journal = CasJournal(cache, tracer=tracer)
        assert journal.get(0, DIGEST) is None
        journal.append(0, DIGEST, FakeOutcome())
        assert journal.get(0, DIGEST) is not None
        assert tracer.resilience == {"cas_misses": 1, "cas_hits": 1}

    def test_surrogate_outcome_stored_with_its_tier(self, cache):
        journal = CasJournal(cache)
        journal.append(
            0, DIGEST, FakeOutcome(tier="fast", tier_err=0.02)
        )
        entry = cache.get("point", DIGEST)
        assert entry.tier == "fast"
        assert entry.tier_err == pytest.approx(0.02)
        # A sim-tier consumer refuses it...
        assert CasJournal(cache, tier="sim").get(0, DIGEST) is None
        # ...an auto consumer takes it within tolerance.
        auto = CasJournal(cache, tier="auto", tolerance=0.05)
        assert auto.get(0, DIGEST) is not None

    def test_unpicklable_entry_is_a_miss(self, cache):
        tracer = Tracer()
        cache.put("point", DIGEST, b"not a pickle")
        journal = CasJournal(cache, tracer=tracer)
        assert journal.get(0, DIGEST) is None
        assert tracer.resilience.get("cas_hits", 0) == 0

    def test_meta_and_complete_are_noops(self, cache):
        journal = CasJournal(cache)
        journal.write_meta(experiment_id="x", n_points=3)
        journal.complete()
        assert cache.entry_count() == 0


# ----------------------------------------------------------- concurrency
def _race_writer(root, key, payload, rounds):
    """Child-process body: hammer one key with one payload."""
    cache = ResultCache(root=root)
    for _ in range(rounds):
        cache.put("point", key, payload)


class TestConcurrentWriters:
    def test_two_processes_racing_one_key_never_tear(self, tmp_path):
        """Readers racing two writers see complete frames or nothing.

        The atomic temp+fsync+rename discipline means a concurrent
        reader can observe either writer's entry — but never a splice
        of the two and never a partial frame.
        """
        import multiprocessing

        root = tmp_path / "cas"
        key = "ab" * 32
        payloads = (b"A" * 4096, b"B" * 4096)
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_race_writer, args=(root, key, payload, 200)
            )
            for payload in payloads
        ]
        for w in writers:
            w.start()
        reader = ResultCache(root=root)
        observed = set()
        while any(w.is_alive() for w in writers):
            entry = reader.get("point", key)
            if entry is not None:
                assert entry.payload in payloads  # complete, untorn
                observed.add(entry.payload)
        for w in writers:
            w.join()
            assert w.exitcode == 0
        final = reader.get("point", key)
        assert final is not None and final.payload in payloads
        assert observed  # the race was actually observed

    def test_torn_frame_is_a_miss_then_cleanly_overwritten(
        self, cache
    ):
        """Crash-mid-write recovery: miss, re-simulate, overwrite."""
        key = "cd" * 32
        cache.put("point", key, b"original payload")
        path = cache._entry_path("point", key)
        path.write_bytes(path.read_bytes()[:-3])  # torn tail
        assert cache.get("point", key) is None
        assert (
            cache.lookup("point", key) is None
        )  # counted as a miss, not an error
        cache.put("point", key, b"replacement payload")
        entry = cache.get("point", key)
        assert entry is not None
        assert entry.payload == b"replacement payload"

    def test_interleaved_writers_and_gc_stay_consistent(self, tmp_path):
        """GC racing a writer on the same store never breaks reads."""
        import multiprocessing

        root = tmp_path / "cas"
        key = "ef" * 32
        ctx = multiprocessing.get_context("fork")
        writer = ctx.Process(
            target=_race_writer, args=(root, key, b"X" * 1024, 100)
        )
        writer.start()
        collector = ResultCache(root=root)
        while writer.is_alive():
            collector.gc(quota_bytes=0)  # evict everything, always
            entry = collector.get("point", key)
            assert entry is None or entry.payload == b"X" * 1024
        writer.join()
        assert writer.exitcode == 0
