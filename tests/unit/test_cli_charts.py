"""Unit tests for the ASCII charts and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.result import RESULT_SCHEMA_VERSION
from repro.util.charts import bar_chart, line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart({"a": [1.0, 2.0, 3.0]}, title="T")
        assert out.splitlines()[0] == "T"
        assert "o=a" in out
        assert "3" in out and "1" in out  # y labels

    def test_multiple_series_glyphs(self):
        out = line_chart({"a": [1, 2], "b": [2, 1]})
        assert "o=a" in out and "x=b" in out

    def test_x_axis_labels(self):
        out = line_chart({"a": [1, 2]}, x_values=[0.8, 1.2])
        assert "0.8" in out and "1.2" in out

    def test_flat_series(self):
        out = line_chart({"a": [5.0, 5.0, 5.0]})
        assert out  # no division-by-zero on constant series

    def test_single_point(self):
        assert line_chart({"a": [1.0]})

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": [1], "b": [1, 2]})
        with pytest.raises(ValueError):
            line_chart({"a": []})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, x_values=[1.0])

    def test_monotone_series_descends_visually(self):
        out = line_chart({"up": [0, 1, 2, 3]}, width=8, height=4)
        rows = [
            line.split("|", 1)[1]
            for line in out.splitlines()
            if "|" in line
        ]
        first_col = next(
            i for i, row in enumerate(rows) if row.strip()
        )
        # The maximum lands on the top row, the minimum on the bottom.
        assert "o" in rows[0]
        assert "o" in rows[-1]
        assert first_col == 0


class TestBarChart:
    def test_basic(self):
        out = bar_chart({"add": 95.0, "nop": 35.0}, unit="pJ")
        assert "add" in out and "95" in out
        add_len = out.splitlines()[0].count("#")
        nop_len = out.splitlines()[1].count("#")
        assert add_len > nop_len

    def test_title(self):
        out = bar_chart({"x": 1.0}, title="EPI")
        assert out.splitlines()[0] == "EPI"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_zero_values_safe(self):
        assert bar_chart({"x": 0.0})


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "ablation_dvfs" in out

    def test_run_quick(self, capsys):
        assert main(["run", "fig8", "--quick"]) == 0
        assert "Area breakdown" in capsys.readouterr().out

    def test_measure(self, capsys):
        assert main(["measure", "--persona", "chip3"]) == 0
        out = capsys.readouterr().out
        assert "chip3" in out and "static" in out

    def test_chart(self, capsys):
        assert main(["chart", "fig9", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "chip1" in out and "|" in out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        by_id = {s["id"]: s for s in specs}
        assert by_id["fig13"]["supports_jobs"] is True
        assert by_id["fig13"]["chartable"] is True
        assert by_id["fig8"]["supports_jobs"] is False

    def test_run_json_document(self, capsys):
        assert main(["run", "fig8", "--quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == RESULT_SCHEMA_VERSION
        assert doc["experiment_id"] == "fig8"
        assert doc["rows"]
        assert doc["manifest"]["spans"]["experiment"]["count"] == 1

    def test_run_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "fig8.json"
        assert main(
            ["run", "fig8", "--quick", "--json", "--out", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["experiment_id"] == "fig8"
        # Nothing but the (empty) table output goes to stdout.
        assert "schema_version" not in capsys.readouterr().out

    def test_run_trace_digest_on_stderr(self, capsys):
        assert main(["run", "fig8", "--quick", "--trace"]) == 0
        err = capsys.readouterr().err
        assert "fig8" in err and "experiment" in err

    def test_chart_to_file(self, tmp_path, capsys):
        out = tmp_path / "fig9.chart.txt"
        assert main(
            ["chart", "fig9", "--quick", "--out", str(out)]
        ) == 0
        assert "chip1" in out.read_text()

    def test_chart_accepts_jobs_flag(self, capsys):
        # The chart path shares run's context plumbing, so --jobs is
        # accepted (and a courtesy note lands on stderr for
        # experiments that never fan out).
        assert main(["chart", "fig9", "--quick", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "chip1" in captured.out
        assert "--jobs ignored" in captured.err

    def test_jobs_note_absent_for_supported(self, capsys):
        args = build_parser().parse_args(
            ["run", "fig13", "--quick", "--jobs", "2"]
        )
        assert args.jobs == 2

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
