"""Unit tests for the repro.check subsystem, the result-schema guard,
and the rejection of the removed legacy runner call styles."""

from __future__ import annotations

import json

import pytest

from repro.cache.system import MemoryAccessOutcome
from repro.check import CheckError, CheckSuite, FAULT_KINDS, inject_fault
from repro.experiments import EXPERIMENTS, RunContext
from repro.experiments.result import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
)


# --------------------------------------------------------------- CheckSuite
class TestCheckSuite:
    def test_check_error_names_its_checker(self):
        suite = CheckSuite()
        bad = MemoryAccessOutcome(latency=0, level="l1")
        with pytest.raises(CheckError) as exc:
            suite.check_access(bad)
        assert exc.value.checker == "access"
        assert "latency 0" in str(exc.value)
        assert suite.violations == 1

    def test_access_bounds(self):
        suite = CheckSuite()
        suite.check_access(MemoryAccessOutcome(latency=1, level="l1"))
        suite.check_access(
            MemoryAccessOutcome(latency=400, level="mem", hops=8)
        )
        assert suite.violations == 0
        with pytest.raises(CheckError):
            suite.check_access(
                MemoryAccessOutcome(
                    latency=suite.ACCESS_LATENCY_BOUND + 1, level="mem"
                )
            )
        with pytest.raises(CheckError, match="unknown access level"):
            suite.check_access(
                MemoryAccessOutcome(latency=10, level="l3")
            )
        with pytest.raises(CheckError, match="negative hop count"):
            suite.check_access(
                MemoryAccessOutcome(latency=10, level="l15", hops=-1)
            )

    def test_counters_and_merge(self):
        suite = CheckSuite()
        suite.check_access(MemoryAccessOutcome(latency=5, level="l1"))
        suite.check_access(MemoryAccessOutcome(latency=5, level="l1"))
        assert suite.summary() == {"access": 2}
        # Fold in counters shipped back from a measurement pool worker.
        suite.merge_counts({"access": 3, "directory": 7})
        assert suite.counts == {"access": 5, "directory": 7}
        assert suite.total_checks == 12
        # summary() is a snapshot, not a live view.
        snap = suite.summary()
        suite.merge_counts({"access": 1})
        assert snap["access"] == 5

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            inject_fault("cosmic_ray")
        for kind in FAULT_KINDS:
            with pytest.raises(ValueError, match="needs a"):
                inject_fault(kind)  # no target supplied


# ------------------------------------------------------------ result schema
class TestResultSchemaGuard:
    def _doc(self, **overrides):
        doc = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "experiment_id": "t",
            "title": "t",
            "headers": ["a"],
            "rows": [[1]],
        }
        doc.update(overrides)
        return doc

    def test_round_trips_current_version(self):
        result = ExperimentResult.from_dict(self._doc())
        assert result.experiment_id == "t"
        assert result.rows == [(1,)]

    def test_missing_schema_version_rejected_with_hint(self):
        doc = self._doc()
        del doc["schema_version"]
        with pytest.raises(ValueError) as exc:
            ExperimentResult.from_dict(doc)
        msg = str(exc.value)
        assert "no schema_version" in msg
        assert "re-run the experiment" in msg

    @pytest.mark.parametrize("version", [0, 2, 999, "1", None])
    def test_unknown_schema_version_rejected_with_hint(self, version):
        with pytest.raises(ValueError) as exc:
            ExperimentResult.from_dict(self._doc(schema_version=version))
        msg = str(exc.value)
        assert f"unsupported result schema_version {version!r}" in msg
        assert "version 1 only" in msg

    def test_from_json_applies_the_same_guard(self):
        doc = self._doc(schema_version=99)
        with pytest.raises(ValueError, match="unsupported result"):
            ExperimentResult.from_json(json.dumps(doc))


# ------------------------------------------------------ removed legacy shim
class TestLegacyRunnerStyleRemoved:
    """The pre-RunContext call styles (deprecated through PR 3's shim)
    are gone: each one raises a TypeError naming the replacement."""

    @pytest.fixture(scope="class")
    def runner(self):
        return EXPERIMENTS["table4"].resolve()

    def test_positional_bool_style_rejected(self, runner):
        with pytest.raises(TypeError, match="RunContext"):
            runner(True)

    def test_keyword_style_rejected_names_offenders(self, runner):
        with pytest.raises(TypeError, match="jobs.*quick|quick.*jobs"):
            runner(quick=True, jobs=1)

    def test_modern_style_does_not_warn(self, runner):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner(RunContext(quick=True))

    def test_mixing_context_and_legacy_kwargs_rejected(self, runner):
        with pytest.raises(TypeError, match="RunContext"):
            runner(RunContext(quick=True), quick=True)

    def test_non_context_positional_rejected(self, runner):
        with pytest.raises(TypeError, match="expected RunContext"):
            runner("quick")
