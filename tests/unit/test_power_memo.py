"""Memoized power-model hot spots are bit-identical to recomputation.

``leakage_scale`` and the V/f boot-point solve are pure functions of
hashable inputs, so ``functools.lru_cache`` may serve them from cache
only if the cached value equals a fresh computation *bitwise* — any
drift would silently corrupt every sweep. These tests compare the
cached wrappers against their own ``__wrapped__`` originals (the exact
pre-memoization code paths) and prove the caches actually engage.
"""

from __future__ import annotations

from dataclasses import replace

from repro.power.calibration import DEFAULT_CALIBRATION
from repro.power.technology import leakage_scale, static_power_w
from repro.power.vf_curve import VfCurve, _cached_boot_point
from repro.silicon.variation import CHIP1, CHIP2, TYPICAL

VDD_GRID = [0.75, 0.85, 0.9, 1.0, 1.05, 1.1, 1.2]
TEMP_GRID = [25.0, 45.0, 60.0, 85.0]


class TestLeakageScaleMemo:
    def test_bit_identical_to_uncached(self):
        for vdd in VDD_GRID:
            for temp in TEMP_GRID:
                cached = leakage_scale(vdd, temp)
                fresh = leakage_scale.__wrapped__(
                    vdd, temp, DEFAULT_CALIBRATION
                )
                assert cached == fresh  # exact, no tolerance

    def test_cache_engages_on_repeat_lookups(self):
        leakage_scale.cache_clear()
        for _ in range(3):
            for vdd in VDD_GRID:
                leakage_scale(vdd, 45.0)
        info = leakage_scale.cache_info()
        assert info.misses == len(VDD_GRID)
        assert info.hits == 2 * len(VDD_GRID)

    def test_distinct_calibrations_get_distinct_entries(self):
        hot = replace(
            DEFAULT_CALIBRATION,
            leak_per_volt=DEFAULT_CALIBRATION.leak_per_volt * 1.5,
        )
        # Off-nominal VDD so the perturbed coefficient actually bites
        # (at vdd_nom the voltage term is zero for any coefficient).
        a = leakage_scale(1.1, 60.0, DEFAULT_CALIBRATION)
        b = leakage_scale(1.1, 60.0, hot)
        assert a != b
        assert b == leakage_scale.__wrapped__(1.1, 60.0, hot)

    def test_static_power_unchanged_through_cache(self):
        # static_power_w routes its VDD share through the memoized
        # leakage_scale; the composite stays exact too.
        for vdd in VDD_GRID:
            got = static_power_w(vdd, vdd + 0.05, 45.0)
            again = static_power_w(vdd, vdd + 0.05, 45.0)
            assert got == again
            assert got[0] > 0 and got[1] > 0


class TestBootFrequencyMemo:
    def test_bit_identical_to_direct_solve(self):
        for persona in (TYPICAL, CHIP1, CHIP2):
            for vdd in VDD_GRID:
                cached = VfCurve(persona).boot_frequency(vdd)
                fresh = VfCurve(persona)._solve_boot_frequency(vdd)
                assert cached == fresh  # frozen VfPoint, field-exact

    def test_cache_shared_across_curve_instances(self):
        # Sweep runners build a fresh VfCurve per grid point; the
        # solve must still be paid once per (persona, calib, vdd).
        _cached_boot_point.cache_clear()
        for _ in range(4):
            VfCurve(CHIP2).boot_frequency(1.0)
        info = _cached_boot_point.cache_info()
        assert info.misses == 1
        assert info.hits == 3

    def test_distinct_personas_do_not_collide(self):
        fast = VfCurve(CHIP1).boot_frequency(1.0)
        slow = VfCurve(CHIP2).boot_frequency(1.0)
        assert fast.fmax_hz != slow.fmax_hz

    def test_distinct_ambient_does_not_collide(self):
        cold = VfCurve(CHIP1, ambient_c=25.0).boot_frequency(1.2)
        hot = VfCurve(CHIP1, ambient_c=60.0).boot_frequency(1.2)
        # Chip #1 is thermally limited at 1.2V; ambient moves the
        # achievable clock, so a shared cache line would be a bug.
        assert cold.fmax_hz != hot.fmax_hz
