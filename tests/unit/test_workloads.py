"""Unit tests for repro.workloads: EPI tests, memory tests, NoC
streams, microbenchmarks, phases, SPEC profiles."""

from __future__ import annotations

import pytest

from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.cache.addressing import AddressMap
from repro.isa.operands import OperandPolicy
from repro.workloads.base import TileProgram, normalize_workload
from repro.workloads.epi_tests import (
    FIGURE11_INSTRUCTIONS,
    STX_NOP_PAD,
    UNROLL,
    build_epi_workload,
    build_named_epi_workload,
    has_operand_sweep,
)
from repro.workloads.memtests import SCENARIOS, build_memtest
from repro.workloads.microbench import (
    hist_program,
    hist_workload,
    hp_mixed_program,
    hp_thread_mapping,
    hp_tile,
    int_program,
    microbench_core_ids,
)
from repro.workloads.noc_tests import (
    PATTERNS,
    payload_words,
    run_noc_stream,
)
from repro.workloads.phases import (
    interleaved_schedule,
    phase_tile,
    synchronized_schedule,
)
from repro.workloads.spec import SPEC_PROFILES, replay_ledger


class TestWorkloadBase:
    def test_tile_program_validation(self):
        with pytest.raises(ValueError):
            TileProgram(programs=[])

    def test_normalize_accepts_lists(self):
        from repro.isa.assembler import assemble

        program = assemble("nop")
        normalized = normalize_workload({0: [program]})
        assert isinstance(normalized[0], TileProgram)


class TestEpiTests:
    def test_unrolled_by_20(self):
        test, tp = build_epi_workload("add", OperandPolicy.RANDOM, 0)
        mix = tp.programs[0].instruction_mix()
        assert mix["add"] == UNROLL
        assert mix["bne"] == 1  # the loop-back branch

    def test_min_operands_are_zero(self):
        _, tp = build_epi_workload("add", OperandPolicy.MINIMUM, 0)
        assert all(v == 0 for r, v in tp.init_regs.items() if 8 <= r <= 15)

    def test_max_operands_all_ones(self):
        _, tp = build_epi_workload("add", OperandPolicy.MAXIMUM, 0)
        assert tp.init_regs[8] == (1 << 64) - 1

    def test_sdivx_nonzero_divisors(self):
        _, tp = build_epi_workload("sdivx", OperandPolicy.RANDOM, 0)
        for reg in (9, 11, 13, 15):
            assert tp.init_regs[reg] % 2 == 1

    def test_stx_nf_has_nop_padding(self):
        test, tp = build_named_epi_workload(
            "stx_nf", OperandPolicy.RANDOM, 0
        )
        mix = tp.programs[0].instruction_mix()
        assert test.fillers_per_target == STX_NOP_PAD
        assert mix["nop"] == UNROLL * STX_NOP_PAD

    def test_stx_f_back_to_back(self):
        test, tp = build_named_epi_workload(
            "stx_f", OperandPolicy.RANDOM, 0
        )
        mix = tp.programs[0].instruction_mix()
        assert "nop" not in mix
        assert test.fillers_per_target == 0

    def test_store_addresses_private_per_tile(self):
        _, tp0 = build_epi_workload("stx", OperandPolicy.RANDOM, 0)
        _, tp9 = build_epi_workload("stx", OperandPolicy.RANDOM, 9)
        assert tp0.init_regs[4] != tp9.init_regs[4]

    def test_load_memory_image(self):
        _, tp = build_epi_workload("ldx", OperandPolicy.MAXIMUM, 0)
        assert len(tp.memory_image) == UNROLL
        assert all(v == (1 << 64) - 1 for v in tp.memory_image.values())

    def test_fp_tests_set_fregs(self):
        _, tp = build_epi_workload("fmuld", OperandPolicy.RANDOM, 0)
        assert len(tp.init_fregs) > 0

    def test_figure11_coverage(self):
        names = [n for n, _ in FIGURE11_INSTRUCTIONS]
        assert "sdivx" in names and "stx_f" in names
        assert len(names) == 16  # the 16 bars of Figure 11

    def test_operand_sweep_exclusions(self):
        assert not has_operand_sweep("nop")
        assert not has_operand_sweep("beq")
        assert has_operand_sweep("mulx")

    def test_all_figure11_workloads_assemble(self):
        for name, _ in FIGURE11_INSTRUCTIONS:
            for policy in OperandPolicy:
                test, tp = build_named_epi_workload(name, policy, 3)
                tp.programs[0].validate()


class TestMemTests:
    def test_l1_hit_addresses_distinct_lines(self, config):
        mt = build_memtest("l1_hit", 0, config)
        lines = {a // 16 for a in mt.addresses}
        assert len(lines) == UNROLL

    def test_l2_local_same_l1_set_same_home(self, config):
        mt = build_memtest("l2_hit_local", 3, config)
        amap = AddressMap(config)
        sets = {(a // 16) % config.l1d.num_sets for a in mt.addresses}
        assert len(sets) == 1
        assert all(amap.home_tile(a) == 3 for a in mt.addresses)
        assert mt.home_tile == 3 and mt.hops == 0

    def test_remote_4_hops_straight(self, config):
        mt = build_memtest("l2_hit_remote_4", 0, config)
        fp = Floorplan(config)
        assert fp.hops(0, mt.home_tile) == 4
        assert not fp.has_turn(0, mt.home_tile)

    def test_remote_8_hops_turns(self, config):
        mt = build_memtest("l2_hit_remote_8", 0, config)
        fp = Floorplan(config)
        assert fp.hops(0, mt.home_tile) == 8
        assert fp.has_turn(0, mt.home_tile)

    def test_l2_miss_same_l2_set(self, config):
        mt = build_memtest("l2_miss_local", 0, config)
        sets = {
            (a // 64) % config.l2_slice.num_sets for a in mt.addresses
        }
        assert len(sets) == 1  # all alias one 4-way set -> always miss

    def test_unknown_scenario(self, config):
        with pytest.raises(ValueError):
            build_memtest("l3_hit", 0, config)

    def test_scenarios_cover_table7(self):
        assert len(SCENARIOS) == 5


class TestNocStreams:
    def test_patterns_alternate(self):
        hsw = payload_words("HSW", 0)
        assert hsw[0] == 0x3333333333333333 and hsw[1] == 0

    def test_pattern_phase_continues_across_packets(self):
        first = payload_words("FSW", 0)
        second = payload_words("FSW", 1)
        # The alternation carries across the packet boundary: the last
        # payload of one packet differs from the first of the next.
        assert first[-1] != second[0]
        assert all(a != b for a, b in zip(second, second[1:]))

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            payload_words("XSW", 0)

    def test_stream_delivers_everything(self):
        run = run_noc_stream("HSW", hops=4, packets=10)
        assert run.packets_delivered == 10
        assert run.flits_injected == 70

    def test_zero_hop_no_flit_hops(self):
        run = run_noc_stream("FSW", hops=0, packets=5)
        assert run.ledger.count("noc2.flit_hop") == 0

    def test_hops_scale_flit_hops(self):
        r2 = run_noc_stream("FSW", hops=2, packets=10)
        r4 = run_noc_stream("FSW", hops=4, packets=10)
        assert r4.ledger.count("noc2.flit_hop") == pytest.approx(
            2 * r2.ledger.count("noc2.flit_hop")
        )

    def test_activity_ordering(self):
        activities = {}
        for pattern in PATTERNS:
            run = run_noc_stream(pattern, hops=4, packets=20)
            activities[pattern] = run.ledger.mean_activity(
                "noc2.flit_hop"
            )
        assert activities["NSW"] < activities["HSW"] < activities["FSW"]
        assert activities["FSWA"] == pytest.approx(
            activities["FSW"], abs=0.05
        )

    def test_all_patterns_defined(self):
        assert PATTERNS == ("NSW", "HSW", "FSW", "FSWA")


class TestMicrobench:
    def test_int_program_infinite_and_finite(self):
        infinite = int_program()
        finite = int_program(10)
        assert "set" not in infinite.instruction_mix()
        assert finite.instruction_mix()["set"] == 1

    def test_hp_mapping_1tc_alternates(self):
        mapping = hp_thread_mapping([0, 1, 2, 3], 1)
        kinds = [mapping[c][0] for c in (0, 1, 2, 3)]
        assert kinds == ["compute", "mixed", "compute", "mixed"]

    def test_hp_mapping_2tc_one_of_each(self):
        mapping = hp_thread_mapping([0, 1], 2)
        assert all(v == ["compute", "mixed"] for v in mapping.values())

    def test_hp_mixed_has_memory_ops(self):
        mix = hp_mixed_program().instruction_mix()
        assert mix.get("ldx", 0) >= 1 and mix.get("stx", 0) >= 1

    def test_hp_tile_unknown_kind(self):
        with pytest.raises(ValueError):
            hp_tile(["turbo"], 0)

    def test_hist_constant_total_work(self):
        few = hist_workload([0, 1], 1, total_elements=1024)
        many = hist_workload(list(range(8)), 2, total_elements=1024)
        assert few.total_elements == many.total_elements == 1024
        assert many.elements_per_thread < few.elements_per_thread

    def test_hist_program_structure(self):
        program = hist_program(0x1000, 4, repeat_forever=False)
        mix = program.instruction_mix()
        assert mix["cas"] == 1
        assert mix["stx"] == 2  # bucket update + lock release

    def test_core_ids_validation(self):
        assert microbench_core_ids(3) == [0, 1, 2]
        with pytest.raises(ValueError):
            microbench_core_ids(26)


class TestPhases:
    def test_tiles(self):
        compute = phase_tile("compute")
        idle = phase_tile("idle")
        assert len(compute.programs) == 2
        assert "nop" in idle.programs[0].instruction_mix()
        with pytest.raises(ValueError):
            phase_tile("sleep")

    def test_synchronized_swings_fully(self):
        s = synchronized_schedule(period_s=10.0)
        assert s.compute_threads_at(1.0) == 50
        assert s.compute_threads_at(6.0) == 0

    def test_interleaved_stays_balanced(self):
        s = interleaved_schedule(period_s=10.0)
        assert s.compute_threads_at(1.0) == 26
        assert s.compute_threads_at(6.0) == 24


class TestSpecProfiles:
    def test_all_table9_rows_present(self):
        assert len(SPEC_PROFILES) == 13

    def test_slowdowns_in_paper_band(self):
        for profile in SPEC_PROFILES.values():
            assert 3.0 <= profile.slowdown() <= 10.1, profile.name

    def test_omnetpp_worst(self):
        slowdowns = {
            name: p.slowdown() for name, p in SPEC_PROFILES.items()
        }
        assert max(slowdowns, key=slowdowns.get) == "omnetpp"

    def test_replay_ledger_consistency(self):
        profile = SPEC_PROFILES["gcc-166"]
        ledger, cycles = replay_ledger(profile)
        n = profile.instructions
        assert ledger.count("core.fetch") == pytest.approx(n)
        assert cycles == pytest.approx(n * profile.piton_cpi())
        # Loads recorded match the profile mix.
        assert ledger.count("instr.load") == pytest.approx(
            n * profile.load_frac
        )

    def test_replay_events_all_priced(self):
        from repro.power.chip_power import ChipPowerModel

        model = ChipPowerModel()
        for profile in SPEC_PROFILES.values():
            ledger, _ = replay_ledger(profile)
            assert model.unknown_events(ledger) == []
