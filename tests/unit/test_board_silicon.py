"""Unit tests for repro.board (instruments, protocol, test system) and
repro.silicon (personas, yield)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.board.monitor import MeasurementProtocol
from repro.board.psu import BenchSupply, OnBoardSupply
from repro.board.sense import CurrentSenseChannel, SenseResistor, VoltageMonitor
from repro.board.testboard import ExperimentalSystem, PitonTestBoard
from repro.power.chip_power import RailPower
from repro.silicon.variation import (
    CHIP1,
    CHIP2,
    CHIP3,
    ChipPersona,
    sample_persona,
)
from repro.silicon.yield_model import (
    ChipStatus,
    PAPER_SHARES,
    YieldModel,
    YieldParameters,
)
from repro.util.events import EventLedger
from repro.util.rng import RngFactory


class TestPsu:
    def test_remote_sense_holds_setpoint(self):
        psu = BenchSupply("VDD", 1.0)
        assert psu.voltage_at_load(5.0) == pytest.approx(1.0)

    def test_no_remote_sense_droops(self):
        psu = BenchSupply("X", 1.0, remote_sense=False)
        assert psu.voltage_at_load(5.0) < 1.0

    def test_current_limit(self):
        with pytest.raises(OverflowError):
            BenchSupply("X", 1.0, max_current_a=1.0).voltage_at_load(2.0)

    def test_setpoint_resolution(self):
        psu = BenchSupply("X", 1.0, setpoint_resolution_v=0.01)
        psu.set_voltage(1.0042)
        assert psu.voltage_at_load(0.0) == pytest.approx(1.0)

    def test_onboard_coarser(self):
        ob = OnBoardSupply("onboard", 1.0)
        bench = BenchSupply("bench", 1.0)
        assert ob.setpoint_resolution_v > bench.setpoint_resolution_v

    def test_invalid_setpoint(self):
        with pytest.raises(ValueError):
            BenchSupply("X", 1.0).set_voltage(0)

    def test_negative_current(self):
        with pytest.raises(ValueError):
            BenchSupply("X", 1.0).voltage_at_load(-1.0)


class TestSense:
    def test_resistor_drop(self):
        assert SenseResistor(0.005).drop_v(2.0) == pytest.approx(0.01)

    def test_resistor_validation(self):
        with pytest.raises(ValueError):
            SenseResistor(0.0)

    def test_monitor_quantizes(self):
        mon = VoltageMonitor(
            np.random.default_rng(0), lsb_v=0.001, noise_sigma_v=0.0
        )
        assert mon.read(1.0004) == pytest.approx(1.0)

    def test_current_channel_accuracy(self):
        rng = np.random.default_rng(1)
        chan = CurrentSenseChannel(SenseResistor(), rng)
        readings = [chan.read_current_a(2.0, 1.0) for _ in range(200)]
        assert np.mean(readings) == pytest.approx(2.0, rel=0.01)


class TestMeasurementProtocol:
    def test_sample_count_and_noise(self):
        protocol = MeasurementProtocol(np.random.default_rng(2))
        power = RailPower(2.0, 0.3, 0.1)
        m = protocol.measure_steady(
            power, {"vdd": 1.0, "vcs": 1.05, "vio": 1.8}
        )
        assert m.vdd.value == pytest.approx(2.0, rel=0.01)
        assert m.vdd.sigma > 0  # instrument noise shows up
        assert m.total.value == pytest.approx(2.4, rel=0.01)

    def test_time_varying_power_widens_sigma(self):
        protocol = MeasurementProtocol(np.random.default_rng(3))
        steady = protocol.measure_steady(
            RailPower(2.0, 0.0001, 0.0001),
            {"vdd": 1.0, "vcs": 1.05, "vio": 1.8},
        )

        def wobble(t: float) -> RailPower:
            return RailPower(2.0 + 0.2 * np.sin(t), 0.0001, 0.0001)

        protocol2 = MeasurementProtocol(np.random.default_rng(3))
        wobbly = protocol2.measure(
            wobble, {"vdd": 1.0, "vcs": 1.05, "vio": 1.8}
        )
        assert wobbly.vdd.sigma > 5 * steady.vdd.sigma

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(np.random.default_rng(0), poll_hz=0)


class TestExperimentalSystem:
    def test_default_rails(self):
        board = PitonTestBoard()
        rails = board.rail_voltages()
        assert rails == {"vdd": 1.0, "vcs": 1.05, "vio": 1.8}

    def test_set_operating_point(self):
        system = ExperimentalSystem()
        system.set_operating_point(0.9, 0.95, 400e6)
        assert system.freq_hz == 400e6
        assert system.board.rail_voltages()["vdd"] == pytest.approx(0.9)

    def test_workload_power_above_idle(self):
        system = ExperimentalSystem(seed=5)
        ledger = EventLedger()
        ledger.record("instr.int_add", 10_000)
        ledger.record("core.active_cycle", 10_000)
        busy = system.measure_workload(ledger, 10_000).core.value
        idle = system.measure_idle().core.value
        assert busy > idle

    def test_workload_needs_window(self):
        system = ExperimentalSystem()
        with pytest.raises(ValueError):
            system.measure_workload(EventLedger(), None)

    def test_self_heating_visible(self):
        system = ExperimentalSystem()
        cold = system.settle_temperature()
        ledger = EventLedger()
        ledger.record("instr.int_add", 1_000_000)
        hot = system.settle_temperature(ledger, 10_000)
        assert hot > cold > system.cooling.ambient_c


class TestPersonas:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChipPersona("bad", speed=3.0)

    def test_paper_chip_relationships(self):
        assert CHIP1.leak > CHIP2.leak > CHIP3.leak
        assert CHIP1.speed > CHIP2.speed > CHIP3.speed

    def test_sampling_deterministic(self):
        a = sample_persona(np.random.default_rng(1), 0)
        b = sample_persona(np.random.default_rng(1), 0)
        assert a == b

    def test_speed_leak_correlation(self):
        rng = np.random.default_rng(7)
        personas = [sample_persona(rng, i) for i in range(400)]
        speeds = np.array([p.speed for p in personas])
        leaks = np.log([p.leak for p in personas])
        corr = np.corrcoef(speeds, leaks)[0, 1]
        assert corr > 0.5  # fast silicon leaks more


class TestYieldModel:
    def test_expected_shares_match_table4(self):
        expected = YieldParameters().expected_shares()
        for status, share in PAPER_SHARES.items():
            assert expected[status] == pytest.approx(share, abs=0.005), (
                status
            )

    def test_deterministic_per_die(self):
        model = YieldModel(rngs=RngFactory(3))
        assert model.test_die(5).status == model.test_die(5).status

    def test_lot_statistics_converge(self):
        model = YieldModel(rngs=RngFactory(11))
        summary = model.test_lot(4000)
        good = summary.percentage(ChipStatus.GOOD)
        assert good == pytest.approx(59.4, abs=3.0)

    def test_repairability_flags(self):
        assert ChipStatus.UNSTABLE_DETERMINISTIC.repairable
        assert not ChipStatus.BAD_VCS_SHORT.repairable

    def test_summary_counts(self):
        model = YieldModel(rngs=RngFactory(0))
        summary = model.test_lot(32)
        assert summary.tested == 32
        total = sum(summary.count(s) for s in ChipStatus)
        assert total == 32
