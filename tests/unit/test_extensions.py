"""Unit tests for the extension substrates: structural composition,
power reporting, CDR, multi-chip modelling, SRAM repair, and MITTS
integration into the memory path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.params import PitonConfig
from repro.cache.cdr import CdrRegistry, CdrViolation, CoherenceDomain, Region
from repro.cache.system import CoherentMemorySystem, fixed_offchip_model
from repro.chip.chip import Chip
from repro.chip.multichip import (
    INTERCHIP_CROSSING_CYCLES,
    MultiChipTopology,
)
from repro.chip.tile import Tile
from repro.noc.mitts import MittsBin, MittsShaper
from repro.power.chip_power import OperatingPoint
from repro.power.report import PowerReport, block_of_event
from repro.silicon.sram_repair import (
    Defect,
    RepairFlow,
    SramArray,
    allocate_spares,
)
from repro.util.events import EventLedger


class TestStructuralComposition:
    def test_tile_blocks_cover_figure2b(self):
        tile = Tile(0)
        names = {b.name for b in tile.blocks}
        assert {
            "core", "l15", "l2_slice", "noc1_router", "noc2_router",
            "noc3_router", "fpu", "mitts", "ccx",
        } <= names

    def test_block_area_lookup(self):
        tile = Tile(0)
        assert tile.block_area_mm2("core") == pytest.approx(
            1.17459 * 0.47, rel=1e-6
        )
        with pytest.raises(KeyError):
            tile.block("gpu")

    def test_events_of_block(self):
        tile = Tile(0)
        ledger = EventLedger()
        ledger.record("l2.read", 5)
        ledger.record("dir.lookup", 5)
        ledger.record("instr.int_add", 3)
        events = tile.events_of_block("l2_slice", ledger)
        assert set(events) == {"l2.read", "dir.lookup"}

    def test_chip_summary(self):
        chip = Chip()
        summary = chip.summary()
        assert summary["tiles"] == 25
        assert summary["threads"] == 50
        assert summary["die_mm2"] == pytest.approx(36.0)

    def test_chip_tile_access(self):
        chip = Chip()
        assert chip.tile(24).tile_id == 24
        with pytest.raises(ValueError):
            chip.tile(25)

    def test_chip_block_area(self):
        chip = Chip()
        assert chip.chip_block_area_mm2("io_cells") > 0
        with pytest.raises(KeyError):
            chip.chip_block_area_mm2("dsp")


class TestPowerReport:
    def test_block_of_event(self):
        assert block_of_event("instr.fp_mul_d") == "fpu"
        assert block_of_event("instr.int_add") == "core"
        assert block_of_event("l2.read") == "l2+directory"
        assert block_of_event("noc2.flit_hop") == "noc2"
        assert block_of_event("weird.thing") == "other"

    def test_breakdown_sums_to_event_power(self):
        from repro.power.chip_power import ChipPowerModel

        ledger = EventLedger()
        ledger.record("instr.int_add", 1000)
        ledger.record("l2.read", 100)
        ledger.record("noc1.flit_hop", 300)
        ledger.record("io.beat", 10)
        op = OperatingPoint()
        report = PowerReport()
        blocks = report.active_breakdown(ledger, 1000, op)
        total = sum(b.active_w for b in blocks)
        expected = ChipPowerModel().event_power(ledger, 1000, op).total_w
        assert total == pytest.approx(expected, rel=1e-9)

    def test_idle_breakdown_sums_to_idle(self):
        report = PowerReport()
        op = OperatingPoint()
        parts = report.idle_breakdown(op)
        idle = report.model.idle_power(op)
        assert sum(parts.values()) == pytest.approx(
            idle.vdd_w + idle.vcs_w, rel=1e-9
        )
        # The core block dominates idle, as its area share dictates.
        assert max(parts, key=parts.get) == "core"

    def test_render(self):
        ledger = EventLedger()
        ledger.record("instr.int_add", 100)
        text = PowerReport().render(ledger, 100, OperatingPoint())
        assert "core" in text and "active mW" in text


class TestCdr:
    def make(self):
        registry = CdrRegistry()
        tenant = registry.create_domain("tenant0", members=[0, 1, 2])
        registry.assign_region(tenant, 0x10000, 0x1000)
        return registry, tenant

    def test_member_allowed(self):
        registry, _ = self.make()
        registry.check(1, 0x10400)  # no raise

    def test_outsider_rejected(self):
        registry, _ = self.make()
        with pytest.raises(CdrViolation):
            registry.check(9, 0x10400)

    def test_unassigned_addresses_global(self):
        registry, _ = self.make()
        registry.check(24, 0x90000)  # global: fine

    def test_region_overlap_rejected(self):
        registry, tenant = self.make()
        with pytest.raises(ValueError, match="overlaps"):
            registry.assign_region(tenant, 0x10800, 0x1000)

    def test_region_validation(self):
        with pytest.raises(ValueError):
            Region(-1, 10)
        with pytest.raises(ValueError):
            Region(0, 0)

    def test_allowed_sharers(self):
        registry, _ = self.make()
        assert registry.allowed_sharers(0x10010, 25) == {0, 1, 2}
        assert registry.allowed_sharers(0x90000, 25) == set(range(25))

    def test_membership_mutation(self):
        domain = CoherenceDomain(0, "d")
        domain.admit(5)
        assert 5 in domain
        domain.evict_member(5)
        assert 5 not in domain

    def test_enforced_in_memory_system(self):
        registry = CdrRegistry()
        tenant = registry.create_domain("t", members=[0])
        registry.assign_region(tenant, 0x4000, 0x1000)
        ms = CoherentMemorySystem(
            PitonConfig(), offchip=fixed_offchip_model(50), cdr=registry
        )
        ms.load(0, 0x4100)  # member: fine
        with pytest.raises(CdrViolation):
            ms.load(3, 0x4100)
        with pytest.raises(CdrViolation):
            ms.store(3, 0x4100)
        with pytest.raises(CdrViolation):
            ms.atomic(3, 0x4100)
        ms.check_invariants()


class TestMultiChip:
    def test_socket_arithmetic(self):
        topo = MultiChipTopology(sockets_x=2, sockets_y=2)
        assert topo.socket_count == 4
        assert topo.total_tiles == 100
        assert topo.socket_of(30) == 1
        assert topo.local_tile(30) == 5
        assert topo.socket_hops(0, 3) == 2

    def test_on_socket_matches_single_chip(self):
        topo = MultiChipTopology()
        # Requester 0, home 4 on the same socket: the Table VII number.
        assert topo.l2_access_cycles(0, 4) == 42

    def test_cross_socket_premium(self):
        topo = MultiChipTopology()
        same = topo.l2_access_cycles(0, 4)
        cross = topo.l2_access_cycles(0, 25 + 4)
        assert cross >= same + 2 * INTERCHIP_CROSSING_CYCLES

    def test_premium_grows_with_socket_distance(self):
        topo = MultiChipTopology(sockets_x=4, sockets_y=1)
        near = topo.l2_access_cycles(0, 25 + 0)
        far = topo.l2_access_cycles(0, 75 + 0)
        assert far > near

    def test_cross_socket_pad_energy(self):
        topo = MultiChipTopology()
        local = topo.l2_access_energy_events(0, 4)
        remote = topo.l2_access_energy_events(0, 25 + 4)
        assert local.count("io.beat") == 0
        assert remote.count("io.beat") > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiChipTopology(sockets_x=0)
        with pytest.raises(ValueError):
            MultiChipTopology().socket_of(999)

    def test_mean_penalty_positive(self):
        topo = MultiChipTopology()
        assert topo.mean_remote_penalty_cycles() > 100


class TestSramRepair:
    def test_single_defect_repaired(self):
        array = SramArray("a", 64, 64, defects=[Defect(3, 7)])
        plan = allocate_spares(array)
        assert plan is not None and plan.covers(array.defects)

    def test_row_cluster_forces_row_replacement(self):
        defects = [Defect(5, c) for c in (1, 2, 3)]  # > 2 spare cols
        array = SramArray("a", 64, 64, defects=defects)
        plan = allocate_spares(array)
        assert plan is not None
        assert 5 in plan.replaced_rows

    def test_unrepairable(self):
        # Three rows each forcing row replacement, but only 2 spares.
        defects = [
            Defect(r, c) for r in (1, 2, 3) for c in (0, 1, 2)
        ]
        array = SramArray("a", 64, 64, defects=defects)
        assert allocate_spares(array) is None

    def test_plan_minimal_for_diagonal(self):
        # Two defects on a diagonal: 2 columns (or 2 rows) suffice.
        array = SramArray(
            "a", 64, 64, defects=[Defect(1, 1), Defect(2, 2)]
        )
        plan = allocate_spares(array)
        assert (
            len(plan.replaced_rows) + len(plan.replaced_cols) == 2
        )

    def test_no_defects_trivial(self):
        plan = allocate_spares(SramArray("a", 8, 8))
        assert plan.covers([])
        assert not plan.replaced_rows and not plan.replaced_cols

    def test_defect_bounds(self):
        with pytest.raises(ValueError):
            SramArray("a", 8, 8, defects=[Defect(9, 0)])

    def test_flow_over_die(self):
        rng = np.random.default_rng(0)
        outcome = RepairFlow().repair_random_die(rng, hard_defects=3)
        assert outcome.repaired
        assert outcome.arrays_repaired >= 1

    def test_flow_fails_on_blasted_die(self):
        rng = np.random.default_rng(1)
        outcome = RepairFlow().repair_random_die(
            rng, hard_defects=200, macros=1
        )
        assert not outcome.repaired


class TestMittsInMemorySystem:
    def test_shaped_tile_slower(self):
        def misses(shaped: bool) -> int:
            ms = CoherentMemorySystem(
                PitonConfig(), offchip=fixed_offchip_model(100)
            )
            if shaped:
                ms.set_mitts(
                    0,
                    MittsShaper(
                        [MittsBin(0, 0), MittsBin(500, 2)],
                        epoch_cycles=5_000,
                    ),
                )
            now = 0
            total = 0
            for i in range(10):
                out = ms.load(0, i * 1 << 20, now=now)
                now += out.latency
                total = now
            return total

        assert misses(shaped=True) > misses(shaped=False)

    def test_set_mitts_validation(self):
        ms = CoherentMemorySystem(PitonConfig())
        with pytest.raises(ValueError):
            ms.set_mitts(99, MittsShaper.unlimited())

    def test_stall_events_recorded(self):
        ms = CoherentMemorySystem(
            PitonConfig(), offchip=fixed_offchip_model(100)
        )
        ms.set_mitts(
            0,
            MittsShaper(
                [MittsBin(0, 0), MittsBin(800, 1)], epoch_cycles=8_000
            ),
        )
        now = 0
        for i in range(4):
            out = ms.load(0, i * (1 << 20), now=now)
            now += out.latency
        assert ms.ledger.count("mitts.stall_cycle") > 0
