"""Unit tests for repro.core: semantics, store buffer, pipeline timing,
multicore engine."""

from __future__ import annotations

import pytest

from repro.core.multicore import MulticoreEngine, SharedMemory
from repro.core.pipeline import ROLLBACK_PENALTY
from repro.core.semantics import execute
from repro.core.storebuffer import StoreBuffer, StoreEntry
from repro.core.thread import ThreadContext
from repro.isa.assembler import assemble
from repro.isa.instructions import WORD_MASK
from repro.isa.program import Instruction, flat_program


def make_thread(source: str) -> ThreadContext:
    return ThreadContext(thread_id=0, program=assemble(source))


class TestSemantics:
    def setup_method(self):
        self.memory = SharedMemory()

    def run_one(self, source: str, regs=None, fregs=None):
        thread = make_thread(source)
        for r, v in (regs or {}).items():
            thread.write_int(r, v)
        for r, v in (fregs or {}).items():
            thread.write_fp(r, v)
        out = execute(thread.program[0], thread, self.memory)
        return thread, out

    def test_add(self):
        t, _ = self.run_one("add %r1, %r2, %r3", {1: 5, 2: 7})
        assert t.read_int(3) == 12

    def test_add_wraps_64bit(self):
        t, _ = self.run_one("add %r1, 1, %r3", {1: WORD_MASK})
        assert t.read_int(3) == 0

    def test_sub_negative_wraps(self):
        t, _ = self.run_one("sub %r1, %r2, %r3", {1: 1, 2: 2})
        assert t.read_int(3) == WORD_MASK

    def test_logic(self):
        t, _ = self.run_one("xor %r1, %r2, %r3", {1: 0xF0, 2: 0xFF})
        assert t.read_int(3) == 0x0F

    def test_shift(self):
        t, _ = self.run_one("sll %r1, 4, %r3", {1: 1})
        assert t.read_int(3) == 16
        t, _ = self.run_one("srl %r1, 4, %r3", {1: 16})
        assert t.read_int(3) == 1

    def test_mulx(self):
        t, _ = self.run_one("mulx %r1, %r2, %r3", {1: 3, 2: 7})
        assert t.read_int(3) == 21

    def test_sdivx(self):
        t, _ = self.run_one("sdivx %r1, %r2, %r3", {1: 22, 2: 7})
        assert t.read_int(3) == 3

    def test_sdivx_by_zero_saturates(self):
        t, _ = self.run_one("sdivx %r1, %r2, %r3", {1: 1, 2: 0})
        assert t.read_int(3) == WORD_MASK

    def test_sdivx_signed(self):
        minus_six = (-6) & WORD_MASK
        t, _ = self.run_one("sdivx %r1, %r2, %r3", {1: minus_six, 2: 2})
        assert t.read_int(3) == (-3) & WORD_MASK

    def test_r0_is_zero(self):
        t, _ = self.run_one("add %r0, 5, %r3", {})
        assert t.read_int(3) == 5
        t2, _ = self.run_one("add %r1, 1, %r0", {1: 7})
        assert t2.read_int(0) == 0

    def test_load(self):
        self.memory.write(0x100, 0xDEAD)
        t, out = self.run_one("ldx [%r1 + 0x10], %r3", {1: 0xF0})
        assert t.read_int(3) == 0xDEAD
        assert out.mem_addr == 0x100
        assert out.is_load

    def test_store_value_deferred(self):
        t, out = self.run_one("stx %r2, [%r1]", {1: 0x200, 2: 42})
        assert out.is_store and out.store_value == 42
        # The architectural write happens at store-buffer drain time.
        assert self.memory.read(0x200) == 0

    def test_branch_taken(self):
        thread = make_thread("loop:\n nop\n beq %r1, loop")
        thread.pc = 1
        out = execute(thread.program[1], thread, self.memory)
        assert out.branch_taken and thread.pc == 0

    def test_branch_not_taken(self):
        thread = make_thread("loop:\n nop\n bne %r1, loop\n nop")
        thread.pc = 1
        out = execute(thread.program[1], thread, self.memory)
        assert out.branch_taken is False
        assert thread.pc == 2

    def test_fp_ops(self):
        t, _ = self.run_one(
            "fmuld %f1, %f2, %f3", fregs={1: 1.5, 2: 4.0}
        )
        assert t.read_fp(3) == 6.0

    def test_fp_div_by_zero(self):
        t, _ = self.run_one(
            "fdivd %f1, %f2, %f3", fregs={1: 1.0, 2: 0.0}
        )
        assert t.read_fp(3) == float("inf")

    def test_cas_success(self):
        self.memory.write(0x300, 0)
        t, out = self.run_one(
            "cas [%r1], %r2, %r3", {1: 0x300, 2: 0, 3: 99}
        )
        assert self.memory.read(0x300) == 99
        assert t.read_int(3) == 0
        assert out.is_atomic

    def test_cas_failure(self):
        self.memory.write(0x300, 7)
        t, _ = self.run_one(
            "cas [%r1], %r2, %r3", {1: 0x300, 2: 0, 3: 99}
        )
        assert self.memory.read(0x300) == 7
        assert t.read_int(3) == 7

    def test_activity_from_operands(self):
        _, out = self.run_one(
            "add %r1, %r2, %r3", {1: WORD_MASK, 2: WORD_MASK}
        )
        assert out.activity == 1.0
        _, out0 = self.run_one("add %r1, %r2, %r3", {1: 0, 2: 0})
        assert out0.activity == 0.0


class TestStoreBuffer:
    def test_capacity(self):
        sb = StoreBuffer(capacity=2, drain_cycles=10)
        sb.push(StoreEntry(0, 0, 0), now=0)
        sb.push(StoreEntry(8, 0, 0), now=0)
        assert sb.full
        with pytest.raises(OverflowError):
            sb.push(StoreEntry(16, 0, 0), now=0)

    def test_drain_timing(self):
        sb = StoreBuffer(capacity=8, drain_cycles=10)
        sb.push(StoreEntry(0, 1, 0), now=0)
        assert sb.drain_ready(now=9) is None
        entry = sb.drain_ready(now=10)
        assert entry is not None and entry.value == 1

    def test_serial_drain_rate(self):
        sb = StoreBuffer(capacity=8, drain_cycles=10)
        for i in range(3):
            sb.push(StoreEntry(8 * i, i, 0), now=0)
        drains = []
        for now in range(0, 40):
            if sb.drain_ready(now) is not None:
                drains.append(now)
        assert drains == [10, 20, 30]

    def test_next_event(self):
        sb = StoreBuffer()
        assert sb.next_event_cycle() is None
        sb.push(StoreEntry(0, 0, 0), now=5)
        assert sb.next_event_cycle() == 15

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StoreBuffer(capacity=0)


class TestPipelineTiming:
    """Timing behaviour against the paper's documented rules."""

    def run_program(self, source, cycles=None, threads=1, regs=None):
        engine = MulticoreEngine()
        programs = [assemble(source) for _ in range(threads)]
        engine.add_core(0, programs, init_regs=regs or {})
        if cycles:
            result = engine.run(cycles=cycles)
        else:
            result = engine.run(until_done=True)
        return engine, result

    def test_single_cycle_alu_ipc(self):
        src = "\n".join(["add %r1, %r2, %r3"] * 50)
        _, result = self.run_program(src)
        assert result.cycles == pytest.approx(50, abs=2)

    def test_mulx_occupies_thread(self):
        # A nop after the last mulx exposes its full 11-cycle latency
        # (a program "finishes" when its last instruction issues).
        src = "\n".join(["mulx %r1, %r2, %r3"] * 5) + "\nnop"
        _, result = self.run_program(src)
        assert result.cycles == pytest.approx(5 * 11 + 1, abs=2)

    def test_two_threads_hide_latency(self):
        # One thread of muls + one of adds: the adds fill the gaps.
        engine = MulticoreEngine()
        muls = assemble("\n".join(["mulx %r1, %r2, %r3"] * 4))
        adds = assemble("\n".join(["add %r1, %r2, %r3"] * 30))
        engine.add_core(0, [muls, adds])
        result = engine.run(until_done=True)
        # Serial would be 44 + 30; interleaved finishes in ~max(44, 34).
        assert result.cycles < 50

    def test_branch_latency(self):
        src = """
    set 10, %r1
loop:
    sub %r1, 1, %r1
    bne %r1, loop
"""
        _, result = self.run_program(src)
        # Per iteration: sub (1) + bne (3) = 4 cycles.
        assert result.cycles == pytest.approx(1 + 10 * 4, abs=3)

    def test_load_l1_hit_latency(self):
        src = "\n".join(["ldx [%r1 + 0], %r2"] * 10)
        engine = MulticoreEngine()
        program = assemble(src)
        engine.add_core(0, [program, program], init_regs={1: 0x1000})
        engine.run(until_done=True)
        core = engine.cores[0]
        # First load misses (cold), the rest hit at 3 cycles.
        assert core.stats.load_miss_rollbacks >= 1

    def test_store_buffer_full_rolls_back(self):
        src = "\n".join([f"stx %r2, [%r1 + {8 * i}]" for i in range(20)])
        engine = MulticoreEngine()
        engine.add_core(0, [assemble(src)], init_regs={1: 0x1000, 2: 5})
        engine.run(until_done=True)
        core = engine.cores[0]
        assert core.stats.store_buffer_rollbacks > 0

    def test_store_value_lands_after_drain(self):
        engine = MulticoreEngine()
        engine.add_core(
            0,
            [assemble("stx %r2, [%r1]")],
            init_regs={1: 0x80, 2: 77},
        )
        engine.run(until_done=True)
        assert engine.memory.read(0x80) == 77

    def test_rollback_penalty_constant(self):
        assert ROLLBACK_PENALTY == 6  # the 6-stage pipeline depth

    def test_ledger_records_instruction_classes(self):
        engine = MulticoreEngine()
        engine.add_core(0, [assemble("add %r1, %r2, %r3\nnop")])
        engine.run(until_done=True)
        assert engine.ledger.count("instr.int_add") == 1
        assert engine.ledger.count("instr.nop") == 1
        assert engine.ledger.count("core.fetch") == 2

    def test_thread_switch_events(self):
        engine = MulticoreEngine()
        p = assemble("\n".join(["add %r1, %r2, %r3"] * 10))
        engine.add_core(0, [p, assemble("\n".join(["nop"] * 10))])
        engine.run(until_done=True)
        assert engine.ledger.count("core.thread_switch") > 5


class TestMulticoreEngine:
    def test_add_core_validation(self):
        engine = MulticoreEngine()
        engine.add_core(0, [assemble("nop")])
        with pytest.raises(ValueError, match="already active"):
            engine.add_core(0, [assemble("nop")])
        with pytest.raises(ValueError, match="out of range"):
            engine.add_core(99, [assemble("nop")])

    def test_too_many_threads(self):
        engine = MulticoreEngine()
        with pytest.raises(ValueError):
            engine.add_core(0, [assemble("nop")] * 3)

    def test_run_requires_cores(self):
        with pytest.raises(RuntimeError, match="no active cores"):
            MulticoreEngine().run(cycles=10)

    def test_run_requires_bound(self):
        engine = MulticoreEngine()
        engine.add_core(0, [assemble("nop")])
        with pytest.raises(ValueError):
            engine.run()

    def test_livelock_detection(self):
        engine = MulticoreEngine()
        engine.add_core(0, [assemble("loop: bne %r1, loop")],
                        init_regs={1: 1})
        with pytest.raises(RuntimeError, match="did not finish"):
            engine.run(until_done=True, max_cycles=1_000)

    def test_init_regs_apply_to_all_threads(self):
        engine = MulticoreEngine()
        p = assemble("add %r8, 0, %r1")
        engine.add_core(0, [p, p], init_regs={8: 123})
        engine.run(until_done=True)
        for thread in engine.cores[0].threads:
            assert thread.read_int(1) == 123

    def test_shared_memory_visible_across_cores(self):
        engine = MulticoreEngine()
        engine.add_core(
            0, [assemble("stx %r2, [%r1]")], init_regs={1: 0x40, 2: 9}
        )
        engine.add_core(
            1,
            [assemble("\n".join(["nop"] * 40) + "\nldx [%r1], %r3")],
            init_regs={1: 0x40},
        )
        engine.run(until_done=True)
        assert engine.cores[1].threads[0].read_int(3) == 9

    def test_fast_forward_counts_stalls(self):
        engine = MulticoreEngine()
        engine.add_core(0, [assemble("sdivx %r1, %r2, %r3\nnop")],
                        init_regs={1: 10, 2: 3})
        result = engine.run(until_done=True)
        core = engine.cores[0]
        assert core.stats.cycles == result.cycles
        assert core.stats.stall_cycles >= 70


class TestSharedMemory:
    def test_word_aligned(self):
        mem = SharedMemory()
        mem.write(0x10, 5)
        assert mem.read(0x10) == 5
        assert mem.read(0x13) == 5  # same word
        assert mem.read(0x18) == 0

    def test_masking(self):
        mem = SharedMemory()
        mem.write(0, 1 << 70)
        assert mem.read(0) == (1 << 70) & WORD_MASK

    def test_load_image(self):
        mem = SharedMemory()
        mem.load_image({0x8: 1, 0x10: 2})
        assert mem.read(0x8) == 1 and mem.read(0x10) == 2
