"""Memoized OpcodeInfo resolution (repro.isa.program.resolve_infos).

Sweep grids rebuild the same workload at every grid point; the
per-instruction OpcodeInfo table used to be re-resolved on every
rebuild. It is now a process-wide memoized tuple: same instruction
stream -> the *same* table object, and the shared table is provably
identical to a freshly resolved one.
"""

from __future__ import annotations

from repro.isa.instructions import opcode
from repro.isa.program import Instruction, Program, resolve_infos
from repro.workloads.microbench import int_program


def test_same_stream_shares_one_table() -> None:
    a = int_program()
    b = int_program()
    assert a is not b
    assert a.infos is b.infos  # memoized: one shared tuple


def test_shared_table_identical_to_fresh_resolution() -> None:
    program = int_program()
    fresh = tuple(opcode(i.op) for i in program.instructions)
    assert program.infos == fresh
    # Entry-wise the cached table holds the exact INSTRUCTION_SET
    # singletons, so sharing can never skew decode behaviour.
    for cached, expected in zip(program.infos, fresh):
        assert cached is expected


def test_distinct_streams_get_distinct_tables() -> None:
    add = Program([Instruction("add", rd=1, rs1=1, imm=1)])
    xor = Program([Instruction("xor", rd=1, rs1=1, rs2=1)])
    assert add.infos != xor.infos
    assert add.infos[0] is opcode("add")
    assert xor.infos[0] is opcode("xor")


def test_refresh_after_mutation_tracks_instructions() -> None:
    program = Program([Instruction("add", rd=1, rs1=1, imm=1)])
    before = program.infos
    program.instructions.append(Instruction("nop"))
    program.refresh_infos()
    assert len(program.infos) == 2
    assert program.infos[0] is before[0]
    assert program.infos[1] is opcode("nop")
    # Re-resolving the original stream still hits the cache.
    assert Program([Instruction("add", rd=1, rs1=1, imm=1)]).infos is before


def test_cache_is_keyed_on_ops_only() -> None:
    # Operand differences don't change decode tables; both programs
    # share one cache entry.
    a = Program([Instruction("add", rd=1, rs1=1, imm=1)])
    b = Program([Instruction("add", rd=2, rs1=3, imm=9)])
    assert a.infos is b.infos
    assert resolve_infos(("add",)) is a.infos
