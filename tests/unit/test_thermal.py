"""Unit tests for repro.thermal: RC network, cooling stacks, feedback."""

from __future__ import annotations

import math

import pytest

from repro.thermal.cooling import (
    NO_HEATSINK,
    STOCK_HEATSINK_FAN,
    fan_angle_resistance,
    no_heatsink_at_angle,
)
from repro.thermal.feedback import PowerTemperatureSimulator
from repro.thermal.rc_network import RcStage, ThermalNetwork


class TestRcNetwork:
    def make(self, ambient=25.0):
        return ThermalNetwork(
            [RcStage("die", 1.0, 0.5), RcStage("pkg", 9.0, 5.0)],
            ambient_c=ambient,
        )

    def test_steady_state_analytic(self):
        net = self.make()
        temps = net.steady_state(2.0)
        # All power flows through both resistances.
        assert temps[0] == pytest.approx(25.0 + 2.0 * 10.0)
        assert temps[1] == pytest.approx(25.0 + 2.0 * 9.0)

    def test_settle(self):
        net = self.make()
        net.settle(1.0)
        assert net.die_temp_c == pytest.approx(35.0)

    def test_step_converges_to_steady_state(self):
        net = self.make()
        for _ in range(4000):
            net.step(2.0, dt_s=0.1)
        assert net.die_temp_c == pytest.approx(45.0, abs=0.3)

    def test_step_monotonic_heating(self):
        net = self.make()
        temps = [net.step(3.0, 0.5) for _ in range(20)]
        assert temps == sorted(temps)

    def test_cooling_decays(self):
        net = self.make()
        net.settle(3.0)
        hot = net.die_temp_c
        net.step(0.0, 5.0)
        assert net.die_temp_c < hot

    def test_total_resistance(self):
        assert self.make().total_resistance == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalNetwork([])
        with pytest.raises(ValueError):
            RcStage("x", -1.0, 1.0)
        with pytest.raises(ValueError):
            self.make().step(1.0, 0.0)

    def test_tau(self):
        assert RcStage("x", 2.0, 3.0).tau_s == pytest.approx(6.0)


class TestCooling:
    def test_stock_r_ja_matches_calibration(self):
        from repro.power.calibration import DEFAULT_CALIBRATION

        assert STOCK_HEATSINK_FAN.r_ja == pytest.approx(
            DEFAULT_CALIBRATION.r_theta_ja
        )

    def test_no_heatsink_worse(self):
        assert NO_HEATSINK.r_ja > STOCK_HEATSINK_FAN.r_ja

    def test_fan_angle_monotonic(self):
        values = [fan_angle_resistance(a) for a in range(0, 91, 10)]
        assert values == sorted(values)

    def test_fan_angle_bounds(self):
        with pytest.raises(ValueError):
            fan_angle_resistance(-1)
        with pytest.raises(ValueError):
            fan_angle_resistance(91)

    def test_angle_stack(self):
        mild = no_heatsink_at_angle(0.0)
        harsh = no_heatsink_at_angle(90.0)
        assert harsh.r_ja > mild.r_ja
        assert mild.ambient_c == 20.0  # Section IV-J room temperature


class TestFeedback:
    @staticmethod
    def leaky_power(die_temp: float, _t: float) -> float:
        """0.5 W + exponential leakage."""
        return 0.5 + 0.2 * math.exp(0.016 * (die_temp - 25.0))

    def test_settle_fixed_point(self):
        sim = PowerTemperatureSimulator(STOCK_HEATSINK_FAN)
        temp = sim.settle(self.leaky_power)
        power = self.leaky_power(temp, 0.0)
        expected = STOCK_HEATSINK_FAN.ambient_c + (
            STOCK_HEATSINK_FAN.r_ja * power
        )
        assert temp == pytest.approx(expected, abs=0.1)

    def test_run_produces_samples(self):
        sim = PowerTemperatureSimulator(STOCK_HEATSINK_FAN)
        sim.settle(self.leaky_power)
        samples = sim.run(self.leaky_power, duration_s=5.0, dt_s=0.5)
        assert len(samples) == 10
        assert samples[-1].time_s == pytest.approx(5.0)

    def test_phase_change_drags_temperature(self):
        """Power steps up instantly; temperature follows slowly."""
        sim = PowerTemperatureSimulator(STOCK_HEATSINK_FAN)
        sim.settle(lambda temp, t: 1.0)

        def stepped(die_temp: float, t: float) -> float:
            return 1.0 if t < 1.0 else 3.0

        samples = sim.run(stepped, duration_s=8.0, dt_s=0.25)
        jump = next(s for s in samples if s.power_w == 3.0)
        final = samples[-1]
        # Right after the step the die is still near the old point.
        assert jump.die_temp_c < final.die_temp_c

    def test_hysteresis_area_positive_for_cycling(self):
        sim = PowerTemperatureSimulator(NO_HEATSINK)
        period = 20.0

        def square(die_temp: float, t: float) -> float:
            return 1.2 if (t % period) < period / 2 else 0.6

        sim.settle(lambda temp, t: 0.9)
        samples = sim.run(square, duration_s=60.0, dt_s=0.25)
        area = PowerTemperatureSimulator.hysteresis_area(samples[80:])
        assert area > 0.0

    def test_smaller_swing_smaller_loop(self):
        def make(swing: float):
            sim = PowerTemperatureSimulator(NO_HEATSINK)
            sim.settle(lambda temp, t: 1.0)

            def fn(die_temp: float, t: float, swing=swing) -> float:
                return 1.0 + (swing if (t % 20) < 10 else -swing)

            return PowerTemperatureSimulator.hysteresis_area(
                sim.run(fn, 60.0, 0.25)[80:]
            )

        assert make(0.5) > make(0.1)

    def test_run_validation(self):
        sim = PowerTemperatureSimulator(NO_HEATSINK)
        with pytest.raises(ValueError):
            sim.run(self.leaky_power, duration_s=0, dt_s=1)

    def test_hysteresis_degenerate(self):
        assert PowerTemperatureSimulator.hysteresis_area([]) == 0.0
