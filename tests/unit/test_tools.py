"""Unit tests for the tooling layer: disassembler, synthetic workload
generator, NoC analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_instruction
from repro.isa.program import Instruction
from repro.noc.analysis import NocAnalysis
from repro.noc.flit import Packet
from repro.noc.mesh import MeshNetwork
from repro.workloads.synthetic import WorkloadSpec, generate


class TestDisassembler:
    SOURCES = [
        "nop",
        "add %r1, %r2, %r3",
        "and %r1, 255, %r2",
        "set 42, %r5",
        "mov %r1, %r2",
        "ldx [%r4 + 16], %r5",
        "stx %r5, [%r4 + 0]",
        "cas [%r4], %r9, %r8",
        "faddd %f0, %f2, %f4",
        "loop:\n nop\n bne %r1, loop",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_round_trip(self, source):
        program = assemble(source)
        text = disassemble(program)
        again = assemble(text)
        assert [str(i) for i in again] == [str(i) for i in program]

    def test_branch_labels_synthesized(self):
        program = assemble("loop:\n nop\n bne %r1, loop")
        text = disassemble(program)
        assert "L0:" in text and "bne %r1, L0" in text

    def test_single_instruction_render(self):
        instr = Instruction("mulx", rd=3, rs1=1, rs2=2)
        assert disassemble_instruction(instr) == "mulx %r1, %r2, %r3"

    def test_fp_register_prefix(self):
        instr = Instruction("fmuld", rd=4, rs1=0, rs2=2)
        assert disassemble_instruction(instr) == "fmuld %f0, %f2, %f4"


class TestSyntheticWorkloads:
    def test_mix_respected(self):
        spec = WorkloadSpec(
            ops_per_iteration=40, load_frac=0.25, store_frac=0.10
        )
        gen = generate(spec)
        assert gen.static_mix.get("ldx", 0) == 10
        assert gen.static_mix.get("stx", 0) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(load_frac=0.8, store_frac=0.4)
        with pytest.raises(ValueError):
            WorkloadSpec(activity=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(ops_per_iteration=0)
        with pytest.raises(ValueError):
            WorkloadSpec(footprint_bytes=8)

    def test_activity_controls_operands(self):
        lo = generate(WorkloadSpec(activity=0.0))
        hi = generate(WorkloadSpec(activity=1.0))
        lo_bits = sum(
            v.bit_count() for r, v in lo.tile_program.init_regs.items()
            if r in (8, 9, 10, 11)
        )
        hi_bits = sum(
            v.bit_count() for r, v in hi.tile_program.init_regs.items()
            if r in (8, 9, 10, 11)
        )
        assert lo_bits == 0
        assert hi_bits == 4 * 64

    def test_programs_validate_and_run(self):
        from repro.core.multicore import MulticoreEngine

        spec = WorkloadSpec(
            load_frac=0.2, store_frac=0.1, mul_frac=0.1,
            branchiness=0.1, seed=3,
        )
        gen = generate(spec, tile=0, iterations=5)
        gen.tile_program.programs[0].validate()
        engine = MulticoreEngine()
        engine.add_core(
            0,
            gen.tile_program.programs,
            init_regs=gen.tile_program.init_regs,
            init_fregs=gen.tile_program.init_fregs,
        )
        engine.memory.load_image(gen.tile_program.memory_image)
        result = engine.run(until_done=True, max_cycles=2_000_000)
        assert result.completed

    def test_tiles_get_disjoint_footprints(self):
        spec = WorkloadSpec(load_frac=0.2)
        a = generate(spec, tile=0)
        b = generate(spec, tile=1)
        a_addrs = set(a.tile_program.memory_image)
        b_addrs = set(b.tile_program.memory_image)
        assert not (a_addrs & b_addrs)

    def test_deterministic(self):
        spec = WorkloadSpec(load_frac=0.3, seed=9)
        assert (
            generate(spec).static_mix == generate(spec).static_mix
        )


class TestNocAnalysis:
    def make_loaded_mesh(self):
        mesh = MeshNetwork()
        rng = np.random.default_rng(1)
        for _ in range(30):
            src = int(rng.integers(25))
            dst = int(rng.integers(25))
            mesh.inject(Packet.build(dst, [1, 2]), src)
        mesh.drain()
        return mesh

    def test_link_counts_conserved(self):
        mesh = self.make_loaded_mesh()
        analysis = NocAnalysis(mesh)
        assert (
            sum(load.flits for load in analysis.link_loads())
            == mesh.total_flit_hops
        )

    def test_hottest_link(self):
        mesh = self.make_loaded_mesh()
        analysis = NocAnalysis(mesh)
        hottest = analysis.hottest_link()
        assert hottest is not None
        assert hottest.flits == max(
            load.flits for load in analysis.link_loads()
        )

    def test_utilization_bounds(self):
        mesh = self.make_loaded_mesh()
        util = NocAnalysis(mesh).utilization()
        assert 0.0 < util < 1.0

    def test_idle_mesh(self):
        mesh = MeshNetwork()
        analysis = NocAnalysis(mesh)
        assert analysis.hottest_link() is None
        assert analysis.utilization() == 0.0
        assert "peak 0" in analysis.heatmap()

    def test_heatmap_shape(self):
        mesh = self.make_loaded_mesh()
        lines = NocAnalysis(mesh).heatmap().splitlines()
        assert len(lines) == 1 + 5  # legend + 5 grid rows
        assert all(len(line) == 10 for line in lines[1:])
