"""Property-based tests for the repro.check invariant oracle.

Two complementary directions:

* **Soundness** — clean simulations, however the operations interleave,
  must never trip a checker (a checker that cries wolf would make
  ``--checks`` unusable and, worse, untrusted).
* **Completeness** — every seeded fault-injection scenario must be
  detected by at least one checker; an undetectable corruption means a
  checker is dead weight rather than an oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.arch.params import PitonConfig
from repro.cache.system import CoherentMemorySystem, fixed_offchip_model
from repro.check import (
    CheckError,
    CheckSuite,
    FAULT_KINDS,
    inject_fault,
)
from repro.core.storebuffer import StoreBuffer, StoreEntry
from repro.noc.mesh import MeshNetwork
from repro.util.events import EventLedger
from repro.workloads.noc_tests import (
    make_invalidation_packet,
    payload_words,
)

CONFIG = PitonConfig(mesh_width=3, mesh_height=3)

#: Aliasing address pool (as in test_prop_coherence): few enough lines
#: that evictions, recalls, and sharing actually occur.
ADDRESSES = [i * 2048 for i in range(6)] + [0x40, 0x80]

coherence_ops = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "atomic"]),
        st.integers(0, CONFIG.tile_count - 1),
        st.sampled_from(ADDRESSES),
    ),
    min_size=1,
    max_size=100,
)


def _checked_memsys() -> tuple[CoherentMemorySystem, CheckSuite]:
    suite = CheckSuite()
    ms = CoherentMemorySystem(CONFIG, offchip=fixed_offchip_model(100))
    ms.checker = suite
    return ms, suite


def _apply(ms: CoherentMemorySystem, ops) -> None:
    for op, tile, addr in ops:
        getattr(ms, op)(tile, addr)


# ------------------------------------------------------------- soundness
@given(coherence_ops)
def test_clean_coherence_traces_never_trip(ops):
    """Random load/store/atomic interleavings keep every MESI and
    access invariant green (with per-miss access checks live)."""
    ms, suite = _checked_memsys()
    _apply(ms, ops)
    suite.check_directory(ms)
    assert suite.violations == 0
    assert suite.counts["directory"] == 1


mesh_traffic = st.lists(
    st.tuples(
        st.integers(0, CONFIG.tile_count - 1),  # source
        st.integers(0, CONFIG.tile_count - 1),  # dest
        st.integers(0, 30),  # steps between injections
    ),
    min_size=1,
    max_size=25,
)


@given(mesh_traffic)
def test_clean_mesh_traffic_never_trips(traffic):
    """Random packet streams keep flit conservation, credit limits,
    wormhole lock agreement, and forward progress green."""
    suite = CheckSuite()
    mesh = MeshNetwork(CONFIG)
    mesh.checker = suite
    for k, (src, dest, gap) in enumerate(traffic):
        mesh.inject(
            make_invalidation_packet(dest, payload_words("FSW", k)), src
        )
        for _ in range(gap):
            mesh.step()
    mesh.drain()
    assert suite.violations == 0
    assert suite.counts["mesh"] >= 1
    assert mesh.flits_injected == mesh.flits_ejected


class _CoreStub:
    """Just enough of a Core for check_store_buffer."""

    def __init__(self, sb: StoreBuffer):
        self.store_buffer = sb
        self.tile_id = 0


sb_ops = st.lists(
    st.sampled_from(["push", "drain", "tick"]), min_size=1, max_size=80
)


@given(sb_ops)
def test_clean_store_buffer_ops_never_trip(ops):
    """Random push/drain/idle interleavings keep FIFO order, occupancy
    and conservation green at every step."""
    suite = CheckSuite()
    sb = StoreBuffer(capacity=4, drain_cycles=3)
    core = _CoreStub(sb)
    now = 0
    for op in ops:
        if op == "push" and not sb.full:
            sb.push(StoreEntry(addr=8 * now, value=now, thread_id=0), now)
        elif op == "drain":
            sb.drain_ready(now)
        now += 1
        suite.check_store_buffer(core)
    assert suite.violations == 0


# ---------------------------------------------------------- completeness
def _memsys_with_state(seed: int) -> CoherentMemorySystem:
    """A memory system with directory entries, sharers, and owners."""
    ms = CoherentMemorySystem(CONFIG, offchip=fixed_offchip_model(100))
    # Read-share one line widely, own a few others exclusively.
    for tile in range(4):
        ms.load(tile, 0x1000)
    for tile in range(3):
        ms.store(tile, 0x2000 + 2048 * tile)
    ms.load((seed % 4), 0x4000)
    return ms


def _mesh_with_traffic() -> MeshNetwork:
    mesh = MeshNetwork(CONFIG)
    for k in range(6):
        mesh.inject(
            make_invalidation_packet(8, payload_words("FSW", k)), 0
        )
    for _ in range(4):
        mesh.step()
    assert mesh.in_flight > 0
    return mesh


@given(st.integers(0, 10_000))
def test_tag_bitflip_always_detected(seed):
    ms = _memsys_with_state(seed)
    suite = CheckSuite()
    inject_fault("tag_bitflip", memsys=ms, seed=seed)
    with pytest.raises(CheckError) as exc:
        suite.check_directory(ms)
    assert exc.value.checker == "directory"


@given(st.integers(0, 10_000), st.sampled_from(["dropped_flit", "duplicated_flit"]))
def test_flit_faults_always_detected(seed, kind):
    mesh = _mesh_with_traffic()
    suite = CheckSuite()
    mesh.checker = suite
    inject_fault(kind, mesh=mesh, seed=seed)
    with pytest.raises(CheckError) as exc:
        mesh.drain()
    assert exc.value.checker == "mesh"


@given(st.integers(0, 10_000))
def test_stalled_router_always_detected(seed):
    mesh = _mesh_with_traffic()
    suite = CheckSuite()
    # Tighten the progress bound (an instance-level tunable) so each
    # example detects the wedge in hundreds of cycles, not 10k.
    suite.MESH_STALL_BOUND = 256
    mesh.checker = suite
    inject_fault("stalled_router", mesh=mesh, seed=seed)
    with pytest.raises(CheckError) as exc:
        mesh.drain(max_cycles=4_000)
    assert exc.value.checker == "mesh"


@given(st.integers(0, 10_000))
def test_dram_timeout_always_detected(seed):
    ms, suite = _checked_memsys()
    inject_fault("dram_timeout", memsys=ms, seed=seed)
    with pytest.raises(CheckError) as exc:
        ms.load(0, 0x8000)  # cold miss -> off-chip
    assert exc.value.checker == "access"


def test_every_fault_kind_covered():
    """The detection properties above sweep the full FAULT_KINDS set."""
    assert set(FAULT_KINDS) == {
        "tag_bitflip",
        "dropped_flit",
        "duplicated_flit",
        "stalled_router",
        "dram_timeout",
    }


# -------------------------------------------------------------- ledger
weights_events = st.dictionaries(
    st.sampled_from(["core.issue", "l1d.read", "noc1.flit", "alu.op"]),
    st.tuples(
        st.integers(1, 10_000),
        st.floats(0.0, 1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=4,
)


@given(weights_events)
def test_clean_ledger_never_trips(events):
    """Events recorded with activities in [0, 1] always conserve."""
    suite = CheckSuite()
    ledger = EventLedger()
    for name, (count, activity) in events.items():
        ledger.record(name, count, activity=activity)
    suite.check_ledger(ledger)
    assert suite.violations == 0


@given(weights_events)
def test_corrupted_ledger_weight_trips(events):
    """Pushing any event's weight above its count must be caught."""
    suite = CheckSuite()
    ledger = EventLedger()
    for name, (count, activity) in events.items():
        ledger.record(name, count, activity=activity)
    name = sorted(events)[0]
    ledger.weights[name] = ledger.counts[name] + 1.0
    with pytest.raises(CheckError) as exc:
        suite.check_ledger(ledger)
    assert exc.value.checker == "ledger"
