"""Property-based tests for the extension substrates: MITTS credit
conservation, SRAM repair-plan validity, CDR closure, multi-chip
monotonicity."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache.cdr import CdrRegistry, CdrViolation
from repro.chip.multichip import MultiChipTopology
from repro.noc.mitts import MittsBin, MittsShaper
from repro.silicon.sram_repair import Defect, SramArray, allocate_spares


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=0,
        max_size=10,
        unique=True,
    ),
    st.integers(0, 3),
    st.integers(0, 3),
)
@settings(max_examples=120, deadline=None)
def test_repair_plan_always_valid_when_found(cells, spare_rows, spare_cols):
    array = SramArray(
        "a",
        16,
        16,
        spare_rows=spare_rows,
        spare_cols=spare_cols,
        defects=[Defect(r, c) for r, c in cells],
    )
    plan = allocate_spares(array)
    if plan is None:
        return
    assert plan.covers(array.defects)
    assert len(plan.replaced_rows) <= spare_rows
    assert len(plan.replaced_cols) <= spare_cols


@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=6,
        unique=True,
    )
)
@settings(max_examples=80, deadline=None)
def test_repair_exactness_small_arrays(cells):
    """When the solver says unrepairable, brute force agrees."""
    array = SramArray(
        "a",
        8,
        8,
        spare_rows=1,
        spare_cols=1,
        defects=[Defect(r, c) for r, c in cells],
    )
    plan = allocate_spares(array)
    # Brute force: does ANY (row, col) pair cover all defects?
    feasible = False
    options_r = [None] + list({d.row for d in array.defects})
    options_c = [None] + list({d.col for d in array.defects})
    for row in options_r:
        for col in options_c:
            if all(
                d.row == row or d.col == col for d in array.defects
            ):
                feasible = True
    assert (plan is not None) == feasible


@given(
    st.integers(1, 6),
    st.integers(1, 4),
    st.lists(st.integers(0, 5000), min_size=1, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_mitts_never_exceeds_epoch_budget(credits, bins_count, arrivals):
    """Admissions per epoch can never exceed the per-epoch credits."""
    epoch = 1_000
    bins = [
        MittsBin(i * 100, credits) for i in range(bins_count)
    ]
    shaper = MittsShaper(bins, epoch_cycles=epoch)
    arrivals = sorted(arrivals)
    admitted_by_epoch: dict[int, int] = {}
    now = 0
    for arrival in arrivals:
        now = max(now, arrival)
        release = shaper.release_time(now)
        assert release >= now
        epoch_index = release // epoch
        admitted_by_epoch[epoch_index] = (
            admitted_by_epoch.get(epoch_index, 0) + 1
        )
        now = release
    budget = credits * bins_count
    for count in admitted_by_epoch.values():
        assert count <= budget


@given(
    st.sets(st.integers(0, 24), min_size=1, max_size=8),
    st.integers(0, 24),
    st.integers(0, 2**20),
)
@settings(max_examples=80)
def test_cdr_membership_is_exact(members, tile, base):
    registry = CdrRegistry()
    domain = registry.create_domain("d", members)
    region = registry.assign_region(domain, base, 4096)
    addr = base + 100
    assume(region.contains(addr))
    if tile in members:
        registry.check(tile, addr)
    else:
        try:
            registry.check(tile, addr)
            raise AssertionError("expected CdrViolation")
        except CdrViolation:
            pass


@given(st.integers(0, 49), st.integers(0, 49))
@settings(max_examples=100, deadline=None)
def test_multichip_remote_never_cheaper_than_local(requester, home):
    topo = MultiChipTopology(sockets_x=2, sockets_y=1)
    cycles = topo.l2_access_cycles(requester, home)
    local_floor = topo.latency.local_l2_hit()
    assert cycles >= local_floor
    if topo.socket_of(requester) != topo.socket_of(home):
        assert cycles >= local_floor + 2 * 64  # two crossings minimum
