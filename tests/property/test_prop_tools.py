"""Property-based tests for the tooling: disassembler round-trips over
generated programs; synthetic workloads always validate and run."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.workloads.synthetic import WorkloadSpec, generate

specs = st.builds(
    WorkloadSpec,
    ops_per_iteration=st.integers(4, 48),
    load_frac=st.floats(0.0, 0.3),
    store_frac=st.floats(0.0, 0.2),
    mul_frac=st.floats(0.0, 0.2),
    fp_frac=st.floats(0.0, 0.2),
    branchiness=st.floats(0.0, 0.15),
    activity=st.floats(0.0, 1.0),
    footprint_bytes=st.sampled_from([64, 1024, 4096]),
    seed=st.integers(0, 1_000),
)


@given(specs)
@settings(max_examples=60, deadline=None)
def test_generated_programs_always_validate(spec):
    gen = generate(spec)
    gen.tile_program.programs[0].validate()
    total_ops = sum(gen.static_mix.values())
    assert total_ops >= spec.ops_per_iteration


@given(specs)
@settings(max_examples=40, deadline=None)
def test_disassembler_round_trips_generated_programs(spec):
    program = generate(spec).tile_program.programs[0]
    text = disassemble(program)
    again = assemble(text)
    assert len(again) == len(program)
    for a, b in zip(again, program):
        assert str(a) == str(b)


@given(specs, st.integers(1, 10))
@settings(max_examples=15, deadline=None)
def test_generated_finite_workloads_terminate(spec, iterations):
    from repro.core.multicore import MulticoreEngine

    gen = generate(spec, iterations=iterations)
    engine = MulticoreEngine()
    engine.add_core(
        0,
        gen.tile_program.programs,
        init_regs=gen.tile_program.init_regs,
        init_fregs=gen.tile_program.init_fregs,
    )
    engine.memory.load_image(gen.tile_program.memory_image)
    result = engine.run(until_done=True, max_cycles=5_000_000)
    assert result.completed
