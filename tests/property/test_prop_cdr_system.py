"""Property-based tests: CDR-restricted memory systems stay safe and
functional under random in-domain operation sequences."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import PitonConfig
from repro.cache.cdr import CdrRegistry, CdrViolation
from repro.cache.system import CoherentMemorySystem, fixed_offchip_model

CONFIG = PitonConfig(mesh_width=3, mesh_height=3)
REGION_BASE = 0x10000
REGION_SIZE = 0x4000

domains_strategy = st.lists(
    st.sets(st.integers(0, CONFIG.tile_count - 1), min_size=1, max_size=4),
    min_size=1,
    max_size=3,
)

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "atomic"]),
        st.integers(0, 200),  # domain-relative actor index
        st.integers(0, REGION_SIZE - 8),  # offset inside the region
    ),
    min_size=1,
    max_size=60,
)


def build_system(memberships):
    registry = CdrRegistry()
    for i, members in enumerate(memberships):
        domain = registry.create_domain(f"d{i}", members)
        registry.assign_region(
            domain, REGION_BASE + i * REGION_SIZE, REGION_SIZE
        )
    system = CoherentMemorySystem(
        CONFIG, offchip=fixed_offchip_model(80), cdr=registry
    )
    return registry, system


@given(domains_strategy, ops_strategy)
@settings(max_examples=50, deadline=None)
def test_in_domain_traffic_never_trips_and_stays_coherent(
    memberships, ops
):
    registry, system = build_system(memberships)
    for op, actor_index, offset in ops:
        domain_index = actor_index % len(memberships)
        members = sorted(memberships[domain_index])
        tile = members[actor_index % len(members)]
        addr = REGION_BASE + domain_index * REGION_SIZE + offset
        if op == "load":
            system.load(tile, addr)
        elif op == "store":
            system.store(tile, addr)
        else:
            system.atomic(tile, addr)
    system.check_invariants()


@given(domains_strategy, st.integers(0, CONFIG.tile_count - 1))
@settings(max_examples=60, deadline=None)
def test_out_of_domain_always_trips(memberships, tile):
    registry, system = build_system(memberships)
    for i, members in enumerate(memberships):
        addr = REGION_BASE + i * REGION_SIZE + 8
        if tile in members:
            system.load(tile, addr)
        else:
            try:
                system.load(tile, addr)
                raise AssertionError("expected CdrViolation")
            except CdrViolation:
                pass
    system.check_invariants()
