"""Property-based tests: the surrogate honours its calibrated contract.

Over randomly drawn (V, f, persona) operating points:

* an in-envelope prediction's error against the cycle-level simulator
  stays within the profile's persisted per-metric bars (the bars gate
  ``--tier auto`` dispatch, so this is the contract the two-tier
  executor relies on);
* out-of-envelope clocks are never served — the dispatcher falls back
  and the raw model refuses to extrapolate;
* frequency-independent workloads predict the simulator bit-exactly at
  any clock.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.silicon.variation import CHIP1, CHIP2, CHIP3, TYPICAL
from repro.surrogate import (
    GATE_METRICS,
    FidelityPolicy,
    ProfileStore,
    SurrogateModel,
    outcome_metrics,
    profile_key,
)
from repro.surrogate.calibrate import calibrate_request
from repro.surrogate.workloads import CALIBRATION_WORKLOADS
from repro.system import run_simulation

FREQ_LO = 200e6
FREQ_HI = 800e6
ANCHORS = [200e6, 400e6, 600e6, 800e6]

personas = st.sampled_from([TYPICAL, CHIP1, CHIP2, CHIP3])
vdds = st.floats(0.8, 1.2)
in_envelope_freqs = st.floats(FREQ_LO, FREQ_HI)
out_of_envelope_freqs = st.one_of(
    st.floats(20e6, FREQ_LO - 1e6), st.floats(FREQ_HI + 1e6, 2e9)
)


@pytest.fixture(scope="module")
def mem_calibration(tmp_path_factory):
    """One quick calibration of the L2-hit loop, shared by the module."""
    request = CALIBRATION_WORKLOADS["mem_l2"].base_request(quick=True)
    profile, report = calibrate_request(
        request, workload_name="mem_l2", anchor_freqs=ANCHORS
    )
    store = ProfileStore(tmp_path_factory.mktemp("profiles"))
    store.save(profile)
    return request, profile, store


@pytest.fixture(scope="module")
def int_calibration():
    """The frequency-independent integer loop (single anchor, exact)."""
    request = CALIBRATION_WORKLOADS["int"].base_request(quick=True)
    profile, _ = calibrate_request(request, workload_name="int")
    return request, profile


class TestWithinCalibratedBound:
    @given(freq_hz=in_envelope_freqs, vdd=vdds, persona=personas)
    @settings(max_examples=25, deadline=None)
    def test_gated_metrics_within_bars(
        self, mem_calibration, freq_hz, vdd, persona
    ):
        request, profile, _ = mem_calibration
        probe = replace(request, freq_hz=freq_hz)
        model = SurrogateModel(profile)
        assert model.in_envelope(probe)
        predicted = outcome_metrics(
            model.predict(probe), freq_hz, persona=persona, vdd=vdd
        )
        actual = outcome_metrics(
            run_simulation(probe), freq_hz, persona=persona, vdd=vdd
        )
        for metric in GATE_METRICS:
            bound = profile.error_bounds[metric]
            err = abs(predicted[metric] - actual[metric]) / max(
                abs(actual[metric]), 1e-18
            )
            assert err <= bound, (
                f"{metric}: error {err:.4%} exceeds calibrated bound "
                f"{bound:.4%} at f={freq_hz/1e6:.1f} MHz"
            )

    @given(freq_hz=st.sampled_from(ANCHORS))
    @settings(max_examples=len(ANCHORS), deadline=None)
    def test_anchor_clocks_replay_bit_exactly(
        self, mem_calibration, freq_hz
    ):
        request, profile, _ = mem_calibration
        probe = replace(request, freq_hz=freq_hz)
        predicted = SurrogateModel(profile).predict(probe)
        actual = run_simulation(probe)
        assert predicted.tier_err == 0.0
        assert predicted.result == actual.result
        assert dict(predicted.ledger.counts) == dict(actual.ledger.counts)
        assert dict(predicted.ledger.weights) == dict(
            actual.ledger.weights
        )


class TestOutOfEnvelope:
    @given(freq_hz=out_of_envelope_freqs)
    @settings(max_examples=30, deadline=None)
    def test_dispatcher_always_falls_back(self, mem_calibration, freq_hz):
        request, profile, store = mem_calibration
        probe = replace(request, freq_hz=freq_hz)
        policy = FidelityPolicy(store=store, tier="fast")
        assert not SurrogateModel(profile).in_envelope(probe)
        assert policy.predict(probe) is None

    @given(freq_hz=out_of_envelope_freqs)
    @settings(max_examples=10, deadline=None)
    def test_model_refuses_to_extrapolate(self, mem_calibration, freq_hz):
        request, profile, _ = mem_calibration
        with pytest.raises(ValueError, match="envelope"):
            SurrogateModel(profile).predict(
                replace(request, freq_hz=freq_hz)
            )


class TestFreqIndependentExactness:
    @given(freq_hz=st.floats(20e6, 2e9))
    @settings(max_examples=20, deadline=None)
    def test_prediction_is_bit_exact_at_any_clock(
        self, int_calibration, freq_hz
    ):
        request, profile = int_calibration
        probe = replace(request, freq_hz=freq_hz)
        predicted = SurrogateModel(profile).predict(probe)
        # One reference simulation is enough: the batch key proves the
        # clock cannot reach the architectural outcome.
        actual = run_simulation(probe)
        assert profile.freq_independent
        assert profile.error_bound == 0.0
        assert predicted.tier_err == 0.0
        assert predicted.result == actual.result
        assert dict(predicted.ledger.counts) == dict(actual.ledger.counts)
        assert dict(predicted.ledger.weights) == dict(
            actual.ledger.weights
        )

    def test_profile_key_matches_any_clock(self, int_calibration):
        request, profile = int_calibration
        for freq in (100e6, 500.05e6, 1.5e9):
            assert (
                profile_key(replace(request, freq_hz=freq))
                == profile.key
            )
