"""Property-based tests: the timing pipeline computes the same
architectural results as a plain functional interpreter.

Timing machinery (store buffers, rollbacks, thread interleaving) must
never change *what* a program computes — only when.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multicore import MulticoreEngine, SharedMemory
from repro.core.semantics import execute
from repro.core.thread import ThreadContext
from repro.isa.program import Instruction, Program

SRC = st.integers(1, 7)
DST = st.integers(1, 7)

alu_instruction = st.builds(
    Instruction,
    op=st.sampled_from(["add", "sub", "and", "or", "xor", "mulx"]),
    rd=DST,
    rs1=SRC,
    rs2=SRC,
)
set_instruction = st.builds(
    Instruction,
    op=st.just("set"),
    rd=DST,
    imm=st.integers(0, 2**32),
)
load_instruction = st.builds(
    Instruction,
    op=st.just("ldx"),
    rd=DST,
    rs1=st.just(10),  # base register planted at a fixed address
    imm=st.sampled_from([0, 8, 16, 24]),
)
store_instruction = st.builds(
    Instruction,
    op=st.just("stx"),
    rs1=SRC,
    rs2=st.just(10),
    imm=st.sampled_from([0, 8, 16, 24]),
)

programs = st.lists(
    st.one_of(
        alu_instruction, set_instruction, load_instruction,
        store_instruction,
    ),
    min_size=1,
    max_size=40,
).map(lambda instrs: Program(list(instrs)))


def reference_run(program: Program, init_regs: dict[int, int]):
    """Pure functional execution, no timing."""
    memory = SharedMemory()
    thread = ThreadContext(thread_id=0, program=program)
    pending_stores: list[tuple[int, int]] = []
    for reg, value in init_regs.items():
        thread.write_int(reg, value)
    while not thread.done:
        out = execute(program[thread.pc], thread, memory)
        if out.is_store:
            memory.write(out.mem_addr, out.store_value)
    return thread.regs, memory


@given(programs)
@settings(max_examples=60, deadline=None)
def test_engine_matches_reference_semantics(program):
    init = {10: 0x1000, 1: 3, 2: 5, 3: 7}
    ref_regs, ref_memory = reference_run(program, init)

    engine = MulticoreEngine()
    engine.add_core(0, [program], init_regs=init)
    engine.run(until_done=True, max_cycles=2_000_000)

    got = engine.cores[0].threads[0].regs
    assert got == ref_regs
    for offset in (0, 8, 16, 24):
        addr = 0x1000 + offset
        assert engine.memory.read(addr) == ref_memory.read(addr)


@given(programs)
@settings(max_examples=30, deadline=None)
def test_cycle_count_bounded_by_latency_sum(program):
    """Total cycles can never exceed the sum of worst-case per-op
    latencies (cold-miss memory included) plus rollback penalties."""
    init = {10: 0x1000, 1: 3, 2: 5, 3: 7}
    engine = MulticoreEngine()
    engine.add_core(0, [program], init_regs=init)
    result = engine.run(until_done=True, max_cycles=2_000_000)
    worst_per_op = 500  # cold DRAM round trip upper bound
    assert result.cycles <= len(program) * worst_per_op + 500
    assert result.instructions >= len(program)
