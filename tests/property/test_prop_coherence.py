"""Property-based tests: MESI protocol safety under random operation
sequences.

The single most important invariant in the reproduction: however loads,
stores, and atomics interleave across tiles, the protocol must never
admit two exclusive holders, never lose directory tracking, and always
return the last architecturally written value.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import PitonConfig
from repro.cache.system import CoherentMemorySystem, fixed_offchip_model
from repro.core.multicore import SharedMemory

CONFIG = PitonConfig(mesh_width=3, mesh_height=3)

# A small address pool with deliberate set aliasing: 8 lines that map
# to only a few L1/L2 sets so evictions and recalls actually happen.
ADDRESSES = [i * 2048 for i in range(6)] + [0x40, 0x80]

operations = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "atomic"]),
        st.integers(0, CONFIG.tile_count - 1),
        st.sampled_from(ADDRESSES),
    ),
    min_size=1,
    max_size=120,
)


def run_sequence(ops):
    ms = CoherentMemorySystem(
        CONFIG, offchip=fixed_offchip_model(100)
    )
    for op, tile, addr in ops:
        if op == "load":
            ms.load(tile, addr)
        elif op == "store":
            ms.store(tile, addr)
        else:
            ms.atomic(tile, addr)
    return ms


@given(operations)
@settings(max_examples=60, deadline=None)
def test_invariants_hold_after_any_sequence(ops):
    ms = run_sequence(ops)
    ms.check_invariants()


@given(operations)
@settings(max_examples=40, deadline=None)
def test_latencies_always_positive_and_bounded(ops):
    ms = CoherentMemorySystem(CONFIG, offchip=fixed_offchip_model(100))
    for op, tile, addr in ops:
        outcome = (
            ms.load(tile, addr)
            if op == "load"
            else ms.store(tile, addr)
            if op == "store"
            else ms.atomic(tile, addr)
        )
        assert 1 <= outcome.latency < 2_000


@given(operations)
@settings(max_examples=40, deadline=None)
def test_event_counts_nonnegative_and_priced(ops):
    from repro.power.chip_power import ChipPowerModel

    ms = run_sequence(ops)
    for name, count in ms.ledger.counts.items():
        assert count >= 0, name
    assert ChipPowerModel().unknown_events(ms.ledger) == []


@given(
    st.lists(
        st.tuples(
            st.integers(0, CONFIG.tile_count - 1),
            st.sampled_from(ADDRESSES),
            st.integers(0, 2**64 - 1),
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=40, deadline=None)
def test_memory_value_coherence(writes):
    """Functional memory + protocol: every read after a write sequence
    sees the last written value regardless of which tile reads."""
    ms = CoherentMemorySystem(CONFIG, offchip=fixed_offchip_model(50))
    memory = SharedMemory()
    last = {}
    for tile, addr, value in writes:
        ms.store(tile, addr)
        memory.write(addr, value)
        last[addr & ~7] = value
    for addr, expected in last.items():
        for tile in (0, CONFIG.tile_count - 1):
            ms.load(tile, addr)
            assert memory.read(addr) == expected
    ms.check_invariants()
