"""Property-based tests for the repro.governor control loop.

Three promises the subsystem makes, each stated over randomized
scenarios rather than the four curated experiment configurations:

* **Cap soundness** — whatever the workload phases, sensor seed, and
  budget (within the regime where the bottom rung fits), a capping
  policy never lets applied power exceed the cap outside the declared
  settle windows, and ``check_governor`` agrees.
* **No chatter** — the hysteretic thermal policy never places two
  actuations closer than its dwell floor (one die thermal time
  constant in the scenarios), however trip/clear/activity are drawn.
* **Determinism** — a scenario is a pure function of its spec: re-runs
  are bit-identical, and fanning arms across worker processes
  (``--jobs 2``) reproduces the serial traces exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import CheckSuite
from repro.experiments.parallel import parallel_map
from repro.governor import ScenarioSpec, run_scenario

personas = st.sampled_from(["chip1", "chip2", "chip3"])
#: Budgets that keep the bottom rung (0.80 V, lightest clock) feasible
#: for the activity range below — outside that regime no ladder
#: governor can honour the cap and the checker rightly refuses.
caps_w = st.floats(3.0, 6.0)
activities_w = st.floats(0.3, 2.5)
seeds = st.integers(0, 2**16)


# ---------------------------------------------------------- cap soundness
@given(
    policy=st.sampled_from(["reactive_cap", "pi_cap"]),
    persona=personas,
    cap_w=caps_w,
    light_w=activities_w,
    heavy_w=activities_w,
    jump_s=st.floats(8.0, 20.0),
    seed=seeds,
)
@settings(max_examples=30)
def test_cap_never_exceeded_after_settle(
    policy, persona, cap_w, light_w, heavy_w, jump_s, seed
):
    spec = ScenarioSpec(
        name="prop",
        policy=policy,
        persona=persona,
        duration_s=30.0,
        phases=((0.0, light_w), (jump_s, heavy_w)),
        cap_w=cap_w,
        sensor_seed=seed,
        settle_s=4.0,
    )
    trace = run_scenario(spec)
    assert trace.cap_w == cap_w
    assert trace.cap_violations() == 0
    suite = CheckSuite()
    suite.check_governor(trace)  # must not raise
    assert suite.counts["governor"] == 1


# ------------------------------------------------------------- no chatter
@given(
    trip_c=st.floats(60.0, 95.0),
    drop_c=st.floats(5.0, 15.0),
    activity_w=st.floats(1.0, 2.8),
    persona=personas,
)
@settings(max_examples=30)
def test_trip_clear_never_chatters(trip_c, drop_c, activity_w, persona):
    """Consecutive actuations stay at least one dwell apart — the
    scenario default pins the dwell to the die stage's thermal time
    constant, so the loop cannot toggle faster than the physics it
    reacts to."""
    spec = ScenarioSpec(
        name="prop",
        policy="thermal_trip",
        persona=persona,
        duration_s=40.0,
        phases=((0.0, activity_w),),
        trip_c=trip_c,
        clear_c=trip_c - drop_c,
        warm_start=True,  # start hot at the top rung: maximal stress
    )
    trace = run_scenario(spec)
    assert trace.min_dwell_s > 0.0
    times = trace.actuation_times()
    for earlier, later in zip(times, times[1:]):
        assert later - earlier >= trace.min_dwell_s - 1e-9
    CheckSuite().check_governor(trace)  # gov_dwell must agree


# ----------------------------------------------------------- determinism
@given(
    policy=st.sampled_from(["static", "reactive_cap", "thermal_trip"]),
    persona=personas,
    activity_w=activities_w,
    seed=seeds,
)
@settings(max_examples=15)
def test_rerun_is_bit_identical(policy, persona, activity_w, seed):
    spec = ScenarioSpec(
        name="prop",
        policy=policy,
        persona=persona,
        duration_s=15.0,
        phases=((0.0, activity_w),),
        cap_w=4.0 if policy == "reactive_cap" else None,
        trip_c=80.0 if policy == "thermal_trip" else 88.0,
        clear_c=70.0 if policy == "thermal_trip" else 82.0,
        sensor_seed=seed,
    )
    first = run_scenario(spec).to_dict()
    second = run_scenario(spec).to_dict()
    assert first == second


def test_serial_vs_two_workers_bit_identical():
    """The ctl experiments fan their arms across processes; the traces
    coming back must match a serial run bit for bit (seeded telemetry,
    division-derived timestamps, pure-function caches only)."""
    specs = [
        ScenarioSpec(
            name=name,
            policy=policy,
            persona="chip2",
            duration_s=20.0,
            phases=((0.0, 0.9), (10.0, 2.2)),
            cap_w=3.5,
            sensor_seed=2018,
            settle_s=4.0,
        )
        for name, policy in (
            ("reactive", "reactive_cap"),
            ("pi", "pi_cap"),
        )
    ]
    serial = [run_scenario(s).to_dict() for s in specs]
    fanned = [
        t.to_dict() for t in parallel_map(run_scenario, specs, jobs=2)
    ]
    assert serial == fanned
