"""Property-based tests: power-model algebra and methodology
invariants."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.power.calibration import EVENT_ENERGIES
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.power.epi import energy_per_instruction
from repro.power.technology import fmax_hz, leakage_scale
from repro.util.events import EventLedger
from repro.util.stats import Measurement

MODEL = ChipPowerModel()
EVENT_NAMES = sorted(EVENT_ENERGIES)

event_entries = st.lists(
    st.tuples(
        st.sampled_from(EVENT_NAMES),
        st.integers(1, 10_000),
        st.floats(0.0, 1.0),
    ),
    min_size=0,
    max_size=12,
)


@given(event_entries, st.floats(100.0, 1e6))
@settings(max_examples=80, deadline=None)
def test_event_power_nonnegative_and_finite(entries, window):
    ledger = EventLedger()
    for name, count, activity in entries:
        ledger.record(name, count, activity=activity)
    power = MODEL.event_power(ledger, window, OperatingPoint())
    for value in (power.vdd_w, power.vcs_w, power.vio_w):
        assert value >= 0.0
        assert value < 1e6


@given(event_entries)
@settings(max_examples=50, deadline=None)
def test_event_power_scales_inversely_with_window(entries):
    assume(entries)
    ledger = EventLedger()
    for name, count, activity in entries:
        ledger.record(name, count, activity=activity)
    op = OperatingPoint()
    p1 = MODEL.event_power(ledger, 1_000, op).total_w
    p2 = MODEL.event_power(ledger, 2_000, op).total_w
    assert p1 == 2 * p2 or abs(p1 - 2 * p2) < 1e-12


@given(event_entries, st.floats(1.2, 3.0))
@settings(max_examples=50, deadline=None)
def test_scaling_ledger_scales_energy(entries, factor):
    ledger = EventLedger()
    for name, count, activity in entries:
        ledger.record(name, count, activity=activity)
    op = OperatingPoint()
    base = MODEL.event_power(ledger, 1_000, op).total_w
    scaled = MODEL.event_power(ledger.scaled(factor), 1_000, op).total_w
    assert scaled >= base
    assert abs(scaled - factor * base) < 1e-9 * max(1.0, base)


@given(
    st.floats(0.6, 1.3),
    st.floats(0.6, 1.3),
    st.floats(-20.0, 120.0),
)
@settings(max_examples=100)
def test_leakage_monotone_in_voltage_and_temperature(v1, v2, temp):
    assume(v1 < v2)
    assert leakage_scale(v1, temp) < leakage_scale(v2, temp)
    assert leakage_scale(v1, temp) < leakage_scale(v1, temp + 10)


@given(st.floats(0.55, 1.4), st.floats(0.55, 1.4))
@settings(max_examples=100)
def test_fmax_monotone(v1, v2):
    assume(v1 < v2)
    assert fmax_hz(v1) <= fmax_hz(v2)


@given(
    st.floats(0.0, 10.0),
    st.floats(0.0, 5.0),
    st.integers(1, 500),
    st.integers(1, 25),
)
@settings(max_examples=100)
def test_epi_equation_scaling(delta_w, sigma, latency, cores):
    """EPI is linear in the power delta and the latency, inverse in
    core count — direct consequences of the paper's equation."""
    p_idle = Measurement(2.0, sigma)
    p_inst = Measurement(2.0 + delta_w, sigma)
    epi = energy_per_instruction(p_inst, p_idle, 500e6, latency, cores)
    doubled_latency = energy_per_instruction(
        p_inst, p_idle, 500e6, 2 * latency, cores
    )
    assert abs(doubled_latency.value - 2 * epi.value) < 1e-18
    if cores > 1:
        fewer = energy_per_instruction(
            p_inst, p_idle, 500e6, latency, cores - 1
        )
        assert fewer.value >= epi.value


@given(st.floats(0.7, 1.2), st.floats(1e8, 8e8), st.floats(20.0, 100.0))
@settings(max_examples=60)
def test_idle_power_decomposition(vdd, freq, temp):
    """idle == static + clock, and both pieces are positive."""
    op = OperatingPoint(vdd=vdd, vcs=vdd + 0.05, freq_hz=freq, temp_c=temp)
    static = MODEL.static_power(op)
    idle = MODEL.idle_power(op)
    assert idle.vdd_w > static.vdd_w
    assert idle.vcs_w > static.vcs_w
    assert static.vdd_w > 0 and static.vcs_w > 0
