"""Hypothesis profiles for the property suites.

The default profile keeps local runs fast; the ``ci`` profile spends a
larger example budget (the CI verify job exports
``HYPOTHESIS_PROFILE=ci``). Per-test ``@settings(max_examples=...)``
decorations still apply where present — the profile only changes the
defaults and the deadline policy.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default", max_examples=50, deadline=None
)
settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
