"""Property-based tests: assembler round-trips, cache structures,
address homing, thermal convergence, measurement statistics."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch.params import CacheParams, PitonConfig
from repro.board.monitor import MeasurementProtocol
from repro.cache.addressing import AddressMap, Interleave
from repro.cache.setassoc import SetAssocCache
from repro.isa.assembler import assemble
from repro.power.chip_power import RailPower
from repro.thermal.rc_network import RcStage, ThermalNetwork
from repro.util.stats import Measurement

REG = st.integers(0, 31)
IMM = st.integers(-(2**31), 2**31 - 1)


@given(REG, REG, REG)
def test_assembler_round_trip_alu(rs1, rs2, rd):
    source = f"add %r{rs1}, %r{rs2}, %r{rd}"
    instr = assemble(source)[0]
    assert (instr.rs1, instr.rs2, instr.rd) == (rs1, rs2, rd)


@given(REG, st.integers(0, 2**20), REG)
def test_assembler_round_trip_load(base, offset, rd):
    instr = assemble(f"ldx [%r{base} + {offset}], %r{rd}")[0]
    assert (instr.rs1, instr.imm, instr.rd) == (base, offset, rd)


@given(IMM, REG)
def test_assembler_round_trip_set(imm, rd):
    instr = assemble(f"set {imm}, %r{rd}")[0]
    assert (instr.imm, instr.rd) == (imm, rd)


cache_geometries = st.tuples(
    st.sampled_from([1, 2, 4, 8]),  # ways
    st.sampled_from([2, 4, 16, 64]),  # sets
    st.sampled_from([16, 32, 64]),  # line bytes
)


@given(
    cache_geometries,
    st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_cache_never_exceeds_capacity_and_stats_consistent(geom, addrs):
    ways, sets, line = geom
    cache = SetAssocCache(CacheParams(ways * sets * line, ways, line))
    for addr in addrs:
        if not cache.access(addr).hit:
            cache.fill(addr)
    resident = cache.resident_lines()
    assert len(resident) <= ways * sets
    assert len(set(resident)) == len(resident)  # no duplicate lines
    assert cache.stats.accesses == len(addrs)
    # Every address we touched is resident or was evicted.
    for addr in addrs[-ways:]:  # at least the most recent per set
        pass  # LRU guarantee checked below for single-set case


@given(st.lists(st.integers(0, 3), min_size=1, max_size=50))
@settings(max_examples=60)
def test_lru_keeps_most_recent(way_choices):
    """In a single-set cache, the most recently touched `ways` distinct
    lines are always resident."""
    ways = 2
    cache = SetAssocCache(CacheParams(ways * 16, ways, 16))
    for choice in way_choices:
        addr = choice * 16
        if not cache.access(addr).hit:
            cache.fill(addr)
    recent = []
    for choice in reversed(way_choices):
        if choice * 16 not in recent:
            recent.append(choice * 16)
        if len(recent) == ways:
            break
    for addr in recent:
        assert cache.probe(addr)


@given(
    st.sampled_from(list(Interleave)),
    st.integers(0, 2**40),
)
def test_home_tile_in_range(interleave, addr):
    amap = AddressMap(PitonConfig(), interleave)
    assert 0 <= amap.home_tile(addr) < 25


@given(st.sampled_from(list(Interleave)), st.integers(0, 2**32))
def test_same_line_same_home(interleave, addr):
    """Every byte of a 64B line must home at the same slice."""
    amap = AddressMap(PitonConfig(), interleave)
    base = (addr // 64) * 64
    homes = {amap.home_tile(base + off) for off in (0, 13, 63)}
    assert len(homes) == 1


@given(
    st.lists(
        st.tuples(st.floats(0.5, 20.0), st.floats(0.1, 50.0)),
        min_size=1,
        max_size=4,
    ),
    st.floats(0.0, 10.0),
)
@settings(max_examples=50, deadline=None)
def test_thermal_network_converges_to_analytic(stages_spec, power):
    stages = [
        RcStage(f"s{i}", r, c) for i, (r, c) in enumerate(stages_spec)
    ]
    net = ThermalNetwork(stages, ambient_c=25.0)
    expected = net.steady_state(power)[0]
    # The slowest mode of a Cauer ladder is bounded by each node's
    # capacity times its total resistance path to ambient.
    tau_max = max(
        stage.c_j_per_c
        * sum(s.r_c_per_w for s in stages[i:])
        for i, stage in enumerate(stages)
    )
    for _ in range(400):
        net.step(power, dt_s=tau_max / 25)
    assert abs(net.die_temp_c - expected) < max(0.5, 0.02 * expected)


@given(
    st.floats(0.01, 10.0),
    st.floats(0.001, 1.0),
    st.floats(0.001, 0.5),
    st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_measurement_protocol_unbiased(vdd_w, vcs_w, vio_w, seed):
    protocol = MeasurementProtocol(np.random.default_rng(seed))
    m = protocol.measure_steady(
        RailPower(vdd_w, vcs_w, vio_w),
        {"vdd": 1.0, "vcs": 1.05, "vio": 1.8},
    )
    # Mean within 5 sigma-of-mean of truth (sigma/sqrt(128) each way).
    for measured, truth in (
        (m.vdd, vdd_w),
        (m.vcs, vcs_w),
        (m.vio, vio_w),
    ):
        tolerance = 5 * max(measured.sigma, 1e-4) / np.sqrt(128)
        assert abs(measured.value - truth) < max(tolerance, 0.01 * truth)


@given(
    st.floats(-100, 100),
    st.floats(0, 10),
    st.floats(-100, 100),
    st.floats(0, 10),
)
def test_measurement_algebra_consistency(a, sa, b, sb):
    x, y = Measurement(a, sa), Measurement(b, sb)
    s = x + y
    d = x - y
    assert s.value == a + b
    assert d.value == a - b
    assert s.sigma == d.sigma  # independent errors add in quadrature
    assert s.sigma >= max(sa, sb)
