"""Property tests: batched execution is bit-identical to serial.

The batching layer (:mod:`repro.batch`) may only ever change wall
time. These properties throw randomized grids at it — personas,
supply voltages, explicit/implicit frequencies, memory-free and
memory-touching workloads — and require the batched outcomes, the
pure-python fallback, and the end-to-end sweep records to match the
serial path exactly, including the de-batch paths where timing
classes differ.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.batch import plan_batches
from repro.batch.accumulate import FORCE_PYTHON_ENV
from repro.batch.execute import batched_simulate
from repro.experiments.sweep import SweepPoint, sweep
from repro.isa.instructions import Unit
from repro.isa.program import Instruction, flat_program
from repro.silicon.variation import CHIP1, CHIP2, CHIP3
from repro.system import PitonSystem, run_simulation
from repro.workloads.base import TileProgram
from repro.workloads.microbench import int_tile


def mem_tile() -> TileProgram:
    """A tiny ldx loop: reaches DRAM, so core frequency matters."""
    body = [
        Instruction("ldx", rd=9 + i, rs1=8, imm=i * 8) for i in range(4)
    ]
    body.append(Instruction("bne", rs1=16, target=0))
    return TileProgram(
        programs=[flat_program(body)],
        init_regs={8: 0x1000, 16: 1},
        memory_image={0x1000 + i * 8: i + 1 for i in range(4)},
    )


FACTORIES = {
    "int": lambda tile: int_tile(),
    "mem": lambda tile: mem_tile(),
}

POINTS = st.lists(
    st.builds(
        SweepPoint,
        persona=st.sampled_from([CHIP1, CHIP2, CHIP3]),
        vdd=st.sampled_from([0.85, 0.95, 1.05, 1.15]),
        freq_hz=st.sampled_from([None, 400e6, 700e6]),
    ),
    min_size=2,
    max_size=5,
)


def _requests(points, factory):
    requests = []
    for point in points:
        system = PitonSystem.default(persona=point.persona, seed=0)
        freq = point.resolved_freq_hz()
        system.set_operating_point(point.vdd, point.vdd + 0.05, freq)
        requests.append(
            system.sim_request(
                {0: factory(0)}, warmup_cycles=100, window_cycles=400
            )
        )
    return requests


def _assert_outcomes_identical(batched, serial) -> None:
    assert len(batched) == len(serial)
    for got, want in zip(batched, serial):
        assert got.result == want.result
        # Same events, same float values, same ledger insertion order
        # (power pricing sums in that order, so order is load-bearing).
        assert list(got.ledger.counts.items()) == list(
            want.ledger.counts.items()
        )
        assert list(got.ledger.weights.items()) == list(
            want.ledger.weights.items()
        )


@settings(max_examples=12, deadline=None)
@given(points=POINTS, kind=st.sampled_from(["int", "mem"]))
def test_batched_outcomes_match_serial(points, kind):
    requests = _requests(points, FACTORIES[kind])
    serial = [run_simulation(request) for request in requests]
    batched = list(batched_simulate(requests))
    _assert_outcomes_identical(batched, serial)

    plan = plan_batches(requests)
    if kind == "int":
        # Memory-free workload: frequency can't matter, so the whole
        # grid collapses into one simulation.
        assert plan.n_groups == 1
        assert plan.points_coalesced == len(requests) - 1
    else:
        # Memory-touching workload: distinct frequencies de-batch.
        assert plan.n_groups == len({r.freq_hz for r in requests})
        if plan.n_groups > 1:
            assert plan.debatch_events > 0


@settings(max_examples=8, deadline=None)
@given(points=POINTS)
def test_python_fallback_matches_numpy_backend(points):
    import os

    requests = _requests(points, FACTORIES["int"])
    with_numpy = list(batched_simulate(requests))
    os.environ[FORCE_PYTHON_ENV] = "1"
    try:
        pure_python = list(batched_simulate(requests))
    finally:
        del os.environ[FORCE_PYTHON_ENV]
    _assert_outcomes_identical(pure_python, with_numpy)


@settings(max_examples=6, deadline=None)
@given(points=POINTS, kind=st.sampled_from(["int", "mem"]))
def test_sweep_records_identical_batched_vs_serial(points, kind):
    kwargs = dict(warmup_cycles=100, window_cycles=400)
    factory = FACTORIES[kind]
    baseline = sweep(points, factory, batch=False, **kwargs)
    batched = sweep(points, factory, batch=True, **kwargs)
    assert batched.records == baseline.records


def test_mem_tile_really_touches_memory():
    from repro.batch import workload_can_touch_memory

    assert workload_can_touch_memory({0: mem_tile()})
    assert not workload_can_touch_memory({0: int_tile()})
    assert any(
        info.unit is Unit.MEM for info in mem_tile().programs[0].infos
    )
