"""Property-based tests: mesh geometry and flit-level routing."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.noc.flit import Packet, coupling_factor, switching_bits
from repro.noc.mesh import MeshNetwork

FP = Floorplan()
TILES = st.integers(0, 24)
WORDS = st.integers(0, 2**64 - 1)


@given(TILES, TILES)
def test_route_is_minimal_and_dimension_ordered(src, dst):
    route = FP.route(src, dst)
    assert route[0] == src and route[-1] == dst
    assert len(route) == FP.hops(src, dst) + 1
    # X must be fully resolved before Y moves (dimension order).
    coords = [FP.coord_of(t) for t in route]
    y_started = False
    for a, b in zip(coords, coords[1:]):
        if a.y != b.y:
            y_started = True
        if a.x != b.x:
            assert not y_started, "X move after Y began"


@given(TILES, TILES)
def test_hops_symmetric_triangle(src, dst):
    assert FP.hops(src, dst) == FP.hops(dst, src)
    assert FP.hops(src, dst) == 0 or src != dst
    for mid in (0, 12, 24):
        assert FP.hops(src, dst) <= FP.hops(src, mid) + FP.hops(mid, dst)


@given(TILES, TILES)
def test_wire_length_consistent_with_hops(src, dst):
    mm = FP.wire_length_mm(src, dst)
    hops = FP.hops(src, dst)
    assert (mm == 0) == (hops == 0)
    assert mm <= hops * max(1.14452, 1.053) + 1e-9
    assert mm >= hops * min(1.14452, 1.053) - 1e-9


@given(WORDS, WORDS)
def test_switching_and_coupling_bounds(a, b):
    assert 0 <= switching_bits(a, b) <= 64
    assert 0.0 <= coupling_factor(a, b) <= 1.0
    assert switching_bits(a, a) == 0
    assert coupling_factor(a, a) == 0.0


@given(WORDS, WORDS)
def test_switching_symmetric(a, b):
    assert switching_bits(a, b) == switching_bits(b, a)


@given(
    st.integers(0, 24),
    st.integers(0, 24),
    st.lists(WORDS, min_size=1, max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_any_packet_is_delivered_with_correct_latency_floor(
    src, dst, payloads
):
    mesh = MeshNetwork(PitonConfig(), network_id=1)
    packet = Packet.build(dst, payloads)
    mesh.inject(packet, src)
    mesh.drain()
    assert packet.delivered_at is not None
    hops = FP.hops(src, dst)
    turn = 1 if FP.has_turn(src, dst) else 0
    # Head flit cannot beat the physical minimum: one cycle per hop
    # plus the turn penalty plus injection/ejection cycles.
    assert packet.latency >= hops + turn


@given(
    st.lists(
        st.tuples(st.integers(0, 24), st.integers(0, 24)),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=30, deadline=None)
def test_no_deadlock_many_packets(pairs):
    """Dimension-ordered routing is deadlock-free: any batch drains."""
    mesh = MeshNetwork(PitonConfig(), network_id=3)
    for src, dst in pairs:
        mesh.inject(Packet.build(dst, [1, 2]), src)
    mesh.drain(max_cycles=20_000)
    assert len(mesh.delivered) == len(pairs)
    assert mesh.in_flight == 0


@given(st.integers(0, 24), st.lists(WORDS, min_size=6, max_size=6))
@settings(max_examples=30, deadline=None)
def test_flit_conservation(dst, payloads):
    """Flit-hops recorded == flits x hops, exactly."""
    mesh = MeshNetwork(PitonConfig(), network_id=2)
    packet = Packet.build(dst, payloads)
    mesh.inject(packet, 0)
    mesh.drain()
    expected = len(packet) * FP.hops(0, dst)
    assert mesh.total_flit_hops == expected
