"""Two-tier fidelity end to end: calibrate → dispatch → resume → CLI.

The contract under test:

* ``--tier sim`` (``fidelity=None``) stays byte-for-byte the historical
  cycle-level path, and an ``auto`` run with nothing calibrated
  degrades to exactly the same thing;
* an ``auto`` run over a calibrated workload serves every in-tolerance
  point from the surrogate and lands within the persisted error bars
  of the sim-tier run;
* checkpoint journals are tier-aware in both directions — a sim resume
  of an ``auto`` journal re-simulates the surrogate points, an ``auto``
  resume of a sim journal reuses everything;
* the ``repro calibrate`` / ``repro sweep`` CLI round-trips, including
  the ``--report`` and ``--json`` artifacts.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.parallel import parallel_simulate
from repro.experiments.sweep import SweepPoint, sweep
from repro.obs.trace import Tracer
from repro.resilience import CheckpointJournal, RetryPolicy, Supervision
from repro.silicon.variation import CHIP2
from repro.surrogate import (
    FidelityPolicy,
    ProfileStore,
    calibrate_named,
    profile_key,
)
from repro.surrogate.workloads import CALIBRATION_WORKLOADS

REPO_ROOT = Path(__file__).resolve().parents[2]

FREQS = [250e6, 450e6, 650e6, 850e6]
ANCHORS = [200e6, 500e6, 900e6]


@pytest.fixture(scope="module")
def calibrated_store(tmp_path_factory):
    """int + mem_l2 calibrated quick into one shared store."""
    store = ProfileStore(tmp_path_factory.mktemp("profiles"))
    reports = {
        name: calibrate_named(
            name, quick=True, anchor_freqs=ANCHORS, store=store
        )
        for name in ("int", "mem_l2")
    }
    return store, reports


def mem_requests(freqs=FREQS):
    base = CALIBRATION_WORKLOADS["mem_l2"].base_request(quick=True)
    return [replace(base, freq_hz=f) for f in freqs]


def sweep_grid():
    return [
        SweepPoint(persona=CHIP2, vdd=v, freq_hz=f)
        for v in (0.9, 1.1)
        for f in FREQS
    ]


def run_sweep(fidelity, tracer=None):
    workload, warmup, window = CALIBRATION_WORKLOADS["mem_l2"].build(
        True
    )
    return sweep(
        sweep_grid(),
        lambda tile: workload[tile],
        tiles=list(workload),
        warmup_cycles=warmup,
        window_cycles=window,
        tracer=tracer,
        fidelity=fidelity,
    )


class TestTierSim:
    def test_auto_with_empty_store_matches_sim_exactly(self, tmp_path):
        """Uncalibrated auto degrades to the cycle-level path bit-for-
        bit: every point falls back, and the measurement replay (bench
        RNG, thermal state) is untouched."""
        tracer = Tracer()
        empty = FidelityPolicy(
            store=ProfileStore(tmp_path / "none"), tracer=tracer
        )
        baseline = run_sweep(fidelity=None)
        degraded = run_sweep(fidelity=empty)
        assert degraded.records == baseline.records
        assert tracer.resilience["surrogate_fallbacks"] == len(
            sweep_grid()
        )
        assert "surrogate_hits" not in tracer.resilience


class TestTierAuto:
    def test_serves_all_points_within_bound(self, calibrated_store):
        store, reports = calibrated_store
        bound = reports["mem_l2"].error_bound
        assert 0 < bound < 0.25  # quick windows: loose but finite
        tracer = Tracer()
        policy = FidelityPolicy(
            store=store, tolerance=bound + 0.01, tracer=tracer
        )
        fast = run_sweep(fidelity=policy)
        slow = run_sweep(fidelity=None)
        assert tracer.resilience["surrogate_hits"] == len(sweep_grid())
        assert "surrogate_fallbacks" not in tracer.resilience
        assert tracer.meta["surrogate_max_err"] <= policy.tolerance
        for got, want in zip(fast.records, slow.records):
            assert got.persona == want.persona
            assert got.vdd == want.vdd
            assert got.freq_mhz == want.freq_mhz
            # Idle has no event component: identical in both tiers.
            assert got.idle_core_mw == want.idle_core_mw
            # Active power/EPI carry the interpolation error plus the
            # bench noise delta; both are bounded by the profile bars
            # (noise scales with the reading, so 2x bound is generous).
            assert got.active_core_mw == pytest.approx(
                want.active_core_mw, rel=2 * bound + 0.01
            )
            assert got.energy_per_instr_pj == pytest.approx(
                want.energy_per_instr_pj, rel=2 * bound + 0.01
            )

    def test_tight_tolerance_falls_back_everywhere(
        self, calibrated_store
    ):
        store, reports = calibrated_store
        tracer = Tracer()
        policy = FidelityPolicy(
            store=store, tolerance=1e-9, tracer=tracer
        )
        strict = run_sweep(fidelity=policy)
        assert strict.records == run_sweep(fidelity=None).records
        assert "surrogate_hits" not in tracer.resilience


class TestCrossTierResume:
    def run_journaled(self, ckpt_dir, fidelity, resume, tracer):
        requests = mem_requests()
        supervision = Supervision(
            policy=RetryPolicy(retries=0),
            journal=CheckpointJournal(ckpt_dir, resume=resume),
            tracer=tracer,
            experiment_id="surrtest",
        )
        outcomes = parallel_simulate(
            requests,
            jobs=1,
            supervision=supervision,
            fidelity=fidelity,
        )
        # Consume all but the final point so the journal survives for
        # the resume leg (delivery of the last point retires it).
        collected = []
        for _ in range(len(requests) - 1):
            collected.append(next(outcomes))
        outcomes.close()
        return collected

    def test_sim_resume_rejects_surrogate_points(
        self, calibrated_store, tmp_path
    ):
        store, reports = calibrated_store
        ckpt = tmp_path / "ckpt-auto"
        policy = FidelityPolicy(
            store=store, tolerance=reports["mem_l2"].error_bound + 0.01
        )
        first = Tracer()
        fast_run = self.run_journaled(
            ckpt, fidelity=policy, resume=False, tracer=first
        )
        assert all(o.tier == "fast" for o in fast_run)

        second = Tracer()
        resumed = self.run_journaled(
            ckpt, fidelity=None, resume=True, tracer=second
        )
        # Cycle-level fidelity requested: every journaled surrogate
        # point is re-simulated, none silently reused.
        assert second.resilience["points_tier_rejected"] == len(FREQS)
        assert "points_resumed" not in second.resilience
        assert all(o.tier == "sim" for o in resumed)
        reference = [
            o
            for o in map(
                lambda r: parallel_simulate([r]).__next__(),
                mem_requests()[: len(resumed)],
            )
        ]
        for got, want in zip(resumed, reference):
            assert got.result == want.result
            assert dict(got.ledger.counts) == dict(want.ledger.counts)

    def test_auto_resume_reuses_sim_points(
        self, calibrated_store, tmp_path
    ):
        store, reports = calibrated_store
        ckpt = tmp_path / "ckpt-sim"
        first = Tracer()
        sim_run = self.run_journaled(
            ckpt, fidelity=None, resume=False, tracer=first
        )
        assert all(o.tier == "sim" for o in sim_run)

        second = Tracer()
        policy = FidelityPolicy(
            store=store,
            tolerance=reports["mem_l2"].error_bound + 0.01,
            tracer=second,
        )
        resumed = self.run_journaled(
            ckpt, fidelity=policy, resume=True, tracer=second
        )
        # Sim points satisfy every tier: all reused, surrogate idle.
        assert second.resilience["points_resumed"] == len(FREQS)
        assert "points_tier_rejected" not in second.resilience
        assert "surrogate_hits" not in second.resilience
        for got, want in zip(resumed, sim_run):
            assert got.result == want.result
            assert dict(got.ledger.counts) == dict(want.ledger.counts)


# ---------------------------------------------------------------- CLI
def _repro(args, cwd, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCli:
    def test_calibrate_then_sweep_auto(self, tmp_path):
        profiles = tmp_path / "profiles"
        report_path = tmp_path / "report.json"
        result = _repro(
            [
                "calibrate",
                "int",
                "--quick",
                "--profile-dir",
                str(profiles),
                "--report",
                str(report_path),
            ],
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "freq-independent (exact)" in result.stdout

        report = json.loads(report_path.read_text())
        assert report["schema_version"] == 1
        (entry,) = report["profiles"]
        assert entry["workload"] == "int"
        assert entry["error_bound"] == 0.0
        assert (profiles / f"{entry['key']}.json").is_file()

        out_path = tmp_path / "sweep.json"
        result = _repro(
            [
                "sweep",
                "int",
                "--quick",
                "--tier",
                "auto",
                "--profile-dir",
                str(profiles),
                "--vdd-points",
                "2",
                "--freq-points",
                "2",
                "--json",
                "--out",
                str(out_path),
            ],
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        doc = json.loads(out_path.read_text())
        assert doc["tier"] == "auto"
        assert doc["points"] == 4
        # Frequency-independent profile: exact, so auto serves all 4.
        assert doc["surrogate"]["hits"] == 4
        assert doc["surrogate"]["fallbacks"] == 0
        assert doc["surrogate"]["max_err"] == 0.0
        assert len(doc["records"]) == 4
        assert "tier=auto: 4 surrogate point(s)" in result.stderr

    def test_sweep_unknown_workload_rejected(self, tmp_path):
        result = _repro(["sweep", "nonesuch"], cwd=tmp_path)
        assert result.returncode == 2
        assert "invalid choice" in result.stderr

    def test_calibrate_unknown_workload_rejected(self, tmp_path):
        result = _repro(["calibrate", "nonesuch"], cwd=tmp_path)
        assert result.returncode == 2
        assert "unknown workload" in result.stderr


def test_profile_key_is_stable_across_processes(calibrated_store):
    """The store key must match what a fresh process would compute —
    the CLI calibrates in one process and sweeps in another."""
    store, reports = calibrated_store
    request = CALIBRATION_WORKLOADS["mem_l2"].base_request(quick=True)
    assert profile_key(request) == reports["mem_l2"].key
    assert reports["mem_l2"].key in store.keys()
