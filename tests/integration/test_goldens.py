"""Golden-run differential tests: every registered experiment's
quick-mode JSON document must match its committed snapshot under
``tests/goldens/`` (regenerate with ``repro verify --update``).

This is the drift alarm for the whole pipeline: any change to the
simulator, the power model, the measurement path, or the result
serialization that moves a number shows up here as a named per-metric
diff, not as a silent reinterpretation of the paper.
"""

from __future__ import annotations

import json

import pytest

from repro.check.golden import (
    DEFAULT_GOLDEN_DIR,
    diff_documents,
    golden_path,
    live_document,
    load_golden,
    verify_experiments,
    write_golden,
)
from repro.experiments import EXPERIMENTS

#: Experiments whose quick runs take multiple seconds; slow-marked so
#: ``-m "not slow"`` keeps the fast loop snappy.
HEAVY = ("fig12", "fig13", "fig14")
FAST = tuple(eid for eid in EXPERIMENTS if eid not in HEAVY)


def test_every_experiment_has_a_committed_golden():
    missing = [
        eid for eid in EXPERIMENTS if not golden_path(eid).exists()
    ]
    assert not missing, (
        f"no golden snapshot for {missing}; run "
        "`repro verify --update` and commit tests/goldens/"
    )


def test_goldens_have_no_manifest():
    """Snapshots must be stripped: manifests carry wall times."""
    for eid in EXPERIMENTS:
        doc = load_golden(eid)
        assert doc is not None
        assert "manifest" not in doc, f"{eid} golden carries a manifest"
        assert doc["experiment_id"] == eid


@pytest.mark.parametrize("eid", FAST)
def test_live_run_matches_golden(eid):
    golden = load_golden(eid)
    diffs = diff_documents(golden, live_document(eid))
    assert not diffs, f"{eid} drifted from golden:\n" + "\n".join(diffs)


@pytest.mark.slow
@pytest.mark.parametrize("eid", HEAVY)
def test_live_run_matches_golden_heavy(eid):
    golden = load_golden(eid)
    diffs = diff_documents(golden, live_document(eid))
    assert not diffs, f"{eid} drifted from golden:\n" + "\n".join(diffs)


def test_checked_run_is_bit_identical_to_golden():
    """``checks=True`` must not move a single bit of the output: the
    checked fig11 document equals the (unchecked) golden exactly."""
    golden = load_golden("fig11")
    live = live_document("fig11", checks=True)
    assert json.dumps(golden, sort_keys=True) == json.dumps(
        live, sort_keys=True
    )


class TestVerifyHarness:
    def test_missing_golden_reported(self, tmp_path):
        report = verify_experiments(["table4"], goldens_dir=tmp_path)
        assert not report.ok
        assert report.outcomes[0].status == "missing"
        assert "repro verify --update" in report.outcomes[0].diffs[0]

    def test_update_then_pass_then_drift(self, tmp_path):
        report = verify_experiments(
            ["table4"], goldens_dir=tmp_path, update=True
        )
        assert report.ok
        assert golden_path("table4", tmp_path).exists()

        report = verify_experiments(["table4"], goldens_dir=tmp_path)
        assert report.ok and report.outcomes[0].status == "pass"

        # Corrupt one number: verification must fail and name the path.
        doc = load_golden("table4", tmp_path)
        doc["rows"][0][-1] = 999_999
        write_golden("table4", doc, tmp_path)
        report = verify_experiments(["table4"], goldens_dir=tmp_path)
        assert not report.ok
        assert report.outcomes[0].status == "fail"
        assert any("rows[0]" in d for d in report.outcomes[0].diffs)

    def test_report_serializes(self, tmp_path):
        report = verify_experiments(
            ["table4"], goldens_dir=tmp_path, update=True
        )
        doc = report.to_dict()
        assert doc["schema_version"] == 1
        assert doc["ok"] is True
        json.dumps(doc)  # must be JSON-clean

    def test_cli_verify_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        golden_dir = str(tmp_path)
        assert (
            main(["verify", "table4", "--update", "--goldens", golden_dir])
            == 0
        )
        report_file = tmp_path / "report.json"
        assert (
            main(
                [
                    "verify",
                    "table4",
                    "--goldens",
                    golden_dir,
                    "--report",
                    str(report_file),
                ]
            )
            == 0
        )
        payload = json.loads(report_file.read_text())
        assert payload["ok"] is True
        out = capsys.readouterr().out
        assert "PASS" in out

        # fig8 has no golden in the tmp dir -> drift -> exit 1.
        assert main(["verify", "fig8", "--goldens", golden_dir]) == 1


def test_default_golden_dir_is_committed_location():
    assert DEFAULT_GOLDEN_DIR.name == "goldens"
    assert DEFAULT_GOLDEN_DIR.parent.name == "tests"
