"""Telemetry integration: tracing must observe, never perturb.

The hard requirement on the obs layer is that enabling a tracer is
bit-identical to running without one — same rows, same series — while
the manifest it produces carries sane span timings and per-component
event rates, including when the per-point simulations are fanned out
across pool workers (whose wall times ride back on the pickled
outcomes).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import RunContext, get_experiment
from repro.obs import Tracer

FIG11 = get_experiment("fig11")


def _run_fig11(tracer=None, jobs=1):
    ctx = RunContext(quick=True, jobs=jobs, tracer=tracer)
    return FIG11(ctx, cores=2)


class TestBitIdentical:
    def test_tracer_on_off_identical(self):
        plain = _run_fig11()
        traced = _run_fig11(tracer=Tracer())
        assert traced.rows == plain.rows
        assert traced.series == plain.series

    def test_pooled_traced_identical(self):
        plain = _run_fig11()
        traced = _run_fig11(tracer=Tracer(), jobs=2)
        assert traced.rows == plain.rows
        assert traced.series == plain.series


class TestManifestSanity:
    @pytest.fixture(scope="class")
    def traced(self):
        return _run_fig11(tracer=Tracer(), jobs=2)

    def test_manifest_attached(self, traced):
        assert traced.manifest is not None
        assert traced.manifest.experiment_id == "fig11"
        assert traced.manifest.jobs == 2
        assert traced.manifest.quick is True
        assert traced.manifest.telemetry is True

    def test_point_wall_times(self, traced):
        manifest = traced.manifest
        # One simulated point per (instruction, operand policy) test.
        assert manifest.points > 10
        assert len(manifest.point_wall_s) == manifest.points
        assert all(t > 0.0 for t in manifest.point_wall_s)

    def test_spans_cover_the_pipeline(self, traced):
        spans = traced.manifest.spans
        for name in ("experiment", "simulate", "measure"):
            assert name in spans, name
            assert spans[name]["total_s"] > 0.0
        # Worker wall time sums across the pool, so it is bounded by
        # elapsed wall time times the worker count (plus slack).
        assert (
            spans["simulate"]["total_s"]
            <= traced.manifest.wall_s_total * traced.manifest.jobs * 1.1
        )

    def test_event_rates_sane(self, traced):
        rates = traced.manifest.event_rates
        # An EPI sweep issues core instructions at ~1/cycle/core and
        # touches the L1.5 at least occasionally.
        assert rates["core"]["per_cycle"] > 0.5
        assert rates["core"]["per_wall_s"] > 0.0
        assert rates["l15"]["events"] > 0

    def test_operating_point_recorded(self, traced):
        op = traced.manifest.operating_point
        assert op is not None
        assert op["freq_mhz"] > 0
        assert 0.5 < op["vdd"] < 1.5

    def test_persona_recorded(self, traced):
        assert traced.manifest.persona == "chip2"

    def test_manifest_round_trips_through_result_json(self, traced):
        from repro.experiments.result import ExperimentResult

        restored = ExperimentResult.from_json(traced.to_json())
        assert restored.manifest == traced.manifest


class TestTracingOverhead:
    def test_tracing_under_five_percent(self):
        """Enabled telemetry must cost <5% on the fig11 quick path.

        Interleaved min-of-3 timings cancel machine drift; a small
        absolute slack keeps sub-second timings from flaking on a
        noisy CI box.
        """
        plain_times, traced_times = [], []
        _run_fig11()  # warm caches/imports outside the timed runs
        for _ in range(3):
            start = time.perf_counter()
            _run_fig11()
            plain_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            _run_fig11(tracer=Tracer())
            traced_times.append(time.perf_counter() - start)
        plain, traced = min(plain_times), min(traced_times)
        assert traced <= plain * 1.05 + 0.05, (
            f"tracing overhead too high: {plain:.3f}s plain vs "
            f"{traced:.3f}s traced"
        )
