"""Batched execution end to end: experiments, pools, and resume.

``--batch`` may only change wall-clock time. These tests pin that at
the layers above :mod:`repro.batch`: a registry experiment's full
result document is identical with batching on and off (and across
worker pools), and a checkpoint journal written by one mode resumes
cleanly under the other — the journal format never learns about
batching.
"""

from __future__ import annotations

from repro.check.golden import strip_document
from repro.experiments import RunContext, fig11_epi
from repro.experiments.parallel import parallel_simulate
from repro.experiments.sweep import SweepPoint, sweep
from repro.obs.trace import Tracer
from repro.resilience import CheckpointJournal, Supervision
from repro.silicon.variation import CHIP1, CHIP2, CHIP3
from repro.system import PitonSystem
from repro.workloads.microbench import int_tile

POINTS = [
    SweepPoint(persona=p, vdd=v)
    for p in (CHIP1, CHIP2, CHIP3)
    for v in (0.9, 1.05)
]


def _requests():
    requests = []
    for point in POINTS:
        system = PitonSystem.default(persona=point.persona, seed=0)
        freq = point.resolved_freq_hz()
        system.set_operating_point(point.vdd, point.vdd + 0.05, freq)
        requests.append(
            system.sim_request(
                {0: int_tile()}, warmup_cycles=200, window_cycles=800
            )
        )
    return requests


def _documents_equal(a, b) -> None:
    assert strip_document(a.to_dict()) == strip_document(b.to_dict())


def test_fig11_document_identical_batch_on_off():
    batched = fig11_epi.run(RunContext(quick=True, batch=True))
    serial = fig11_epi.run(RunContext(quick=True, batch=False))
    _documents_equal(batched, serial)


def test_fig11_document_identical_batch_with_jobs():
    pooled = fig11_epi.run(RunContext(quick=True, batch=True, jobs=2))
    serial = fig11_epi.run(RunContext(quick=True, batch=False))
    _documents_equal(pooled, serial)


def test_batch_counters_reach_manifest():
    # Telemetry is opt-in; counters appear only with a live tracer.
    result = fig11_epi.run(
        RunContext(quick=True, batch=True, tracer=Tracer())
    )
    manifest = result.manifest.to_dict()
    assert manifest["batch"] is True
    assert manifest["resilience"].get("batch_groups", 0) >= 1


def _assert_same_outcomes(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.result == w.result
        assert list(g.ledger.counts.items()) == list(
            w.ledger.counts.items()
        )
        assert dict(g.ledger.weights) == dict(w.ledger.weights)


def _interrupted_run(requests, journal_dir, batch):
    """Journal a full grid, then abandon delivery after two points.

    Both execution paths journal every completed point the moment it
    exists; only a fully *delivered* grid retires the journal. Closing
    the iterator early models an interrupt unwinding through the
    measurement replay and leaves the journal on disk for resume.
    """
    supervision = Supervision(
        journal=CheckpointJournal(journal_dir, resume=False),
        experiment_id="batch-it",
    )
    outcomes = parallel_simulate(
        requests, supervision=supervision, batch=batch
    )
    next(outcomes), next(outcomes)
    outcomes.close()


def test_journal_written_serial_resumes_batched(tmp_path):
    requests = _requests()
    baseline = list(parallel_simulate(requests, batch=False))
    _interrupted_run(requests, tmp_path / "j", batch=False)

    tracer = Tracer()
    second = Supervision(
        journal=CheckpointJournal(tmp_path / "j", resume=True),
        tracer=tracer,
        experiment_id="batch-it",
    )
    resumed = list(
        parallel_simulate(requests, supervision=second, batch=True)
    )
    _assert_same_outcomes(resumed, baseline)
    # Every point came off disk; nothing was re-simulated.
    assert tracer.resilience["points_resumed"] == len(requests)
    assert "points_simulated" not in tracer.resilience


def test_journal_written_batched_resumes_serial(tmp_path):
    requests = _requests()
    baseline = list(parallel_simulate(requests, batch=False))
    _interrupted_run(requests, tmp_path / "j", batch=True)

    tracer = Tracer()
    second = Supervision(
        journal=CheckpointJournal(tmp_path / "j", resume=True),
        tracer=tracer,
        experiment_id="batch-it",
    )
    resumed = list(
        parallel_simulate(requests, supervision=second, batch=False)
    )
    _assert_same_outcomes(resumed, baseline)
    assert tracer.resilience["points_resumed"] == len(requests)


def test_sweep_matches_across_batch_and_jobs():
    factory = lambda tile: int_tile()  # noqa: E731
    kwargs = dict(warmup_cycles=200, window_cycles=800)
    serial = sweep(POINTS, factory, batch=False, **kwargs)
    batched = sweep(POINTS, factory, batch=True, **kwargs)
    pooled = sweep(POINTS, factory, batch=True, jobs=2, **kwargs)
    assert batched.records == serial.records
    assert pooled.records == serial.records
