"""Integration tests for `repro serve`: a real daemon on localhost.

The service promises are behavioral, so these tests exercise them over
actual sockets: cold requests simulate and cache, identical warm
requests return the stored bytes unchanged, N concurrent identical
requests coalesce onto one simulation, and the read-only endpoints
emit the same documents as their CLI twins (one serializer each).
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.cli import main
from repro.serve import SimulationService
from repro.serve.status import status_document
from repro.sweepspec import SWEEPSPEC_SCHEMA_VERSION, SweepSpec

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    svc = SimulationService(
        port=0,
        cas_dir=root / "cas",
        checkpoint_dir=root / "checkpoints",
        workers=4,
        jobs_dir=root / "jobs",
    )
    svc.start_background()
    yield svc
    svc.shutdown()


def _request(service, method, path, body=None):
    """One HTTP exchange; returns (status, headers dict, body bytes)."""
    conn = http.client.HTTPConnection(
        "127.0.0.1", service.bound_port, timeout=300
    )
    try:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        headers = (
            {"Content-Type": "application/json"} if payload else {}
        )
        conn.request(method, path, body=payload, headers=headers)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def _strip_manifest(body: bytes) -> dict:
    doc = json.loads(body)
    doc.pop("manifest", None)
    return doc


# ------------------------------------------------------------ read endpoints
class TestReadEndpoints:
    def test_experiments_matches_cli_list_json(self, service, capsys):
        status, _, body = _request(service, "GET", "/v1/experiments")
        assert status == 200
        assert main(["list", "--json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        assert json.loads(body) == cli_doc
        assert any(e["id"] == "fig11" for e in cli_doc)

    def test_status_matches_cli_status_json(self, service, capsys):
        status, _, body = _request(service, "GET", "/v1/status")
        assert status == 200
        doc = json.loads(body)
        assert main(
            ["status", "--json", "--checkpoint-dir",
             service.checkpoint_dir]
        ) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        # One serializer: identical apart from the daemon's live jobs.
        assert doc["schema_version"] == cli_doc["schema_version"]
        assert doc["checkpoint_dir"] == cli_doc["checkpoint_dir"]
        assert doc["experiments"] == cli_doc["experiments"]
        assert cli_doc["jobs"] == []
        assert isinstance(doc["jobs"], list)

    def test_status_document_is_the_shared_serializer(self, service):
        _, _, body = _request(service, "GET", "/v1/status")
        doc = json.loads(body)
        local = status_document(service.checkpoint_dir)
        assert doc["experiments"] == local["experiments"]

    def test_unknown_route_404(self, service):
        status, _, body = _request(service, "GET", "/v2/nope")
        assert status == 404
        assert "no route" in json.loads(body)["error"]["message"]

    def test_wrong_method_405(self, service):
        status, _, _ = _request(service, "POST", "/v1/experiments")
        assert status == 405


# ------------------------------------------------------------------ /v1/run
class TestRunEndpoint:
    def test_cold_miss_then_warm_hit_bit_identical(self, service):
        body = {"experiment": "fig8", "quick": True}
        s1, h1, b1 = _request(service, "POST", "/v1/run", body)
        assert s1 == 200
        assert h1["X-Repro-Cache"] == "miss"
        s2, h2, b2 = _request(service, "POST", "/v1/run", body)
        assert s2 == 200
        assert h2["X-Repro-Cache"] == "hit"
        assert b1 == b2  # byte-identical, straight from the store

        # The warm job's manifest records how it was served.
        _, _, job_body = _request(
            service, "GET", f"/v1/jobs/{h2['X-Repro-Job']}"
        )
        manifest = json.loads(job_body)
        assert manifest["state"] == "done"
        assert manifest["counters"]["cas_hits"] == 1

    def test_cold_body_matches_cli_run_json(self, service, capsys):
        body = {"experiment": "table4", "quick": True}
        _, headers, served = _request(service, "POST", "/v1/run", body)
        assert main(["run", "table4", "--quick", "--json"]) == 0
        cli_out = capsys.readouterr().out
        # Manifests carry wall-clock times; everything else must match.
        assert _strip_manifest(served) == _strip_manifest(
            cli_out.encode("utf-8")
        )

    def test_concurrent_identical_requests_one_simulation(self, service):
        body = {
            "experiment": "fig10",
            "quick": True,
            "persona": "chip3",
        }
        n = 4
        results: list[tuple] = [None] * n
        barrier = threading.Barrier(n)

        def worker(i: int) -> None:
            barrier.wait()
            results[i] = _request(service, "POST", "/v1/run", body)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(r[0] == 200 for r in results)
        paths = sorted(r[1]["X-Repro-Cache"] for r in results)
        assert paths.count("miss") == 1  # exactly one simulation
        assert set(paths) <= {"miss", "coalesced", "hit"}
        bodies = {r[2] for r in results}
        assert len(bodies) == 1  # all responses bit-identical

    def test_ctl_experiment_reachable_and_cached(self, service):
        """The governor scenarios are ordinary registered experiments:
        the daemon runs them cold, caches by content, and replays the
        stored bytes warm."""
        body = {"experiment": "ctl_powercap", "quick": True}
        s1, h1, b1 = _request(service, "POST", "/v1/run", body)
        assert s1 == 200
        assert h1["X-Repro-Cache"] == "miss"
        doc = _strip_manifest(b1)
        assert doc["experiment_id"] == "ctl_powercap"
        assert [row[0] for row in doc["rows"]] == [
            "uncapped", "reactive", "pi",
        ]
        s2, h2, b2 = _request(service, "POST", "/v1/run", body)
        assert s2 == 200
        assert h2["X-Repro-Cache"] == "hit"
        assert b1 == b2

    def test_unknown_experiment_400_names_known(self, service):
        status, _, body = _request(
            service, "POST", "/v1/run", {"experiment": "fig99"}
        )
        assert status == 400
        error = json.loads(body)["error"]
        assert "fig99" in error["message"]
        assert "fig8" in error["known"]

    def test_unknown_field_400_names_allowed(self, service):
        status, _, body = _request(
            service,
            "POST",
            "/v1/run",
            {"experiment": "fig8", "fast": True},
        )
        assert status == 400
        assert "fast" in json.loads(body)["error"]["message"]

    def test_missing_body_400(self, service):
        status, _, _ = _request(service, "POST", "/v1/run")
        assert status == 400


# ---------------------------------------------------------------- /v1/sweep
SPEC_DOC = {
    "schema_version": SWEEPSPEC_SCHEMA_VERSION,
    "workload": "mem_l2",
    "personas": ["chip2"],
    "vdd": [1.0],
    "freq_mhz": [500.0, 700.0],
    "quick": True,
}


class TestSweepEndpoint:
    def test_cold_then_warm_sweep(self, service):
        s1, h1, b1 = _request(service, "POST", "/v1/sweep", SPEC_DOC)
        assert s1 == 200
        assert h1["X-Repro-Cache"] == "miss"
        doc = json.loads(b1)
        assert doc["workload"] == "mem_l2"
        assert doc["points"] == 2
        assert len(doc["records"]) == 2
        assert doc["spec_digest"] == SweepSpec.from_dict(
            SPEC_DOC
        ).digest()
        assert doc["cache"] == {"hits": 0, "misses": 2}

        s2, h2, b2 = _request(service, "POST", "/v1/sweep", SPEC_DOC)
        assert s2 == 200
        assert h2["X-Repro-Cache"] == "hit"
        assert b1 == b2

    def test_overlapping_grid_reuses_points(self, service):
        """A different spec sharing 2 of 3 points pays for one new
        simulation only — per-point CAS keying, not per-sweep."""
        bigger = dict(SPEC_DOC, freq_mhz=[500.0, 700.0, 850.0])
        status, headers, body = _request(
            service, "POST", "/v1/sweep", bigger
        )
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"  # new sweep digest
        doc = json.loads(body)
        assert doc["cache"] == {"hits": 2, "misses": 1}

    def test_invalid_spec_400_with_field_details(self, service):
        bad = dict(SPEC_DOC, vdd=[9.9])
        status, _, body = _request(service, "POST", "/v1/sweep", bad)
        assert status == 400
        error = json.loads(body)["error"]
        assert error["spec_field"] == "vdd"
        assert "plausible range" in error["problem"]

    def test_bad_tier_query_400(self, service):
        status, _, body = _request(
            service, "POST", "/v1/sweep?tier=warp", SPEC_DOC
        )
        assert status == 400
        assert "tier" in json.loads(body)["error"]["message"]


# ------------------------------------------------------------------ job API
class TestJobEndpoints:
    def test_job_lifecycle_and_events(self, service):
        _, headers, _ = _request(
            service,
            "POST",
            "/v1/run",
            {"experiment": "table10", "quick": True},
        )
        job_id = headers["X-Repro-Job"]
        status, _, body = _request(service, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        doc = json.loads(body)
        assert doc["job_id"] == job_id
        assert doc["state"] == "done"
        assert doc["kind"] == "run"
        assert isinstance(doc["events"], list)

    def test_stream_ends_with_manifest(self, service):
        _, headers, _ = _request(
            service,
            "POST",
            "/v1/run",
            {"experiment": "table8", "quick": True},
        )
        job_id = headers["X-Repro-Job"]
        status, stream_headers, body = _request(
            service, "GET", f"/v1/jobs/{job_id}?stream=1"
        )
        assert status == 200
        assert "ndjson" in stream_headers["Content-Type"]
        lines = [
            json.loads(line)
            for line in body.decode("utf-8").splitlines()
            if line
        ]
        assert lines[-1]["event"] == "end"
        assert lines[-1]["manifest"]["state"] == "done"

    def test_unknown_job_404(self, service):
        status, _, _ = _request(service, "GET", "/v1/jobs/job-9999")
        assert status == 404

    def test_jobs_visible_in_status(self, service):
        _, _, body = _request(service, "GET", "/v1/status")
        jobs = json.loads(body)["jobs"]
        assert jobs, "previous tests' jobs should be listed"
        assert all(j["state"] in ("done", "failed") for j in jobs)


# ---------------------------------------------------------------- CLI twins
class TestCliSpecPaths:
    def test_sweep_spec_file_runs(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC_DOC))
        assert main(["sweep", "--spec", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "mem_l2"
        assert doc["points"] == 2
        assert doc["spec"] == SweepSpec.from_dict(SPEC_DOC).to_dict()

    def test_sweep_workload_and_spec_conflict(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC_DOC))
        assert main(["sweep", "mem_l2", "--spec", str(path)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_sweep_invalid_spec_exit_2_names_field(
        self, tmp_path, capsys
    ):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(dict(SPEC_DOC, vdd="high")))
        assert main(["sweep", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "vdd" in err

    def test_serve_dry_run_describes_spec(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC_DOC))
        assert main(["serve", "--dry-run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mem_l2" in out
        assert "points" in out
        assert SweepSpec.from_dict(SPEC_DOC).digest() in out

    def test_serve_dry_run_invalid_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["serve", "--dry-run", str(path)]) == 2
        assert "error" in capsys.readouterr().err
