"""Integration tests: every experiment module runs (quick mode) and
reproduces the paper's *shape* claims."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, RunContext, get_experiment


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_every_experiment_runs_and_renders(experiment_id):
    if experiment_id in ("fig11", "fig13", "fig14", "table7"):
        pytest.skip("covered by dedicated shape tests (slow)")
    result = get_experiment(experiment_id)(RunContext(quick=True))
    assert result.rows
    text = result.render()
    assert experiment_id in text


def test_registry_rejects_unknown():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_legacy_kwarg_style_rejected():
    """The pre-RunContext call style completed its deprecation cycle:
    it now raises a TypeError that names the replacement."""
    runner = get_experiment("fig8")
    with pytest.raises(TypeError, match="RunContext"):
        runner(quick=True)


class TestTable4Shape:
    def test_buckets_sum(self):
        result = get_experiment("table4")(RunContext(quick=True))
        counts = [row[3] for row in result.rows]
        assert sum(counts) == 32
        # Good chips are the majority, as in the paper.
        assert counts[0] > 16


class TestFig8Shape:
    def test_core_dominates_tile(self):
        result = get_experiment("fig8")(RunContext(quick=True))
        rows = {(r[0], r[1]): r[2] for r in result.rows}
        assert rows[("tile", "core")] == 47.00
        assert rows[("tile", "l2_cache")] == 22.16
        # NoC routers are a small fraction: the area context for the
        # paper's "NoC energy is small" claim.
        noc_total = sum(
            rows[("tile", f"noc{i}_router")] for i in (1, 2, 3)
        )
        assert noc_total < 3.0


class TestFig9Shape:
    def test_curves(self):
        result = get_experiment("fig9")(RunContext())
        chip1 = result.series["chip1"]
        chip2 = result.series["chip2"]
        vdds = [row[0] for row in result.rows]
        # Chip 1 fastest at the low end.
        low = vdds.index(0.85)
        assert chip1[low] > chip2[low]
        # Chip 1 droops at 1.2V below its 1.15V point.
        high = vdds.index(1.20)
        prev = vdds.index(1.15)
        assert chip1[high] < chip1[prev]
        # Monotonic rise for chip 2 until at least 1.15V.
        assert chip2[: prev + 1] == sorted(chip2[: prev + 1])

    def test_min_curve_tracks_paper_band(self):
        result = get_experiment("fig9")(RunContext())
        for row in result.rows:
            vdd, minimum, paper = row[0], row[4], row[5]
            assert minimum == pytest.approx(paper, rel=0.15), vdd


class TestFig10Shape:
    def test_monotonic_and_split(self):
        result = get_experiment("fig10")(RunContext(quick=True))
        idle = result.series["idle_total_mw"]
        static = result.series["static_total_mw"]
        assert idle == sorted(idle)
        assert static == sorted(static)
        # SRAM dynamic is a thin sliver of idle power.
        sram_dyn = result.series["sram_dynamic_mw"]
        core_dyn = result.series["core_dynamic_mw"]
        assert all(s < 0.15 * c for s, c in zip(sram_dyn, core_dyn))

    def test_table5_anchors(self):
        result = get_experiment("fig10")(RunContext(quick=True))
        assert result.series["table5_static_mw"][0] == pytest.approx(
            389.3, rel=0.02
        )
        assert result.series["table5_idle_mw"][0] == pytest.approx(
            2015.3, rel=0.02
        )


class TestFig15Shape:
    def test_total_and_simulation_agree(self):
        result = get_experiment("fig15")(RunContext(quick=True))
        total = result.series["total_cycles"][0]
        simulated = result.series["simulated_cycles"][0]
        assert total == 395
        assert simulated == pytest.approx(total, rel=0.15)

    def test_gateway_dominates_offchip(self):
        """The paper's point: FPGA buffering, not DRAM, eats the trip."""
        result = get_experiment("fig15")(RunContext(quick=True))
        by_component: dict[str, int] = {}
        for row in result.rows:
            if row[0] == "TOTAL":
                continue
            by_component[row[0]] = by_component.get(row[0], 0) + row[3]
        assert by_component["gateway FPGA"] > 90


class TestFig16Shape:
    def test_rail_ranges(self):
        result = get_experiment("fig16")(RunContext(quick=True))
        rows = {r[0]: r for r in result.rows}
        vdd_mean = rows["Core (VDD)"][1]
        vcs_mean = rows["SRAM (VCS)"][1]
        assert 1700 < vdd_mean < 1850
        assert 250 < vcs_mean < 300
        # I/O bursts visible: max well above mean.
        io = rows["I/O (VIO)"]
        assert io[3] > 3 * io[1]


class TestFig17Shape:
    def test_exponential_and_ordered(self):
        result = get_experiment("fig17")(RunContext(quick=True))
        # Power rises with temperature within each thread count.
        for threads in (0, 20, 40):
            powers = result.series[f"{threads}_threads_power_mw"]
            assert powers == sorted(powers)
        # And rises with thread count at fixed cooling.
        p0 = result.series["0_threads_power_mw"][0]
        p40 = result.series["40_threads_power_mw"][0]
        assert p40 > p0 + 50


class TestFig18Shape:
    def test_interleaved_cooler_smaller_swing(self):
        result = get_experiment("fig18")(RunContext(quick=True))
        rows = {r[0]: r for r in result.rows}
        sync, inter = rows["synchronized"], rows["interleaved"]
        assert inter[3] < sync[3]  # cooler on average
        assert inter[2] < 0.3 * sync[2]  # much smaller power swing
        assert inter[4] <= sync[4]  # smaller hysteresis loop


class TestTable8Shape:
    def test_derived_latencies(self):
        result = get_experiment("table8")(RunContext(quick=True))
        assert result.series["piton_memory_latency_ns"][0] == (
            pytest.approx(848, rel=0.02)
        )
        local, remote = result.series["piton_l2_latency_ns"]
        assert local == pytest.approx(68, rel=0.05)
        assert remote == pytest.approx(104, rel=0.08)


class TestTable9Shape:
    def test_times_and_power(self):
        result = get_experiment("table9")(RunContext(quick=True))
        by_name = result.row_dict()
        for name, ref in result.paper_reference.items():
            row = by_name[name]
            assert row[2] == pytest.approx(ref["piton_min"], rel=0.02)
            assert row[3] == pytest.approx(ref["slowdown"], rel=0.02)
            assert row[4] == pytest.approx(ref["power_w"], rel=0.03)
            # 8%: Table IX's own perlbench-diffmail row is internally
            # inconsistent (2.141 W x 184.37 min = 23.68 kJ, printed
            # 22.32 kJ); we reproduce power x time exactly.
            assert row[5] == pytest.approx(ref["energy_kj"], rel=0.08)

    def test_hmmer_highest_power(self):
        result = get_experiment("table9")(RunContext(quick=True))
        powers = {row[0]: row[4] for row in result.rows}
        assert max(powers, key=powers.get) == "hmmer-nph3"


class TestTable10Shape:
    def test_piton_unique(self):
        result = get_experiment("table10")(RunContext(quick=True))
        assert result.series["open_and_characterized_count"] == [1.0]
