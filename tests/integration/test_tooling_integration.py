"""Integration tests across the tooling layer: synthetic workloads
through the power report, tracing under the full system, the CDR +
MITTS multi-tenant composition, and window-ledger correctness."""

from __future__ import annotations

import pytest

from repro.cache.cdr import CdrRegistry
from repro.core.trace import TraceRecorder
from repro.noc.mitts import MittsBin, MittsShaper
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.power.report import PowerReport
from repro.system import PitonSystem
from repro.util.events import EventLedger
from repro.workloads.memtests import build_memtest
from repro.workloads.microbench import hist_workload
from repro.workloads.synthetic import WorkloadSpec, generate


class TestSyntheticThroughPowerReport:
    def test_mix_shows_up_in_block_attribution(self, shared_system):
        loady = generate(
            WorkloadSpec(load_frac=0.4, footprint_bytes=64 * 1024,
                         seed=2)
        )
        run = shared_system.run_workload(
            {0: loady.tile_program},
            warmup_cycles=30_000,
            window_cycles=8_000,
        )
        report = PowerReport(shared_system.persona, shared_system.calib)
        blocks = {
            b.block: b.active_w
            for b in report.active_breakdown(
                run.ledger, run.window_cycles, OperatingPoint()
            )
        }
        # A 64KB footprint streams through the L1.5/L2: those blocks
        # must appear in the attribution.
        assert blocks.get("l15", 0) > 0
        assert blocks.get("l2+directory", 0) > 0

    def test_activity_moves_power(self, shared_system):
        def power_of(activity: float) -> float:
            gen = generate(
                WorkloadSpec(activity=activity, seed=4)
            )
            run = shared_system.run_workload(
                {0: gen.tile_program},
                warmup_cycles=1_000,
                window_cycles=4_000,
            )
            model = ChipPowerModel(shared_system.persona)
            return model.event_power(
                run.ledger, run.window_cycles, OperatingPoint()
            ).total_w

        assert power_of(1.0) > power_of(0.0) * 1.2


class TestTracingUnderFullSystem:
    def test_epi_test_has_no_extraneous_activity(self, shared_system):
        """The paper's RTL check, reproduced: the EPI add loop issues
        only adds and the loop branch."""
        from repro.isa.operands import OperandPolicy
        from repro.workloads.epi_tests import build_epi_workload

        _, tp = build_epi_workload("add", OperandPolicy.RANDOM, 0)
        ledger = EventLedger()
        engine = shared_system.new_engine(ledger)
        core = engine.add_core(0, tp.programs, tp.init_regs, tp.init_fregs)
        with TraceRecorder(core) as trace:
            engine.run(cycles=500)
        assert trace.only_ops({"add", "bne"})
        # 20 adds + one 3-cycle branch per iteration: 21/23 issues/cycle.
        assert trace.issues_per_cycle() == pytest.approx(21 / 23, abs=0.05)


class TestMultiTenantComposition:
    def test_cdr_and_mitts_together(self, shared_system):
        cdr = CdrRegistry()
        service = cdr.create_domain("service", [0, 1])
        cdr.assign_region(service, 0x0020_0000, 0x2000)
        cdr.assign_region(service, 0x0030_0000, 0x2000)

        ledger = EventLedger()
        engine = shared_system.new_engine(ledger)
        engine.memsys.cdr = cdr
        hist = hist_workload([0, 1], 2, total_elements=128)
        for tile, tp in hist.tiles.items():
            engine.add_core(tile, tp.programs, tp.init_regs, tp.init_fregs)
            engine.memory.load_image(tp.memory_image)
        batch = build_memtest("l2_miss_local", 10, shared_system.config)
        engine.add_core(
            10,
            batch.tile_program.programs,
            batch.tile_program.init_regs,
        )
        engine.memory.load_image(batch.tile_program.memory_image)
        engine.memsys.set_mitts(
            10,
            MittsShaper(
                [MittsBin(0, 0), MittsBin(500, 4)], epoch_cycles=5_000
            ),
        )
        engine.run(cycles=15_000)
        engine.memsys.check_invariants()
        assert ledger.count("mitts.stall_cycle") > 0
        # The service tenant made progress despite the batch stream.
        service_loads = sum(
            t.stats.loads
            for tile in (0, 1)
            for t in engine.cores[tile].threads
        )
        assert service_loads > 10


class TestWindowLedgerCorrectness:
    def test_window_excludes_warmup_events(self, shared_system):
        gen = generate(WorkloadSpec(seed=6))
        run = shared_system.run_workload(
            {0: gen.tile_program},
            warmup_cycles=5_000,
            window_cycles=1_000,
        )
        # ~1 issue per cycle upper bound: warmup events must not leak.
        assert run.ledger.count("core.active_cycle") <= 1_100

    def test_window_rebinding_covers_offchip(self, shared_system):
        """Events from the off-chip path must land in the *window*
        ledger after the rebind, not the warm-up one."""
        mt = build_memtest("l2_miss_local", 0, shared_system.config)
        run = shared_system.run_workload(
            {0: mt.tile_program},
            warmup_cycles=12_000,
            window_cycles=12_000,
        )
        assert run.ledger.count("io.beat") > 0
        assert run.ledger.count("mem.outstanding_cycle") > 0

    def test_measurement_consistent_with_model(self, shared_system):
        """The bench 'measurement' must track the noise-free model to
        within instrument noise."""
        gen = generate(WorkloadSpec(seed=8))
        run = shared_system.run_workload(
            {0: gen.tile_program},
            warmup_cycles=1_000,
            window_cycles=4_000,
        )
        true_w = shared_system.bench.true_total_power_w(
            run.ledger, run.window_cycles
        )
        measured = run.measurement.total.value
        assert measured == pytest.approx(true_w, rel=0.01)


class TestSystemFacade:
    def test_default_interleave_and_config(self):
        system = PitonSystem.default(seed=3)
        assert system.config.tile_count == 25
        engine = system.new_engine()
        assert engine.memsys.address_map.interleave.value == "low"

    def test_engines_are_independent(self, shared_system):
        a = shared_system.new_engine()
        b = shared_system.new_engine()
        from repro.isa.assembler import assemble

        a.add_core(0, [assemble("nop")])
        assert 0 not in b.cores
