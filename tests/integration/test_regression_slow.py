"""Slow regression tests pinning the simulation-heavy experiments
(EPI, memory energy, scaling, MT-vs-MC) to the paper's shapes.

These run the experiments in quick mode (smaller sweeps, fewer cores)
but still exercise the full simulate -> measure -> methodology
pipeline. Marked slow; run by default, deselect with `-m "not slow"`.
"""

from __future__ import annotations

import pytest

from repro.experiments import RunContext
from repro.experiments import fig11_epi, fig13_scaling, fig14_mt_mc
from repro.experiments import table7_memory

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fig11():
    return fig11_epi.run(RunContext(quick=True))


@pytest.fixture(scope="module")
def table7():
    return table7_memory.run(RunContext(quick=True))


@pytest.fixture(scope="module")
def fig13():
    return fig13_scaling.run(RunContext(quick=True))


@pytest.fixture(scope="module")
def fig14():
    return fig14_mt_mc.run(RunContext(quick=True))


class TestFig11Shapes:
    def test_operand_values_move_epi(self, fig11):
        """min < random < max for every swept instruction."""
        for label, values in fig11.series.items():
            if len(values) == 3:
                low, mid, high = values
                assert low < mid < high, label

    def test_epi_grows_with_latency_within_class(self, fig11):
        rows = fig11.row_dict()
        rnd = {name: rows[name][3] for name in rows}
        assert rnd["and"] < rnd["add"] < rnd["mulx"] < rnd["sdivx"]
        assert rnd["faddd"] < rnd["fmuld"] < rnd["fdivd"]
        assert rnd["fdivs"] < rnd["fdivd"]

    def test_three_adds_equal_one_ldx(self, fig11):
        """The paper's recompute-vs-load insight."""
        rows = fig11.row_dict()
        assert 3 * rows["add"][3] == pytest.approx(
            rows["ldx"][3], rel=0.15
        )

    def test_ldx_anchor(self, fig11):
        rows = fig11.row_dict()
        assert rows["ldx"][3] == pytest.approx(286.46, rel=0.10)

    def test_store_buffer_rollback_costs_energy(self, fig11):
        rows = fig11.row_dict()
        assert rows["stx (F)"][3] > rows["stx (NF)"][3] + 30

    def test_nop_cheapest(self, fig11):
        rows = fig11.row_dict()
        nop = rows["nop"][3]
        for name, row in rows.items():
            if name != "nop":
                assert row[3] > nop, name

    def test_latencies_are_table6(self, fig11):
        rows = fig11.row_dict()
        assert rows["mulx"][1] == 11
        assert rows["sdivx"][1] == 72
        assert rows["fdivd"][1] == 79


class TestTable7Shapes:
    def test_hit_rows_match_paper(self, table7):
        by_label = table7.row_dict()
        expectations = {
            "L1 hit": 0.28646,
            "L1 miss, local L2 hit": 1.54,
            "L1 miss, remote L2 hit (4 hops)": 1.87,
            "L1 miss, remote L2 hit (8 hops)": 1.97,
        }
        for label, paper_nj in expectations.items():
            measured = by_label[label][3]
            assert measured == pytest.approx(paper_nj, rel=0.15), label

    def test_remote_premium_small(self, table7):
        """The headline NoC insight: remote vs local L2 differs little
        next to the miss cost."""
        by_label = table7.row_dict()
        local = by_label["L1 miss, local L2 hit"][3]
        remote = by_label["L1 miss, remote L2 hit (8 hops)"][3]
        miss = by_label["L1 miss, local L2 miss"][3]
        assert remote - local < 1.0  # under 1 nJ for 8 hops
        assert miss > 5 * remote

    def test_latency_ordering(self, table7):
        by_label = table7.row_dict()
        intervals = [row[2] for row in by_label.values()]
        assert intervals == sorted(intervals)


class TestFig13Shapes:
    def test_linear_growth(self, fig13):
        for key in ("Int_1tc", "HP_1tc", "Int_2tc", "HP_2tc"):
            powers = fig13.series[key]
            deltas = [b - a for a, b in zip(powers, powers[1:])]
            assert all(d > 0 for d in deltas), key

    def test_slope_ordering(self, fig13):
        s = {k: v[0] for k, v in fig13.series.items() if "slope" in k}
        assert s["Hist_1tc_slope_mw"] < s["Int_1tc_slope_mw"]
        assert s["Int_1tc_slope_mw"] < s["HP_1tc_slope_mw"]
        assert s["Int_2tc_slope_mw"] > s["Int_1tc_slope_mw"]
        assert s["HP_2tc_slope_mw"] > s["HP_1tc_slope_mw"]

    def test_slopes_near_paper(self, fig13):
        paper = {
            "Int_1tc_slope_mw": 22.8,
            "Int_2tc_slope_mw": 37.4,
            "HP_1tc_slope_mw": 35.6,
            "HP_2tc_slope_mw": 57.8,
            "Hist_1tc_slope_mw": 14.5,
            "Hist_2tc_slope_mw": 14.4,
        }
        for key, expected in paper.items():
            measured = fig13.series[key][0]
            assert measured == pytest.approx(expected, rel=0.35), key

    def test_hist_2tc_flattens(self, fig13):
        """Hist 2 T/C marginal power shrinks at high core counts."""
        powers = fig13.series["Hist_2tc"]
        early = powers[1] - powers[0]
        late = powers[-1] - powers[-2]
        assert late < early

    def test_hp_peak_power(self, fig13):
        """HP on 50 threads is the highest observed power, ~3.5W."""
        peak = fig13.series["HP_2tc"][-1]
        assert peak == pytest.approx(3500, rel=0.15)


class TestFig14Shapes:
    @staticmethod
    def _ratios(fig14, bench):
        note = next(n for n in fig14.notes if n.startswith(bench))
        energy = float(note.split("energy ratio ")[1].split(",")[0])
        power = float(note.split("power ratio ")[1].split(" ")[0])
        return energy, power

    def test_mt_always_lower_power(self, fig14):
        for bench in ("Int", "HP", "Hist"):
            _, power_ratio = self._ratios(fig14, bench)
            assert power_ratio < 0.75, bench

    def test_int_mt_more_energy(self, fig14):
        energy_ratio, _ = self._ratios(fig14, "Int")
        assert energy_ratio > 1.0

    def test_hp_mt_energy_near_parity_or_above(self, fig14):
        # Paper: MT uses more energy for HP; our pipeline's slightly
        # higher MC bubble recovery leaves it at rough parity.
        energy_ratio, _ = self._ratios(fig14, "HP")
        assert energy_ratio > 0.85

    def test_hist_mt_much_more_efficient(self, fig14):
        energy_ratio, _ = self._ratios(fig14, "Hist")
        assert energy_ratio < 0.75
