"""Parallel simulation fan-out must be bit-identical to serial.

The guarantee the parallel layer makes (see
``repro.experiments.parallel``) is not "statistically equivalent" but
*bit-identical*: the simulator consumes no randomness, so fanning the
per-point simulations across a process pool and replaying the
measurements serially in submission order reproduces the serial run
exactly — same event ledgers, same rendered tables.
"""

from __future__ import annotations

from repro.experiments import RunContext, fig13_scaling
from repro.experiments.parallel import parallel_simulate
from repro.silicon.variation import CHIP3
from repro.system import PitonSystem
from repro.workloads.microbench import hist_workload, microbench_core_ids


def _hist_requests(system: PitonSystem):
    """A few multi-tile coherent points: the Hist microbenchmark keeps
    shared histogram buckets behind cas locks, so its ledger exercises
    cross-tile coherence traffic, atomics, and store drains."""
    return [
        system.sim_request(
            hist_workload(microbench_core_ids(count), tpc).tiles,
            warmup_cycles=1_500,
            window_cycles=2_000,
        )
        for count, tpc in ((4, 1), (9, 2), (13, 1))
    ]


def test_pool_ledgers_identical_to_serial():
    system = PitonSystem.default(persona=CHIP3, seed=13)
    serial = list(parallel_simulate(_hist_requests(system), jobs=1))
    pooled = list(parallel_simulate(_hist_requests(system), jobs=4))

    assert len(serial) == len(pooled) == 3
    for ser, par in zip(serial, pooled):
        # Exact equality, including insertion order of the event names
        # (the power model's float accumulation is order-sensitive).
        assert list(ser.ledger.counts) == list(par.ledger.counts)
        assert ser.ledger.as_dict() == par.ledger.as_dict()
        assert dict(ser.ledger.weights) == dict(par.ledger.weights)
        assert ser.result.cycles == par.result.cycles
        assert ser.result.instructions == par.result.instructions


def test_fig13_quick_table_identical_serial_vs_jobs4():
    serial = fig13_scaling.run(RunContext(quick=True))
    pooled = fig13_scaling.run(RunContext(quick=True, jobs=4))
    assert serial.render() == pooled.render()
    assert serial.series == pooled.series
