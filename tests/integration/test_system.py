"""Integration tests: the full PitonSystem pipeline end to end."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.silicon.variation import CHIP1
from repro.system import PitonSystem
from repro.workloads.base import TileProgram
from repro.workloads.microbench import (
    HIST_BUCKETS_ADDR,
    HIST_BUCKET_COUNT,
    hist_workload,
    int_tile,
)


class TestRunWorkload:
    def test_measurement_above_idle(self, shared_system):
        run = shared_system.run_workload(
            {0: int_tile()}, warmup_cycles=500, window_cycles=2_000
        )
        idle = shared_system.measure_idle()
        assert run.measurement.core.value > idle.core.value

    def test_power_scales_with_cores(self, shared_system):
        one = shared_system.run_workload(
            {0: int_tile()}, warmup_cycles=500, window_cycles=2_000
        )
        five = shared_system.run_workload(
            {t: int_tile() for t in range(5)},
            warmup_cycles=500,
            window_cycles=2_000,
        )
        assert five.measurement.core.value > one.measurement.core.value

    def test_ledger_only_covers_window(self, shared_system):
        run = shared_system.run_workload(
            {0: int_tile()}, warmup_cycles=1_000, window_cycles=1_000
        )
        # ~1 instruction per cycle: the ledger must reflect the window,
        # not warmup + window.
        issued = run.ledger.count("core.active_cycle")
        assert issued <= 1_100

    def test_all_events_priced(self, shared_system):
        run = shared_system.run_workload(
            {0: int_tile()}, warmup_cycles=200, window_cycles=1_000
        )
        from repro.power.chip_power import ChipPowerModel

        assert ChipPowerModel().unknown_events(run.ledger) == []

    def test_run_to_completion_counts(self, shared_system):
        program = assemble(
            "set 50, %r1\nloop:\n sub %r1, 1, %r1\n bne %r1, loop"
        )
        run = shared_system.run_to_completion({3: [program]})
        assert run.result.completed
        assert run.result.instructions == 1 + 2 * 50

    def test_persona_changes_power(self):
        leaky = PitonSystem.default(persona=CHIP1, seed=2)
        normal = PitonSystem.default(seed=2)
        assert (
            leaky.measure_idle().core.value
            > normal.measure_idle().core.value
        )

    def test_operating_point_changes_power(self):
        system = PitonSystem.default(seed=3)
        nominal = system.measure_idle().core.value
        system.set_operating_point(0.85, 0.90, 300e6)
        lowered = system.measure_idle().core.value
        assert lowered < 0.7 * nominal


class TestHistCoherenceEndToEnd:
    def test_histogram_correct_under_contention(self, shared_system):
        """25 threads hammering one lock still produce an exact
        histogram — the strongest end-to-end coherence check."""
        workload = hist_workload(
            list(range(7)), 2, total_elements=126,
            repeat_forever=False,
        )
        run = shared_system.run_to_completion(
            workload.tiles, max_cycles=10_000_000
        )
        total = sum(
            run.engine.memory.read(HIST_BUCKETS_ADDR + 8 * b)
            for b in range(HIST_BUCKET_COUNT)
        )
        assert total == workload.total_elements
        run.engine.memsys.check_invariants()

    def test_more_threads_more_contention(self, shared_system):
        def rollbacks(cores: int) -> float:
            workload = hist_workload(
                list(range(cores)), 2, total_elements=96,
                repeat_forever=False,
            )
            run = shared_system.run_to_completion(
                workload.tiles, max_cycles=10_000_000
            )
            spins = run.ledger.count("instr.store")  # cas class
            return spins / 96.0

        assert rollbacks(8) > rollbacks(1)


class TestExecutionDrafting:
    def test_drafting_reduces_energy(self):
        """Two threads of the same program drafting together consume
        less instruction energy than undrafted."""
        system = PitonSystem.default(seed=4)
        program = assemble(
            "loop:\n add %r1, %r2, %r3\n add %r3, %r2, %r4\n"
            " bne %r31, loop"
        )
        tile = TileProgram(
            programs=[program, program], init_regs={31: 1, 1: 5, 2: 7}
        )
        undrafted = system.run_workload(
            {0: tile}, warmup_cycles=200, window_cycles=2_000
        )
        drafted = system.run_workload(
            {0: tile},
            warmup_cycles=200,
            window_cycles=2_000,
            execution_drafting=True,
        )
        assert (
            drafted.ledger.count("instr.int_add")
            < undrafted.ledger.count("instr.int_add")
        )

    def test_drafting_requires_synchronized_pcs(self):
        system = PitonSystem.default(seed=4)
        a = assemble("loop:\n add %r1, %r2, %r3\n bne %r31, loop")
        b = assemble("loop:\n nop\n nop\n nop\n bne %r31, loop")
        tile = TileProgram(programs=[a, b], init_regs={31: 1})
        run = system.run_workload(
            {0: tile},
            warmup_cycles=100,
            window_cycles=500,
            execution_drafting=True,
        )
        # Different programs never draft: full event counts.
        adds = run.ledger.count("instr.int_add")
        assert adds == int(adds)


class TestMeshConsistency:
    def test_transaction_timing_matches_flit_sim(self, shared_system):
        """The analytic hop/turn timing the cache system uses must
        agree with the flit-level mesh on route shape."""
        from repro.arch.floorplan import Floorplan
        from repro.noc.flit import Packet
        from repro.noc.mesh import MeshNetwork

        fp = Floorplan(shared_system.config)
        for dst in (1, 4, 6, 24):
            mesh = MeshNetwork(shared_system.config)
            packet = Packet.build(dst, [1, 2])
            mesh.inject(packet, 0)
            mesh.drain()
            hops = fp.hops(0, dst)
            turn = 1 if fp.has_turn(0, dst) else 0
            # Flit latency = hops + turn + constant inject/eject cost.
            overhead = packet.latency - (hops + turn)
            assert 1 <= overhead <= 4
