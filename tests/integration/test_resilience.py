"""Fault tolerance end to end: crashed and hung workers must be
invisible in results, interrupted campaigns must resume bit-identical,
and damaged checkpoints must cost exactly the damaged points.

The simulator is a pure function of its request, so every recovery
path (retry, in-process fallback, journal replay) reproduces the clean
run exactly — these tests assert that, not statistical closeness.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.check.faults import (
    WORKER_FAULT_ENV,
    inject_checkpoint_truncation,
)
from repro.experiments import parallel as parallel_mod
from repro.experiments.parallel import parallel_map, parallel_simulate
from repro.obs.trace import Tracer
from repro.resilience import (
    EXIT_RESUMABLE,
    CheckpointJournal,
    PointFailure,
    RetryPolicy,
    SupervisedPool,
    Supervision,
    request_digest,
)
from repro.silicon.variation import CHIP3
from repro.system import PitonSystem
from repro.workloads.microbench import hist_workload, microbench_core_ids

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _no_armed_fault(monkeypatch):
    monkeypatch.delenv(WORKER_FAULT_ENV, raising=False)


def _grid_requests(count: int = 4):
    """Small multi-tile coherent points (shared-bucket Hist traffic)."""
    system = PitonSystem.default(persona=CHIP3, seed=13)
    return [
        system.sim_request(
            hist_workload(microbench_core_ids(tiles), 1).tiles,
            warmup_cycles=800,
            window_cycles=1_200,
        )
        for tiles in range(2, 2 + count)
    ]


def _ledgers(outcomes):
    return [
        (o.ledger.as_dict(), o.result.cycles, o.result.instructions)
        for o in outcomes
    ]


# --------------------------------------------------------- worker faults
def test_worker_crash_recovers_bit_identical(monkeypatch):
    serial = _ledgers(parallel_simulate(_grid_requests(), jobs=1))

    monkeypatch.setenv(WORKER_FAULT_ENV, "worker_crash:1")
    tracer = Tracer()
    survived = _ledgers(
        parallel_simulate(
            _grid_requests(),
            jobs=2,
            supervision=Supervision(tracer=tracer),
        )
    )
    assert survived == serial
    assert tracer.resilience["worker_crashes"] >= 1
    assert tracer.resilience["retries"] >= 1
    # The retry ran on a worker, not via the serial escape hatch.
    assert "fallback_in_process" not in tracer.resilience


def test_worker_hang_killed_by_deadline(monkeypatch):
    serial = _ledgers(parallel_simulate(_grid_requests(), jobs=1))

    monkeypatch.setenv(WORKER_FAULT_ENV, "worker_hang:0")
    tracer = Tracer()
    survived = _ledgers(
        parallel_simulate(
            _grid_requests(),
            jobs=2,
            supervision=Supervision(
                policy=RetryPolicy(deadline_s=3.0, backoff_base_s=0.05),
                tracer=tracer,
            ),
        )
    )
    assert survived == serial
    assert tracer.resilience["timeouts"] >= 1
    assert tracer.resilience["retries"] >= 1


def test_deterministic_failure_raises_point_failure():
    pool = SupervisedPool(
        _always_failing,
        jobs=2,
        policy=RetryPolicy(retries=1, backoff_base_s=0.01),
    )
    with pytest.raises(PointFailure, match="grid point"):
        pool.map(["task-a", "task-b"])


def _always_failing(task):
    raise ValueError(f"poisoned point: {task}")


# ------------------------------------------------------ checkpoint/resume
def test_resume_skips_journaled_points(tmp_path):
    requests = _grid_requests()
    clean = _ledgers(parallel_simulate(requests, jobs=1))

    # Fake an interrupted campaign: the first 2 of 4 points journaled,
    # exactly as an on_result append would have left them.
    serial_outcomes = list(parallel_simulate(_grid_requests(), jobs=1))
    journal = CheckpointJournal(tmp_path / "grid")
    for index in range(2):
        journal.append(
            index, request_digest(requests[index]), serial_outcomes[index]
        )

    tracer = Tracer()
    resumed_journal = CheckpointJournal(tmp_path / "grid", resume=True)
    resumed = _ledgers(
        parallel_simulate(
            _grid_requests(),
            jobs=2,
            supervision=Supervision(
                journal=resumed_journal, tracer=tracer
            ),
        )
    )
    assert resumed == clean
    assert tracer.resilience["points_resumed"] == 2
    assert tracer.resilience["points_simulated"] == 2
    # A consumed grid retires its journal.
    assert not (tmp_path / "grid").exists()


def test_stale_grid_journal_never_leaks(tmp_path):
    requests = _grid_requests()
    outcomes = list(parallel_simulate(_grid_requests(), jobs=1))
    journal = CheckpointJournal(tmp_path / "grid")
    # Journal point 0 under the *wrong* digest (a different campaign).
    journal.append(0, request_digest("another grid"), outcomes[-1])

    tracer = Tracer()
    resumed = _ledgers(
        parallel_simulate(
            requests,
            jobs=1,
            supervision=Supervision(
                journal=CheckpointJournal(tmp_path / "grid", resume=True),
                tracer=tracer,
            ),
        )
    )
    assert resumed == _ledgers(outcomes)
    assert "points_resumed" not in tracer.resilience
    assert tracer.resilience["points_simulated"] == len(requests)


def test_truncated_tail_resimulates_only_damaged_point(tmp_path):
    requests = _grid_requests()
    clean = _ledgers(parallel_simulate(requests, jobs=1))

    # Journal the full grid, as a run interrupted during its final
    # measurement replay would have (all simulated, none delivered).
    journal = CheckpointJournal(tmp_path / "grid")
    for index, outcome in enumerate(
        parallel_simulate(_grid_requests(), jobs=1)
    ):
        journal.append(index, request_digest(requests[index]), outcome)

    inject_checkpoint_truncation(tmp_path / "grid", drop_bytes=9)

    tracer = Tracer()
    resumed = _ledgers(
        parallel_simulate(
            requests,
            jobs=1,
            supervision=Supervision(
                journal=CheckpointJournal(tmp_path / "grid", resume=True),
                tracer=tracer,
            ),
        )
    )
    assert resumed == clean
    assert tracer.resilience["points_resumed"] == len(requests) - 1
    assert tracer.resilience["points_simulated"] == 1


def test_abandoned_grid_keeps_journal(tmp_path):
    requests = _grid_requests()
    journal = CheckpointJournal(tmp_path / "grid")
    outcomes = parallel_simulate(
        requests,
        jobs=1,
        supervision=Supervision(journal=journal),
    )
    next(outcomes)
    outcomes.close()  # a consumer unwinding mid-measurement
    assert (tmp_path / "grid").exists()
    assert len(list((tmp_path / "grid").glob("point-*.seg"))) == len(
        requests
    )


# -------------------------------------------------- pool teardown hygiene
class _InterruptingPool:
    """Stand-in Pool whose map dies mid-flight, recording teardown."""

    calls: list[str] = []

    def __init__(self, processes):
        type(self).calls.append(f"init:{processes}")

    def map(self, fn, items):
        raise KeyboardInterrupt

    def terminate(self):
        type(self).calls.append("terminate")

    def join(self):
        type(self).calls.append("join")


def test_parallel_map_tears_down_pool_on_interrupt(monkeypatch):
    _InterruptingPool.calls = []
    monkeypatch.setattr(
        parallel_mod.multiprocessing, "Pool", _InterruptingPool
    )
    with pytest.raises(KeyboardInterrupt):
        parallel_map(_always_failing, ["a", "b"], jobs=2)
    assert _InterruptingPool.calls == ["init:2", "terminate", "join"]


def test_supervised_pool_leaves_no_children(monkeypatch):
    import multiprocessing

    before = set(p.pid for p in multiprocessing.active_children())
    _ledgers(
        parallel_simulate(
            _grid_requests(2),
            jobs=2,
            supervision=Supervision(),
        )
    )
    time.sleep(0.1)
    after = set(p.pid for p in multiprocessing.active_children())
    assert after <= before


# ------------------------------------------------------------ CLI circuit
def _repro(args, cwd, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop(WORKER_FAULT_ENV, None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _strip(doc):
    return {k: v for k, v in doc.items() if k != "manifest"}


@pytest.mark.slow
def test_cli_sigint_then_resume_bit_identical(tmp_path):
    run = [
        "run",
        "fig11",
        "--quick",
        "--jobs",
        "2",
        "--json",
    ]
    clean_proc = _repro(
        run + ["--out", "clean.json"], cwd=tmp_path
    )
    assert clean_proc.wait(timeout=120) == 0, clean_proc.stdout.read()

    proc = _repro(run + ["--out", "resumed.json"], cwd=tmp_path)
    time.sleep(1.0)
    proc.send_signal(signal.SIGINT)
    code = proc.wait(timeout=60)
    if code == 0:  # the grid won the race; nothing to resume
        pytest.skip("run finished before SIGINT landed")
    assert code == EXIT_RESUMABLE, proc.stdout.read()
    ckpt = tmp_path / "results" / "checkpoints" / "fig11"
    assert ckpt.is_dir() and list(ckpt.glob("point-*.seg"))

    resumed_proc = _repro(
        run + ["--out", "resumed.json", "--resume"], cwd=tmp_path
    )
    assert resumed_proc.wait(timeout=120) == 0, resumed_proc.stdout.read()
    assert not ckpt.exists()  # retired after the successful resume

    clean = json.loads((tmp_path / "clean.json").read_text())
    resumed = json.loads((tmp_path / "resumed.json").read_text())
    assert _strip(resumed) == _strip(clean)
    counters = resumed["manifest"]["resilience"]
    assert counters.get("points_resumed", 0) >= 1
    # Resumed points were loaded, not re-simulated: the two counters
    # partition the grid.
    total = counters["points_resumed"] + counters["points_simulated"]
    assert counters["points_simulated"] < total
