"""Every shipped example must run clean end to end.

Runs each example as a subprocess (the way a user would) and checks
exit status plus a fingerprint line of its expected output — guarding
the documentation surface against rot.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script -> (argv, substring the output must contain)
CASES = {
    "quickstart.py": ([], "static power"),
    "characterize_instruction.py": (["and", "2"], "EPI characterization"),
    "mesh_design_space.py": ([], "5x5"),
    "thermal_scheduling.py": ([], "stagger"),
    "multitenant_cloud.py": ([], "CDR trap"),
    "noc_traffic_study.py": ([], "hottest link"),
    "fit_your_chip.py": ([], "bench check"),
    "run_experiment.py": (["fig8", "--quick"], "Area breakdown"),
}

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    argv, fingerprint = CASES[script]
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *argv],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert fingerprint in result.stdout


def test_example_listing_is_complete():
    """No stray example scripts missing from this smoke matrix."""
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(CASES)
