"""Integration coverage for the hardened ``repro serve``.

Chaos-shaped scenarios against real daemons: a worker process that
segfaults mid-job (retried, never fatal), a streaming client that
disconnects (detached, job unharmed), admission control under
saturation and per-client rate limits (503/429 + Retry-After), drain
mode, shutdown abandoning work as an explicit ``interrupted`` state,
and — against subprocess daemons — SIGKILL mid-sweep followed by a
restart that recovers the journaled job, resumes from the completed
points, and produces the byte-identical document an uninterrupted
daemon would have.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.check.faults import (
    arm_serve_fault,
    arm_worker_fault,
    disarm_serve_fault,
    disarm_worker_fault,
)
from repro.resilience import EXIT_RESUMABLE
from repro.serve import JobJournal, SimulationService
from repro.sweepspec import SWEEPSPEC_SCHEMA_VERSION

pytestmark = pytest.mark.slow

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _request(port, method, path, body=None, timeout=300):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def _status_doc(port):
    _, _, body = _request(port, "GET", "/v1/status")
    return json.loads(body)


def _post_async(port, path, body):
    """Fire a POST on a thread; returns (thread, outcome dict)."""
    out: dict = {}

    def go():
        try:
            out["resp"] = _request(port, "POST", path, body)
        except Exception as exc:  # daemon died mid-request, etc.
            out["error"] = exc

    thread = threading.Thread(target=go, daemon=True)
    thread.start()
    return thread, out


def _wait(predicate, timeout=60.0, interval=0.02, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"{what} not reached within {timeout}s")


def _make_service(tmp_path, **kwargs):
    svc = SimulationService(
        port=0,
        cas_dir=tmp_path / "cas",
        checkpoint_dir=tmp_path / "checkpoints",
        jobs_dir=tmp_path / "jobs",
        **kwargs,
    )
    svc.start_background()
    return svc


RUN_BODY = {"experiment": "fig8", "quick": True}


# ---------------------------------------------------------- worker isolation
class TestWorkerIsolation:
    def test_worker_crash_is_retried_not_fatal(self, tmp_path):
        """A worker that dies abruptly (segfault-shaped: os._exit with
        no cleanup) costs a retry, never the daemon."""
        svc = _make_service(tmp_path, workers=1)
        arm_worker_fault("worker_crash", 0)
        try:
            status, headers, body = _request(
                svc.bound_port, "POST", "/v1/run", RUN_BODY
            )
        finally:
            disarm_worker_fault()
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"
        doc = _status_doc(svc.bound_port)
        crashed = [
            j
            for j in doc["jobs"]
            if j["counters"].get("worker_crashes", 0) >= 1
        ]
        assert crashed, "the crash must be visible on the job manifest"
        assert crashed[0]["state"] == "done"
        assert crashed[0]["counters"].get("retries", 0) >= 1
        # The daemon never shared the blast radius: still serving.
        s2, h2, b2 = _request(
            svc.bound_port, "POST", "/v1/run", RUN_BODY
        )
        assert s2 == 200 and h2["X-Repro-Cache"] == "hit"
        assert b2 == body
        svc.shutdown()


# ---------------------------------------------------------- stream detach
class TestStreamDetach:
    def test_aborted_stream_reader_does_not_cancel_the_job(
        self, tmp_path
    ):
        svc = _make_service(tmp_path, workers=1)
        arm_serve_fault("task_delay", 1.5)
        try:
            thread, out = _post_async(
                svc.bound_port, "/v1/run", RUN_BODY
            )
            job_id = _wait(
                lambda: next(
                    (
                        j["job_id"]
                        for j in _status_doc(svc.bound_port)["jobs"]
                        if j["state"] == "running"
                    ),
                    None,
                ),
                what="a running job",
            )
            # Subscribe to the live stream, then abort rudely (RST).
            sock = socket.create_connection(
                ("127.0.0.1", svc.bound_port), timeout=10
            )
            sock.sendall(
                f"GET /v1/jobs/{job_id}?stream=1 HTTP/1.1\r\n"
                "Host: t\r\n\r\n".encode()
            )
            assert b"200" in sock.recv(256)
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                # linger on, timeout 0: close() sends RST, not FIN.
                __import__("struct").pack("ii", 1, 0),
            )
            sock.close()
            thread.join(timeout=120)
        finally:
            disarm_serve_fault()
        assert "error" not in out
        status, _, _ = out["resp"]
        assert status == 200  # the job finished for its real client
        doc = _status_doc(svc.bound_port)
        assert doc["service"]["stream_detached"] >= 1
        assert all(j["state"] == "done" for j in doc["jobs"])
        svc.shutdown()


# ------------------------------------------------------- admission control
class TestAdmissionControl:
    def test_saturated_tier_answers_503_with_retry_after(
        self, tmp_path
    ):
        svc = _make_service(tmp_path, workers=1, queue_depth=0)
        arm_serve_fault("task_delay", 2.0)
        try:
            thread, out = _post_async(
                svc.bound_port, "/v1/run", RUN_BODY
            )
            _wait(
                lambda: _status_doc(svc.bound_port)["service"][
                    "active"
                ]
                >= 1,
                what="an active job",
            )
            status, headers, body = _request(
                svc.bound_port,
                "POST",
                "/v1/run",
                {"experiment": "fig9", "quick": True},
            )
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            error = json.loads(body)["error"]
            assert "saturated" in error["message"]
            assert error["retry_after_s"] >= 1
            # Read-only endpoints are never load-shed.
            assert _status_doc(svc.bound_port)["service"][
                "rejected_saturated"
            ] == 1
            thread.join(timeout=120)
        finally:
            disarm_serve_fault()
        assert out["resp"][0] == 200  # the admitted job was unharmed
        svc.shutdown()

    def test_per_client_rate_limit_answers_429(self, tmp_path):
        svc = _make_service(
            tmp_path, workers=1, rate_limit=0.001, rate_burst=2.0
        )
        s1, _, _ = _request(svc.bound_port, "POST", "/v1/run", RUN_BODY)
        s2, h2, _ = _request(svc.bound_port, "POST", "/v1/run", RUN_BODY)
        assert (s1, s2) == (200, 200)
        assert h2["X-Repro-Cache"] == "hit"
        s3, h3, body = _request(
            svc.bound_port, "POST", "/v1/run", RUN_BODY
        )
        assert s3 == 429
        assert int(h3["Retry-After"]) >= 1
        assert "rate limit" in json.loads(body)["error"]["message"]
        doc = _status_doc(svc.bound_port)  # GETs are never limited
        assert doc["service"]["rate_limited"] == 1
        svc.shutdown()


# ------------------------------------------------------------------- drain
class TestDrainAndInterrupted:
    def test_drain_finishes_running_work_and_refuses_new(
        self, tmp_path
    ):
        svc = _make_service(tmp_path, workers=1, drain_timeout_s=60.0)
        arm_serve_fault("task_delay", 1.5)
        try:
            thread, out = _post_async(
                svc.bound_port, "/v1/run", RUN_BODY
            )
            _wait(
                lambda: _status_doc(svc.bound_port)["service"][
                    "active"
                ]
                >= 1,
                what="an active job",
            )
            svc.begin_drain()
            _wait(
                lambda: _status_doc(svc.bound_port)["service"][
                    "draining"
                ],
                what="drain mode",
            )
            status, headers, _ = _request(
                svc.bound_port,
                "POST",
                "/v1/run",
                {"experiment": "fig9", "quick": True},
            )
            assert status == 503
            assert "Retry-After" in headers
            thread.join(timeout=120)
        finally:
            disarm_serve_fault()
        assert out["resp"][0] == 200  # running work finished cleanly
        svc._bg_thread.join(timeout=30)
        assert not svc._bg_thread.is_alive()
        assert svc._exit_code == 0  # drained inside the timeout
        # Nothing abandoned: the journal is empty.
        assert len(JobJournal(tmp_path / "jobs")) == 0

    def test_shutdown_marks_unfinished_jobs_interrupted(
        self, tmp_path
    ):
        svc = _make_service(tmp_path, workers=1)
        arm_serve_fault("task_delay", 2.5)
        try:
            thread, out = _post_async(
                svc.bound_port, "/v1/run", RUN_BODY
            )
            _wait(
                lambda: any(
                    j["state"] == "running"
                    for j in _status_doc(svc.bound_port)["jobs"]
                ),
                what="a running job",
            )
            svc.shutdown()
        finally:
            disarm_serve_fault()
        thread.join(timeout=120)
        manifests = svc.jobs.manifests()
        interrupted = [
            m for m in manifests if m["state"] == "interrupted"
        ]
        assert interrupted, manifests
        assert "journaled for recovery" in interrupted[0]["error"]
        # The journal kept the record, marked for the next daemon.
        records, damaged = JobJournal(tmp_path / "jobs").scan()
        assert damaged == []
        assert [r.state for r in records] == ["interrupted"]


# ----------------------------------------------------------- crash recovery
SWEEP_SPEC = {
    "schema_version": SWEEPSPEC_SCHEMA_VERSION,
    "workload": "mem_l2",
    "personas": ["chip2"],
    "vdd": [1.0],
    "freq_mhz": [
        300.0, 350.0, 400.0, 450.0, 500.0,
        550.0, 600.0, 650.0, 700.0, 750.0,
    ],
    "quick": True,
}


def _spawn_daemon(tmp_path, extra_env=None):
    env = dict(os.environ, PYTHONPATH=_SRC)
    env.pop("REPRO_SERVE_FAULT", None)
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--cas-dir", str(tmp_path / "cas"),
            "--checkpoint-dir", str(tmp_path / "checkpoints"),
            "--jobs-dir", str(tmp_path / "jobs"),
            "--workers", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    line = proc.stdout.readline()
    if "serving on" not in line:
        proc.kill()
        raise AssertionError(
            f"daemon failed to start: {line!r}\n{proc.stdout.read()}"
        )
    return proc, int(line.strip().rsplit(":", 1)[1])


def _strip_volatile(body: bytes) -> dict:
    """Drop the two honest-but-volatile keys (wall clock, cache
    traffic); everything else must be byte-for-byte deterministic."""
    doc = json.loads(body)
    doc.pop("wall_s", None)
    doc.pop("cache", None)
    return doc


class TestCrashRecovery:
    def test_sigkill_mid_sweep_recovers_resumed_and_identical(
        self, tmp_path
    ):
        """The headline guarantee: SIGKILL mid-sweep, restart, and the
        recovered daemon finishes the journaled job from its completed
        points — ``points_resumed > 0`` and a final document identical
        to an uninterrupted daemon's."""
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        proc, port = _spawn_daemon(chaos)
        try:
            _post_async(port, "/v1/sweep", SWEEP_SPEC)
            point_dir = chaos / "cas" / "point"
            _wait(
                lambda: any(point_dir.rglob("*.cas")),
                interval=0.002,
                what="the first completed point in the CAS",
            )
        finally:
            proc.kill()  # SIGKILL: no drain, no journal retirement
            proc.wait(timeout=30)
        records, _ = JobJournal(chaos / "jobs").scan()
        assert [r.kind for r in records] == ["sweep"]

        proc2, port2 = _spawn_daemon(chaos)
        try:
            _wait(
                lambda: (
                    lambda s: s["jobs_recovered"] >= 1
                    and s["journaled_jobs"] == 0
                )(_status_doc(port2)["service"]),
                timeout=240,
                what="startup recovery",
            )
            doc = _status_doc(port2)
            recovered = [
                j for j in doc["jobs"] if j["kind"] == "sweep"
            ]
            assert recovered and recovered[0]["state"] == "done"
            assert (
                recovered[0]["counters"].get("points_resumed", 0) > 0
            ), "recovery must resume from journaled points, not redo"
            status, headers, recovered_body = _request(
                port2, "POST", "/v1/sweep", SWEEP_SPEC
            )
            assert status == 200
            assert headers["X-Repro-Cache"] == "hit"
        finally:
            proc2.kill()
            proc2.wait(timeout=30)

        # An uninterrupted daemon over fresh stores: the reference.
        clean = tmp_path / "clean"
        clean.mkdir()
        proc3, port3 = _spawn_daemon(clean)
        try:
            status, _, clean_body = _request(
                port3, "POST", "/v1/sweep", SWEEP_SPEC
            )
            assert status == 200
        finally:
            proc3.kill()
            proc3.wait(timeout=30)
        assert _strip_volatile(recovered_body) == _strip_volatile(
            clean_body
        )

    def test_daemon_kill_injector_fires_and_run_recovers(
        self, tmp_path
    ):
        """The injector variant: die right after the job's ``running``
        record lands — the worst instant — and recover the run."""
        root = tmp_path / "killed"
        root.mkdir()
        proc, port = _spawn_daemon(
            root, extra_env={"REPRO_SERVE_FAULT": "daemon_kill:1"}
        )
        try:
            _post_async(port, "/v1/run", RUN_BODY)
            assert proc.wait(timeout=60) == 9  # died as armed
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        records, _ = JobJournal(root / "jobs").scan()
        assert [(r.kind, r.state) for r in records] == [
            ("run", "running")
        ]

        proc2, port2 = _spawn_daemon(root)
        try:
            _wait(
                lambda: _status_doc(port2)["service"][
                    "jobs_recovered"
                ]
                >= 1,
                timeout=240,
                what="run recovery",
            )
            assert len(JobJournal(root / "jobs")) == 0
            status, headers, _ = _request(
                port2, "POST", "/v1/run", RUN_BODY
            )
            assert status == 200
            assert headers["X-Repro-Cache"] == "hit"
        finally:
            proc2.kill()
            proc2.wait(timeout=30)
