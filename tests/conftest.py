"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch.params import PitonConfig
from repro.system import PitonSystem
from repro.util.events import EventLedger


@pytest.fixture
def config() -> PitonConfig:
    return PitonConfig()


@pytest.fixture
def small_config() -> PitonConfig:
    """A 3x3 mesh: cheap enough for exhaustive protocol tests."""
    return PitonConfig(mesh_width=3, mesh_height=3)


@pytest.fixture
def ledger() -> EventLedger:
    return EventLedger()


@pytest.fixture(scope="session")
def shared_system() -> PitonSystem:
    """One default system for read-only measurement tests."""
    return PitonSystem.default(seed=42)
