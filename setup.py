"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables the legacy
editable-install path (`pip install -e .`) on offline machines where
PEP 660 wheel building is unavailable.
"""

from setuptools import setup

setup()
