"""Top-level facade: a complete Piton system you can run and measure.

:class:`PitonSystem` binds together a chip persona, the architectural
simulator (cores + coherent memory + off-chip path), the power model,
the cooling stack, and the virtual test board. The standard experiment
flow is::

    system = PitonSystem.default()
    run = system.run_workload({0: [program]}, warmup_cycles=2_000,
                              window_cycles=10_000)
    print(run.measurement.core.format(scale=1e-3), "mW on VDD+VCS")

``run_workload`` mirrors the bench procedure: run to steady state
(warm-up, events discarded), then record events over a measurement
window and "measure" the implied power with the 17 Hz monitors.

Simulation and measurement are deliberately split: the architectural
simulation is a pure function of a :class:`SimRequest` (no randomness
anywhere in core, cache, or chip), while all stochastic state — the
monitor noise stream and the thermal settle — lives in the bench.
:func:`run_simulation` is therefore safe to fan out across worker
processes (see :mod:`repro.experiments.parallel`); replaying the
measurements serially in submission order afterwards produces output
bit-identical to a fully serial run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.arch.params import DEFAULT_MEASUREMENT, MeasurementDefaults, PitonConfig
from repro.board.monitor import RailMeasurement
from repro.board.testboard import ExperimentalSystem
from repro.cache.addressing import AddressMap, Interleave
from repro.cache.system import CoherentMemorySystem
from repro.chip.offchip import OffChipPath
from repro.core.multicore import MulticoreEngine, RunResult
from repro.isa.program import Program
from repro.workloads.base import TileProgram, normalize_workload
from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.obs.trace import NULL_TRACER, Tracer
from repro.silicon.variation import CHIP2, ChipPersona
from repro.thermal.cooling import STOCK_HEATSINK_FAN, CoolingSetup
from repro.util.events import EventLedger


@dataclass
class WorkloadRun:
    """Everything one measured workload run produced.

    ``engine`` is ``None`` when the simulation ran in a worker process
    (the engine does not travel back across the process boundary).
    """

    measurement: RailMeasurement
    result: RunResult
    ledger: EventLedger
    window_cycles: int
    engine: MulticoreEngine | None

    @property
    def ipc(self) -> float:
        return self.result.ipc


@dataclass(frozen=True)
class SimRequest:
    """A complete, picklable description of one pure simulation.

    Captures everything the architectural simulation depends on —
    workload, window, chip configuration, address interleaving, and the
    core clock (which sets off-chip latencies in core cycles). Chip
    persona, calibration, and RNG seed deliberately do *not* appear:
    they only affect measurement, which stays in the parent process.

    ``window_cycles=None`` means run to completion (finite workloads).
    """

    workload: dict[int, TileProgram]
    config: PitonConfig
    interleave: Interleave
    freq_hz: float
    warmup_cycles: int = 0
    window_cycles: int | None = None
    max_cycles: int = 50_000_000
    execution_drafting: bool = False
    #: Run the :mod:`repro.check` invariant sweeps during simulation.
    #: Checks never mutate state, so outputs are bit-identical either
    #: way; a violation raises instead of corrupting results. The flag
    #: is part of the request so pool workers honour it too.
    checks: bool = False

    def batch_key(self):
        """This request's timing class (see :mod:`repro.batch`).

        Two requests with equal keys provably produce bit-identical
        outcomes, which is what lets sweep grids coalesce them into
        one simulation.
        """
        from repro.batch import batch_key

        return batch_key(self)


@dataclass
class SimOutcome:
    """What one simulation produced: the event ledger for the measured
    window and the run counters. ``engine`` survives only in-process.

    ``build_wall_s``/``sim_wall_s`` are wall-clock telemetry stamped by
    :func:`run_simulation`. They are plain floats, so they pickle back
    from pool workers, which is how per-point timings reach the
    parent's tracer (see :mod:`repro.experiments.parallel`); they never
    feed back into simulation or measurement, so results are identical
    whether anyone reads them or not.
    """

    ledger: EventLedger
    result: RunResult
    engine: MulticoreEngine | None = None
    build_wall_s: float = 0.0
    sim_wall_s: float = 0.0
    #: Per-checker pass counts when the request ran with ``checks``
    #: (``None`` otherwise). A plain dict, so it pickles back from
    #: pool workers for the parent suite to merge.
    check_counts: dict[str, int] | None = None
    #: Which fidelity tier produced this outcome: ``"sim"`` for the
    #: cycle-level simulator, ``"fast"`` for the calibrated analytical
    #: surrogate (:mod:`repro.surrogate`). Rides inside checkpoint
    #: journal payloads so ``--resume`` is tier-aware: a cycle-level
    #: resume never silently reuses surrogate points.
    tier: str = "sim"
    #: Calibrated relative error bound of the surrogate prediction
    #: (0.0 for cycle-level outcomes).
    tier_err: float = 0.0


def build_engine(
    config: PitonConfig,
    interleave: Interleave,
    freq_hz: float,
    ledger: EventLedger | None = None,
    execution_drafting: bool = False,
    checker=None,
) -> MulticoreEngine:
    """A fresh multicore engine wired to a full off-chip path.

    ``checker`` (a :class:`repro.check.CheckSuite` or ``None``) is
    installed on both the engine and its memory system.
    """
    ledger = ledger if ledger is not None else EventLedger()
    offchip = OffChipPath(config, ledger)
    offchip.set_core_clock(freq_hz)
    memsys = CoherentMemorySystem(
        config,
        ledger=ledger,
        address_map=AddressMap(config, interleave),
        offchip=offchip,
    )
    memsys.checker = checker
    return MulticoreEngine(
        config,
        ledger=ledger,
        memsys=memsys,
        execution_drafting=execution_drafting,
        checker=checker,
    )


def run_simulation(request: SimRequest) -> SimOutcome:
    """Execute one :class:`SimRequest`. Pure and deterministic.

    This is the function worker processes run: it touches no bench
    state and consumes no randomness, so the outcome is identical
    whether it runs here, in a pool worker, or in any order relative
    to other requests.
    """
    build_start = time.perf_counter()
    checker = None
    if request.checks:
        from repro.check import CheckSuite

        checker = CheckSuite()
    warmup_ledger = EventLedger()
    engine = build_engine(
        request.config,
        request.interleave,
        request.freq_hz,
        ledger=warmup_ledger,
        execution_drafting=request.execution_drafting,
        checker=checker,
    )
    for tile, tp in request.workload.items():
        engine.add_core(tile, tp.programs, tp.init_regs, tp.init_fregs)
        engine.memory.load_image(tp.memory_image)
    sim_start = time.perf_counter()
    build_wall_s = sim_start - build_start

    if request.window_cycles is None:
        result = engine.run(until_done=True, max_cycles=request.max_cycles)
        return SimOutcome(
            ledger=warmup_ledger,
            result=result,
            engine=engine,
            build_wall_s=build_wall_s,
            sim_wall_s=time.perf_counter() - sim_start,
            check_counts=checker.summary() if checker is not None else None,
        )

    if request.warmup_cycles:
        engine.run(cycles=request.warmup_cycles)
    window_ledger = EventLedger()
    _rebind_engine_ledger(engine, window_ledger)
    result = engine.run(cycles=request.window_cycles)
    return SimOutcome(
        ledger=window_ledger,
        result=result,
        engine=engine,
        build_wall_s=build_wall_s,
        sim_wall_s=time.perf_counter() - sim_start,
        check_counts=checker.summary() if checker is not None else None,
    )


def _rebind_engine_ledger(
    engine: MulticoreEngine, ledger: EventLedger
) -> None:
    """Point every component of a live engine at a new ledger."""
    engine.ledger = ledger
    engine.memsys.ledger = ledger
    for slice_ in engine.memsys.l2:
        slice_.ledger = ledger
    offchip = engine.memsys.offchip
    if isinstance(offchip, OffChipPath):
        offchip.ledger = ledger
        offchip.bridge.ledger = ledger
        offchip.dram.ledger = ledger
    for core in engine.cores.values():
        core.ledger = ledger


class PitonSystem:
    """A chip + board + instruments, ready to run experiments."""

    def __init__(
        self,
        persona: ChipPersona = CHIP2,
        config: PitonConfig | None = None,
        calib: Calibration = DEFAULT_CALIBRATION,
        cooling: CoolingSetup = STOCK_HEATSINK_FAN,
        defaults: MeasurementDefaults = DEFAULT_MEASUREMENT,
        seed: int = 0,
        interleave: Interleave = Interleave.LOW,
        tracer: Tracer | None = None,
        checks: bool = False,
    ):
        self.persona = persona
        self.config = config or PitonConfig()
        self.calib = calib
        self.defaults = defaults
        self.interleave = interleave
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.checks = checks
        #: The system-level :class:`repro.check.CheckSuite` when checks
        #: are on: engines built via :meth:`new_engine` share it, pool
        #: workers fold their counters into it, and every measured
        #: ledger is conservation-checked against the calibration.
        self.checker = None
        if checks:
            from repro.check import CheckSuite

            self.checker = CheckSuite()
        self.bench = ExperimentalSystem(
            persona=persona,
            calib=calib,
            cooling=cooling,
            defaults=defaults,
            seed=seed,
        )
        if self.tracer.enabled:
            self.tracer.note("persona", persona.name)
            self.tracer.note("interleave", interleave.name)
            self.tracer.note(
                "operating_point", self._operating_point_note()
            )

    @classmethod
    def default(cls, **kwargs) -> "PitonSystem":
        return cls(**kwargs)

    # ------------------------------------------------------------- simulation
    def new_engine(
        self,
        ledger: EventLedger | None = None,
        execution_drafting: bool = False,
    ) -> MulticoreEngine:
        """A fresh multicore engine wired to a full off-chip path."""
        return build_engine(
            self.config,
            self.interleave,
            self.bench.freq_hz,
            ledger=ledger,
            execution_drafting=execution_drafting,
            checker=self.checker,
        )

    def sim_request(
        self,
        programs_by_tile: dict[int, "TileProgram | list[Program]"],
        warmup_cycles: int = 2_000,
        window_cycles: int = 10_000,
        execution_drafting: bool = False,
    ) -> SimRequest:
        """Capture a steady-state workload run as a :class:`SimRequest`.

        The request snapshots the *current* operating point (the core
        clock); take it after :meth:`set_operating_point`.
        """
        return SimRequest(
            workload=normalize_workload(programs_by_tile),
            config=self.config,
            interleave=self.interleave,
            freq_hz=self.bench.freq_hz,
            warmup_cycles=warmup_cycles,
            window_cycles=window_cycles,
            execution_drafting=execution_drafting,
            checks=self.checks,
        )

    def sim_request_to_completion(
        self,
        programs_by_tile: dict[int, "TileProgram | list[Program]"],
        max_cycles: int = 50_000_000,
    ) -> SimRequest:
        """Capture a run-to-completion workload as a :class:`SimRequest`."""
        return SimRequest(
            workload=normalize_workload(programs_by_tile),
            config=self.config,
            interleave=self.interleave,
            freq_hz=self.bench.freq_hz,
            warmup_cycles=0,
            window_cycles=None,
            max_cycles=max_cycles,
            checks=self.checks,
        )

    def _traced_simulation(self, request: SimRequest) -> SimOutcome:
        """Run one simulation in-process, reporting its wall times.

        The direct (non-pooled) counterpart of the tracer aggregation
        in :mod:`repro.experiments.parallel`: simulation outputs are
        untouched, only the outcome's wall-time stamps are folded into
        the tracer.
        """
        outcome = run_simulation(request)
        tracer = self.tracer
        if tracer.enabled:
            tracer.add_span("build", outcome.build_wall_s)
            tracer.add_span("simulate", outcome.sim_wall_s)
            tracer.point(outcome.sim_wall_s)
        return outcome

    # ----------------------------------------------------- run + measurement
    def measure_outcome(self, outcome: SimOutcome) -> WorkloadRun:
        """Take the bench measurement for a finished simulation.

        This is the only stochastic half of a workload run (monitor
        noise, thermal settle): callers fanning simulations out across
        processes must invoke it serially, in submission order, to
        reproduce the serial RNG stream exactly.
        """
        if self.checker is not None:
            if outcome.check_counts:
                self.checker.merge_counts(outcome.check_counts)
            # The measured ledger must be fully priced by this bench's
            # calibration (the in-simulation sweeps cannot know it).
            self.checker.check_ledger(outcome.ledger, self.calib)
        tracer = self.tracer
        with tracer.span("measure"):
            measurement = self.bench.measure_workload(
                outcome.ledger, outcome.result.cycles
            )
        tracer.observe_ledger(outcome.ledger, outcome.result.cycles)
        return WorkloadRun(
            measurement=measurement,
            result=outcome.result,
            ledger=outcome.ledger,
            window_cycles=outcome.result.cycles,
            engine=outcome.engine,
        )

    def run_workload(
        self,
        programs_by_tile: dict[int, "TileProgram | list[Program]"],
        warmup_cycles: int = 2_000,
        window_cycles: int = 10_000,
        execution_drafting: bool = False,
    ) -> WorkloadRun:
        """Run a steady-state workload and take the bench measurement.

        ``programs_by_tile`` maps tile id -> a :class:`TileProgram` (or
        a bare program list) with one program per hardware thread.
        Workloads are expected to be infinite loops; use
        :meth:`run_to_completion` for finite ones.
        """
        request = self.sim_request(
            programs_by_tile,
            warmup_cycles=warmup_cycles,
            window_cycles=window_cycles,
            execution_drafting=execution_drafting,
        )
        return self.measure_outcome(self._traced_simulation(request))

    def run_to_completion(
        self,
        programs_by_tile: dict[int, "TileProgram | list[Program]"],
        max_cycles: int = 50_000_000,
    ) -> WorkloadRun:
        """Run a finite workload to completion; measures over the whole
        execution (the paper's procedure for the energy studies, where
        microbenchmarks run a fixed number of iterations)."""
        request = self.sim_request_to_completion(
            programs_by_tile, max_cycles=max_cycles
        )
        return self.measure_outcome(self._traced_simulation(request))

    # ------------------------------------------------------------ measurement
    def measure_static(self) -> RailMeasurement:
        return self.bench.measure_static()

    def measure_idle(self) -> RailMeasurement:
        return self.bench.measure_idle()

    def set_operating_point(
        self, vdd: float, vcs: float, freq_hz: float, vio: float = 1.80
    ) -> None:
        self.bench.set_operating_point(vdd, vcs, freq_hz, vio)
        if self.tracer.enabled:
            self.tracer.note(
                "operating_point", self._operating_point_note()
            )

    def _operating_point_note(self) -> dict[str, float]:
        rails = self.bench.board.rail_voltages()
        return {
            "vdd": rails["vdd"],
            "vcs": rails["vcs"],
            "vio": rails["vio"],
            "freq_mhz": self.bench.freq_hz * 1e-6,
        }

    @property
    def freq_hz(self) -> float:
        return self.bench.freq_hz
