"""Top-level facade: a complete Piton system you can run and measure.

:class:`PitonSystem` binds together a chip persona, the architectural
simulator (cores + coherent memory + off-chip path), the power model,
the cooling stack, and the virtual test board. The standard experiment
flow is::

    system = PitonSystem.default()
    run = system.run_workload({0: [program]}, warmup_cycles=2_000,
                              window_cycles=10_000)
    print(run.measurement.core.format(scale=1e-3), "mW on VDD+VCS")

``run_workload`` mirrors the bench procedure: run to steady state
(warm-up, events discarded), then record events over a measurement
window and "measure" the implied power with the 17 Hz monitors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import DEFAULT_MEASUREMENT, MeasurementDefaults, PitonConfig
from repro.board.monitor import RailMeasurement
from repro.board.testboard import ExperimentalSystem
from repro.cache.addressing import AddressMap, Interleave
from repro.cache.system import CoherentMemorySystem
from repro.chip.offchip import OffChipPath
from repro.core.multicore import MulticoreEngine, RunResult
from repro.isa.program import Program
from repro.workloads.base import TileProgram, normalize_workload
from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.silicon.variation import CHIP2, ChipPersona
from repro.thermal.cooling import STOCK_HEATSINK_FAN, CoolingSetup
from repro.util.events import EventLedger


@dataclass
class WorkloadRun:
    """Everything one measured workload run produced."""

    measurement: RailMeasurement
    result: RunResult
    ledger: EventLedger
    window_cycles: int
    engine: MulticoreEngine

    @property
    def ipc(self) -> float:
        return self.result.ipc


class PitonSystem:
    """A chip + board + instruments, ready to run experiments."""

    def __init__(
        self,
        persona: ChipPersona = CHIP2,
        config: PitonConfig | None = None,
        calib: Calibration = DEFAULT_CALIBRATION,
        cooling: CoolingSetup = STOCK_HEATSINK_FAN,
        defaults: MeasurementDefaults = DEFAULT_MEASUREMENT,
        seed: int = 0,
        interleave: Interleave = Interleave.LOW,
    ):
        self.persona = persona
        self.config = config or PitonConfig()
        self.calib = calib
        self.defaults = defaults
        self.interleave = interleave
        self.bench = ExperimentalSystem(
            persona=persona,
            calib=calib,
            cooling=cooling,
            defaults=defaults,
            seed=seed,
        )

    @classmethod
    def default(cls, **kwargs) -> "PitonSystem":
        return cls(**kwargs)

    # ------------------------------------------------------------- simulation
    def new_engine(
        self,
        ledger: EventLedger | None = None,
        execution_drafting: bool = False,
    ) -> MulticoreEngine:
        """A fresh multicore engine wired to a full off-chip path."""
        ledger = ledger if ledger is not None else EventLedger()
        offchip = OffChipPath(self.config, ledger)
        offchip.set_core_clock(self.bench.freq_hz)
        memsys = CoherentMemorySystem(
            self.config,
            ledger=ledger,
            address_map=AddressMap(self.config, self.interleave),
            offchip=offchip,
        )
        return MulticoreEngine(
            self.config,
            ledger=ledger,
            memsys=memsys,
            execution_drafting=execution_drafting,
        )

    def run_workload(
        self,
        programs_by_tile: dict[int, "TileProgram | list[Program]"],
        warmup_cycles: int = 2_000,
        window_cycles: int = 10_000,
        execution_drafting: bool = False,
    ) -> WorkloadRun:
        """Run a steady-state workload and take the bench measurement.

        ``programs_by_tile`` maps tile id -> a :class:`TileProgram` (or
        a bare program list) with one program per hardware thread.
        Workloads are expected to be infinite loops; use
        :meth:`run_to_completion` for finite ones.
        """
        workload = normalize_workload(programs_by_tile)
        warmup_ledger = EventLedger()
        engine = self.new_engine(warmup_ledger, execution_drafting)
        for tile, tp in workload.items():
            engine.add_core(tile, tp.programs, tp.init_regs, tp.init_fregs)
            engine.memory.load_image(tp.memory_image)
        engine.run(cycles=warmup_cycles)

        # Swap in a fresh ledger for the measurement window.
        window_ledger = EventLedger()
        self._rebind_ledger(engine, window_ledger)
        result = engine.run(cycles=window_cycles)

        measurement = self.bench.measure_workload(
            window_ledger, result.cycles
        )
        return WorkloadRun(
            measurement=measurement,
            result=result,
            ledger=window_ledger,
            window_cycles=result.cycles,
            engine=engine,
        )

    def run_to_completion(
        self,
        programs_by_tile: dict[int, "TileProgram | list[Program]"],
        max_cycles: int = 50_000_000,
    ) -> WorkloadRun:
        """Run a finite workload to completion; measures over the whole
        execution (the paper's procedure for the energy studies, where
        microbenchmarks run a fixed number of iterations)."""
        workload = normalize_workload(programs_by_tile)
        ledger = EventLedger()
        engine = self.new_engine(ledger)
        for tile, tp in workload.items():
            engine.add_core(tile, tp.programs, tp.init_regs, tp.init_fregs)
            engine.memory.load_image(tp.memory_image)
        result = engine.run(until_done=True, max_cycles=max_cycles)
        measurement = self.bench.measure_workload(ledger, result.cycles)
        return WorkloadRun(
            measurement=measurement,
            result=result,
            ledger=ledger,
            window_cycles=result.cycles,
            engine=engine,
        )

    def _rebind_ledger(
        self, engine: MulticoreEngine, ledger: EventLedger
    ) -> None:
        """Point every component of a live engine at a new ledger."""
        engine.ledger = ledger
        engine.memsys.ledger = ledger
        for slice_ in engine.memsys.l2:
            slice_.ledger = ledger
        offchip = engine.memsys.offchip
        if isinstance(offchip, OffChipPath):
            offchip.ledger = ledger
            offchip.bridge.ledger = ledger
            offchip.dram.ledger = ledger
        for core in engine.cores.values():
            core.ledger = ledger

    # ------------------------------------------------------------ measurement
    def measure_static(self) -> RailMeasurement:
        return self.bench.measure_static()

    def measure_idle(self) -> RailMeasurement:
        return self.bench.measure_idle()

    def set_operating_point(
        self, vdd: float, vcs: float, freq_hz: float, vio: float = 1.80
    ) -> None:
        self.bench.set_operating_point(vdd, vcs, freq_hz, vio)

    @property
    def freq_hz(self) -> float:
        return self.bench.freq_hz
