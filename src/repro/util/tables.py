"""Plain-text table rendering for experiment output.

Experiment modules print the same rows/series the paper reports; this
module provides the single formatter they all share so benchmark output
is uniform and easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
