"""Unit conventions and conversion helpers.

Internally the library uses base SI units everywhere: watts, joules,
seconds, hertz, volts, amperes, kelvin-relative Celsius, metres, and
bytes. The constants below are multipliers *into* base units, so
``3 * MHZ`` is three megahertz expressed in hertz and ``5 * PJ`` is five
picojoules expressed in joules.

The paper reports results in mW, pJ, nJ, MHz and cycles; experiment
modules convert at the presentation boundary only, via :func:`to_unit`.
"""

from __future__ import annotations

# --- multipliers into base units -------------------------------------------
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6
MJ = 1e-3

UW = 1e-6
MW = 1e-3

NS = 1e-9
US = 1e-6
MS = 1e-3

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

MV = 1e-3

UM = 1e-6
MM = 1e-3

KB = 1024
MB = 1024 * 1024

_UNITS = {
    "W": 1.0,
    "mW": MW,
    "uW": UW,
    "J": 1.0,
    "mJ": MJ,
    "uJ": UJ,
    "nJ": NJ,
    "pJ": PJ,
    "s": 1.0,
    "ms": MS,
    "us": US,
    "ns": NS,
    "Hz": 1.0,
    "kHz": KHZ,
    "MHz": MHZ,
    "GHz": GHZ,
    "V": 1.0,
    "mV": MV,
    "m": 1.0,
    "mm": MM,
    "um": UM,
    "B": 1.0,
    "KB": float(KB),
    "MB": float(MB),
}


def to_unit(value: float, unit: str) -> float:
    """Convert ``value`` (in base units) into ``unit``.

    >>> to_unit(0.3893, "mW")
    389.3
    """
    try:
        return value / _UNITS[unit]
    except KeyError:
        raise ValueError(f"unknown unit {unit!r}") from None


def from_unit(value: float, unit: str) -> float:
    """Convert ``value`` expressed in ``unit`` into base units.

    >>> from_unit(500.05, "MHz")
    500050000.0
    """
    try:
        return value * _UNITS[unit]
    except KeyError:
        raise ValueError(f"unknown unit {unit!r}") from None
