"""Plain-text charts for figure-type experiment output.

The original figures are matplotlib plots of bench data; in a
terminal-only environment the experiments render their series as ASCII
charts instead — line charts for sweeps (Figures 9, 12, 13, 17) and
bar charts for per-category data (Figure 11). No plotting dependency,
deterministic output, easy to embed in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float] | None = None,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    All series share the x grid (indices, or ``x_values``) and the y
    scale. Returns a multi-line string.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    n_points = lengths.pop()
    if n_points == 0:
        raise ValueError("series are empty")
    if x_values is not None and len(x_values) != n_points:
        raise ValueError("x_values length must match the series")

    all_values = [v for values in series.values() for v in values]
    y_min, y_max = min(all_values), max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(index: int) -> int:
        if n_points == 1:
            return 0
        return round(index * (width - 1) / (n_points - 1))

    def to_row(value: float) -> int:
        frac = (value - y_min) / (y_max - y_min)
        return (height - 1) - round(frac * (height - 1))

    for glyph, (name, values) in zip(SERIES_GLYPHS, series.items()):
        prev = None
        for i, value in enumerate(values):
            col, row = to_col(i), to_row(value)
            grid[row][col] = glyph
            # Light vertical interpolation for readability.
            if prev is not None:
                prev_col, prev_row = prev
                if col - prev_col >= 1:
                    step = (row - prev_row) / max(1, col - prev_col)
                    for c in range(prev_col + 1, col):
                        r = round(prev_row + step * (c - prev_col))
                        if grid[r][c] == " ":
                            grid[r][c] = "."
            prev = (col, row)

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    if x_values is not None:
        left = f"{x_values[0]:.4g}"
        right = f"{x_values[-1]:.4g}"
        pad = width - len(left) - len(right)
        lines.append(
            " " * (label_width + 2) + left + " " * max(1, pad) + right
        )
    legend = "   ".join(
        f"{glyph}={name}"
        for glyph, name in zip(SERIES_GLYPHS, series.keys())
    )
    lines.append(f"{' ' * label_width}  [{legend}]")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render labelled values as a horizontal ASCII bar chart."""
    if not values:
        raise ValueError("need at least one bar")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(0, round(width * value / peak))
        lines.append(
            f"{name.rjust(label_width)} |{bar} {value:.4g}{unit}"
        )
    return "\n".join(lines)
