"""Event ledger: the bridge between simulation and the power model.

Every substrate (core, caches, NoC, DRAM, chip bridge) records the
energy-relevant events it performs — instruction executions by class,
cache accesses by level, flit-hop traversals weighted by bit-switching
activity, DRAM bursts, pipeline rollbacks — into an
:class:`EventLedger`. The power model later converts event counts into
joules. Keeping the ledger purely numeric (name -> count and
activity-weighted count) decouples the architectural simulators from
the power model that prices their behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass
class EventLedger:
    """Accumulates named event counts and activity-weighted counts.

    ``counts[name]`` is the raw number of events; ``weights[name]`` is
    the sum of per-event activity factors (a value in [0, 1] describing
    how many datapath bits toggled). An event recorded without an
    explicit weight contributes a default activity of 0.5 — the
    random-data switching expectation.
    """

    DEFAULT_ACTIVITY = 0.5

    counts: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    weights: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )

    def record(self, name: str, n: float = 1.0, activity: float | None = None) -> None:
        """Record ``n`` events named ``name`` with a mean ``activity``."""
        if n < 0:
            raise ValueError(f"negative event count for {name!r}")
        act = self.DEFAULT_ACTIVITY if activity is None else activity
        if not 0.0 <= act <= 1.0:
            raise ValueError(f"activity {act} outside [0, 1] for {name!r}")
        self.counts[name] += n
        self.weights[name] += n * act

    def add_bulk(self, name: str, n: float, weight: float) -> None:
        """Fold a pre-aggregated batch of ``n`` events directly in.

        The hot simulation loops accumulate events in interned per-core
        counters and flush them here once per engine run; ``weight`` is
        the already-summed activity weight for the batch (what ``n``
        individual :meth:`record` calls would have accumulated). Skips
        per-event validation — callers are trusted aggregators.
        """
        self.counts[name] += n
        self.weights[name] += weight

    def count(self, name: str) -> float:
        return self.counts.get(name, 0.0)

    def mean_activity(self, name: str) -> float:
        """Average activity factor over all recorded ``name`` events."""
        total = self.counts.get(name, 0.0)
        if total == 0:
            return self.DEFAULT_ACTIVITY
        return self.weights[name] / total

    def merge(self, other: "EventLedger") -> None:
        """Fold another ledger's events into this one."""
        for name, n in other.counts.items():
            self.counts[name] += n
        for name, w in other.weights.items():
            self.weights[name] += w

    def scaled(self, factor: float) -> "EventLedger":
        """Return a copy with all counts and weights multiplied.

        Used to extrapolate a steady-state measurement window from a
        shorter simulated window.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        out = EventLedger()
        for name, n in self.counts.items():
            out.counts[name] = n * factor
        for name, w in self.weights.items():
            out.weights[name] = w * factor
        return out

    def names(self) -> Iterable[str]:
        return self.counts.keys()

    def as_dict(self) -> Mapping[str, float]:
        return dict(self.counts)

    def clear(self) -> None:
        self.counts.clear()
        self.weights.clear()


class NullLedger(EventLedger):
    """A ledger that discards everything (for pure-timing runs)."""

    def record(self, name: str, n: float = 1.0, activity: float | None = None) -> None:  # noqa: D102
        if n < 0:
            raise ValueError(f"negative event count for {name!r}")

    def add_bulk(self, name: str, n: float, weight: float) -> None:  # noqa: D102
        pass
