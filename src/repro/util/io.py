"""Durable file writes: never leave a truncated file on disk.

Every result artifact the tooling writes — ``run --json --out``
documents, golden snapshots, verification reports, checkpoint
metadata — goes through :func:`atomic_write_text`: the content lands
in a same-directory temp file, is flushed and fsynced, and then
``os.replace``\\ d over the destination. An interrupt (Ctrl-C, SIGKILL,
power loss) at any instant leaves either the complete old file or the
complete new one, never a half-written JSON document.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: Path | str, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename)."""
    path = Path(path)
    parent = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        Path(tmp_name).unlink(missing_ok=True)
        raise
    return path


def atomic_write_text(
    path: Path | str, text: str, ensure_newline: bool = False
) -> Path:
    """Write ``text`` to ``path`` atomically; optionally newline-end it."""
    if ensure_newline and not text.endswith("\n"):
        text += "\n"
    return atomic_write_bytes(path, text.encode("utf-8"))
