"""Deterministic, named random-number streams.

Every stochastic element in the reproduction (process variation,
measurement noise, yield defects, random operand values) draws from a
stream derived from a single root seed plus a descriptive name. Two
consequences:

* the whole study is reproducible from one integer seed, and
* adding a new consumer of randomness never perturbs existing streams
  (streams are keyed by name, not by draw order).
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Hash (root_seed, name) into a 64-bit stream seed."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Factory handing out independent named :class:`numpy.random.Generator`\\ s.

    >>> rngs = RngFactory(1234)
    >>> a = rngs.stream("noise").normal()
    >>> b = RngFactory(1234).stream("noise").normal()
    >>> a == b
    True
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its internal position advances across calls).
        """
        if name not in self._cache:
            seed = _derive_seed(self.root_seed, name)
            self._cache[name] = np.random.default_rng(seed)
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` at its initial state."""
        return np.random.default_rng(_derive_seed(self.root_seed, name))

    def child(self, name: str) -> "RngFactory":
        """Derive a subordinate factory, for handing to a subcomponent."""
        return RngFactory(_derive_seed(self.root_seed, f"child:{name}"))
