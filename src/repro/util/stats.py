"""Measurement statistics used throughout the characterization.

The paper reports every number as the average of 128 samples from the
on-board voltage monitors with error bars equal to the sample standard
deviation. :class:`Measurement` captures that convention so experiment
code can carry value and uncertainty together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def mean_std(samples: Sequence[float] | np.ndarray) -> tuple[float, float]:
    """Return (mean, standard deviation) of ``samples``.

    Uses the population standard deviation (ddof=0), matching "standard
    deviation of the samples from the average" as the paper states.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    return float(arr.mean()), float(arr.std())


@dataclass(frozen=True)
class Measurement:
    """A value with a one-sigma uncertainty, in base units.

    Supports the arithmetic the characterization pipelines need
    (difference of powers, scaling by latency, division by frequency)
    with first-order, uncorrelated error propagation.
    """

    value: float
    sigma: float = 0.0

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Measurement":
        mean, std = mean_std(list(samples))
        return cls(mean, std)

    def __add__(self, other: "Measurement | float") -> "Measurement":
        if isinstance(other, Measurement):
            return Measurement(
                self.value + other.value, math.hypot(self.sigma, other.sigma)
            )
        return Measurement(self.value + other, self.sigma)

    __radd__ = __add__

    def __sub__(self, other: "Measurement | float") -> "Measurement":
        if isinstance(other, Measurement):
            return Measurement(
                self.value - other.value, math.hypot(self.sigma, other.sigma)
            )
        return Measurement(self.value - other, self.sigma)

    def __rsub__(self, other: float) -> "Measurement":
        return Measurement(other - self.value, self.sigma)

    def __mul__(self, factor: float) -> "Measurement":
        return Measurement(self.value * factor, abs(self.sigma * factor))

    __rmul__ = __mul__

    def __truediv__(self, divisor: float) -> "Measurement":
        return Measurement(self.value / divisor, abs(self.sigma / divisor))

    def __neg__(self) -> "Measurement":
        return Measurement(-self.value, self.sigma)

    def in_unit(self, scale: float) -> "Measurement":
        """Return the measurement divided by a unit multiplier."""
        return Measurement(self.value / scale, self.sigma / scale)

    def format(self, scale: float = 1.0, digits: int = 2) -> str:
        """Render as ``value±sigma`` after dividing by ``scale``."""
        return (
            f"{self.value / scale:.{digits}f}"
            f"±{self.sigma / scale:.{digits}f}"
        )
