"""Shared utilities: units, deterministic RNG streams, statistics, tables.

These helpers are deliberately dependency-light so that every other
subpackage can import them without cycles.
"""

from repro.util.rng import RngFactory
from repro.util.stats import Measurement, mean_std
from repro.util.units import (
    GHZ,
    KB,
    MB,
    MHZ,
    MW,
    NJ,
    NS,
    PJ,
    UW,
    from_unit,
    to_unit,
)

__all__ = [
    "RngFactory",
    "Measurement",
    "mean_std",
    "GHZ",
    "KB",
    "MB",
    "MHZ",
    "MW",
    "NJ",
    "NS",
    "PJ",
    "UW",
    "from_unit",
    "to_unit",
]
