"""MITTS: Memory Inter-arrival Time Traffic Shaper (Zhou & Wentzlaff).

Each tile's memory traffic passes through a MITTS instance that shapes
request streams into a configured inter-arrival-time distribution —
the mechanism Piton ships for memory-bandwidth sharing in multi-tenant
systems. The implementation follows the published design at the
behavioural level: a set of inter-arrival-time *bins*, each holding
credits that refill every replenishment epoch; a request whose distance
from the previous request falls into bin *i* needs a credit from bin
*i* or any longer-time bin, otherwise it is stalled until it either
ages into a bin with credits or the epoch refills.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class MittsBin:
    """One inter-arrival-time bin: [min_gap, next bin's min_gap)."""

    min_gap: int
    credits: int


class MittsShaper:
    """Traffic shaper for one tile's memory request stream."""

    def __init__(
        self,
        bins: Sequence[MittsBin],
        epoch_cycles: int = 10_000,
        enabled: bool = True,
    ):
        if not bins:
            raise ValueError("MITTS needs at least one bin")
        gaps = [b.min_gap for b in bins]
        if gaps != sorted(gaps) or len(set(gaps)) != len(gaps):
            raise ValueError("bins must have strictly increasing min_gap")
        self.bins = list(bins)
        self.epoch_cycles = epoch_cycles
        self.enabled = enabled
        self._credits = [b.credits for b in bins]
        self._epoch_start = 0
        self._last_request = None
        self.stalled_cycles_total = 0
        self.requests = 0

    @classmethod
    def unlimited(cls) -> "MittsShaper":
        """A pass-through shaper (MITTS disabled, the chip's default)."""
        return cls([MittsBin(0, 0)], enabled=False)

    def _refill(self, now: int) -> None:
        while now - self._epoch_start >= self.epoch_cycles:
            self._epoch_start += self.epoch_cycles
            self._credits = [b.credits for b in self.bins]

    def _bin_for_gap(self, gap: int) -> int:
        index = 0
        for i, b in enumerate(self.bins):
            if gap >= b.min_gap:
                index = i
        return index

    def release_time(self, now: int) -> int:
        """Earliest cycle at which a request arriving at ``now`` may
        proceed. Advances internal credit state assuming it does."""
        self.requests += 1
        if not self.enabled:
            self._last_request = now
            return now
        self._refill(now)
        if self._last_request is None:
            # First request: treat as an arbitrarily long gap.
            gap = max(self.bins[-1].min_gap, now)
        else:
            gap = now - self._last_request
        release = now
        # Worst case: age through every bin boundary, hit the epoch
        # refill, then age through the bins once more.
        for _ in range(2 * len(self.bins) + 3):
            index = self._bin_for_gap(gap)
            # A credit must come from the bin containing the current
            # gap; an empty bin stalls the request until it ages into
            # the next (longer-gap) bin or the epoch refills.
            if self._credits[index] > 0:
                self._credits[index] -= 1
                self.stalled_cycles_total += release - now
                self._last_request = release
                return release
            # No credit: age the request into the next bin boundary or
            # the next epoch refill, whichever is sooner.
            next_boundaries = [
                b.min_gap for b in self.bins if b.min_gap > gap
            ]
            to_epoch = self._epoch_start + self.epoch_cycles - release
            to_bin = (
                min(next_boundaries) - gap if next_boundaries else to_epoch
            )
            advance = max(1, min(to_bin, to_epoch))
            release += advance
            gap += advance
            self._refill(release)
        # Pathological configuration (all-zero credits): fail loudly.
        raise RuntimeError(
            "MITTS could not admit request; configure nonzero credits"
        )
