"""Cycle-level mesh network simulation with per-link activity tracking.

Every inter-tile link remembers the last payload it carried; each
traversal records a ``noc{k}.flit_hop`` event weighted by the Hamming
switching fraction and a ``noc{k}.coupling`` event weighted by the
opposite-direction adjacent-bit fraction. Router traversals record
``noc{k}.router_pass``. These are exactly the quantities the Figure 12
energy model prices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.noc.flit import Flit, Packet, coupling_factor, switching_bits
from repro.noc.router import Port, Router, is_turn
from repro.util.events import EventLedger


@dataclass(frozen=True)
class _Move:
    router: int
    in_port: Port
    out_port: Port


class MeshNetwork:
    """One physical NoC of the three."""

    #: Step interval between invariant sweeps when a checker is
    #: installed (``drain`` also sweeps once after finishing).
    CHECK_INTERVAL = 64

    def __init__(
        self,
        config: PitonConfig | None = None,
        ledger: EventLedger | None = None,
        network_id: int = 1,
    ):
        self.config = config or PitonConfig()
        self.ledger = ledger if ledger is not None else EventLedger()
        self.network_id = network_id
        self.floorplan = Floorplan(self.config)
        self.routers: list[Router] = []
        for tile in range(self.config.tile_count):
            coord = self.floorplan.coord_of(tile)
            self.routers.append(Router(tile, coord.x, coord.y))
        # Link switching state: last payload per directed link, plus
        # exact per-link flit counts for traffic analysis.
        self._link_last: dict[tuple[int, int], int] = {}
        self.link_counts: dict[tuple[int, int], int] = {}
        # Packets waiting at each tile's injection port.
        self._inject_queues: dict[int, deque[Flit]] = {
            t: deque() for t in range(self.config.tile_count)
        }
        self._pending_packets: dict[int, deque[Packet]] = {
            t: deque() for t in range(self.config.tile_count)
        }
        self.delivered: list[Packet] = []
        self._eject_partial: dict[int, list[Flit]] = {}
        self._eject_packet_queue: dict[int, deque[Packet]] = {}
        self.now = 0
        self.total_flit_hops = 0
        # Flit-conservation ledger and forward-progress watermark for
        # the invariant checkers; maintained unconditionally (integer
        # adds), consumed only when ``checker`` is installed.
        self.flits_injected = 0
        self.flits_ejected = 0
        self.last_progress = 0
        #: Optional :class:`repro.check.CheckSuite`; ``None`` keeps
        #: the step loop check-free.
        self.checker = None

    # ------------------------------------------------------------- injection
    def inject(self, packet: Packet, at_tile: int) -> None:
        """Queue a packet for injection at ``at_tile``'s local port."""
        packet.injected_at = self.now
        self._pending_packets[at_tile].append(packet)
        self._eject_packet_queue.setdefault(packet.dest, deque()).append(
            packet
        )
        for flit in packet.flits:
            self._inject_queues[at_tile].append(flit)
        self.flits_injected += len(packet.flits)

    @property
    def in_flight(self) -> int:
        """Flits injected but not yet ejected."""
        queued = sum(len(q) for q in self._inject_queues.values())
        buffered = sum(
            len(port.queue)
            for router in self.routers
            for port in router.inputs.values()
        )
        partial = sum(len(f) for f in self._eject_partial.values())
        return queued + buffered + partial

    # ------------------------------------------------------------------ step
    def step(self) -> None:
        """Advance one cycle."""
        self._feed_injection()
        moves = self._arbitrate()
        self._apply(moves)
        self.now += 1
        if self.checker is not None and self.now % self.CHECK_INTERVAL == 0:
            self.checker.check_mesh(self)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 100_000) -> None:
        """Run until every injected flit has been delivered."""
        for _ in range(max_cycles):
            if self.in_flight == 0:
                if self.checker is not None:
                    self.checker.check_mesh(self)
                return
            self.step()
        raise RuntimeError("network failed to drain (possible deadlock)")

    # ----------------------------------------------------------------- phases
    def _feed_injection(self) -> None:
        for tile, queue in self._inject_queues.items():
            router = self.routers[tile]
            while queue and router.can_accept(Port.LOCAL):
                router.enqueue(Port.LOCAL, queue.popleft())

    def _arbitrate(self) -> list[_Move]:
        moves: list[_Move] = []
        for router in self.routers:
            for out_port in Port:
                in_port = self._grant(router, out_port)
                if in_port is not None:
                    moves.append(_Move(router.tile_id, in_port, out_port))
        return moves

    def _grant(self, router: Router, out_port: Port) -> Port | None:
        locked_in = router.output_locked_by[out_port]
        if locked_in is not None:
            candidate = router.inputs[locked_in]
            if candidate.head() is None:
                return None
            if candidate.stall_until > self.now:
                return None
            if self._downstream_full(router, out_port):
                return None
            return locked_in
        # Round-robin among inputs whose head flit routes to out_port.
        ports = list(Port)
        start = router.rr_pointer[out_port]
        for i in range(len(ports)):
            in_port = ports[(start + i) % len(ports)]
            ip = router.inputs[in_port]
            if ip.locked_output is not None:
                continue
            head = ip.head()
            if head is None or not head.is_head:
                continue
            coord = self.floorplan.coord_of(head.dest)
            if router.route_port(coord.x, coord.y) != out_port:
                continue
            if ip.stall_until > self.now:
                continue
            if is_turn(in_port, out_port) and ip.stall_until < self.now:
                # First grant of a turning packet burns the turn cycle.
                ip.stall_until = self.now + 1
                router.rr_pointer[out_port] = (ports.index(in_port)) % len(
                    ports
                )
                return None
            if self._downstream_full(router, out_port):
                return None
            # Lock the wormhole path.
            ip.locked_output = out_port
            router.output_locked_by[out_port] = in_port
            router.rr_pointer[out_port] = (ports.index(in_port) + 1) % len(
                ports
            )
            return in_port
        return None

    def _downstream_full(self, router: Router, out_port: Port) -> bool:
        if out_port == Port.LOCAL:
            return False
        neighbor, in_port = self._neighbor(router, out_port)
        return not self.routers[neighbor].can_accept(in_port)

    def _neighbor(self, router: Router, out_port: Port) -> tuple[int, Port]:
        dx, dy, reverse = {
            Port.EAST: (1, 0, Port.WEST),
            Port.WEST: (-1, 0, Port.EAST),
            Port.SOUTH: (0, 1, Port.NORTH),
            Port.NORTH: (0, -1, Port.SOUTH),
        }[out_port]
        from repro.arch.floorplan import TileCoord

        coord = TileCoord(router.x + dx, router.y + dy)
        return self.floorplan.tile_id_of(coord), reverse

    def _apply(self, moves: list[_Move]) -> None:
        if moves:
            self.last_progress = self.now
        for move in moves:
            router = self.routers[move.router]
            ip = router.inputs[move.in_port]
            flit = ip.queue.popleft()
            router.flits_routed += 1
            self.ledger.record(
                f"noc{self.network_id}.router_pass",
                activity=flit.payload.bit_count() / 64.0,
            )
            if flit.is_tail:
                ip.locked_output = None
                router.output_locked_by[move.out_port] = None
            if move.out_port == Port.LOCAL:
                self._eject(router.tile_id, flit)
            else:
                neighbor, in_port = self._neighbor(router, move.out_port)
                self._traverse_link(router.tile_id, neighbor, flit)
                self.routers[neighbor].enqueue(in_port, flit)

    def _traverse_link(self, src: int, dst: int, flit: Flit) -> None:
        key = (src, dst)
        prev = self._link_last.get(key, 0)
        toggled = switching_bits(prev, flit.payload)
        self.ledger.record(
            f"noc{self.network_id}.flit_hop", activity=toggled / 64.0
        )
        self.ledger.record(
            f"noc{self.network_id}.coupling",
            activity=coupling_factor(prev, flit.payload),
        )
        self._link_last[key] = flit.payload
        self.link_counts[key] = self.link_counts.get(key, 0) + 1
        self.total_flit_hops += 1

    def _eject(self, tile: int, flit: Flit) -> None:
        partial = self._eject_partial.setdefault(tile, [])
        partial.append(flit)
        if flit.is_tail:
            queue = self._eject_packet_queue.get(tile)
            if queue:
                packet = queue.popleft()
                packet.delivered_at = self.now + 1
                self.delivered.append(packet)
            # Partial flits stay in flight until the tail lands, so
            # the whole packet ejects at once for conservation.
            self.flits_ejected += len(partial)
            self._eject_partial[tile] = []
