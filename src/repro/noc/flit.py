"""Flits, packets, and bit-level activity metrics.

A flit carries 64 bits of payload. The head flit of a packet carries
the routing header (destination tile, packet class); body flits carry
data. Figure 12's four switching patterns are defined over consecutive
*payload* flit values, so packets here keep real 64-bit payloads and
the link model measures Hamming switching between what it carried last
and what it carries now.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

WORD_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class Flit:
    """One 64-bit flit."""

    payload: int
    is_head: bool = False
    is_tail: bool = False
    dest: int | None = None  # routing destination, head flits only

    def __post_init__(self) -> None:
        if not 0 <= self.payload <= WORD_MASK:
            raise ValueError("payload must fit in 64 bits")
        if self.is_head and self.dest is None:
            raise ValueError("head flit requires a destination")


@dataclass
class Packet:
    """An ordered flit sequence with a single destination."""

    dest: int
    flits: list[Flit] = field(default_factory=list)
    injected_at: int | None = None
    delivered_at: int | None = None

    @classmethod
    def build(cls, dest: int, payloads: Sequence[int]) -> "Packet":
        """Head flit + one body flit per payload word; last is tail."""
        flits = [Flit(payload=dest & WORD_MASK, is_head=True, dest=dest)]
        for i, word in enumerate(payloads):
            flits.append(
                Flit(payload=word & WORD_MASK,
                     is_tail=(i == len(payloads) - 1))
            )
        if len(flits) == 1:
            flits[0] = Flit(
                payload=dest & WORD_MASK, is_head=True, is_tail=True,
                dest=dest,
            )
        return cls(dest=dest, flits=flits)

    def __len__(self) -> int:
        return len(self.flits)

    @property
    def latency(self) -> int | None:
        if self.injected_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at


def make_invalidation_packet(dest: int, payloads: Sequence[int]) -> Packet:
    """The paper's NoC-energy dummy packet: a routing header flit
    followed by six payload flits, received by the L1.5 as an
    invalidation. ``payloads`` must have six words."""
    if len(payloads) != 6:
        raise ValueError("invalidation dummy packets carry 6 payload flits")
    return Packet.build(dest, payloads)


def switching_bits(prev: int, curr: int) -> int:
    """Bits that toggle between consecutive words on a link."""
    return ((prev ^ curr) & WORD_MASK).bit_count()


def coupling_factor(prev: int, curr: int) -> float:
    """Fraction of adjacent bit pairs toggling in *opposite* directions.

    This is the aggressor/victim coupling the FSWA pattern maximizes:
    0xAAAA... -> 0x5555... toggles every bit with each neighbour moving
    the other way (factor 1.0), while FSW's all-ones -> all-zeros moves
    every neighbour pair together (factor 0.0).
    """
    rising = ~prev & curr & WORD_MASK
    falling = prev & ~curr & WORD_MASK
    opposite = (rising & (falling >> 1)) | (falling & (rising >> 1))
    return opposite.bit_count() / 63.0
