"""Flit-level network-on-chip simulator.

Piton has three identical physical 2D-mesh NoCs, 64 bits wide in each
direction, with dimension-ordered wormhole routing at one cycle per hop
plus one extra cycle on a turn. This package simulates one network at
flit granularity: routers with per-port input queues, round-robin
output arbitration, and — the part the paper's Figure 12 hinges on —
per-link tracking of the *previous* flit payload so each traversal's
bit-switching and coupling activity can be priced by the power model.

The transaction-level timing used by :mod:`repro.cache` (hops + turns)
is cross-validated against this simulator in the integration tests.
"""

from repro.noc.analysis import NocAnalysis
from repro.noc.flit import Flit, Packet, coupling_factor, make_invalidation_packet
from repro.noc.mesh import MeshNetwork
from repro.noc.mitts import MittsBin, MittsShaper
from repro.noc.router import Router

__all__ = [
    "Flit",
    "Packet",
    "coupling_factor",
    "make_invalidation_packet",
    "MeshNetwork",
    "MittsBin",
    "MittsShaper",
    "NocAnalysis",
    "Router",
]
