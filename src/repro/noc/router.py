"""Dimension-ordered wormhole mesh router.

Five ports (local, north, east, south, west), an input FIFO per port,
per-output round-robin arbitration, and wormhole locking from head to
tail flit. Timing matches the paper: one cycle per hop, plus one cycle
when a packet turns from the X dimension into Y.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.noc.flit import Flit


class Port(enum.IntEnum):
    LOCAL = 0
    NORTH = 1
    EAST = 2
    SOUTH = 3
    WEST = 4


X_PORTS = (Port.EAST, Port.WEST)
Y_PORTS = (Port.NORTH, Port.SOUTH)


def is_turn(in_port: Port, out_port: Port) -> bool:
    """A dimension change (X input to Y output or vice versa)."""
    if in_port == Port.LOCAL or out_port == Port.LOCAL:
        return False
    return (in_port in X_PORTS) != (out_port in X_PORTS)


@dataclass
class InputPort:
    queue: deque[Flit] = field(default_factory=deque)
    locked_output: Port | None = None
    stall_until: int = -1  # turn-penalty stall

    def head(self) -> Flit | None:
        return self.queue[0] if self.queue else None


class Router:
    """One mesh router's state. The mesh drives arbitration."""

    INPUT_QUEUE_DEPTH = 4

    def __init__(self, tile_id: int, x: int, y: int):
        self.tile_id = tile_id
        self.x = x
        self.y = y
        self.inputs: dict[Port, InputPort] = {p: InputPort() for p in Port}
        self.output_locked_by: dict[Port, Port | None] = {
            p: None for p in Port
        }
        self.rr_pointer: dict[Port, int] = {p: 0 for p in Port}
        self.flits_routed = 0

    def route_port(self, dest_x: int, dest_y: int) -> Port:
        """Dimension-ordered (X then Y) output selection."""
        if dest_x > self.x:
            return Port.EAST
        if dest_x < self.x:
            return Port.WEST
        if dest_y > self.y:
            return Port.SOUTH
        if dest_y < self.y:
            return Port.NORTH
        return Port.LOCAL

    def can_accept(self, port: Port) -> bool:
        return len(self.inputs[port].queue) < self.INPUT_QUEUE_DEPTH

    def enqueue(self, port: Port, flit: Flit) -> None:
        if not self.can_accept(port):
            raise OverflowError(
                f"router {self.tile_id} input {port.name} overflow"
            )
        self.inputs[port].queue.append(flit)
