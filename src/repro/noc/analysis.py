"""NoC traffic analysis: link utilization, hotspots, energy density.

After a flit-level simulation, answer the layout-facing questions the
paper's area/energy discussion raises: which links carried the traffic,
where the energy concentrated, and whether the dimension-ordered
routing skewed load onto the X rows (it does — the structural cause of
mesh hotspots). Includes an ASCII heatmap for terminal inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.floorplan import Floorplan
from repro.noc.mesh import MeshNetwork

#: Shading ramp for the heatmap, light to heavy.
_RAMP = " .:-=+*#%@"


@dataclass(frozen=True)
class LinkLoad:
    """Traffic on one directed inter-tile link."""

    src: int
    dst: int
    flits: int


class NocAnalysis:
    """Queries over a finished (or paused) mesh simulation."""

    def __init__(self, mesh: MeshNetwork):
        self.mesh = mesh
        self.floorplan = Floorplan(mesh.config)
        self._flits_per_link: dict[tuple[int, int], int] = {}
        # Reconstruct per-link counts from router statistics is lossy;
        # track them from the link-state map the mesh maintains plus
        # router counters. The mesh keeps last-payload per link; counts
        # come from the routers' flits_routed attribution below.
        self._collect()

    def _collect(self) -> None:
        # The mesh's ledger holds aggregate flit-hops; per-link counts
        # come from replaying its link-state keys (links that ever
        # carried traffic) weighted by router pass-throughs.
        for (src, dst) in self.mesh._link_last:
            self._flits_per_link[(src, dst)] = 0
        # Exact per-link counts require the mesh to tally them; the
        # mesh does so on demand via traverse hooks (see MeshNetwork
        # link_counts).
        counts = getattr(self.mesh, "link_counts", None)
        if counts:
            self._flits_per_link.update(counts)

    # ---------------------------------------------------------------- queries
    def link_loads(self) -> list[LinkLoad]:
        return sorted(
            (
                LinkLoad(src, dst, flits)
                for (src, dst), flits in self._flits_per_link.items()
            ),
            key=lambda load: -load.flits,
        )

    def hottest_link(self) -> LinkLoad | None:
        loads = self.link_loads()
        return loads[0] if loads else None

    def total_flit_hops(self) -> int:
        return self.mesh.total_flit_hops

    def router_loads(self) -> dict[int, int]:
        return {
            router.tile_id: router.flits_routed
            for router in self.mesh.routers
            if router.flits_routed
        }

    def utilization(self, cycles: int | None = None) -> float:
        """Mean fraction of link-cycles carrying flits."""
        elapsed = cycles if cycles is not None else self.mesh.now
        if elapsed <= 0:
            return 0.0
        config = self.mesh.config
        w, h = config.mesh_width, config.mesh_height
        links = 2 * ((w - 1) * h + (h - 1) * w)  # directed mesh links
        return self.total_flit_hops() / (links * elapsed)

    # ---------------------------------------------------------------- render
    def heatmap(self) -> str:
        """ASCII heatmap of router traffic over the tile grid."""
        loads = self.router_loads()
        peak = max(loads.values(), default=0)
        config = self.mesh.config
        rows = []
        for y in range(config.mesh_height):
            cells = []
            for x in range(config.mesh_width):
                tile = y * config.mesh_width + x
                value = loads.get(tile, 0)
                if peak == 0:
                    glyph = _RAMP[0]
                else:
                    level = round(
                        (len(_RAMP) - 1) * value / peak
                    )
                    glyph = _RAMP[level]
                cells.append(glyph * 2)
            rows.append("".join(cells))
        legend = (
            f"router traffic heatmap (peak {peak} flits at a router)"
        )
        return "\n".join([legend, *rows])
