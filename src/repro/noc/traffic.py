"""Classic synthetic NoC traffic patterns for the flit-level mesh.

The NoC literature the paper engages ([28]–[32], [36]) evaluates
routers under standard patterns; this module provides them over the
reproduction's mesh so its NoC power findings can be stress-tested
beyond the Figure 12 point-to-point stream:

* uniform random,
* transpose (tile (x, y) -> (y, x)),
* bit-complement over the tile index,
* hotspot (a fraction of traffic targets one tile),
* neighbour (each tile to its east neighbour, wrapping).

Each generator yields (src, dst) pairs; :func:`drive` injects them at a
chosen rate and returns the mesh + delivery statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.floorplan import Floorplan, TileCoord
from repro.arch.params import PitonConfig
from repro.noc.flit import Packet
from repro.noc.mesh import MeshNetwork


def uniform_random(
    count: int, rng: np.random.Generator, config: PitonConfig
) -> list[tuple[int, int]]:
    n = config.tile_count
    return [
        (int(rng.integers(n)), int(rng.integers(n))) for _ in range(count)
    ]


def transpose(count: int, config: PitonConfig) -> list[tuple[int, int]]:
    if config.mesh_width != config.mesh_height:
        raise ValueError("transpose needs a square mesh")
    fp = Floorplan(config)
    pairs = []
    tiles = list(fp.all_tiles())
    for i in range(count):
        src = tiles[i % len(tiles)]
        coord = fp.coord_of(src)
        dst = fp.tile_id_of(TileCoord(coord.y, coord.x))
        pairs.append((src, dst))
    return pairs


def bit_complement(count: int, config: PitonConfig) -> list[tuple[int, int]]:
    n = config.tile_count
    pairs = []
    for i in range(count):
        src = i % n
        dst = (n - 1) - src
        pairs.append((src, dst))
    return pairs


def hotspot(
    count: int,
    rng: np.random.Generator,
    config: PitonConfig,
    hot_tile: int = 12,
    hot_fraction: float = 0.5,
) -> list[tuple[int, int]]:
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot fraction must be in [0, 1]")
    n = config.tile_count
    pairs = []
    for _ in range(count):
        src = int(rng.integers(n))
        if rng.random() < hot_fraction:
            dst = hot_tile
        else:
            dst = int(rng.integers(n))
        pairs.append((src, dst))
    return pairs


def neighbour(count: int, config: PitonConfig) -> list[tuple[int, int]]:
    fp = Floorplan(config)
    pairs = []
    tiles = list(fp.all_tiles())
    for i in range(count):
        src = tiles[i % len(tiles)]
        coord = fp.coord_of(src)
        dst = fp.tile_id_of(
            TileCoord((coord.x + 1) % config.mesh_width, coord.y)
        )
        pairs.append((src, dst))
    return pairs


@dataclass
class TrafficStats:
    """Delivery statistics of one driven pattern."""

    injected: int
    delivered: int
    cycles: int
    mean_latency: float
    peak_latency: int
    flit_hops: int

    @property
    def throughput_packets_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.delivered / self.cycles


def drive(
    pairs: list[tuple[int, int]],
    config: PitonConfig | None = None,
    payload_words: int = 2,
    inject_every: int = 1,
    network_id: int = 1,
) -> tuple[MeshNetwork, TrafficStats]:
    """Inject ``pairs`` at one packet per ``inject_every`` cycles and
    run to drain."""
    if inject_every < 1:
        raise ValueError("injection interval must be >= 1")
    config = config or PitonConfig()
    mesh = MeshNetwork(config, network_id=network_id)
    for k, (src, dst) in enumerate(pairs):
        while mesh.now < k * inject_every:
            mesh.step()
        mesh.inject(
            Packet.build(dst, [(0x5555 * (k + 1)) & ((1 << 64) - 1)]
                         * payload_words),
            src,
        )
    mesh.drain()
    latencies = [
        p.latency for p in mesh.delivered if p.latency is not None
    ]
    stats = TrafficStats(
        injected=len(pairs),
        delivered=len(mesh.delivered),
        cycles=mesh.now,
        mean_latency=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        peak_latency=max(latencies, default=0),
        flit_hops=mesh.total_flit_hops,
    )
    return mesh, stats
