"""Batched multi-persona execution: one decode, N accumulations.

Sweep-style experiments (V/f curves, EPI tables, scaling studies) are
grids whose points often share the *same* architectural simulation:
the simulator is a pure function of a
:class:`~repro.system.SimRequest`, chip personas and rail voltages
never appear in the request at all, and the core clock reaches the
simulation only through the off-chip path — which a workload with no
memory instructions can never invoke. Re-simulating such points once
per grid cell redoes identical fetch/decode/dispatch work N times just
to accumulate the same event counts under different energy weights.

This package exploits that structure:

* :mod:`repro.batch.key` — :func:`batch_key` folds a request down to
  its *timing class*: everything the simulation actually reads. Two
  requests with equal keys provably produce bit-identical outcomes.
* :mod:`repro.batch.plan` — :func:`plan_batches` groups a grid by
  batch key, with de-batch accounting (points that share a workload
  but differ in timing fall back to their own singleton groups —
  never wrong answers, only missed coalescing).
* :mod:`repro.batch.accumulate` — :class:`LedgerMatrix` holds the
  per-lane (persona/grid-point) event-count and activity-weight
  accumulations in a numpy structured array, with a pure-python
  fallback when numpy is unavailable.
* :mod:`repro.batch.execute` — :func:`batched_simulate` walks each
  group's instruction stream once and fans the outcome back out to
  every member, integrating with the supervised pool and the
  checkpoint journal so ``--jobs`` and ``--resume`` compose.

The determinism machinery elsewhere in the repo (goldens,
``repro verify``, checks-on bit-identity, parallel-determinism tests)
is the safety net: batched output is bit-identical to serial by
construction, and the tests prove it stays that way.
"""

from repro.batch.accumulate import LedgerMatrix, numpy_backend_available
from repro.batch.execute import batched_simulate, replicate_outcome
from repro.batch.key import (
    BatchKey,
    affinity_key,
    batch_key,
    workload_can_touch_memory,
)
from repro.batch.plan import BatchGroup, BatchPlan, plan_batches

__all__ = [
    "BatchGroup",
    "BatchKey",
    "BatchPlan",
    "LedgerMatrix",
    "affinity_key",
    "batch_key",
    "batched_simulate",
    "numpy_backend_available",
    "plan_batches",
    "replicate_outcome",
    "workload_can_touch_memory",
]
