"""Per-lane event accumulation behind one decoded instruction stream.

When a batch group of N grid points shares one simulation, the single
event ledger the run produced must become N independent per-point
ledgers: downstream, every point is measured by its *own* bench (its
own persona, rails, monitor-noise stream), and the invariant checkers
conservation-check each point's ledger separately. The
:class:`LedgerMatrix` is that fan-out: one decode pass fills row 0,
and broadcasting gives every lane its (count, weight) accumulation
row in a numpy structured array — the "one decode, N accumulations"
representation. Lanes materialize back into
:class:`~repro.util.events.EventLedger`\\ s preserving event order and
exact float values, so batched results are bit-identical to serial
ones (ledger pricing sums floats in insertion order; the matrix never
perturbs either the order or the values).

numpy is optional. When it is not importable — or when
``REPRO_BATCH_FORCE_PYTHON=1`` asks for the fallback explicitly (how
the tests prove equivalence) — a pure-python backend stores the same
lanes as plain dicts. Backends are bit-identical by construction:
float64 round-trips python floats exactly.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from repro.util.events import EventLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.power.calibration import Calibration

try:  # gated dependency: everything works without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the env switch
    _np = None

#: Environment switch forcing the pure-python backend (testing aid).
FORCE_PYTHON_ENV = "REPRO_BATCH_FORCE_PYTHON"


def numpy_backend_available() -> bool:
    """Whether the numpy backend will be used for new matrices."""
    if os.environ.get(FORCE_PYTHON_ENV, "") not in ("", "0"):
        return False
    return _np is not None


class LedgerMatrix:
    """N lanes of (event count, activity weight) accumulations.

    Built from the one ledger a batch group's representative run
    produced, broadcast across ``n_lanes``. Row ``i`` belongs to grid
    point ``i`` of the group; :meth:`lane_ledger` materializes it back
    into a fresh :class:`EventLedger` whose dict order matches the
    original exactly.
    """

    def __init__(self, ledger: EventLedger, n_lanes: int):
        if n_lanes < 1:
            raise ValueError(f"need at least one lane, got {n_lanes}")
        self.n_lanes = n_lanes
        #: Event names in the original ledger's insertion order — the
        #: order every materialized lane reproduces (pricing loops sum
        #: floats in this order, so it is part of bit-identity).
        self.names: tuple[str, ...] = tuple(ledger.counts.keys())
        self.backend = (
            "numpy" if numpy_backend_available() else "python"
        )
        if self.backend == "numpy":
            row = _np.zeros(
                len(self.names),
                dtype=[("count", "f8"), ("weight", "f8")],
            )
            for j, name in enumerate(self.names):
                row[j] = (ledger.counts[name], ledger.weights[name])
            # One decode pass fills one row; broadcasting stamps the
            # accumulation across every lane of the batch.
            self._rows = _np.broadcast_to(
                row, (n_lanes, len(self.names))
            ).copy()
        else:
            counts = {name: ledger.counts[name] for name in self.names}
            weights = {
                name: ledger.weights[name] for name in self.names
            }
            self._lanes = [
                (dict(counts), dict(weights)) for _ in range(n_lanes)
            ]

    @property
    def n_events(self) -> int:
        return len(self.names)

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.n_lanes:
            raise IndexError(
                f"lane {lane} out of range [0, {self.n_lanes})"
            )

    def lane_ledger(self, lane: int) -> EventLedger:
        """Materialize one lane as a fresh, independent ledger."""
        self._check_lane(lane)
        ledger = EventLedger()
        if self.backend == "numpy":
            row = self._rows[lane]
            for j, name in enumerate(self.names):
                ledger.counts[name] = float(row[j]["count"])
                ledger.weights[name] = float(row[j]["weight"])
        else:
            counts, weights = self._lanes[lane]
            for name in self.names:
                ledger.counts[name] = counts[name]
                ledger.weights[name] = weights[name]
        return ledger

    def activity_energy_pj(
        self, calib: "Calibration"
    ) -> Sequence[float]:
        """Per-lane activity energy under one calibration, in pJ.

        The vectorized form of the per-event pricing loop in
        :meth:`repro.power.chip_power.ChipPower.event_power`: for each
        priced event, ``count * base_pj + weight * act_pj`` (the
        weight *is* ``count * mean_activity``). Unpriced events
        contribute nothing, exactly as in the scalar loop. Used by the
        equivalence tests to cross-check lane accumulations against
        per-lane ledger pricing; rail/voltage scaling stays with the
        measurement layer.
        """
        base = [0.0] * self.n_events
        act = [0.0] * self.n_events
        for j, name in enumerate(self.names):
            price = calib.energy_for(name)
            if price is not None:
                base[j] = price.base_pj
                act[j] = price.act_pj
        if self.backend == "numpy":
            base_v = _np.asarray(base)
            act_v = _np.asarray(act)
            totals = (
                self._rows["count"] * base_v
                + self._rows["weight"] * act_v
            ).sum(axis=1)
            return [float(t) for t in totals]
        return [
            sum(
                counts[name] * base[j] + weights[name] * act[j]
                for j, name in enumerate(self.names)
            )
            for counts, weights in self._lanes
        ]
