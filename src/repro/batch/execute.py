"""Execute a batch plan: one simulation per group, N outcomes out.

:func:`batched_simulate` is the batched counterpart of the historical
request-at-a-time fan-out in :mod:`repro.experiments.parallel`: it
simulates one representative per :class:`~repro.batch.plan.BatchGroup`
(in-process, or across the :class:`~repro.resilience.SupervisedPool`
for ``jobs > 1``) and replicates each outcome to the group's members
through a :class:`~repro.batch.accumulate.LedgerMatrix`, yielding
outcomes in the original grid order.

The checkpoint journal composes transparently: every *member* point is
journaled under its own ``(index, request digest)`` the moment its
group completes, so a campaign interrupted mid-batch resumes
identically whether the resuming run batches or not — the journal
format never learns about batching.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.batch.accumulate import LedgerMatrix
from repro.batch.plan import BatchPlan, plan_batches

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience import Supervision
    from repro.surrogate.dispatch import FidelityPolicy
    from repro.system import SimOutcome, SimRequest


def _simulate_stripped(request: "SimRequest") -> "SimOutcome":
    """Pool/worker entry point: simulate, drop the engine.

    A module-level twin of the one in
    :mod:`repro.experiments.parallel` (that module imports this one,
    so the worker function lives here to keep the import one-way).
    """
    from repro.system import run_simulation

    outcome = run_simulation(request)
    outcome.engine = None
    return outcome


def replicate_outcome(
    outcome: "SimOutcome", n: int
) -> "list[SimOutcome]":
    """Fan one group outcome out to ``n`` independent member outcomes.

    Member 0 keeps the representative's ledger object and wall-time
    stamps; members 1..n-1 get their lane's ledger materialized from
    the :class:`LedgerMatrix` and zeroed wall times (their simulation
    cost was amortized into the representative's — telemetry reports
    wall-clock actually spent, not wall-clock saved). Every member
    owns its ledger, result, and checker counters outright: downstream
    measurement, checking, and journaling treat each point as if it
    had been simulated alone.
    """
    if n == 1:
        return [outcome]
    matrix = LedgerMatrix(outcome.ledger, n)
    members = [outcome]
    for lane in range(1, n):
        members.append(
            replace(
                outcome,
                ledger=matrix.lane_ledger(lane),
                result=replace(outcome.result),
                engine=None,
                build_wall_s=0.0,
                sim_wall_s=0.0,
                check_counts=(
                    dict(outcome.check_counts)
                    if outcome.check_counts is not None
                    else None
                ),
            )
        )
    return members


def batched_simulate(
    requests: "Sequence[SimRequest]",
    plan: BatchPlan | None = None,
    jobs: int = 1,
    supervision: "Supervision | None" = None,
    fidelity: "FidelityPolicy | None" = None,
) -> "Iterator[SimOutcome]":
    """Simulate a grid group-wise, yielding outcomes in grid order.

    Mirrors the contract of the unbatched supervised path exactly:
    results in submission order, journaled points (on resume) never
    re-simulated, every completed point appended to the journal as it
    exists, the journal retired only once the final outcome was
    delivered, and per-point retry/deadline supervision applied to the
    representative simulations. The only difference is how many times
    :func:`~repro.system.run_simulation` actually runs.

    ``fidelity`` (the ``--tier auto``/``fast`` policy) slots in at the
    same per-member seam the journal uses: a journaled outcome is only
    reused when the policy's tier accepts it (no silent surrogate
    reuse under ``--tier sim``), and members the surrogate can serve
    within tolerance never reach the pool — they are predicted,
    journaled, and yielded like any other completed point.
    """
    from repro.resilience import (
        Supervision,
        SupervisedPool,
        request_digest,
    )
    from repro.surrogate.dispatch import accepts_cached_outcome

    if plan is None:
        plan = plan_batches(requests)
    supervision = (
        supervision if supervision is not None else Supervision()
    )
    journal = supervision.journal
    count = supervision.tracer.count
    digests = [request_digest(request) for request in requests]

    outcomes: dict[int, "SimOutcome"] = {}
    #: Missing-member index lists, one per group still needing its
    #: representative simulated (resume may have filled some or all
    #: members of a group from the journal, and the surrogate may
    #: have served others).
    todo: list[list[int]] = []
    for group in plan.groups:
        missing: list[int] = []
        for index in group.indices:
            cached = (
                journal.get(index, digests[index])
                if journal is not None
                else None
            )
            if cached is not None and not accepts_cached_outcome(
                cached, fidelity
            ):
                count("points_tier_rejected")
                cached = None
            if cached is not None:
                outcomes[index] = cached
                count("points_resumed")
                continue
            predicted = (
                fidelity.predict(requests[index])
                if fidelity is not None
                else None
            )
            if predicted is not None:
                outcomes[index] = predicted
                if journal is not None:
                    journal.append(index, digests[index], predicted)
                continue
            missing.append(index)
        if missing:
            todo.append(missing)
    if journal is not None:
        journal.write_meta(
            experiment_id=supervision.experiment_id,
            points_expected=len(requests),
        )

    def on_result(todo_index: int, outcome: "SimOutcome") -> None:
        members = todo[todo_index]
        replicas = replicate_outcome(outcome, len(members))
        if len(members) > 1:
            count("batch_points_replicated", len(members) - 1)
        for index, replica in zip(members, replicas):
            outcomes[index] = replica
            if journal is not None:
                journal.append(index, digests[index], replica)

    pool = SupervisedPool(
        _simulate_stripped,
        jobs=jobs,
        policy=supervision.policy,
        tracer=supervision.tracer,
    )
    pool.map(
        [requests[missing[0]] for missing in todo],
        on_result=on_result,
    )

    def emit() -> "Iterator[SimOutcome]":
        index = -1
        try:
            for index in range(len(requests)):
                # pop: each member's outcome is handed over exactly
                # once, freeing the grid as the consumer walks it.
                yield outcomes.pop(index)
        finally:
            if journal is not None and index == len(requests) - 1:
                journal.complete()

    return emit()
