"""Grouping a simulation grid into batchable equivalence classes.

:func:`plan_batches` partitions a request list by
:func:`~repro.batch.key.batch_key`. Each resulting
:class:`BatchGroup` is simulated once and its outcome fanned out to
every member; singleton groups simply run as before. Planning is pure
bookkeeping — it never reorders the grid (outcomes are always emitted
in the original submission order) and it can only *miss* a merge,
never create an unsound one, because the key covers every simulation
input.

The plan also carries the observability numbers the tracer and run
manifest record: how many points coalesced, and how many *de-batch
events* occurred — points that share a workload-affinity class (same
programs, same window, same topology) but could not merge because a
timing-affecting difference (in practice: distinct core clocks on a
memory-touching workload) forced them apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.batch.key import BatchKey, batch_key


@dataclass(frozen=True)
class BatchGroup:
    """One timing class: the grid indices that share a simulation.

    ``indices`` preserves grid order; the first member acts as the
    representative whose request is actually simulated.
    """

    key: BatchKey
    indices: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.indices)

    @property
    def representative(self) -> int:
        return self.indices[0]


@dataclass
class BatchPlan:
    """The full partition of one grid, plus its accounting."""

    groups: list[BatchGroup] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return sum(g.size for g in self.groups)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def points_coalesced(self) -> int:
        """Simulations saved: points served by another member's run."""
        return sum(g.size - 1 for g in self.groups)

    @property
    def max_group_size(self) -> int:
        return max((g.size for g in self.groups), default=0)

    @property
    def debatch_events(self) -> int:
        """Points pushed out of a wanted merge by a timing difference.

        Within one workload-affinity class (equal key digests), the
        first timing class is the batch the others "fell out of": each
        additional timing class in the same affinity class counts as
        one de-batch event.
        """
        classes: dict[bytes, int] = {}
        for group in self.groups:
            classes[group.key.digest] = (
                classes.get(group.key.digest, 0) + 1
            )
        return sum(n - 1 for n in classes.values())

    def summary(self) -> dict[str, int]:
        """The numbers the tracer notes on the run manifest."""
        return {
            "points": self.n_points,
            "groups": self.n_groups,
            "coalesced": self.points_coalesced,
            "debatched": self.debatch_events,
            "max_group": self.max_group_size,
        }


def plan_batches(requests: Sequence[object]) -> BatchPlan:
    """Partition ``requests`` into batch groups, first-seen order."""
    by_key: dict[BatchKey, list[int]] = {}
    for index, request in enumerate(requests):
        by_key.setdefault(batch_key(request), []).append(index)
    return BatchPlan(
        groups=[
            BatchGroup(key=key, indices=tuple(indices))
            for key, indices in by_key.items()
        ]
    )
