"""Timing-class identity of a simulation request.

Two :class:`~repro.system.SimRequest`\\ s with the same
:func:`batch_key` are guaranteed to produce bit-identical
:class:`~repro.system.SimOutcome`\\ s, because the key covers every
input the simulation reads:

* the workload (programs, initial registers, memory images), the chip
  configuration, the address interleaving, the run window, and the
  drafting/checks flags — all hashed verbatim;
* the core clock — hashed verbatim when the workload *can* reach the
  off-chip path, and dropped entirely when it provably cannot.

The second rule is what makes dense V/f sweeps batchable. The core
clock influences the architectural simulation in exactly one place:
:class:`~repro.chip.offchip.OffChipPath` converts DRAM nanoseconds to
core cycles. The off-chip path is only ever invoked by the coherent
memory system on an L2 miss, and the memory system is only ever
entered through a ``Unit.MEM`` instruction (``ldx``/``stx``/``cas``).
A workload with no memory instructions therefore executes identically
at 285 MHz and at 1 GHz — same cycles, same events, same everything —
and N frequency points collapse into one simulation.

Frequency-*dependent* requests stay correct automatically: their keys
include ``freq_hz``, so distinct frequencies land in distinct groups
(a "de-batch" — see :mod:`repro.batch.plan`), never in a shared one.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

from repro.isa.instructions import Unit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import SimRequest
    from repro.workloads.base import TileProgram


def workload_can_touch_memory(
    workload: Mapping[int, "TileProgram"],
) -> bool:
    """Whether any thread could ever enter the coherent memory system.

    True when any program contains a ``Unit.MEM`` instruction, or when
    a tile pre-loads a memory image (conservative: an image without a
    load to read it is inert, but cheap certainty beats cleverness
    here). Only a False answer is load-bearing — it licenses dropping
    the core clock from the batch key.
    """
    for tile_program in workload.values():
        if tile_program.memory_image:
            return True
        for program in tile_program.programs:
            for info in program.infos:
                if info.unit is Unit.MEM:
                    return True
    return False


@dataclass(frozen=True)
class BatchKey:
    """The timing class of one simulation request.

    ``digest`` hashes every simulation input except the core clock;
    ``freq_token`` is the clock when it matters and ``None`` when the
    workload provably never reaches the off-chip path. Requests are
    batchable iff their keys compare equal.
    """

    digest: bytes
    freq_token: float | None

    @property
    def freq_independent(self) -> bool:
        return self.freq_token is None


def _clockless_digest(request: "SimRequest") -> bytes:
    """SHA-256 over the request's pickle with the clock zeroed out.

    Requests are plain dataclasses of scalars, lists, and
    insertion-ordered dicts, so the pickle bytes are stable across
    processes — the same property :func:`~repro.resilience.
    request_digest` already relies on for ``--resume``.
    """
    surrogate = replace(request, freq_hz=1.0)
    return hashlib.sha256(
        pickle.dumps(surrogate, protocol=pickle.HIGHEST_PROTOCOL)
    ).digest()


def batch_key(request: "SimRequest") -> BatchKey:
    """The timing class of ``request`` (see the module docstring)."""
    freq_token = (
        request.freq_hz
        if workload_can_touch_memory(request.workload)
        else None
    )
    return BatchKey(
        digest=_clockless_digest(request), freq_token=freq_token
    )


def affinity_key(request: "SimRequest") -> bytes:
    """The workload-affinity class: the batch key *ignoring* timing.

    Points that share an affinity class wanted to batch — they run the
    same workload over the same topology and window. When their full
    :func:`batch_key`\\ s still differ (a timing-affecting difference,
    e.g. distinct clocks on a memory-touching workload), the planner
    records a de-batch event for the observability ledger instead of
    merging them.
    """
    return _clockless_digest(request)
