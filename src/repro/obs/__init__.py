"""Observability layer: span timers, event-rate counters, manifests.

The paper's contribution is instrumentation — 17 Hz rail monitors,
power traces, per-event energy attribution — and this package is the
reproduction's equivalent for the *software* bench: where does wall
time go (build vs simulate vs measure, per grid point), and what event
rates does each hardware component sustain per simulated cycle and per
wall-second.

Design constraints (enforced by tests):

* **zero-cost when disabled** — the default :data:`NULL_TRACER` turns
  every hook into a no-op; no timing calls, no dict writes, and the
  simulator hot loop is never touched either way;
* **no result perturbation** — telemetry only *observes* wall clocks
  and finished ledgers, so simulated outputs are bit-identical with
  tracing on or off;
* **pool-safe** — workers never share a tracer; they stamp wall times
  onto the picklable :class:`~repro.system.SimOutcome` and the parent
  aggregates them back (see :mod:`repro.experiments.parallel`).
"""

from repro.obs.counters import component_of, component_rates
from repro.obs.manifest import (
    JOB_MANIFEST_SCHEMA_VERSION,
    MANIFEST_SCHEMA_VERSION,
    JobManifest,
    RunManifest,
    build_manifest,
)
from repro.obs.trace import NULL_TRACER, SpanStats, Tracer

__all__ = [
    "JOB_MANIFEST_SCHEMA_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "JobManifest",
    "NULL_TRACER",
    "RunManifest",
    "SpanStats",
    "Tracer",
    "build_manifest",
    "component_of",
    "component_rates",
]
