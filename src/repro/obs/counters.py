"""Per-component event-rate counters derived from event ledgers.

The :class:`~repro.util.events.EventLedger` is flat (event name ->
count); the power model prices it per event. For observability we want
the orthogonal view the paper's per-block attribution implies: how
many events each hardware component sustained, per simulated cycle and
per wall-second of simulation. Event names are namespaced
(``l2.read``, ``noc1.flit_hop``), so classification is a prefix map.
"""

from __future__ import annotations

from typing import Mapping

#: event-name prefix -> hardware component bucket. L1s live inside the
#: core; the directory is co-located with the L2 slices; MITTS shapes
#: NoC injection; the miss path (``mem.*``) and DRAM form the memory
#: component; the chip bridge and chipset are the off-chip I/O path.
_PREFIX_COMPONENT: dict[str, str] = {
    "core": "core",
    "instr": "core",
    "l1i": "core",
    "l1d": "core",
    "l15": "l15",
    "l2": "l2",
    "dir": "l2",
    "noc1": "noc",
    "noc2": "noc",
    "noc3": "noc",
    "mitts": "noc",
    "mem": "dram",
    "dram": "dram",
    "io": "io",
    "chipbridge": "io",
    "chipset": "io",
}

#: Deterministic presentation order for rate tables/manifests.
COMPONENT_ORDER = ("core", "l15", "l2", "noc", "dram", "io", "other")


def component_of(event_name: str) -> str:
    """Hardware component an event belongs to (``other`` if unknown)."""
    prefix = event_name.split(".", 1)[0]
    return _PREFIX_COMPONENT.get(prefix, "other")


def component_rates(
    event_counts: Mapping[str, float],
    sim_cycles: float,
    wall_s: float,
) -> dict[str, dict[str, float]]:
    """Aggregate a flat event-count map into per-component rates.

    Returns ``{component: {"events", "per_cycle", "per_wall_s"}}`` in
    :data:`COMPONENT_ORDER`, components with zero events omitted.
    ``per_cycle`` divides by *simulated* cycles (architectural
    intensity); ``per_wall_s`` divides by simulation wall seconds
    (simulator throughput). Zero denominators yield a 0.0 rate rather
    than raising, so empty/instant runs still produce a manifest.
    """
    totals: dict[str, float] = {}
    for name, n in event_counts.items():
        comp = component_of(name)
        totals[comp] = totals.get(comp, 0.0) + n

    out: dict[str, dict[str, float]] = {}
    for comp in COMPONENT_ORDER:
        events = totals.pop(comp, 0.0)
        if events:
            out[comp] = {
                "events": events,
                "per_cycle": events / sim_cycles if sim_cycles else 0.0,
                "per_wall_s": events / wall_s if wall_s else 0.0,
            }
    # Future-proofing: buckets outside COMPONENT_ORDER still show up.
    for comp, events in sorted(totals.items()):
        out[comp] = {
            "events": events,
            "per_cycle": events / sim_cycles if sim_cycles else 0.0,
            "per_wall_s": events / wall_s if wall_s else 0.0,
        }
    return out
