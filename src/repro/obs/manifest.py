"""The per-run manifest attached to every experiment result.

A :class:`RunManifest` is the machine-readable record of *how* a
result was produced: run configuration (quick/jobs/persona/operating
point/interleave), where wall time went (span totals and per-point
simulation times), and what event rates each component sustained. It
serializes with its own schema version inside
``ExperimentResult.to_dict()`` so downstream consumers can detect
drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.obs.counters import component_rates
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.context import RunContext

MANIFEST_SCHEMA_VERSION = 1


@dataclass
class RunManifest:
    """How one experiment run was configured and where its time went."""

    experiment_id: str
    quick: bool
    jobs: int
    telemetry: bool
    wall_s_total: float
    checks: bool = False
    #: Whether timing-class batching (:mod:`repro.batch`) was enabled;
    #: the plan's actual numbers (groups, coalesced points, de-batch
    #: events) ride in ``extra["batch"]`` when a grid was planned.
    batch: bool = True
    #: Fidelity tier the run was launched with (``sim``/``auto``/
    #: ``fast``); per-point surrogate accounting rides in
    #: ``resilience`` (``surrogate_hits``/``surrogate_fallbacks``) and
    #: ``extra["surrogate_max_err"]``.
    tier: str = "sim"
    persona: str | None = None
    interleave: str | None = None
    operating_point: dict[str, float] | None = None
    points: int = 0
    point_wall_s: list[float] = field(default_factory=list)
    spans: dict[str, dict[str, float]] = field(default_factory=dict)
    event_rates: dict[str, dict[str, float]] = field(
        default_factory=dict
    )
    #: Supervised-execution counters (retries, timeouts,
    #: worker_crashes, points_simulated, points_resumed, ...) — how
    #: much failure handling the run needed. ``None`` when nothing was
    #: supervised; results are identical either way, these only record
    #: what it took to produce them.
    resilience: dict[str, int] | None = None
    extra: dict[str, object] = field(default_factory=dict)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "quick": self.quick,
            "jobs": self.jobs,
            "telemetry": self.telemetry,
            "checks": self.checks,
            "batch": self.batch,
            "tier": self.tier,
            "wall_s_total": self.wall_s_total,
            "persona": self.persona,
            "interleave": self.interleave,
            "operating_point": self.operating_point,
            "points": self.points,
            "point_wall_s": list(self.point_wall_s),
            "spans": {k: dict(v) for k, v in self.spans.items()},
            "event_rates": {
                k: dict(v) for k, v in self.event_rates.items()
            },
            "resilience": (
                dict(self.resilience)
                if self.resilience is not None
                else None
            ),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        version = data.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema_version {version!r} "
                f"(supported: {MANIFEST_SCHEMA_VERSION})"
            )
        fields = {k: v for k, v in data.items() if k != "schema_version"}
        return cls(**fields)  # type: ignore[arg-type]

    # ------------------------------------------------------------ rendering
    def summary(self) -> str:
        """Short human-readable telemetry digest (``--trace`` output)."""
        lines = [
            f"run manifest: {self.experiment_id} "
            f"(quick={self.quick}, jobs={self.jobs}, "
            f"persona={self.persona or '-'}, "
            f"tier={self.tier}, "
            f"points={self.points})",
            f"  wall total: {self.wall_s_total:.3f}s",
        ]
        for name, stats in sorted(self.spans.items()):
            lines.append(
                f"  span {name:12s} {stats['total_s']:8.3f}s "
                f"x{stats['count']:<4.0f} (max {stats['max_s']:.3f}s)"
            )
        for comp, rates in self.event_rates.items():
            lines.append(
                f"  rate {comp:12s} {rates['events']:12.0f} events  "
                f"{rates['per_cycle']:8.3f}/cycle  "
                f"{rates['per_wall_s']:12.0f}/wall-s"
            )
        if self.resilience:
            counters = "  ".join(
                f"{k}={v}" for k, v in sorted(self.resilience.items())
            )
            lines.append(f"  resilience: {counters}")
        batch_stats = self.extra.get("batch")
        if isinstance(batch_stats, Mapping):
            stats = "  ".join(
                f"{k}={v}" for k, v in batch_stats.items()
            )
            lines.append(f"  batch: {stats}")
        return "\n".join(lines)


JOB_MANIFEST_SCHEMA_VERSION = 1


@dataclass
class JobManifest:
    """Provenance record for one ``repro serve`` job.

    The service-side sibling of :class:`RunManifest`: where a run
    manifest says how a simulation was executed, a job manifest says
    how a *request* was served — from the content-addressed cache
    (``cas_hits``), by coalescing onto an identical in-flight request
    (``inflight_coalesced``), or by actually simulating
    (``cas_misses``). Served by ``GET /v1/jobs/<id>`` and embedded in
    ``GET /v1/status``.
    """

    job_id: str
    kind: str  # "run" | "sweep"
    state: str  # "queued" | "running" | "done" | "failed"
    digest: str
    experiment_id: str | None = None
    created_at: float = 0.0
    finished_at: float | None = None
    wall_s: float = 0.0
    #: Cache/coalescing accounting: ``cas_hits``, ``cas_misses``,
    #: ``inflight_coalesced``, plus any resilience counters the
    #: underlying run produced (``points_simulated``, ...).
    counters: dict[str, int] = field(default_factory=dict)
    error: str | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": JOB_MANIFEST_SCHEMA_VERSION,
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "digest": self.digest,
            "experiment_id": self.experiment_id,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "wall_s": self.wall_s,
            "counters": dict(self.counters),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobManifest":
        version = data.get("schema_version")
        if version != JOB_MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported job manifest schema_version {version!r} "
                f"(supported: {JOB_MANIFEST_SCHEMA_VERSION})"
            )
        fields = {k: v for k, v in data.items() if k != "schema_version"}
        return cls(**fields)  # type: ignore[arg-type]


def build_manifest(
    experiment_id: str,
    ctx: "RunContext",
    tracer: Tracer,
    wall_s_total: float,
) -> RunManifest:
    """Assemble the manifest for one finished experiment run.

    With a disabled tracer this still produces the configuration half
    (ids, flags, total wall time) so every result carries a manifest;
    spans, per-point times, and event rates fill in when telemetry was
    on. Event rates use simulation wall time (the ``simulate`` span)
    as their wall denominator when available, since that is the window
    the events were generated in.
    """
    meta = dict(tracer.meta)
    sim_wall = tracer.span_total_s("simulate") or wall_s_total
    return RunManifest(
        experiment_id=experiment_id,
        quick=ctx.quick,
        jobs=ctx.jobs,
        telemetry=tracer.enabled,
        checks=ctx.checks,
        batch=ctx.batch,
        tier=getattr(ctx, "tier", "sim"),
        wall_s_total=wall_s_total,
        persona=meta.pop("persona", None),
        interleave=meta.pop("interleave", None),
        operating_point=meta.pop("operating_point", None),
        points=len(tracer.point_wall_s),
        point_wall_s=list(tracer.point_wall_s),
        spans={
            name: stats.as_dict()
            for name, stats in tracer.spans.items()
        },
        event_rates=component_rates(
            tracer.event_counts, tracer.sim_cycles, sim_wall
        ),
        resilience=dict(tracer.resilience) or None,
        extra=meta,
    )
