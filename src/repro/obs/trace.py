"""Span timers and run-wide telemetry accumulation.

A :class:`Tracer` collects everything one experiment run produces:

* **spans** — named wall-clock timers around pipeline stages (request
  build, simulate, measure), aggregated by name;
* **points** — per-grid-point simulation wall times, in grid order;
* **event counts** — ledger event totals plus simulated cycles, the
  raw material for per-component rate counters;
* **meta** — bench facts (persona, interleave, operating point) noted
  by whoever knows them.

The disabled singleton :data:`NULL_TRACER` makes every hook a no-op so
library callers that never asked for telemetry pay nothing. Tracers
are parent-process objects: pool workers report wall times through
:class:`~repro.system.SimOutcome` fields instead of sharing one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.util.events import EventLedger


@dataclass
class SpanStats:
    """Aggregate of every span recorded under one name."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def add(self, dt_s: float) -> None:
        self.count += 1
        self.total_s += dt_s
        if dt_s > self.max_s:
            self.max_s = dt_s

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "max_s": self.max_s,
        }


class _Span:
    """Times one ``with`` block into its tracer."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer.add_span(
            self._name, time.perf_counter() - self._start
        )
        return False


class _NullSpan:
    """Shared no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Accumulates spans, point timings, event counts, and metadata."""

    enabled = True

    def __init__(self) -> None:
        self.spans: dict[str, SpanStats] = {}
        self.meta: dict[str, object] = {}
        self.point_wall_s: list[float] = []
        self.event_counts: dict[str, float] = {}
        self.sim_cycles: float = 0.0
        #: Resilience counters (retries, timeouts, worker_crashes,
        #: points_simulated, points_resumed, ...) incremented by the
        #: supervised execution layer via :meth:`count`; surfaced on
        #: the run manifest. Empty when nothing was supervised.
        self.resilience: dict[str, int] = {}
        #: Live-event subscribers (see :meth:`subscribe`). Empty for
        #: every historical caller, and the publish hooks are guarded
        #: on truthiness, so unsubscribed tracers pay one falsy check.
        self._subscribers: list = []

    # ---------------------------------------------------------- subscription
    def subscribe(self, callback) -> None:
        """Stream telemetry events to ``callback(event_dict)`` live.

        Each recorded point, counter bump, and note is published as a
        small JSON-able dict the moment it happens — this is what the
        ``repro serve`` daemon streams to ``GET /v1/jobs/<id>`` as
        progress lines. Subscriber exceptions are swallowed: telemetry
        must never be able to fail a run.
        """
        self._subscribers.append(callback)

    def _publish(self, event: dict) -> None:
        for callback in self._subscribers:
            try:
                callback(event)
            except Exception:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------- recording
    def span(self, name: str):
        """Context manager timing one block under ``name``."""
        return _Span(self, name)

    def add_span(self, name: str, dt_s: float) -> None:
        """Fold an externally measured duration into ``name``'s stats.

        This is how worker wall times (carried back on
        ``SimOutcome.sim_wall_s``) are aggregated in the parent.
        """
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        stats.add(dt_s)

    def note(self, key: str, value: object) -> None:
        """Record one bench fact (last write wins)."""
        self.meta[key] = value
        if self._subscribers:
            self._publish({"event": "note", "key": key, "value": value})

    def point(self, sim_wall_s: float) -> None:
        """Record one grid point's simulation wall time, in grid order."""
        self.point_wall_s.append(sim_wall_s)
        if self._subscribers:
            self._publish(
                {
                    "event": "point",
                    "index": len(self.point_wall_s) - 1,
                    "sim_wall_s": sim_wall_s,
                }
            )

    def count(self, name: str, n: int = 1) -> None:
        """Bump one resilience counter (retry, timeout, resume hit...)."""
        self.resilience[name] = self.resilience.get(name, 0) + n
        if self._subscribers:
            self._publish(
                {
                    "event": "counter",
                    "name": name,
                    "delta": n,
                    "value": self.resilience[name],
                }
            )

    def gauge_max(self, key: str, value: float) -> None:
        """Record the running maximum of a float gauge into ``meta``.

        Used for run-wide worst-case figures (e.g. the largest error
        bound of any surrogate-served point, ``surrogate_max_err``);
        lands in ``RunManifest.extra`` alongside the other meta facts.
        """
        current = self.meta.get(key)
        if not isinstance(current, (int, float)) or value > current:
            self.meta[key] = value

    def observe_ledger(self, ledger: "EventLedger", cycles: float) -> None:
        """Fold one measured window's events into the run totals."""
        counts = self.event_counts
        for name, n in ledger.counts.items():
            counts[name] = counts.get(name, 0.0) + n
        self.sim_cycles += cycles

    # -------------------------------------------------------------- reading
    def span_total_s(self, name: str) -> float:
        stats = self.spans.get(name)
        return stats.total_s if stats is not None else 0.0


class _NullTracer(Tracer):
    """Disabled tracer: every hook is a no-op, every read is empty."""

    enabled = False

    def subscribe(self, callback) -> None:
        pass

    def span(self, name: str):
        return _NULL_SPAN

    def add_span(self, name: str, dt_s: float) -> None:
        pass

    def note(self, key: str, value: object) -> None:
        pass

    def point(self, sim_wall_s: float) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge_max(self, key: str, value: float) -> None:
        pass

    def observe_ledger(self, ledger: "EventLedger", cycles: float) -> None:
        pass


#: Shared disabled tracer; the default everywhere telemetry is optional.
NULL_TRACER = _NullTracer()
