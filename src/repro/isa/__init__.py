"""SPARC-V9-subset ISA used by the core model and the EPI assembly tests.

The subset covers exactly the instruction classes the paper
characterizes (Table VI) — integer ALU, multiply, divide, single- and
double-precision floating point, 64-bit loads and stores, and
conditional branches — plus the handful of move/set/logic instructions
the microbenchmarks need. One documented simplification: branches
compare a register against zero (MIPS-style) instead of using SPARC
condition codes; this changes no timing or energy behaviour, only
assembler syntax.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import (
    INSTRUCTION_SET,
    InstrClass,
    OpcodeInfo,
    Unit,
)
from repro.isa.operands import (
    OperandPolicy,
    hamming_distance,
    hamming_weight,
    operand_value,
)
from repro.isa.program import Instruction, Program

__all__ = [
    "AssemblerError",
    "assemble",
    "INSTRUCTION_SET",
    "InstrClass",
    "OpcodeInfo",
    "Unit",
    "OperandPolicy",
    "hamming_distance",
    "hamming_weight",
    "operand_value",
    "Instruction",
    "Program",
]
