"""Instruction and program containers produced by the assembler.

A :class:`Program` is a flat list of resolved :class:`Instruction`\\ s;
branch targets are instruction indices (labels are resolved away by the
assembler). The core pipeline executes programs directly.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.isa.instructions import OpcodeInfo, opcode


@functools.lru_cache(maxsize=1024)
def resolve_infos(ops: tuple[str, ...]) -> tuple[OpcodeInfo, ...]:
    """The per-instruction :class:`OpcodeInfo` table for an op list.

    Memoized process-wide: sweep grids rebuild the same workload once
    per point (and once per tile), and every rebuild used to re-resolve
    an identical table. Keying on the opcode-name tuple returns the
    *same* tuple object for the same instruction stream, so repeated
    :func:`~repro.system.run_simulation` calls share one table instead
    of precomputing it again — provably identical, since
    :class:`OpcodeInfo` instances are frozen singletons from
    :data:`~repro.isa.instructions.INSTRUCTION_SET`.
    """
    return tuple(opcode(op) for op in ops)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Register operand conventions:

    * ``rd``  – destination register index (int regs and fp regs live in
      separate files; ``info.is_fp`` selects which).
    * ``rs1``/``rs2`` – source register indices, or ``None``.
    * ``imm`` – immediate; for memory ops it is the address offset, for
      ``set`` it is the value, for ALU ops it substitutes for ``rs2``.
    * ``target`` – branch destination as an instruction index.
    """

    op: str
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int | None = None
    target: int | None = None

    @property
    def info(self) -> OpcodeInfo:
        return opcode(self.op)

    def __str__(self) -> str:
        parts = [self.op]
        for label, value in (
            ("rd", self.rd),
            ("rs1", self.rs1),
            ("rs2", self.rs2),
            ("imm", self.imm),
            ("target", self.target),
        ):
            if value is not None:
                parts.append(f"{label}={value}")
        return " ".join(parts)


@dataclass
class Program:
    """A resolved instruction sequence with label metadata.

    ``infos`` is the per-instruction :class:`OpcodeInfo` table,
    resolved once at construction so the pipeline's issue loop can
    index a flat sequence instead of re-looking opcodes up per
    executed instruction (programs loop; the lookup would otherwise
    run millions of times). The table is a shared, memoized tuple —
    two programs with the same instruction stream hold the *same*
    object (see :func:`resolve_infos`), so rebuilding a workload per
    sweep point never re-precomputes it.
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    source: str | None = None
    infos: tuple[OpcodeInfo, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        self.refresh_infos()

    def refresh_infos(self) -> None:
        """Re-resolve ``infos`` (call after mutating ``instructions``)."""
        self.infos = resolve_infos(
            tuple(i.op for i in self.instructions)
        )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def validate(self) -> None:
        """Check branch targets and register indices are in range."""
        self.refresh_infos()
        for i, instr in enumerate(self.instructions):
            info = instr.info
            if info.is_branch:
                if instr.target is None:
                    raise ValueError(f"instr {i}: branch without target")
                if not 0 <= instr.target < len(self.instructions):
                    raise ValueError(
                        f"instr {i}: branch target {instr.target} out of range"
                    )
            for reg in (instr.rd, instr.rs1, instr.rs2):
                if reg is not None and not 0 <= reg < 32:
                    raise ValueError(f"instr {i}: register {reg} out of range")

    def instruction_mix(self) -> dict[str, int]:
        """Static opcode histogram (useful in tests and docs)."""
        mix: dict[str, int] = {}
        for instr in self.instructions:
            mix[instr.op] = mix.get(instr.op, 0) + 1
        return mix


def flat_program(instructions: Sequence[Instruction]) -> Program:
    """Wrap raw instructions into a validated :class:`Program`."""
    program = Program(list(instructions))
    program.validate()
    return program
