"""Two-pass text assembler for the SPARC-subset ISA.

Syntax (SPARC-flavoured, simplified)::

    loop:
        set   42, %r1          ! immediate load
        add   %r1, %r2, %r3    ! rd is last
        and   %r3, 0xff, %r4   ! rs2 may be an immediate
        ldx   [%r4 + 8], %r5   ! load:  [base + offset] -> rd
        stx   %r5, [%r4 + 16]  ! store: rs -> [base + offset]
        faddd %f0, %f2, %f4
        bne   %r3, loop        ! branch if %r3 != 0
        nop

Comments start with ``!`` or ``#``. Labels end with ``:`` and may share
a line with an instruction. Immediates accept decimal, hex (``0x``),
and negative values.
"""

from __future__ import annotations

import re

from repro.isa.instructions import opcode
from repro.isa.program import Instruction, Program


class AssemblerError(ValueError):
    """Raised with file/line context on any parse or resolve failure."""


_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_INT_REG_RE = re.compile(r"^%r(\d+)$")
_FP_REG_RE = re.compile(r"^%f(\d+)$")
_MEM_RE = re.compile(r"^\[\s*(%r\d+)\s*(?:([+-])\s*(\w+)\s*)?\]$")


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a validated :class:`Program`."""
    lines = source.splitlines()
    parsed: list[tuple[int, str, list[str]]] = []
    labels: dict[str, int] = {}

    # Pass 1: strip comments, collect labels, tokenize.
    for lineno, raw in enumerate(lines, start=1):
        line = re.split(r"[!#]", raw, maxsplit=1)[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                label, line = match.group(1), match.group(2).strip()
                if label in labels:
                    raise AssemblerError(
                        f"line {lineno}: duplicate label {label!r}"
                    )
                labels[label] = len(parsed)
                continue
            break
        if not line:
            continue
        mnemonic, _, rest = line.partition(" ")
        operands = [tok.strip() for tok in _split_operands(rest)] if rest else []
        parsed.append((lineno, mnemonic.lower(), operands))

    # Pass 2: resolve operands and labels.
    instructions = [
        _build(lineno, mnemonic, operands, labels)
        for lineno, mnemonic, operands in parsed
    ]
    program = Program(instructions, labels, source=source)
    try:
        program.validate()
    except ValueError as exc:
        raise AssemblerError(str(exc)) from exc
    return program


def _split_operands(text: str) -> list[str]:
    """Split on commas not inside ``[...]`` memory operands."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def _build(
    lineno: int,
    mnemonic: str,
    operands: list[str],
    labels: dict[str, int],
) -> Instruction:
    try:
        info = opcode(mnemonic)
    except KeyError as exc:
        raise AssemblerError(f"line {lineno}: {exc}") from exc

    def err(message: str) -> AssemblerError:
        return AssemblerError(f"line {lineno}: {mnemonic}: {message}")

    if mnemonic == "nop":
        if operands:
            raise err("takes no operands")
        return Instruction("nop")

    if info.is_load:  # ldx [base + off], rd
        if len(operands) != 2:
            raise err("expected '[base + off], rd'")
        base, imm = _parse_mem(operands[0], err)
        return Instruction(mnemonic, rd=_reg(operands[1], info.is_fp, err),
                           rs1=base, imm=imm)

    if info.is_store:  # stx rs, [base + off]
        if len(operands) != 2:
            raise err("expected 'rs, [base + off]'")
        base, imm = _parse_mem(operands[1], err)
        return Instruction(mnemonic, rs1=_reg(operands[0], info.is_fp, err),
                           rs2=base, imm=imm)

    if info.is_branch:  # beq rs, label
        if len(operands) != 2:
            raise err("expected 'rs, label'")
        label = operands[1]
        if label not in labels:
            raise err(f"undefined label {label!r}")
        return Instruction(mnemonic, rs1=_reg(operands[0], False, err),
                           target=labels[label])

    if mnemonic == "cas":  # cas [base], rcmp, rswap_dest (SPARC CASX)
        if len(operands) != 3:
            raise err("expected '[base], rcmp, rd'")
        base, offset = _parse_mem(operands[0], err)
        if offset:
            raise err("cas takes no address offset")
        return Instruction(mnemonic, rd=_reg(operands[2], False, err),
                           rs1=base, rs2=_reg(operands[1], False, err))

    if mnemonic == "set":  # set imm, rd
        if len(operands) != 2:
            raise err("expected 'imm, rd'")
        return Instruction(mnemonic, rd=_reg(operands[1], False, err),
                           imm=_imm(operands[0], err))

    if mnemonic == "mov":  # mov rs, rd
        if len(operands) != 2:
            raise err("expected 'rs, rd'")
        return Instruction(mnemonic, rd=_reg(operands[1], info.is_fp, err),
                           rs1=_reg(operands[0], info.is_fp, err))

    # Three-operand ALU / FPU: op rs1, rs2_or_imm, rd
    if len(operands) != 3:
        raise err("expected 'rs1, rs2, rd'")
    rs1 = _reg(operands[0], info.is_fp, err)
    rd = _reg(operands[2], info.is_fp, err)
    if _INT_REG_RE.match(operands[1]) or _FP_REG_RE.match(operands[1]):
        return Instruction(mnemonic, rd=rd, rs1=rs1,
                           rs2=_reg(operands[1], info.is_fp, err))
    if info.is_fp:
        raise err("FP instructions take register operands only")
    return Instruction(mnemonic, rd=rd, rs1=rs1, imm=_imm(operands[1], err))


def _reg(token: str, fp: bool, err) -> int:
    pattern = _FP_REG_RE if fp else _INT_REG_RE
    match = pattern.match(token)
    if not match:
        kind = "fp" if fp else "integer"
        raise err(f"expected {kind} register, got {token!r}")
    index = int(match.group(1))
    if not 0 <= index < 32:
        raise err(f"register index {index} out of range")
    return index


def _imm(token: str, err) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise err(f"bad immediate {token!r}") from None


def _parse_mem(token: str, err) -> tuple[int, int]:
    match = _MEM_RE.match(token)
    if not match:
        raise err(f"bad memory operand {token!r}")
    base = int(match.group(1)[2:])
    if not 0 <= base < 32:
        raise err(f"register index {base} out of range")
    offset = 0
    if match.group(3) is not None:
        try:
            offset = int(match.group(3), 0)
        except ValueError:
            raise err(f"bad offset {match.group(3)!r}") from None
        if match.group(2) == "-":
            offset = -offset
    return base, offset
