"""Operand value policies and bit-level activity helpers.

Section IV-E shows instruction energy depends strongly on the source
operand values: the paper sweeps *minimum*, *random*, and *maximum*
operands. :class:`OperandPolicy` reproduces those three sweeps.
:func:`hamming_weight`/:func:`hamming_distance` are the primitives the
power model uses to turn operand bit patterns into switching activity.
"""

from __future__ import annotations

import enum
import struct

import numpy as np

from repro.isa.instructions import WORD_MASK


class OperandPolicy(enum.Enum):
    """Which operand values an EPI assembly test uses."""

    MINIMUM = "minimum"
    RANDOM = "random"
    MAXIMUM = "maximum"


def operand_value(
    policy: OperandPolicy,
    rng: np.random.Generator | None = None,
    fp: bool = False,
) -> int | float:
    """Draw one operand under ``policy``.

    Integer operands: minimum is 0, maximum is all-ones (64 bit),
    random is uniform over the full 64-bit range. Floating-point
    operands mirror the same activity extremes: 0.0, a dense-mantissa
    value near the top of the exponent range, and a random finite
    double.
    """
    if policy is OperandPolicy.MINIMUM:
        return 0.0 if fp else 0
    if policy is OperandPolicy.MAXIMUM:
        if fp:
            # All-ones mantissa and near-max exponent, still finite.
            return float.fromhex("0x1.fffffffffffffp+1000")
        return WORD_MASK
    if rng is None:
        raise ValueError("RANDOM operand policy requires an rng")
    if fp:
        return float(rng.uniform(1.0, 2.0) * 2.0 ** rng.integers(-64, 64))
    return int(rng.integers(0, 1 << 63, dtype=np.uint64)) | (
        int(rng.integers(0, 2)) << 63
    )


def hamming_weight(value: int) -> int:
    """Number of set bits in a 64-bit word."""
    return int(value & WORD_MASK).bit_count()


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two 64-bit words."""
    return int((a ^ b) & WORD_MASK).bit_count()


def float_bits(value: float) -> int:
    """IEEE-754 double bit pattern of ``value`` as an unsigned int."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bit_pattern(value: int | float) -> int:
    """Uniform 64-bit pattern for either an int or a float operand."""
    if isinstance(value, float):
        return float_bits(value)
    return value & WORD_MASK


def activity_factor(value: int | float) -> float:
    """Fraction of datapath bits set by one operand, in [0, 1]."""
    return hamming_weight(bit_pattern(value)) / 64.0


def switching_factor(prev: int | float, curr: int | float) -> float:
    """Fraction of datapath bits that toggle between two values."""
    return hamming_distance(bit_pattern(prev), bit_pattern(curr)) / 64.0
