"""Disassembler: turn programs back into assembler-accepted text.

Round-trips with :mod:`repro.isa.assembler` (asserted by property
tests), which makes traces, generated workloads, and EPI tests
inspectable — the reproduction's stand-in for reading the RTL test
inputs the paper published.
"""

from __future__ import annotations

from repro.isa.program import Instruction, Program


def disassemble_instruction(
    instr: Instruction, labels: dict[int, str] | None = None
) -> str:
    """Render one instruction in assembler syntax."""
    info = instr.info
    op = instr.op

    if op == "nop":
        return "nop"
    if op == "set":
        return f"set {instr.imm}, %r{instr.rd}"
    if op == "mov":
        prefix = "f" if info.is_fp else "r"
        return f"mov %{prefix}{instr.rs1}, %{prefix}{instr.rd}"
    if info.is_load:
        return f"ldx [%r{instr.rs1} + {instr.imm or 0}], %r{instr.rd}"
    if info.is_store:
        return f"stx %r{instr.rs1}, [%r{instr.rs2} + {instr.imm or 0}]"
    if op == "cas":
        return f"cas [%r{instr.rs1}], %r{instr.rs2}, %r{instr.rd}"
    if info.is_branch:
        if labels and instr.target in labels:
            target = labels[instr.target]
        else:
            target = f"L{instr.target}"
        return f"{op} %r{instr.rs1}, {target}"
    prefix = "f" if info.is_fp else "r"
    if instr.rs2 is not None:
        second = f"%{prefix}{instr.rs2}"
    else:
        second = str(instr.imm)
    return f"{op} %{prefix}{instr.rs1}, {second}, %{prefix}{instr.rd}"


def disassemble(program: Program) -> str:
    """Render a whole program, synthesizing labels at branch targets."""
    targets = {
        instr.target
        for instr in program
        if instr.info.is_branch and instr.target is not None
    }
    labels = {index: f"L{index}" for index in sorted(targets)}
    lines: list[str] = []
    for index, instr in enumerate(program.instructions):
        if index in labels:
            lines.append(f"{labels[index]}:")
        lines.append(f"    {disassemble_instruction(instr, labels)}")
    return "\n".join(lines) + "\n"
