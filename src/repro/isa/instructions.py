"""Instruction set definition with the paper's measured latencies.

Table VI of the paper lists the latency, in core clock cycles, used in
every EPI calculation; those latencies are encoded here verbatim and
are also the timing ground truth for the pipeline model. Instructions
the paper does not characterize (``sub``, ``or``, ``set``, ...) reuse
the single-cycle ALU timing, which is how the OpenSPARC T1 executes
them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping


class Unit(enum.Enum):
    """Execution resource an instruction occupies."""

    NONE = "none"  # nop
    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FPU = "fpu"
    MEM = "mem"
    BRANCH = "branch"


class InstrClass(enum.Enum):
    """Energy-accounting class (one bar group in Figure 11)."""

    NOP = "nop"
    INT_LOGIC = "int_logic"
    INT_ADD = "int_add"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD_D = "fp_add_d"
    FP_MUL_D = "fp_mul_d"
    FP_DIV_D = "fp_div_d"
    FP_ADD_S = "fp_add_s"
    FP_MUL_S = "fp_mul_s"
    FP_DIV_S = "fp_div_s"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


#: InstrClass -> dense integer id, in declaration order. The pipeline
#: accumulates per-class event counts in flat arrays indexed by these
#: ids instead of hashing ``instr.<class>`` strings per instruction.
INSTR_CLASS_INDEX: Mapping[InstrClass, int] = {
    c: i for i, c in enumerate(InstrClass)
}

#: Interned ledger event name for each class id ("instr.<class>").
INSTR_EVENT_NAMES: tuple[str, ...] = tuple(
    f"instr.{c.value}" for c in InstrClass
)

NUM_INSTR_CLASSES = len(INSTR_EVENT_NAMES)


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode.

    ``latency`` is the Table VI latency: the number of cycles the
    issuing thread is occupied before a dependent instruction could
    issue (for stores, the store-buffer drain time; for loads, the
    L1-hit use latency). ``class_index`` is the dense id of
    ``instr_class`` (see :data:`INSTR_CLASS_INDEX`).
    """

    name: str
    unit: Unit
    instr_class: InstrClass
    latency: int
    is_fp: bool = False
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    num_sources: int = 2
    has_dest: bool = True
    class_index: int = 0


def _op(name, unit, iclass, latency, **kw) -> tuple[str, OpcodeInfo]:
    kw.setdefault("class_index", INSTR_CLASS_INDEX[iclass])
    return name, OpcodeInfo(name, unit, iclass, latency, **kw)


INSTRUCTION_SET: Mapping[str, OpcodeInfo] = dict(
    [
        _op("nop", Unit.NONE, InstrClass.NOP, 1, num_sources=0, has_dest=False),
        # Integer, 64-bit (Table VI: and 1, add 1, mulx 11, sdivx 72).
        _op("and", Unit.ALU, InstrClass.INT_LOGIC, 1),
        _op("or", Unit.ALU, InstrClass.INT_LOGIC, 1),
        _op("xor", Unit.ALU, InstrClass.INT_LOGIC, 1),
        _op("add", Unit.ALU, InstrClass.INT_ADD, 1),
        _op("sub", Unit.ALU, InstrClass.INT_ADD, 1),
        _op("sll", Unit.ALU, InstrClass.INT_LOGIC, 1),
        _op("srl", Unit.ALU, InstrClass.INT_LOGIC, 1),
        _op("mulx", Unit.MUL, InstrClass.INT_MUL, 11),
        _op("sdivx", Unit.DIV, InstrClass.INT_DIV, 72),
        # Register moves / immediates (T1: single-cycle ALU ops).
        _op("mov", Unit.ALU, InstrClass.INT_ADD, 1, num_sources=1),
        _op("set", Unit.ALU, InstrClass.INT_ADD, 1, num_sources=0),
        # FP double precision (Table VI: faddd 22, fmuld 25, fdivd 79).
        _op("faddd", Unit.FPU, InstrClass.FP_ADD_D, 22, is_fp=True),
        _op("fsubd", Unit.FPU, InstrClass.FP_ADD_D, 22, is_fp=True),
        _op("fmuld", Unit.FPU, InstrClass.FP_MUL_D, 25, is_fp=True),
        _op("fdivd", Unit.FPU, InstrClass.FP_DIV_D, 79, is_fp=True),
        # FP single precision (Table VI: fadds 22, fmuls 25, fdivs 50).
        _op("fadds", Unit.FPU, InstrClass.FP_ADD_S, 22, is_fp=True),
        _op("fsubs", Unit.FPU, InstrClass.FP_ADD_S, 22, is_fp=True),
        _op("fmuls", Unit.FPU, InstrClass.FP_MUL_S, 25, is_fp=True),
        _op("fdivs", Unit.FPU, InstrClass.FP_DIV_S, 50, is_fp=True),
        # Memory, 64-bit (Table VI: ldx 3 on L1 hit, stx 10).
        _op("ldx", Unit.MEM, InstrClass.LOAD, 3, is_load=True, num_sources=1),
        _op(
            "stx",
            Unit.MEM,
            InstrClass.STORE,
            10,
            is_store=True,
            num_sources=2,
            has_dest=False,
        ),
        # Atomic compare-and-swap (SPARC CASX): performed at the home L2
        # slice as on the T1; nominal latency is the local-L2 round trip
        # and the real latency is computed by the memory system.
        _op(
            "cas",
            Unit.MEM,
            InstrClass.STORE,
            34,
            num_sources=2,
            has_dest=True,
        ),
        # Control (Table VI: beq taken 3, bne not-taken 3). Branches
        # compare one register against zero (documented simplification).
        _op(
            "beq",
            Unit.BRANCH,
            InstrClass.BRANCH,
            3,
            is_branch=True,
            num_sources=1,
            has_dest=False,
        ),
        _op(
            "bne",
            Unit.BRANCH,
            InstrClass.BRANCH,
            3,
            is_branch=True,
            num_sources=1,
            has_dest=False,
        ),
    ]
)

# Latency overrides used by the memory-system study (Table VII) are not
# stored here: load latency beyond an L1 hit is *computed* by the cache
# hierarchy and off-chip models at run time.

NUM_INT_REGS = 32
NUM_FP_REGS = 32
WORD_MASK = (1 << 64) - 1


def opcode(name: str) -> OpcodeInfo:
    """Look up one opcode, with a helpful error for typos."""
    try:
        return INSTRUCTION_SET[name]
    except KeyError:
        raise KeyError(
            f"unknown opcode {name!r}; known: {sorted(INSTRUCTION_SET)}"
        ) from None
