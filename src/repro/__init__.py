"""repro: a faithful, calibrated reproduction of *Power and Energy
Characterization of an Open Source 25-core Manycore Processor*
(McKeown et al., HPCA 2018).

The library rebuilds the paper's entire experimental stack in software:

* the **Piton chip** — OpenSPARC-T1-style fine-grained-multithreaded
  cores (:mod:`repro.core`), the L1/L1.5/L2 hierarchy with
  directory-based MESI coherence (:mod:`repro.cache`), three wormhole
  mesh NoCs (:mod:`repro.noc`), and the chip bridge / chipset / DDR3
  path (:mod:`repro.chip`);
* the **silicon** — per-die process-variation personas and the yield
  model (:mod:`repro.silicon`);
* the **power model** — calibrated per-event energies, leakage and
  clock power, the alpha-power Fmax law, and the paper's EPI/EPF
  methodology (:mod:`repro.power`);
* the **thermals** — RC package networks and the leakage feedback loop
  (:mod:`repro.thermal`);
* the **test bench** — virtual PCB rails, sense resistors, and the
  17 Hz / 128-sample measurement protocol (:mod:`repro.board`);
* the **workloads** — EPI assembly tests, memory and NoC stressors,
  the Int/HP/Hist microbenchmarks, and SPECint-profile replay
  (:mod:`repro.workloads`);
* the **experiments** — one module per paper table/figure
  (:mod:`repro.experiments`).

Quick start::

    from repro.system import PitonSystem

    system = PitonSystem.default()
    idle = system.measure_idle()
    print(idle.total.format(scale=1e-3), "mW")
"""

from repro.arch.params import PitonConfig
from repro.system import PitonSystem

__version__ = "1.0.0"

__all__ = ["PitonConfig", "PitonSystem", "__version__"]
