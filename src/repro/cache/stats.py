"""Per-cache hit/miss statistics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Counters for one cache structure."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.writebacks += other.writebacks
        self.invalidations += other.invalidations
