"""MESI coherence state machine and directory bookkeeping.

Piton maintains coherence at the distributed shared L2 with a
directory-based MESI protocol carried over three NoCs (request,
forward, response — modelled as the three physical networks NoC1-3).
The directory here is exact: one entry per L2-resident line recording
either a sharer set or a single exclusive owner. Invariants
(single-writer / multiple-reader) are enforced eagerly so protocol bugs
fail loudly in tests rather than silently corrupting energy counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MesiState(enum.Enum):
    """Stable states of a line in a private (L1.5) cache."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def can_write(self) -> bool:
        return self is MesiState.MODIFIED

    @property
    def can_read(self) -> bool:
        return self is not MesiState.INVALID


class CoherenceError(RuntimeError):
    """A protocol invariant was violated."""


@dataclass
class DirectoryEntry:
    """Directory state for one L2-resident line.

    Exactly one of the following holds:

    * ``owner is None and not sharers`` — uncached above the L2,
    * ``owner is None and sharers``     — read-shared by ``sharers``,
    * ``owner is not None``             — exclusively held (E or M) by
      ``owner``; ``sharers`` must be empty.
    """

    owner: int | None = None
    sharers: set[int] = field(default_factory=set)

    def check(self) -> None:
        if self.owner is not None and self.sharers:
            raise CoherenceError(
                f"line has owner {self.owner} and sharers {self.sharers}"
            )

    @property
    def uncached(self) -> bool:
        return self.owner is None and not self.sharers

    def add_sharer(self, tile: int) -> None:
        if self.owner is not None:
            raise CoherenceError(
                f"cannot add sharer {tile} while tile {self.owner} owns line"
            )
        self.sharers.add(tile)

    def set_owner(self, tile: int) -> None:
        if self.sharers:
            raise CoherenceError(
                f"cannot grant ownership to {tile} with sharers {self.sharers}"
            )
        self.owner = tile

    def downgrade_owner_to_sharer(self) -> int:
        """Owner loses exclusivity and joins the sharer set."""
        if self.owner is None:
            raise CoherenceError("downgrade with no owner")
        tile, self.owner = self.owner, None
        self.sharers.add(tile)
        return tile

    def drop(self, tile: int) -> None:
        """Remove a tile from the entry (eviction or invalidation ack)."""
        if self.owner == tile:
            self.owner = None
        else:
            self.sharers.discard(tile)
