"""Chip-wide coherent memory system.

Ties together the per-tile private caches (L1I, write-through L1D, and
the write-back L1.5 that encapsulates it), the distributed shared L2
slices with their directories, the address-interleaved homing map, and
an off-chip access model. State transitions are exact MESI; timing is
composed from :class:`~repro.cache.latency.MemoryLatencyModel` plus
floorplan hop counts; every energy-relevant action is recorded in the
shared :class:`~repro.util.events.EventLedger`.

Message sizes follow the paper: a remote L2 hit is a 3-flit request
plus a 3-flit response (Section IV-G); invalidations ride NoC2 and
acks/data responses NoC3; L1.5 dirty-line writebacks carry the 16B line
as two payload flits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.cache.addressing import AddressMap
from repro.cache.cdr import CdrRegistry
from repro.cache.coherence import CoherenceError, MesiState
from repro.cache.l2 import L2Slice, RecallAction
from repro.cache.latency import MemoryLatencyModel, default_latency_model
from repro.cache.setassoc import SetAssocCache
from repro.noc.mitts import MittsShaper
from repro.util.events import EventLedger

# Message lengths in flits (header + payload).
REQUEST_FLITS = 3
RESPONSE_FLITS = 3
INVALIDATE_FLITS = 2
ACK_FLITS = 1


def fixed_offchip_model(
    cycles: int = 390,
) -> Callable[[int, bool, int], int]:
    """A trivial off-chip model: constant round-trip latency.

    The full system replaces this with
    :class:`repro.chip.offchip.OffChipPath`, which models the chip
    bridge, gateway FPGA, chipset, and DDR3 timing of Figure 15.
    """

    def access(line_addr: int, write: bool = False, now: int = 0) -> int:
        del line_addr, write, now
        return cycles

    return access


@dataclass(frozen=True)
class MemoryAccessOutcome:
    """Latency and classification of one memory operation."""

    latency: int
    level: str  # "l1" | "l15" | "l2_local" | "l2_remote" | "mem"
    hops: int = 0
    turns: int = 0
    home_tile: int | None = None


class CoherentMemorySystem:
    """All caches and directories of one chip."""

    def __init__(
        self,
        config: PitonConfig | None = None,
        ledger: EventLedger | None = None,
        address_map: AddressMap | None = None,
        latency_model: MemoryLatencyModel | None = None,
        offchip: Callable[[int, bool, int], int] | None = None,
        cdr: CdrRegistry | None = None,
    ):
        self.config = config or PitonConfig()
        self.ledger = ledger if ledger is not None else EventLedger()
        self.floorplan = Floorplan(self.config)
        self.address_map = address_map or AddressMap(self.config)
        self.latency = latency_model or default_latency_model(self.config)
        self.offchip = offchip or fixed_offchip_model()
        #: Optional Coherence Domain Restriction registry; None means
        #: one unrestricted domain (the paper's configuration).
        self.cdr = cdr
        #: Per-tile MITTS shapers on the DRAM-bound request path; pass-
        #: through by default (the chip's reset configuration).
        self.mitts: dict[int, MittsShaper] = {}
        #: Optional :class:`repro.check.CheckSuite`; when set, every
        #: miss-path access outcome is validated (latency bounds,
        #: level classification). ``None`` keeps the paths check-free.
        self.checker = None

        n = self.config.tile_count
        self.l1i = [
            SetAssocCache(self.config.l1i, f"l1i[{t}]") for t in range(n)
        ]
        self.l1d = [
            SetAssocCache(self.config.l1d, f"l1d[{t}]") for t in range(n)
        ]
        self.l15 = [
            SetAssocCache(self.config.l15, f"l15[{t}]") for t in range(n)
        ]
        self.l2 = [
            L2Slice(t, self.config.l2_slice, self.ledger) for t in range(n)
        ]
        # MESI state of each L1.5-resident line, keyed by line base addr.
        self._l15_state: list[dict[int, MesiState]] = [{} for _ in range(n)]

    def set_mitts(self, tile: int, shaper: MittsShaper) -> None:
        """Install a MITTS configuration on one tile's memory traffic."""
        if not 0 <= tile < self.config.tile_count:
            raise ValueError(f"tile {tile} out of range")
        self.mitts[tile] = shaper

    # ------------------------------------------------------------------ loads
    def load(self, tile: int, addr: int, now: int = 0) -> MemoryAccessOutcome:
        """A 64-bit load from ``tile``; returns latency and level."""
        if self.cdr is not None:
            self.cdr.check(tile, addr)
        self.ledger.record("l1d.read")
        if self.l1d[tile].access(addr).hit:
            return MemoryAccessOutcome(self.latency.l1_hit, "l1")

        # L1D miss: look in the encapsulating L1.5.
        self.ledger.record("l15.read")
        state = self._l15_state[tile].get(self._l15_line(tile, addr))
        if state is not None and state.can_read:
            self.l15[tile].access(addr)
            self._fill_l1d(tile, addr)
            latency = self.latency.l1_hit + self.latency.l15_lookup
            return MemoryAccessOutcome(latency, "l15")
        self.l15[tile].stats.misses += 1

        # Miss in both: request the line (shared) from its home slice.
        return self._fetch_from_home(tile, addr, exclusive=False, now=now)

    # ----------------------------------------------------------------- stores
    def store(self, tile: int, addr: int, now: int = 0) -> MemoryAccessOutcome:
        """A 64-bit store from ``tile`` (write-through L1D into L1.5)."""
        if self.cdr is not None:
            self.cdr.check(tile, addr)
        self.ledger.record("l1d.write")
        l1d_hit = self.l1d[tile].access(addr, write=True).hit

        line = self._l15_line(tile, addr)
        state = self._l15_state[tile].get(line)
        self.ledger.record("l15.write")
        if state is MesiState.MODIFIED:
            self.l15[tile].access(addr, write=True)
            return MemoryAccessOutcome(self.latency.store_buffer, "l15")
        if state is MesiState.EXCLUSIVE:
            # Silent E->M upgrade, no traffic.
            self.l15[tile].access(addr, write=True)
            self._l15_state[tile][line] = MesiState.MODIFIED
            return MemoryAccessOutcome(self.latency.store_buffer, "l15")
        if state is MesiState.SHARED:
            outcome = self._upgrade_to_owner(tile, addr)
        else:
            self.l15[tile].stats.misses += 1
            outcome = self._fetch_from_home(
                tile, addr, exclusive=True, now=now
            )
        # The store retires through the store buffer after ownership.
        if not l1d_hit:
            # No-write-allocate L1D: the write lands in the L1.5 only.
            pass
        return outcome

    # ----------------------------------------------------------------- fetch
    def fetch(self, tile: int, addr: int, now: int = 0) -> MemoryAccessOutcome:
        """Instruction fetch. The L1I is not coherent with stores in this
        model (self-modifying code is out of scope); misses stream from
        the home L2 without directory tracking."""
        self.ledger.record("l1i.read")
        if self.l1i[tile].access(addr).hit:
            return MemoryAccessOutcome(1, "l1")
        home = self.address_map.home_tile(addr)
        hops = self.floorplan.hops(tile, home)
        turns = 1 if self.floorplan.has_turn(tile, home) else 0
        self._noc_transfer(1, tile, home, REQUEST_FLITS)
        self._noc_transfer(3, home, tile, RESPONSE_FLITS + 2)
        latency = self.latency.l2_hit(hops, turns)
        if not self.l2[home].lookup(addr):
            latency += self._l2_fill_from_memory(home, addr, now)
        self.l1i[tile].fill(addr)
        self.ledger.record("l1i.fill")
        outcome = MemoryAccessOutcome(
            latency, "l2_local" if hops == 0 else "l2_remote", hops, turns, home
        )
        if self.checker is not None:
            self.checker.check_access(outcome)
        return outcome

    # ----------------------------------------------------------- atomic (CAS)
    def atomic(self, tile: int, addr: int, now: int = 0) -> MemoryAccessOutcome:
        """Atomic compare-and-swap: performed at the home L2 (as on the
        T1), invalidating every private copy of the line."""
        if self.cdr is not None:
            self.cdr.check(tile, addr)
        self.ledger.record("l15.write")
        outcome = self._fetch_from_home(
            tile, addr, exclusive=True, allocate_private=False, now=now
        )
        # The atomic result lives at the L2; drop any stale private copy
        # the requester itself held.
        self._invalidate_private(tile, addr)
        home = self.address_map.home_tile(addr)
        self.l2[home].tags.set_dirty(addr, True)  # the swap lands at the L2
        line = self.l2[home].line_addr(addr)
        entry = self.l2[home].directory.get(line)
        if entry is not None:
            entry.drop(tile)
            if entry.uncached:
                del self.l2[home].directory[line]
        return outcome

    # ----------------------------------------------------------------- guts
    def _fetch_from_home(
        self,
        tile: int,
        addr: int,
        exclusive: bool,
        allocate_private: bool = True,
        now: int = 0,
    ) -> MemoryAccessOutcome:
        home = self.address_map.home_tile(addr)
        hops = self.floorplan.hops(tile, home)
        turns = 1 if self.floorplan.has_turn(tile, home) else 0
        self._noc_transfer(1, tile, home, REQUEST_FLITS)

        latency = self.latency.l2_hit(hops, turns)
        level = "l2_local" if hops == 0 else "l2_remote"

        l2_hit = self.l2[home].lookup(addr, write=exclusive)
        if not l2_hit:
            latency += self._l2_fill_from_memory(
                home, addr, now, requester=tile
            )
            level = "mem"

        entry = self.l2[home].entry(addr)
        if exclusive:
            latency += self._invalidate_all(home, addr, except_tile=tile)
            entry.sharers.clear()
            entry.owner = None
            if allocate_private:
                entry.set_owner(tile)
        else:
            if entry.owner is not None and entry.owner != tile:
                latency += self._downgrade_owner(home, addr)
            if entry.owner == tile:
                entry.owner = None  # stale; re-granted below
            if allocate_private:
                if entry.uncached and not exclusive:
                    entry.set_owner(tile)  # grant Exclusive
                else:
                    entry.add_sharer(tile)

        self._noc_transfer(3, home, tile, RESPONSE_FLITS)
        if allocate_private:
            grant = (
                MesiState.MODIFIED
                if exclusive
                else (
                    MesiState.EXCLUSIVE
                    if entry.owner == tile
                    else MesiState.SHARED
                )
            )
            self._fill_l15(tile, addr, grant)
            if not exclusive:
                self._fill_l1d(tile, addr)
        outcome = MemoryAccessOutcome(latency, level, hops, turns, home)
        if self.checker is not None:
            self.checker.check_access(outcome)
        return outcome

    def _upgrade_to_owner(self, tile: int, addr: int) -> MemoryAccessOutcome:
        """S -> M upgrade: invalidate the other sharers via the home."""
        home = self.address_map.home_tile(addr)
        hops = self.floorplan.hops(tile, home)
        turns = 1 if self.floorplan.has_turn(tile, home) else 0
        self._noc_transfer(1, tile, home, REQUEST_FLITS)
        if not self.l2[home].lookup(addr, write=True):
            raise CoherenceError(
                f"upgrade for line not resident at home slice {home}"
            )
        entry = self.l2[home].entry(addr)
        latency = self.latency.l2_hit(hops, turns)
        latency += self._invalidate_all(home, addr, except_tile=tile)
        entry.sharers.clear()
        entry.owner = None
        entry.set_owner(tile)
        self._noc_transfer(3, home, tile, ACK_FLITS)
        self.l15[tile].access(addr, write=True)
        line = self._l15_line(tile, addr)
        self._l15_state[tile][line] = MesiState.MODIFIED
        return MemoryAccessOutcome(
            latency, "l2_local" if hops == 0 else "l2_remote", hops, turns, home
        )

    def _invalidate_all(self, home: int, addr: int, except_tile: int) -> int:
        """Invalidate every private copy except ``except_tile``'s.

        Returns the added latency (the slowest invalidation round trip).
        """
        entry = self.l2[home].entry(addr)
        worst = 0
        targets = set(entry.sharers)
        if entry.owner is not None:
            targets.add(entry.owner)
        targets.discard(except_tile)
        for target in targets:
            self._noc_transfer(2, home, target, INVALIDATE_FLITS)
            dirty = self._invalidate_private(target, addr)
            flits = ACK_FLITS + (2 if dirty else 0)
            self._noc_transfer(3, target, home, flits)
            if dirty:
                self.l2[home].writeback_data(addr)
            round_trip = 2 * (
                self.floorplan.hops(home, target) * self.latency.hop
                + (1 if self.floorplan.has_turn(home, target) else 0)
                * self.latency.turn
            ) + self.latency.l15_lookup
            worst = max(worst, round_trip)
        return worst

    def _downgrade_owner(self, home: int, addr: int) -> int:
        """Owner (E or M) loses exclusivity for a read-shared grant."""
        entry = self.l2[home].entry(addr)
        owner = entry.owner
        assert owner is not None
        self._noc_transfer(2, home, owner, INVALIDATE_FLITS)
        dirty = False
        for subline in self._l2_sublines(addr):
            state = self._l15_state[owner].get(subline)
            if state is None:
                continue
            dirty = dirty or state is MesiState.MODIFIED
            self._l15_state[owner][subline] = MesiState.SHARED
            if self.l15[owner].probe(subline):
                self.l15[owner].set_dirty(subline, False)
        flits = ACK_FLITS + (2 if dirty else 0)
        self._noc_transfer(3, owner, home, flits)
        if dirty:
            self.l2[home].writeback_data(addr)
        entry.downgrade_owner_to_sharer()
        return 2 * (
            self.floorplan.hops(home, owner) * self.latency.hop
            + (1 if self.floorplan.has_turn(home, owner) else 0)
            * self.latency.turn
        ) + self.latency.l15_lookup

    def _l2_fill_from_memory(
        self, home: int, addr: int, now: int = 0, requester: int | None = None
    ) -> int:
        """Fetch the line from DRAM into the home slice, shaped by the
        requesting tile's MITTS configuration when one is installed."""
        line_addr = self.l2[home].line_addr(addr)
        mitts_delay = 0
        shaper = self.mitts.get(requester) if requester is not None else None
        if shaper is not None:
            release = shaper.release_time(now)
            mitts_delay = release - now
            if mitts_delay:
                self.ledger.record("mitts.stall_cycle", mitts_delay)
        # The shaped wait precedes the request; the channel itself is
        # debited at call time (transaction-level approximation that
        # keeps unshaped tenants from queueing behind future-dated
        # shaped requests).
        cycles = mitts_delay + self.offchip(line_addr, False, now)
        # While the miss is outstanding the requesting core's thread
        # scheduler, replay logic, and L1.5 MSHR/CCX retry path stay
        # active (the T1 speculatively reschedules the missing thread).
        self.ledger.record("mem.outstanding_cycle", cycles)
        recall = self.l2[home].fill(addr)
        if recall is not None:
            self._execute_recall(home, recall, now)
        self.ledger.record("mem.line_fetch")
        return cycles

    def _execute_recall(self, home: int, recall: RecallAction, now: int = 0) -> None:
        targets = set(recall.sharers)
        if recall.owner is not None:
            targets.add(recall.owner)
        dirty_any = recall.dirty_writeback
        for target in targets:
            self._noc_transfer(2, home, target, INVALIDATE_FLITS)
            dirty = self._invalidate_private(target, recall.line_addr)
            dirty_any = dirty_any or dirty
            self._noc_transfer(3, target, home, ACK_FLITS + (2 if dirty else 0))
        if dirty_any:
            self.offchip(recall.line_addr, True, now)
            self.ledger.record("mem.line_writeback")

    def _invalidate_private(self, tile: int, addr: int) -> bool:
        """Drop every private copy a tile holds of the *L2 line*
        containing ``addr``; returns True if any sub-line was dirty.

        The directory tracks 64B L2 lines while the L1/L1.5 hold 16B
        lines, so one coherence action must sweep all four sub-lines.
        """
        dirty = False
        for subline in self._l2_sublines(addr):
            state = self._l15_state[tile].pop(subline, None)
            dirty = dirty or state is MesiState.MODIFIED
            self.l1d[tile].invalidate(subline)
            self.l15[tile].invalidate(subline)
        return dirty

    def _l2_sublines(self, addr: int) -> list[int]:
        """Base addresses of the L1.5-granularity pieces of the L2
        line containing ``addr``."""
        l2_bytes = self.config.l2_slice.line_bytes
        l15_bytes = self.config.l15.line_bytes
        base = (addr // l2_bytes) * l2_bytes
        return [base + off for off in range(0, l2_bytes, l15_bytes)]

    def _fill_l15(self, tile: int, addr: int, state: MesiState) -> None:
        self.ledger.record("l15.fill")
        result = self.l15[tile].fill(
            addr, dirty=state is MesiState.MODIFIED
        )
        line = self._l15_line(tile, addr)
        self._l15_state[tile][line] = state
        if result.evicted_line_addr is not None:
            self._evict_l15_line(tile, result.evicted_line_addr)

    def _evict_l15_line(self, tile: int, line_addr: int) -> None:
        """Capacity eviction from the L1.5: notify home, write back dirty
        data, and maintain L1D inclusion. The tile only leaves the
        directory's sharer/owner sets once it holds *no* sub-line of
        the 64B L2 line."""
        state = self._l15_state[tile].pop(line_addr, None)
        self.l1d[tile].invalidate(line_addr)
        home = self.address_map.home_tile(line_addr)
        dirty = state is MesiState.MODIFIED
        flits = ACK_FLITS + (2 if dirty else 0)
        self._noc_transfer(3, tile, home, flits)
        if dirty:
            self.l2[home].writeback_data(line_addr)
        still_held = any(
            subline in self._l15_state[tile]
            for subline in self._l2_sublines(line_addr)
        )
        if not still_held:
            self.l2[home].drop_private(line_addr, tile)

    def _fill_l1d(self, tile: int, addr: int) -> None:
        self.ledger.record("l1d.fill")
        self.l1d[tile].fill(addr)

    def _l15_line(self, tile: int, addr: int) -> int:
        return self.l15[tile].line_addr(addr) * self.config.l15.line_bytes

    def _noc_transfer(self, network: int, src: int, dst: int, flits: int) -> None:
        """Record flit-hop events for a message on physical NoC ``network``."""
        hops = self.floorplan.hops(src, dst)
        self.ledger.record(f"noc{network}.flit", flits)
        if hops:
            self.ledger.record(f"noc{network}.flit_hop", flits * hops)

    # ------------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Protocol safety: single writer, directory/private agreement."""
        for slice_ in self.l2:
            slice_.check_invariants()
        # Collect private states per line.
        holders: dict[int, list[tuple[int, MesiState]]] = {}
        for tile in range(self.config.tile_count):
            for line, state in self._l15_state[tile].items():
                holders.setdefault(line, []).append((tile, state))
        for line, entries in holders.items():
            exclusive = [
                t
                for t, s in entries
                if s in (MesiState.MODIFIED, MesiState.EXCLUSIVE)
            ]
            if len(exclusive) > 1:
                raise CoherenceError(
                    f"line {line:#x} exclusively held by {exclusive}"
                )
            if exclusive and len(entries) > 1:
                raise CoherenceError(
                    f"line {line:#x} has owner {exclusive} and sharers"
                )
            home = self.address_map.home_tile(line)
            dir_entry = self.l2[home].directory.get(
                self.l2[home].line_addr(line)
            )
            if dir_entry is None:
                raise CoherenceError(
                    f"line {line:#x} cached privately but untracked at home"
                )
            for tile, state in entries:
                # State-precise agreement: an exclusive private state
                # must be backed by directory ownership, and a shared
                # one by sharer membership — "tracked somehow" is not
                # enough (a flipped S->M tag must trip this).
                if state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
                    tracked = dir_entry.owner == tile
                else:
                    # Line ownership subsumes sharer rights: a tile
                    # that owns the 64B line may hold sibling 16B
                    # sub-lines in S without a sharer record.
                    tracked = (
                        tile in dir_entry.sharers or dir_entry.owner == tile
                    )
                if not tracked:
                    raise CoherenceError(
                        f"line {line:#x} held {state} by tile {tile} "
                        "but directory records owner "
                        f"{dir_entry.owner} sharers {sorted(dir_entry.sharers)}"
                    )
            if self.cdr is not None:
                allowed = self.cdr.allowed_sharers(
                    line, self.config.tile_count
                )
                holders_of_line = {t for t, _ in entries}
                if not holders_of_line <= allowed:
                    raise CoherenceError(
                        f"line {line:#x} cached outside its coherence "
                        f"domain: {holders_of_line - allowed}"
                    )
