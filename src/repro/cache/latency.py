"""Named-constant latency composition for the memory system.

Table VII's measured latencies decompose exactly onto this model:

* L1 hit: 3 cycles (the T1 load-use latency, Table VI),
* local L2 hit: 34 cycles = L1 detect + L1.5 lookup + NoC inject/eject
  + L2 access (tag + data + directory) + line fills on the way back,
* remote L2 hit: + 1 cycle per hop each way and + 1 cycle per turn each
  way (the NoC routers' documented timing), giving 42 cycles at 4 hops
  (straight-line) and 52 at 8 hops (one turn each way),
* L2 miss: + the off-chip round trip (~390 cycles on average, modelled
  in :mod:`repro.chip.offchip`), totalling ~424 cycles.

Each component is a named field so the Figure 15 breakdown and the
Table VII totals come from the *same* numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import PitonConfig


@dataclass(frozen=True)
class MemoryLatencyModel:
    """Cycle costs of the on-chip memory-system components."""

    l1_hit: int = 3  # Table VI: ldx L1 hit
    l15_lookup: int = 5  # CCX crossing + L1.5 tag/data
    noc_inject_eject: int = 4  # NIU entry/exit, both ends combined
    l2_access: int = 12  # L2 tag + directory + data array
    fill: int = 10  # L2->L1.5 and L1.5->L1 line fills
    hop: int = 1  # per mesh hop (paper: one cycle per hop)
    turn: int = 1  # extra cycle when the route turns
    store_buffer: int = 10  # Table VI: stx drain latency

    def l2_hit(self, hops: int, turns: int) -> int:
        """Round-trip latency of an L1/L1.5 miss that hits in an L2 slice
        ``hops`` away over a route with ``turns`` dimension changes."""
        base = (
            self.l1_hit
            + self.l15_lookup
            + self.noc_inject_eject
            + self.l2_access
            + self.fill
        )
        return base + 2 * (hops * self.hop + turns * self.turn)

    def local_l2_hit(self) -> int:
        return self.l2_hit(0, 0)

    def l2_miss(self, hops: int, turns: int, offchip_cycles: int) -> int:
        """L2 miss: the L2-hit path plus the off-chip round trip."""
        return self.l2_hit(hops, turns) + offchip_cycles


def default_latency_model(config: PitonConfig | None = None) -> MemoryLatencyModel:
    """The shipped model; ``config`` reserved for derived variants."""
    del config
    return MemoryLatencyModel()


# Table VII cross-checks: these identities are also asserted in tests.
assert MemoryLatencyModel().local_l2_hit() == 34
assert MemoryLatencyModel().l2_hit(4, 0) == 42
assert MemoryLatencyModel().l2_hit(8, 1) == 52
