"""Line-to-L2-slice homing.

Piton's L2 home slice for a line is selected by a configurable slice of
address bits — low, middle, or high order — settable through software.
The paper's Table VII experiment exploits exactly this knob (plus
careful address selection) to force loads at a *local* slice versus a
*remote* slice a chosen hop count away. :class:`AddressMap` reproduces
the mechanism, including helpers to construct addresses that home at a
given tile and alias into a given cache set.
"""

from __future__ import annotations

import enum

from repro.arch.params import CacheParams, PitonConfig


class Interleave(enum.Enum):
    """Which address bits select the home slice."""

    LOW = "low"  # bits just above the line offset
    MIDDLE = "middle"
    HIGH = "high"


class AddressMap:
    """Maps physical line addresses to home L2 slices."""

    #: Bit position where MIDDLE interleaving starts (above typical set
    #: index bits) and where HIGH interleaving starts.
    MIDDLE_SHIFT = 16
    HIGH_SHIFT = 28

    def __init__(
        self,
        config: PitonConfig | None = None,
        interleave: Interleave = Interleave.LOW,
    ):
        self.config = config or PitonConfig()
        self.interleave = interleave

    # --- forward mapping -------------------------------------------------------
    def home_tile(self, addr: int) -> int:
        """Home L2 slice (tile id) for the line containing ``addr``."""
        if addr < 0:
            raise ValueError("addresses must be non-negative")
        shift = self._shift()
        return (addr >> shift) % self.config.tile_count

    def _shift(self) -> int:
        line_bits = (self.config.l2_slice.line_bytes - 1).bit_length()
        if self.interleave is Interleave.LOW:
            return line_bits
        if self.interleave is Interleave.MIDDLE:
            return max(self.MIDDLE_SHIFT, line_bits)
        return max(self.HIGH_SHIFT, line_bits)

    # --- inverse construction (the Table VII trick) -----------------------------
    def address_homed_at(
        self,
        tile: int,
        sequence: int = 0,
        set_index: int | None = None,
        cache: CacheParams | None = None,
    ) -> int:
        """Construct the ``sequence``-th distinct line address homed at
        ``tile``, optionally aliasing to ``set_index`` of ``cache``.

        This mirrors the paper's methodology: "consecutive loads access
        different addresses that alias to the same cache set in the L1
        or L2 caches" with the home slice steered by address choice.
        """
        if not 0 <= tile < self.config.tile_count:
            raise ValueError(f"tile {tile} out of range")
        shift = self._shift()
        n = self.config.tile_count
        # Walk candidate line numbers whose homing field selects `tile`,
        # spaced so successive sequence numbers differ in tag bits.
        line_bytes = self.config.l2_slice.line_bytes
        if cache is None or set_index is None:
            slice_field = tile + n * sequence
            addr = slice_field << shift
            return addr
        if not 0 <= set_index < cache.num_sets:
            raise ValueError(f"set index {set_index} out of range")
        # Need: (addr >> shift) % n == tile  AND
        #       (addr // cache.line_bytes) % cache.num_sets == set_index.
        # Search stride chosen to preserve the set index.
        stride = cache.num_sets * cache.line_bytes
        base = set_index * cache.line_bytes
        count = 0
        addr = base
        # The two congruences always admit solutions because the stride
        # cycles the homing field through all residues (n and the
        # stride>>shift are co-prime for the shipped geometries); bound
        # the scan generously and fail loudly otherwise.
        for k in range(16 * n * (sequence + 1) + 16):
            addr = base + k * stride
            if (addr >> shift) % n == tile:
                if count == sequence:
                    assert addr % line_bytes == base % line_bytes
                    return addr
                count += 1
        raise RuntimeError(
            "could not construct address: incompatible interleave/set "
            f"constraints (tile={tile}, set={set_index})"
        )
