"""Coherence Domain Restriction (Fu, Nguyen & Wentzlaff, MICRO-48).

Piton's L2 implements CDR: shared memory is restricted to software-
defined *coherence domains* — subsets of cores (possibly spanning
chips) allowed to share a region. The paper lists CDR among the
mechanisms its L2 carries (Section II); this module implements the
mechanism so multi-tenant experiments can use it:

* :class:`CoherenceDomain` — a named set of member tiles;
* :class:`CdrRegistry` — maps address regions to domains and answers
  the enforcement question *may tile T touch address A?*;
* :class:`CdrViolation` — raised when a tile reaches outside its
  domains, the hardware trap CDR specifies.

Enforcement hooks into :class:`~repro.cache.system.CoherentMemorySystem`
via the optional ``cdr`` argument; when absent, the chip behaves as an
unrestricted single domain (the paper's configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


class CdrViolation(RuntimeError):
    """A memory operation crossed its coherence domain."""


@dataclass
class CoherenceDomain:
    """A software-defined sharing domain."""

    domain_id: int
    name: str
    members: set[int] = field(default_factory=set)

    def admit(self, tile: int) -> None:
        self.members.add(tile)

    def evict_member(self, tile: int) -> None:
        self.members.discard(tile)

    def __contains__(self, tile: int) -> bool:
        return tile in self.members


@dataclass(frozen=True)
class Region:
    """A half-open address range [base, base + size)."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError("region must have base >= 0 and size > 0")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class CdrRegistry:
    """Domain and region bookkeeping plus the enforcement check."""

    def __init__(self):
        self._domains: dict[int, CoherenceDomain] = {}
        self._regions: list[tuple[Region, int]] = []
        self._next_id = 0

    # -------------------------------------------------------------- domains
    def create_domain(
        self, name: str, members: Iterable[int] = ()
    ) -> CoherenceDomain:
        domain = CoherenceDomain(self._next_id, name, set(members))
        self._domains[domain.domain_id] = domain
        self._next_id += 1
        return domain

    def domain(self, domain_id: int) -> CoherenceDomain:
        try:
            return self._domains[domain_id]
        except KeyError:
            raise KeyError(f"no domain {domain_id}") from None

    @property
    def domains(self) -> list[CoherenceDomain]:
        return list(self._domains.values())

    # -------------------------------------------------------------- regions
    def assign_region(
        self, domain: CoherenceDomain, base: int, size: int
    ) -> Region:
        """Bind [base, base+size) to ``domain``. Regions must not
        overlap (each line has exactly one home domain)."""
        region = Region(base, size)
        for existing, _ in self._regions:
            if region.overlaps(existing):
                raise ValueError(
                    f"region {region} overlaps existing {existing}"
                )
        if domain.domain_id not in self._domains:
            raise KeyError("unknown domain")
        self._regions.append((region, domain.domain_id))
        return region

    def domain_of_address(self, addr: int) -> CoherenceDomain | None:
        for region, domain_id in self._regions:
            if region.contains(addr):
                return self._domains[domain_id]
        return None

    # ---------------------------------------------------------- enforcement
    def check(self, tile: int, addr: int) -> None:
        """Raise :class:`CdrViolation` if ``tile`` may not touch
        ``addr``. Unassigned addresses are globally shared (the
        default domain semantics)."""
        domain = self.domain_of_address(addr)
        if domain is not None and tile not in domain:
            raise CdrViolation(
                f"tile {tile} touched {addr:#x} owned by domain "
                f"{domain.name!r} (members {sorted(domain.members)})"
            )

    def allowed_sharers(self, addr: int, all_tiles: int) -> set[int]:
        """The tiles that may ever appear in the directory for a line."""
        domain = self.domain_of_address(addr)
        if domain is None:
            return set(range(all_tiles))
        return set(domain.members)
