"""Set-associative tag store with true-LRU replacement.

This is the building block for every cache level. It tracks tags and a
per-line dirty bit; data values are not stored (the functional core
keeps architectural memory separately), which matches how the paper's
energy events depend only on *which structure was accessed*, not on the
bytes inside it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import CacheParams
from repro.cache.stats import CacheStats


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    evicted_line_addr: int | None = None
    evicted_dirty: bool = False


class SetAssocCache:
    """A set-associative cache tag store.

    Addresses are byte addresses; lines are identified internally by
    ``addr // line_bytes``. Each set is an ordered list of
    (line_addr, dirty) pairs, most recently used first.
    """

    def __init__(self, params: CacheParams, name: str = "cache"):
        self.params = params
        self.name = name
        self.stats = CacheStats()
        self._sets: list[list[tuple[int, bool]]] = [
            [] for _ in range(params.num_sets)
        ]

    # --- address helpers ------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr // self.params.line_bytes

    def set_index(self, addr: int) -> int:
        return self.line_addr(addr) % self.params.num_sets

    # --- operations -----------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or statistics."""
        line = self.line_addr(addr)
        return any(tag == line for tag, _ in self._sets[self.set_index(addr)])

    def access(self, addr: int, write: bool = False) -> AccessResult:
        """Look up ``addr``; on a hit, update LRU (and dirty if ``write``).

        Misses do *not* allocate — callers decide whether and when to
        :meth:`fill`, because protocol actions (fetching from the next
        level) happen in between.
        """
        line = self.line_addr(addr)
        entries = self._sets[self.set_index(addr)]
        for i, (tag, dirty) in enumerate(entries):
            if tag == line:
                entries.pop(i)
                entries.insert(0, (line, dirty or write))
                self.stats.hits += 1
                return AccessResult(hit=True)
        self.stats.misses += 1
        return AccessResult(hit=False)

    def fill(self, addr: int, dirty: bool = False) -> AccessResult:
        """Install the line containing ``addr``, evicting LRU if needed.

        Returns the evicted line's base byte address (and dirtiness) so
        the caller can issue a writeback / directory notification.
        """
        line = self.line_addr(addr)
        entries = self._sets[self.set_index(addr)]
        for i, (tag, was_dirty) in enumerate(entries):
            if tag == line:  # already present: refresh
                entries.pop(i)
                entries.insert(0, (line, was_dirty or dirty))
                return AccessResult(hit=True)
        evicted_addr, evicted_dirty = None, False
        if len(entries) >= self.params.associativity:
            tag, evicted_dirty = entries.pop()
            evicted_addr = tag * self.params.line_bytes
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.writebacks += 1
        entries.insert(0, (line, dirty))
        return AccessResult(
            hit=False,
            evicted_line_addr=evicted_addr,
            evicted_dirty=evicted_dirty,
        )

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; returns True if present.

        The caller is responsible for writing back dirty data first
        (use :meth:`is_dirty`).
        """
        line = self.line_addr(addr)
        entries = self._sets[self.set_index(addr)]
        for i, (tag, _) in enumerate(entries):
            if tag == line:
                entries.pop(i)
                self.stats.invalidations += 1
                return True
        return False

    def is_dirty(self, addr: int) -> bool:
        line = self.line_addr(addr)
        return any(
            tag == line and dirty
            for tag, dirty in self._sets[self.set_index(addr)]
        )

    def set_dirty(self, addr: int, dirty: bool = True) -> None:
        line = self.line_addr(addr)
        entries = self._sets[self.set_index(addr)]
        for i, (tag, _) in enumerate(entries):
            if tag == line:
                entries[i] = (tag, dirty)
                return
        raise KeyError(f"{self.name}: line for addr {addr:#x} not resident")

    def resident_lines(self) -> list[int]:
        """Base byte addresses of all resident lines (for invariants)."""
        return [
            tag * self.params.line_bytes
            for entries in self._sets
            for tag, _ in entries
        ]

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.params.num_sets)]
