"""Cache hierarchy and directory-based MESI coherence.

Implements Piton's memory system faithfully at the transaction level:

* per-tile private hierarchy — 16KB L1I, 8KB write-through L1D, and the
  8KB write-back L1.5 that encapsulates it (``hierarchy``),
* a distributed, shared L2 (64KB slice per tile) with an integrated
  directory implementing MESI over three virtual networks (``l2``,
  ``system``),
* configurable line-to-slice homing via low/middle/high address bits
  (``addressing``), the knob the paper's Table VII experiment turns to
  steer accesses at local versus remote slices,
* a named-constant latency composition (``latency``) whose totals
  reproduce Table VII: 3-cycle L1 hits, 34-cycle local L2 hits,
  2-cycles-per-hop remote penalties, and ~424-cycle L2 misses.

Timing is analytic (hop counts priced via the floorplan) while *state*
is exact: real tag arrays, real sharer sets, real writebacks. The
flit-level NoC simulator in :mod:`repro.noc` is used for the NoC energy
study and cross-checked against these analytic latencies in tests.
"""

from repro.cache.addressing import AddressMap, Interleave
from repro.cache.coherence import CoherenceError, DirectoryEntry, MesiState
from repro.cache.latency import MemoryLatencyModel
from repro.cache.setassoc import AccessResult, SetAssocCache
from repro.cache.stats import CacheStats
from repro.cache.system import CoherentMemorySystem, MemoryAccessOutcome

__all__ = [
    "AddressMap",
    "Interleave",
    "CoherenceError",
    "DirectoryEntry",
    "MesiState",
    "MemoryLatencyModel",
    "AccessResult",
    "SetAssocCache",
    "CacheStats",
    "CoherentMemorySystem",
    "MemoryAccessOutcome",
]
