"""Distributed shared L2 slice with integrated directory.

Each tile owns one 64KB, 4-way slice. The slice is inclusive of the
private caches above it for the lines it homes: evicting an L2 line
recalls (invalidates) every private copy, which the paper's coherence
protocol requires and our invariants tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.params import CacheParams
from repro.cache.coherence import CoherenceError, DirectoryEntry
from repro.cache.setassoc import SetAssocCache
from repro.util.events import EventLedger


@dataclass
class RecallAction:
    """Private copies the slice needs invalidated to make room."""

    line_addr: int
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None
    dirty_writeback: bool = False


class L2Slice:
    """Tag store + directory for the lines this tile homes."""

    def __init__(
        self,
        tile_id: int,
        params: CacheParams,
        ledger: EventLedger,
    ):
        self.tile_id = tile_id
        self.tags = SetAssocCache(params, name=f"l2[{tile_id}]")
        self.directory: dict[int, DirectoryEntry] = {}
        self.ledger = ledger

    def line_addr(self, addr: int) -> int:
        return self.tags.line_addr(addr) * self.tags.params.line_bytes

    def lookup(self, addr: int, write: bool = False) -> bool:
        """Tag + directory-cache lookup; returns residency."""
        self.ledger.record("l2.read" if not write else "l2.write")
        self.ledger.record("dir.lookup")
        return self.tags.access(addr, write=write).hit

    def entry(self, addr: int) -> DirectoryEntry:
        """Directory entry for a *resident* line (created on demand)."""
        line = self.line_addr(addr)
        if not self.tags.probe(addr):
            raise CoherenceError(
                f"directory access to non-resident line {line:#x} "
                f"at slice {self.tile_id}"
            )
        return self.directory.setdefault(line, DirectoryEntry())

    def fill(self, addr: int, dirty: bool = False) -> RecallAction | None:
        """Install a line fetched from memory; returns any recall needed
        for the line evicted to make room."""
        self.ledger.record("l2.fill")
        result = self.tags.fill(addr, dirty=dirty)
        if result.evicted_line_addr is None:
            return None
        evicted = result.evicted_line_addr
        entry = self.directory.pop(evicted, DirectoryEntry())
        action = RecallAction(
            line_addr=evicted,
            sharers=set(entry.sharers),
            owner=entry.owner,
            dirty_writeback=result.evicted_dirty,
        )
        if result.evicted_dirty:
            self.ledger.record("l2.writeback")
        return action

    def drop_private(self, addr: int, tile: int) -> None:
        """A private cache evicted its copy; update the directory."""
        line = self.line_addr(addr)
        entry = self.directory.get(line)
        if entry is not None:
            entry.drop(tile)
            if entry.uncached:
                del self.directory[line]

    def writeback_data(self, addr: int) -> None:
        """Dirty data arrived from an owner; mark the L2 line dirty."""
        self.ledger.record("l2.write")
        if not self.tags.probe(addr):
            raise CoherenceError(
                f"writeback to non-resident line {addr:#x} "
                f"at slice {self.tile_id}"
            )
        self.tags.set_dirty(addr, True)

    def check_invariants(self) -> None:
        """Directory entries only for resident lines; MESI entry shape."""
        resident = set(self.tags.resident_lines())
        for line, entry in self.directory.items():
            if line not in resident:
                raise CoherenceError(
                    f"directory entry for non-resident line {line:#x}"
                )
            entry.check()
