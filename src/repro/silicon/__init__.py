"""Silicon-instance modelling: process variation personas and yield.

A *persona* captures how one physical die differs from typical silicon
— correlated speed and leakage scalars (fast die leak more), plus a
dynamic-capacitance scalar. The three chips the paper measures (and the
unnamed chip of the thermal study) ship as named personas calibrated to
their published static/idle powers and Fmax curves. The yield model
reproduces Table IV's testing statistics from per-die defect draws.
"""

from repro.silicon.variation import (
    CHIP1,
    CHIP2,
    CHIP3,
    THERMAL_CHIP,
    TYPICAL,
    ChipPersona,
    sample_persona,
)
from repro.silicon.binning import SpeedBin, SpeedBinner
from repro.silicon.sram_repair import RepairFlow, SramArray, allocate_spares
from repro.silicon.yield_model import (
    ChipStatus,
    YieldModel,
    YieldParameters,
    YieldSummary,
)

__all__ = [
    "CHIP1",
    "CHIP2",
    "CHIP3",
    "THERMAL_CHIP",
    "TYPICAL",
    "ChipPersona",
    "sample_persona",
    "ChipStatus",
    "YieldModel",
    "YieldParameters",
    "YieldSummary",
    "SpeedBin",
    "SpeedBinner",
    "RepairFlow",
    "SramArray",
    "allocate_spares",
]
