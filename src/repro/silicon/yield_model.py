"""Table IV yield simulation.

The paper tested 32 of 45 packaged die (from 118 received) and sorted
them into five buckets. We model the physical failure mechanisms the
paper hypothesizes:

* Poisson-distributed SRAM cell defects (hard): a die with at least one
  unrepaired hard defect "consistently fails deterministically";
* marginal/unstable SRAM cells: nondeterministic failures;
* manufacturing shorts on VCS or VDD: abnormal current draw.

Rates are calibrated so the *expected* bucket shares match Table IV
(59.4% good, 21.9% deterministic-unstable, 12.5% VCS short, 3.1% VDD
short, 3.1% nondeterministic) while individual draws show realistic
small-sample noise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.silicon.sram_repair import RepairFlow
from repro.util.rng import RngFactory


class ChipStatus(enum.Enum):
    GOOD = "good"
    UNSTABLE_DETERMINISTIC = "unstable_deterministic"  # bad SRAM cells
    UNSTABLE_NONDETERMINISTIC = "unstable_nondeterministic"
    BAD_VCS_SHORT = "bad_vcs_short"
    BAD_VDD_SHORT = "bad_vdd_short"

    @property
    def repairable(self) -> bool:
        """Possibly fixable with Piton's SRAM row/column remap."""
        return self in (
            ChipStatus.UNSTABLE_DETERMINISTIC,
            ChipStatus.UNSTABLE_NONDETERMINISTIC,
        )


#: Paper Table IV bucket shares (of 32 tested chips).
PAPER_SHARES = {
    ChipStatus.GOOD: 19 / 32,
    ChipStatus.UNSTABLE_DETERMINISTIC: 7 / 32,
    ChipStatus.BAD_VCS_SHORT: 4 / 32,
    ChipStatus.BAD_VDD_SHORT: 1 / 32,
    ChipStatus.UNSTABLE_NONDETERMINISTIC: 1 / 32,
}


@dataclass(frozen=True)
class YieldParameters:
    """Physical defect rates, calibrated to reproduce Table IV shares.

    With shorts checked first (a shorted die cannot be tested further),
    the bucket probabilities compose as

        P(vcs short) = p_vcs
        P(vdd short) = (1 - p_vcs) * p_vdd
        P(det. unstable | no short) = 1 - exp(-lambda_hard)
        P(nondet. unstable | no short, no hard) = 1 - exp(-lambda_soft)
    """

    p_vcs_short: float = 4 / 32
    p_vdd_short: float = (1 / 32) / (1 - 4 / 32)
    #: Mean unrepaired hard SRAM defects per die:
    #: -ln(1 - (7/32)/0.84375).
    lambda_hard: float = 0.3001
    #: Mean marginal-cell defects per die: -ln(1 - 0.05).
    lambda_soft: float = 0.0513

    def expected_shares(self) -> dict[ChipStatus, float]:
        p_no_short = (1 - self.p_vcs_short) * (1 - self.p_vdd_short)
        p_hard = 1 - float(np.exp(-self.lambda_hard))
        p_soft = 1 - float(np.exp(-self.lambda_soft))
        return {
            ChipStatus.BAD_VCS_SHORT: self.p_vcs_short,
            ChipStatus.BAD_VDD_SHORT: (1 - self.p_vcs_short)
            * self.p_vdd_short,
            ChipStatus.UNSTABLE_DETERMINISTIC: p_no_short * p_hard,
            ChipStatus.UNSTABLE_NONDETERMINISTIC: p_no_short
            * (1 - p_hard)
            * p_soft,
            ChipStatus.GOOD: p_no_short * (1 - p_hard) * (1 - p_soft),
        }


@dataclass
class DieReport:
    die_id: int
    status: ChipStatus
    hard_defects: int = 0
    soft_defects: int = 0


@dataclass
class YieldSummary:
    reports: list[DieReport] = field(default_factory=list)

    def count(self, status: ChipStatus) -> int:
        return sum(1 for r in self.reports if r.status is status)

    def percentage(self, status: ChipStatus) -> float:
        if not self.reports:
            return 0.0
        return 100.0 * self.count(status) / len(self.reports)

    @property
    def tested(self) -> int:
        return len(self.reports)


class YieldModel:
    """Simulates packaging + testing a sample of die."""

    def __init__(
        self,
        params: YieldParameters | None = None,
        rngs: RngFactory | None = None,
    ):
        self.params = params or YieldParameters()
        self.rngs = rngs or RngFactory(0)

    def test_die(self, die_id: int) -> DieReport:
        rng = self.rngs.fresh(f"die:{die_id}")
        p = self.params
        if rng.random() < p.p_vcs_short:
            return DieReport(die_id, ChipStatus.BAD_VCS_SHORT)
        if rng.random() < p.p_vdd_short:
            return DieReport(die_id, ChipStatus.BAD_VDD_SHORT)
        hard = int(rng.poisson(p.lambda_hard))
        soft = int(rng.poisson(p.lambda_soft))
        if hard > 0:
            return DieReport(
                die_id, ChipStatus.UNSTABLE_DETERMINISTIC, hard, soft
            )
        if soft > 0:
            return DieReport(
                die_id, ChipStatus.UNSTABLE_NONDETERMINISTIC, hard, soft
            )
        return DieReport(die_id, ChipStatus.GOOD)

    def test_lot(self, count: int = 32) -> YieldSummary:
        """Test ``count`` randomly selected packaged die."""
        summary = YieldSummary()
        for die_id in range(count):
            summary.reports.append(self.test_die(die_id))
        return summary

    def repair_lot(self, summary: YieldSummary) -> dict[int, bool]:
        """Run the SRAM repair flow over a tested lot's repairable die.

        The paper left this flow "in development"; here it is: each
        unstable die's hard defects are scattered over its SRAM macros
        and the exact spare-allocation solver decides whether remapping
        saves it. Returns {die_id: saved} for the repairable die.
        """
        flow = RepairFlow()
        results: dict[int, bool] = {}
        for report in summary.reports:
            if not report.status.repairable:
                continue
            rng = self.rngs.fresh(f"repair:{report.die_id}")
            defects = max(1, report.hard_defects + report.soft_defects)
            outcome = flow.repair_random_die(rng, defects)
            results[report.die_id] = outcome.repaired
        return results
