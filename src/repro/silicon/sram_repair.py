"""SRAM row/column repair — the flow the paper left "in development".

Piton's SRAMs carry spare rows and columns that can be remapped over
defective cells; the paper notes 8 of its 32 tested die fail only from
SRAM defects and are "possibly fixable with SRAM repair", but the
repair flow wasn't finished. This module finishes it for the
reproduction:

* :class:`SramArray` — a macro with a defect map and spare resources;
* :func:`allocate_spares` — the classic spare-allocation problem: every
  defect must be covered by a replaced row or a replaced column, using
  at most R spare rows and C spare columns. Exhaustive over defective
  rows (defect counts per die are small), so the answer is exact;
* :class:`RepairFlow` — applies allocation across a die's defective
  macros and reports whether the die is saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class Defect:
    """One faulty cell."""

    row: int
    col: int


@dataclass
class SramArray:
    """One SRAM macro with spares."""

    name: str
    rows: int
    cols: int
    spare_rows: int = 2
    spare_cols: int = 2
    defects: list[Defect] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.spare_rows < 0 or self.spare_cols < 0:
            raise ValueError("spare counts must be non-negative")
        for defect in self.defects:
            self._check(defect)

    def _check(self, defect: Defect) -> None:
        if not (0 <= defect.row < self.rows and 0 <= defect.col < self.cols):
            raise ValueError(f"{defect} outside {self.rows}x{self.cols}")

    def add_defect(self, row: int, col: int) -> None:
        defect = Defect(row, col)
        self._check(defect)
        if defect not in self.defects:
            self.defects.append(defect)

    @classmethod
    def with_random_defects(
        cls,
        name: str,
        rng: np.random.Generator,
        count: int,
        rows: int = 256,
        cols: int = 128,
        **kwargs,
    ) -> "SramArray":
        array = cls(name=name, rows=rows, cols=cols, **kwargs)
        for _ in range(count):
            array.add_defect(
                int(rng.integers(rows)), int(rng.integers(cols))
            )
        return array


@dataclass(frozen=True)
class RepairPlan:
    """Which rows/columns to remap onto spares."""

    replaced_rows: frozenset[int]
    replaced_cols: frozenset[int]

    def covers(self, defects: Iterable[Defect]) -> bool:
        return all(
            d.row in self.replaced_rows or d.col in self.replaced_cols
            for d in defects
        )


def allocate_spares(array: SramArray) -> RepairPlan | None:
    """Exact spare allocation, or None when unrepairable.

    Strategy: any row holding more defects than the spare-column budget
    *must* be row-replaced; beyond that, enumerate row-subset choices
    among the remaining defective rows (small sets in practice) and
    column-repair the leftovers.
    """
    defects = list(array.defects)
    if not defects:
        return RepairPlan(frozenset(), frozenset())

    by_row: dict[int, list[Defect]] = {}
    for defect in defects:
        by_row.setdefault(defect.row, []).append(defect)

    forced_rows = {
        row
        for row, row_defects in by_row.items()
        if len({d.col for d in row_defects}) > array.spare_cols
    }
    if len(forced_rows) > array.spare_rows:
        return None

    optional_rows = sorted(set(by_row) - forced_rows)
    budget = array.spare_rows - len(forced_rows)

    best: RepairPlan | None = None
    for extra_count in range(min(budget, len(optional_rows)) + 1):
        for extra in combinations(optional_rows, extra_count):
            replaced_rows = forced_rows | set(extra)
            remaining_cols = {
                d.col for d in defects if d.row not in replaced_rows
            }
            if len(remaining_cols) <= array.spare_cols:
                plan = RepairPlan(
                    frozenset(replaced_rows), frozenset(remaining_cols)
                )
                assert plan.covers(defects)
                if best is None or (
                    len(plan.replaced_rows) + len(plan.replaced_cols)
                    < len(best.replaced_rows) + len(best.replaced_cols)
                ):
                    best = plan
        if best is not None:
            return best  # minimal extra-row count found
    return best


@dataclass
class RepairOutcome:
    """The repair flow's verdict for one die."""

    repaired: bool
    arrays_repaired: int = 0
    arrays_unrepairable: int = 0
    plans: dict[str, RepairPlan] = field(default_factory=dict)


class RepairFlow:
    """Applies spare allocation to all of a die's defective macros."""

    def repair_die(self, arrays: list[SramArray]) -> RepairOutcome:
        outcome = RepairOutcome(repaired=True)
        for array in arrays:
            if not array.defects:
                continue
            plan = allocate_spares(array)
            if plan is None:
                outcome.repaired = False
                outcome.arrays_unrepairable += 1
            else:
                outcome.arrays_repaired += 1
                outcome.plans[array.name] = plan
        return outcome

    def repair_random_die(
        self,
        rng: np.random.Generator,
        hard_defects: int,
        macros: int = 8,
    ) -> RepairOutcome:
        """Scatter a die's hard defects over its SRAM macros (the
        dominant arrays: L2 data/tag, L1s, register files) and run the
        flow — the hook :mod:`repro.silicon.yield_model` uses."""
        arrays = [
            SramArray(f"macro{i}", rows=256, cols=128)
            for i in range(macros)
        ]
        for _ in range(hard_defects):
            target = arrays[int(rng.integers(macros))]
            target.add_defect(
                int(rng.integers(target.rows)),
                int(rng.integers(target.cols)),
            )
        return self.repair_die(arrays)
