"""Speed binning: sorting good die by maximum stable frequency.

The paper tests 32 die and characterizes three; a production flow would
*bin* the good ones. Built on the same machinery (persona sampling →
VF curve with thermal limiting), this module sorts a simulated lot into
frequency bins at a chosen shipping voltage — quantifying how the
process spread of Figure 9 would translate into sellable SKUs, and
which fast-but-leaky die (the Chip-#1 persona's corner) fail their bin
on thermals rather than timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.silicon.variation import ChipPersona, sample_persona
from repro.util.rng import RngFactory


@dataclass(frozen=True)
class SpeedBin:
    """One shippable SKU."""

    name: str
    min_mhz: float


#: Default SKU ladder around the 500.05 MHz shipping point.
DEFAULT_BINS = (
    SpeedBin("bin-550", 550.0),
    SpeedBin("bin-500", 500.0),
    SpeedBin("bin-450", 450.0),
    SpeedBin("bin-400", 400.0),
)


@dataclass
class BinnedDie:
    die_id: int
    persona: ChipPersona
    fmax_mhz: float
    thermally_limited: bool
    bin_name: str | None  # None = below the slowest bin


@dataclass
class BinningReport:
    dies: list[BinnedDie] = field(default_factory=list)

    def count(self, bin_name: str | None) -> int:
        return sum(1 for d in self.dies if d.bin_name == bin_name)

    def share(self, bin_name: str | None) -> float:
        if not self.dies:
            return 0.0
        return self.count(bin_name) / len(self.dies)

    def thermally_limited_count(self) -> int:
        return sum(1 for d in self.dies if d.thermally_limited)


class SpeedBinner:
    """Bins sampled good die at a shipping voltage."""

    def __init__(
        self,
        bins: tuple[SpeedBin, ...] = DEFAULT_BINS,
        ship_vdd: float = 1.00,
        rngs: RngFactory | None = None,
    ):
        ordered = sorted(bins, key=lambda b: -b.min_mhz)
        if [b.min_mhz for b in ordered] != [b.min_mhz for b in bins]:
            raise ValueError("bins must be ordered fastest first")
        if len({b.min_mhz for b in bins}) != len(bins):
            raise ValueError("bin thresholds must be distinct")
        self.bins = bins
        self.ship_vdd = ship_vdd
        self.rngs = rngs or RngFactory(0)

    def bin_die(self, die_id: int) -> BinnedDie:
        # Imported lazily: repro.power depends on repro.silicon for the
        # persona types, so the VF curve cannot be a module-level
        # import here without a cycle.
        from repro.power.vf_curve import VfCurve

        persona = sample_persona(
            self.rngs.fresh(f"bin-die:{die_id}"), die_id
        )
        point = VfCurve(persona).boot_frequency(self.ship_vdd)
        fmax_mhz = point.fmax_hz / 1e6
        bin_name = next(
            (b.name for b in self.bins if fmax_mhz >= b.min_mhz), None
        )
        return BinnedDie(
            die_id=die_id,
            persona=persona,
            fmax_mhz=fmax_mhz,
            thermally_limited=point.thermally_limited,
            bin_name=bin_name,
        )

    def bin_lot(self, count: int) -> BinningReport:
        if count <= 0:
            raise ValueError("lot size must be positive")
        report = BinningReport()
        for die_id in range(count):
            report.dies.append(self.bin_die(die_id))
        return report
