"""Per-die process-variation personas.

Process corners move threshold voltage and effective channel length
together: a *fast* die (low Vth) switches quicker but leaks
exponentially more — exactly the behaviour Figure 9 exposes, where
Chip #1 is fastest below 1.0V yet hits the cooling wall first and
falls off above 1.15V. Personas are calibrated to the published
per-chip anchors:

* Chip #2 (the paper's workhorse): 389.3 mW static, 2015.3 mW idle at
  the Table III defaults — defined as the 1.0/1.0/1.0 reference.
* Chip #3 (microbenchmark studies): 364.8 mW static, 1906.2 mW idle.
* Chip #1: fastest at low voltage, leakiest, thermally limited first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChipPersona:
    """One die's deviation from typical silicon.

    ``speed``   – critical-path speed multiplier (>1 is faster),
    ``leak``    – static (leakage) power multiplier,
    ``dyn``     – switched-capacitance multiplier (idle + active dynamic).
    """

    name: str
    speed: float = 1.0
    leak: float = 1.0
    dyn: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("speed", "leak", "dyn"):
            value = getattr(self, field_name)
            if not 0.5 <= value <= 2.0:
                raise ValueError(
                    f"{field_name}={value} outside plausible range [0.5, 2]"
                )


TYPICAL = ChipPersona("typical")

# Calibrated to Table V: 389.3 mW static / 2015.3 mW idle; Fig 9 anchor
# 514.33 MHz at 1.0V.
CHIP2 = ChipPersona("chip2", speed=1.0, leak=1.0, dyn=1.0)

# Static 364.8 mW (0.937x), idle 1906.2 mW => idle dynamic 1541.4 mW
# versus chip2's 1626.0 mW (0.948x); slightly slow.
CHIP3 = ChipPersona("chip3", speed=0.985, leak=0.9426, dyn=0.9575)

# Fastest at low VDD (highest Fig 9 curve below 1.0V), leakiest, and
# the one that droops at 1.2V when the package cannot shed the heat.
CHIP1 = ChipPersona("chip1", speed=1.05, leak=1.30, dyn=1.06)

# The unnamed die used for the Section IV-J thermal study.
THERMAL_CHIP = ChipPersona("thermal_chip", speed=0.99, leak=1.05, dyn=0.99)

#: The addressable personas, by the names the CLI/service/SweepSpec
#: accept (``--persona``, a spec's ``personas`` list, a ``POST
#: /v1/run`` body). One table, so every surface agrees on what a
#: persona name means.
PERSONAS: dict[str, ChipPersona] = {
    "chip1": CHIP1,
    "chip2": CHIP2,
    "chip3": CHIP3,
    "thermal": THERMAL_CHIP,
}

#: Correlation between speed and log-leakage across die: faster silicon
#: (lower Vth) leaks more.
SPEED_LEAK_CORRELATION = 0.8
SPEED_SIGMA = 0.035
LEAK_LOG_SIGMA = 0.22
DYN_SIGMA = 0.04


def sample_persona(rng: np.random.Generator, index: int = 0) -> ChipPersona:
    """Draw a random die from the process distribution.

    Speed is normal around 1.0; log-leakage is normal and correlated
    with speed; dynamic capacitance varies independently and mildly.
    """
    z_speed = rng.normal()
    z_leak = SPEED_LEAK_CORRELATION * z_speed + (
        (1 - SPEED_LEAK_CORRELATION**2) ** 0.5
    ) * rng.normal()
    speed = float(np.clip(1.0 + SPEED_SIGMA * z_speed, 0.85, 1.18))
    leak = float(np.clip(np.exp(LEAK_LOG_SIGMA * z_leak), 0.6, 1.9))
    dyn = float(np.clip(1.0 + DYN_SIGMA * rng.normal(), 0.85, 1.15))
    return ChipPersona(f"die{index}", speed=speed, leak=leak, dyn=dyn)
