"""The Section IV-J two-phase scheduling test application.

A test app with a compute-heavy phase (arithmetic loop) and an idle
phase (``nop`` loop), run on all fifty threads under two schedules:

* **synchronized** — every thread is in the same phase at once, so
  chip power square-waves between a high and a low level;
* **interleaved** — 26 threads run one phase while 24 run the other,
  halving the swing and (through the thermal low-pass) lowering the
  average temperature.

Because the phases last seconds (thermal time scales), the experiment
drives the power-temperature feedback simulator with per-phase power
levels derived from short cycle-accurate simulations of the two loops,
rather than simulating minutes of cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.base import TileProgram
from repro.workloads.microbench import PATTERN_A, PATTERN_B


def compute_phase_program() -> Program:
    """The arithmetic loop of the compute phase."""
    return assemble(
        """
loop:
    xor %r8, %r9, %r16
    add %r16, %r9, %r17
    xor %r17, %r8, %r18
    add %r18, %r9, %r19
    xor %r19, %r8, %r20
    add %r20, %r9, %r21
    bne %r31, loop
"""
    )


def idle_phase_program() -> Program:
    """The nop loop of the idle phase."""
    return assemble(
        """
loop:
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    bne %r31, loop
"""
    )


def phase_tile(kind: str, threads: int = 2) -> TileProgram:
    """A tile running ``threads`` copies of one phase loop."""
    if kind == "compute":
        program = compute_phase_program()
    elif kind == "idle":
        program = idle_phase_program()
    else:
        raise ValueError(f"unknown phase kind {kind!r}")
    return TileProgram(
        programs=[program] * threads,
        init_regs={8: PATTERN_A, 9: PATTERN_B, 31: 1},
    )


@dataclass(frozen=True)
class PhaseSchedule:
    """How the two-phase app is scheduled across the 50 threads."""

    name: str
    period_s: float  # one full compute+idle cycle
    #: (compute_threads, idle_threads) during the first half-period;
    #: they swap for the second half.
    first_half: tuple[int, int]
    second_half: tuple[int, int]

    def compute_threads_at(self, time_s: float) -> int:
        phase = (time_s % self.period_s) / self.period_s
        half = self.first_half if phase < 0.5 else self.second_half
        return half[0]


def synchronized_schedule(period_s: float = 40.0) -> PhaseSchedule:
    """All 50 threads alternate between phases together."""
    return PhaseSchedule(
        name="synchronized",
        period_s=period_s,
        first_half=(50, 0),
        second_half=(0, 50),
    )


def interleaved_schedule(period_s: float = 40.0) -> PhaseSchedule:
    """26 threads in one phase while 24 run the opposite one."""
    return PhaseSchedule(
        name="interleaved",
        period_s=period_s,
        first_half=(26, 24),
        second_half=(24, 26),
    )
