"""Workloads: everything the paper runs on the chip.

* ``epi_tests`` — the Section IV-E unrolled per-instruction loops with
  minimum/random/maximum operands, including the nine-``nop`` padded
  store test and the store-buffer-full variant.
* ``memtests`` — the Section IV-F set-aliasing load loops steering hits
  at the L1, a local L2 slice, remote slices at chosen hop counts, and
  off-chip DRAM.
* ``noc_tests`` — the Section IV-G chipset-injected dummy-packet
  streams with the four bit-switching patterns.
* ``microbench`` — Int, HP, and Hist (Section IV-H), as real assembly
  including Hist's CAS-based lock.
* ``phases`` — the two-phase (compute/idle) thermal-scheduling test of
  Section IV-J.
* ``spec`` — SPECint 2006 profile replay (Section IV-I) for Piton and
  the UltraSPARC T1 reference machine.
"""

from repro.workloads.base import TileProgram, normalize_workload

__all__ = ["TileProgram", "normalize_workload"]
