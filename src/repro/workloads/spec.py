"""SPECint 2006 profile replay (Section IV-I, Tables VIII and IX).

SPEC itself cannot be run here (no suite, no Linux, no SD card), so per
the substitution policy each benchmark is replayed from a *behavioural
profile*: an effective instruction mix, L1D and L2 miss intensities, a
base CPI, and an average I/O (VIO rail) activity. The profile drives

* execution time on both machines through each machine's latency model
  (Piton's 424-cycle memory and 44-cycle average L2 hit versus the
  UltraSPARC T1's 108 ns memory and 22-cycle L2), and
* Piton power through the standard event ledger.

Calibration: ``l1d_mpki`` and ``base_cpi`` are plausible published
characterization values (cf. Phansalkar et al. [47]); ``l2_mpki`` is
solved so the modelled Piton/T1 slowdown matches Table IX (documented
in EXPERIMENTS.md); ``instructions`` is solved from the T1 runtime;
``vio_w`` is calibrated to the Table IX average-power column (the
paper offers no independent I/O-rate data to derive it from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.util.events import EventLedger

#: Machine latency parameters used by the replay.
PITON_CLOCK_HZ = 500.05e6
T1_CLOCK_HZ = 1.0e9
PITON_L2_HIT_CYCLES = 44.0  # average over local/remote homes
PITON_MEM_CYCLES = 424.0  # Table VII / Table VIII (848 ns)
T1_L2_HIT_CYCLES = 22.0  # 20-24 ns at 1 GHz
T1_MEM_CYCLES = 108.0  # Table VIII (108 ns)
#: The T1's 3MB L2 versus Piton's 1.6MB: fewer T1 misses.
T1_L2_CAPACITY_FACTOR = 0.65

#: Power the 24 non-benchmark cores burn running the Linux kernel's
#: spinning idle threads and timer ticks, above the grounded-input
#: idle baseline (watts, VDD+VCS).
LINUX_BACKGROUND_W = 0.055


@dataclass(frozen=True)
class SpecProfile:
    """Behavioural profile of one SPECint benchmark run."""

    name: str
    instructions: float  # dynamic instruction count
    base_cpi: float  # CPI with a perfect memory system
    l1d_mpki: float  # L1D misses (= L2 accesses) per kilo-instr
    l2_mpki: float  # Piton L2 misses per kilo-instr
    load_frac: float = 0.25
    store_frac: float = 0.09
    branch_frac: float = 0.18
    vio_w: float = 0.02  # average VIO activity above the I/O idle

    def piton_cpi(self) -> float:
        return (
            self.base_cpi
            + self.l1d_mpki / 1000.0 * PITON_L2_HIT_CYCLES
            + self.l2_mpki / 1000.0 * PITON_MEM_CYCLES
        )

    def t1_cpi(self) -> float:
        return (
            self.base_cpi
            + self.l1d_mpki / 1000.0 * T1_L2_HIT_CYCLES
            + self.l2_mpki
            * T1_L2_CAPACITY_FACTOR
            / 1000.0
            * T1_MEM_CYCLES
        )

    def piton_time_s(self) -> float:
        return self.instructions * self.piton_cpi() / PITON_CLOCK_HZ

    def t1_time_s(self) -> float:
        return self.instructions * self.t1_cpi() / T1_CLOCK_HZ

    def slowdown(self) -> float:
        return self.piton_time_s() / self.t1_time_s()


def _p(name, instr_g, base, l1, l2, vio, **kw) -> SpecProfile:
    return SpecProfile(
        name=name,
        instructions=instr_g * 1e9,
        base_cpi=base,
        l1d_mpki=l1,
        l2_mpki=l2,
        vio_w=vio,
        **kw,
    )


#: The ten SPECint 2006 benchmarks (thirteen ref inputs) of Table IX.
#: instructions / l2_mpki solved against the paper's T1 runtimes and
#: slowdowns; l1d_mpki and base_cpi from published characterizations;
#: vio_w calibrated to the power column.
SPEC_PROFILES: Mapping[str, SpecProfile] = {
    p.name: p
    for p in (
        _p("bzip2-chicken", 297.6, 1.30, 22.0, 8.299, 0.0803),
        _p("bzip2-source", 529.2, 1.30, 26.0, 11.479, 0.0000),
        _p("gcc-166", 94.9, 1.40, 30.0, 22.148, 0.0000),
        _p("gcc-200", 123.1, 1.40, 32.0, 34.000, 0.0333),
        _p("gobmk-13x13", 417.1, 1.45, 18.0, 7.863, 0.0087,
           branch_frac=0.24),
        _p("h264ref-foreman-baseline", 830.5, 1.25, 12.0, 1.857, 0.0297,
           load_frac=0.32),
        _p("hmmer-nph3", 1310.3, 1.20, 40.0, 1.928, 0.2873,
           load_frac=0.41, store_frac=0.15),
        _p("libquantum", 3858.7, 1.15, 45.0, 14.173, 0.1683,
           load_frac=0.33),
        _p("omnetpp", 421.9, 1.50, 38.0, 114.487, 0.0000),
        _p("perlbench-checkspam", 144.5, 1.45, 28.0, 38.994, 0.0136),
        _p("perlbench-diffmail", 291.1, 1.45, 28.0, 38.494, 0.0176),
        _p("sjeng", 3273.5, 1.40, 14.0, 7.542, 0.0000),
        _p("xalancbmk", 1456.7, 1.50, 34.0, 28.404, 0.0265),
    )
}

#: Mean NoC hops from a random requester to a random home slice on the
#: 5x5 mesh (uniform line interleaving): 4*(n-1/n)/3 per dimension.
MEAN_L2_HOPS = 3.2


def replay_ledger(profile: SpecProfile) -> tuple[EventLedger, float]:
    """Build the event ledger of one full benchmark run on Piton.

    Returns (ledger, window_cycles). Events follow the same accounting
    the cycle simulator produces, at profile rates: every instruction
    fetches/issues, loads and stores touch the L1D, L1D misses travel
    the NoC to a home slice ~3.2 hops away, L2 misses cross the chip
    bridge and DRAM, and the Linux background load ticks on the other
    cores.
    """
    n = profile.instructions
    cycles = n * profile.piton_cpi()
    ledger = EventLedger()
    ledger.record("core.fetch", n)
    ledger.record("core.active_cycle", n)
    ledger.record("core.stall_cycle", max(0.0, cycles - n))

    int_frac = 1.0 - (
        profile.load_frac + profile.store_frac + profile.branch_frac
    )
    ledger.record("instr.int_add", n * int_frac * 0.45)
    ledger.record("instr.int_logic", n * int_frac * 0.55)
    ledger.record("instr.load", n * profile.load_frac)
    ledger.record("instr.store", n * profile.store_frac)
    ledger.record("instr.branch", n * profile.branch_frac)
    ledger.record("l1d.read", n * profile.load_frac)
    ledger.record("l1d.write", n * profile.store_frac)

    l2_accesses = n * profile.l1d_mpki / 1000.0
    l2_misses = n * profile.l2_mpki / 1000.0
    ledger.record("l15.read", l2_accesses)
    ledger.record("l15.fill", l2_accesses)
    ledger.record("l1d.fill", l2_accesses)
    ledger.record("l2.read", l2_accesses)
    ledger.record("dir.lookup", l2_accesses)
    for noc, flits in ((1, 3), (3, 3)):
        ledger.record(f"noc{noc}.flit", l2_accesses * flits)
        ledger.record(
            f"noc{noc}.flit_hop", l2_accesses * flits * MEAN_L2_HOPS
        )
        ledger.record(
            f"noc{noc}.router_pass",
            l2_accesses * flits * (MEAN_L2_HOPS + 1),
        )
    ledger.record("l2.fill", l2_misses)
    ledger.record("mem.line_fetch", l2_misses)
    ledger.record("mem.outstanding_cycle", l2_misses * PITON_MEM_CYCLES)
    ledger.record("chipbridge.flit", l2_misses * 12)
    ledger.record("io.beat", l2_misses * 24)
    ledger.record("dram.burst", l2_misses * 2)
    return ledger, cycles


def background_power_w() -> float:
    """The Linux idle-thread background on the other cores."""
    return LINUX_BACKGROUND_W
