"""Section IV-E energy-per-instruction assembly tests.

Each test is "an assembly test ... with the target instruction in an
infinite loop unrolled by a factor of 20", small enough to live in the
L1 caches, with no extraneous memory activity. Operand values are
planted in registers (and, for loads, in memory) according to the
minimum / random / maximum policy. The two store variants reproduce
the paper's special handling:

* ``stx (NF)`` — nine ``nop``\\ s after every store so the 8-entry
  store buffer (draining one store per 10 cycles) never fills; the nop
  energy is subtracted afterwards;
* ``stx (F)`` — back-to-back stores, so the core's speculative issue
  hits a full buffer and pays the roll-back/replay energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instructions import opcode
from repro.isa.operands import OperandPolicy, operand_value
from repro.isa.program import Instruction, Program, flat_program
from repro.workloads.base import TileProgram

UNROLL = 20
STX_NOP_PAD = 9

#: Register conventions inside EPI tests.
SRC_REGS = (8, 9, 10, 11, 12, 13, 14, 15)
DST_REGS = (16, 17, 18, 19, 20, 21, 22, 23)
ADDR_REG = 4  # base address for memory tests
LOOP_REG = 31  # nonzero -> loop forever

#: Bytes reserved per tile for EPI memory tests (keeps tiles private).
TILE_SPAN = 1 << 20


@dataclass(frozen=True)
class EpiTest:
    """One runnable EPI measurement."""

    name: str
    target_opcode: str
    policy: OperandPolicy
    latency_cycles: int  # Table VI L for the EPI equation
    targets_per_iteration: int
    fillers_per_target: int  # nops padded after each target


def _loop(body: list[Instruction]) -> Program:
    """Wrap ``body`` in the infinite measurement loop."""
    instrs = list(body)
    instrs.append(Instruction("bne", rs1=LOOP_REG, target=0))
    return flat_program(instrs)


def _int_operands(
    policy: OperandPolicy, rng: np.random.Generator
) -> dict[int, int]:
    values = {}
    for reg in SRC_REGS:
        values[reg] = int(operand_value(policy, rng, fp=False))
    if policy is OperandPolicy.MINIMUM:
        # Divides/branches still need the loop register nonzero.
        values = {reg: 0 for reg in SRC_REGS}
    return values


def _fp_operands(
    policy: OperandPolicy, rng: np.random.Generator
) -> dict[int, float]:
    return {
        reg: float(operand_value(policy, rng, fp=True)) for reg in SRC_REGS
    }


def build_epi_workload(
    target: str,
    policy: OperandPolicy,
    tile: int,
    seed: int = 0,
    store_buffer_safe: bool = True,
) -> tuple[EpiTest, TileProgram]:
    """Build the EPI test for ``target`` under ``policy`` on ``tile``.

    Returns the test metadata and the tile workload (program + planted
    register/memory operand values). Memory tests place each tile's
    working set in a private address span so 25 concurrent copies never
    share lines ("each of the 25 cores store to different L2 cache
    lines ... to avoid invoking cache coherence").
    """
    rng = np.random.default_rng(seed + 1000 * tile)
    info = opcode(target)
    base_addr = 0x100000 + tile * TILE_SPAN

    init_regs: dict[int, int] = {LOOP_REG: 1, ADDR_REG: base_addr}
    init_fregs: dict[int, float] = {}
    memory_image: dict[int, int] = {}
    fillers = 0

    body: list[Instruction] = []
    if target == "nop":
        body = [Instruction("nop") for _ in range(UNROLL)]
    elif info.is_load:
        init_regs.update(_int_operands(OperandPolicy.RANDOM, rng))
        for i in range(UNROLL):
            addr = base_addr + 16 * i  # 20 distinct L1 lines, all hits
            memory_image[addr] = int(operand_value(policy, rng, fp=False))
            body.append(
                Instruction(
                    "ldx", rd=DST_REGS[i % len(DST_REGS)],
                    rs1=ADDR_REG, imm=16 * i,
                )
            )
    elif info.is_store:
        fillers = STX_NOP_PAD if store_buffer_safe else 0
        value_reg = SRC_REGS[0]
        init_regs[value_reg] = int(operand_value(policy, rng, fp=False))
        for i in range(UNROLL):
            # 20 distinct L2 lines (64B apart), L1.5-resident after
            # warm-up, private to this tile.
            body.append(
                Instruction("stx", rs1=value_reg, rs2=ADDR_REG, imm=64 * i)
            )
            body.extend(Instruction("nop") for _ in range(fillers))
    elif info.is_branch:
        if target == "beq":
            # Taken: %r0 == 0, each branch jumps to the next target.
            for i in range(UNROLL):
                body.append(Instruction("beq", rs1=0, target=i + 1))
        else:
            # Not taken: compare the planted nonzero register.
            init_regs[SRC_REGS[0]] = 1
            for i in range(UNROLL):
                body.append(
                    Instruction("bne", rs1=0, target=i + 1)
                )
    elif info.is_fp:
        init_fregs.update(_fp_operands(policy, rng))
        for i in range(UNROLL):
            body.append(
                Instruction(
                    target,
                    rd=DST_REGS[i % len(DST_REGS)],
                    rs1=SRC_REGS[i % len(SRC_REGS)],
                    rs2=SRC_REGS[(i + 1) % len(SRC_REGS)],
                )
            )
    else:
        operands = _int_operands(policy, rng)
        if target == "sdivx" and policy is not OperandPolicy.MINIMUM:
            # Keep divisors nonzero so latency stays the Table VI value.
            for reg in SRC_REGS[1::2]:
                operands[reg] = operands[reg] | 1
        init_regs.update(operands)
        for i in range(UNROLL):
            body.append(
                Instruction(
                    target,
                    rd=DST_REGS[i % len(DST_REGS)],
                    rs1=SRC_REGS[i % len(SRC_REGS)],
                    rs2=SRC_REGS[(i + 1) % len(SRC_REGS)],
                )
            )

    program = _loop(body)
    test = EpiTest(
        name=f"{target}:{policy.value}",
        target_opcode=target,
        policy=policy,
        latency_cycles=info.latency,
        targets_per_iteration=UNROLL,
        fillers_per_target=fillers,
    )
    return test, TileProgram(
        programs=[program],
        init_regs=init_regs,
        init_fregs=init_fregs,
        memory_image=memory_image,
    )


#: Figure 11's instruction set, in presentation order, with the label
#: the paper uses for each bar group.
FIGURE11_INSTRUCTIONS: tuple[tuple[str, str], ...] = (
    ("nop", "nop"),
    ("and", "and"),
    ("add", "add"),
    ("mulx", "mulx"),
    ("sdivx", "sdivx"),
    ("faddd", "faddd"),
    ("fmuld", "fmuld"),
    ("fdivd", "fdivd"),
    ("fadds", "fadds"),
    ("fmuls", "fmuls"),
    ("fdivs", "fdivs"),
    ("ldx", "ldx"),
    ("stx_f", "stx (F)"),
    ("stx_nf", "stx (NF)"),
    ("beq", "beq (T)"),
    ("bne", "bne (NT)"),
)


def build_named_epi_workload(
    name: str, policy: OperandPolicy, tile: int, seed: int = 0
) -> tuple[EpiTest, TileProgram]:
    """Resolve Figure 11 bar names (incl. the stx variants)."""
    if name == "stx_f":
        test, tp = build_epi_workload(
            "stx", policy, tile, seed, store_buffer_safe=False
        )
        return (
            EpiTest(
                name=f"stx(F):{policy.value}",
                target_opcode="stx",
                policy=policy,
                latency_cycles=test.latency_cycles,
                targets_per_iteration=test.targets_per_iteration,
                fillers_per_target=0,
            ),
            tp,
        )
    if name == "stx_nf":
        return build_epi_workload(
            "stx", policy, tile, seed, store_buffer_safe=True
        )
    return build_epi_workload(name, policy, tile, seed)


def has_operand_sweep(name: str) -> bool:
    """Whether min/random/max operand values are meaningful for a bar
    (nop and branches have no input operands)."""
    return name not in ("nop", "beq", "bne")
