"""Parametric synthetic workload generation.

The paper's microbenchmarks are hand-written points in a workload
space; this generator spans the space: given an instruction mix, a
memory footprint, and an operand activity level, it emits a runnable
:class:`~repro.workloads.base.TileProgram`. Used by researchers to
sweep "what power does a 30%-load / high-toggle workload draw?"-style
questions, and by property tests as a fountain of valid programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.instructions import WORD_MASK
from repro.isa.program import Instruction, flat_program
from repro.workloads.base import TileProgram

#: Register conventions for generated code.
_BASE_REG = 4  # memory base
_WALK_REG = 5  # rotating offset that walks the footprint
_ADDR_REG = 6  # base + walk, recomputed each iteration
_LOOP_REG = 31  # nonzero -> loop forever / countdown
_SRC_REGS = (8, 9, 10, 11)
_DST_REGS = (16, 17, 18, 19, 20, 21)


@dataclass(frozen=True)
class WorkloadSpec:
    """A point in the synthetic workload space.

    Fractions need not sum to one; the remainder becomes single-cycle
    integer ALU work. ``activity`` in [0, 1] sets operand toggle
    density (0 = all-zero operands, 1 = all-ones).
    """

    name: str = "synthetic"
    ops_per_iteration: int = 32
    load_frac: float = 0.0
    store_frac: float = 0.0
    mul_frac: float = 0.0
    fp_frac: float = 0.0
    branchiness: float = 0.0  # extra forward branches per iteration op
    activity: float = 0.5
    footprint_bytes: int = 4096  # memory working set (L1-resident = small)
    seed: int = 0

    def __post_init__(self) -> None:
        total = (
            self.load_frac + self.store_frac + self.mul_frac + self.fp_frac
        )
        if total > 1.0 + 1e-9:
            raise ValueError("instruction fractions exceed 1.0")
        for frac in (self.load_frac, self.store_frac, self.mul_frac,
                     self.fp_frac, self.branchiness):
            if frac < 0:
                raise ValueError("fractions must be non-negative")
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        if self.ops_per_iteration < 1:
            raise ValueError("need at least one op per iteration")
        if self.footprint_bytes < 64:
            raise ValueError("footprint must be at least one line")
        if self.footprint_bytes & (self.footprint_bytes - 1):
            raise ValueError("footprint must be a power of two")


@dataclass
class GeneratedWorkload:
    """The generator's output for one tile."""

    spec: WorkloadSpec
    tile_program: TileProgram
    static_mix: dict[str, int] = field(default_factory=dict)


def _operand_for_activity(activity: float, rng: np.random.Generator) -> int:
    """A 64-bit value whose popcount fraction is ~``activity``."""
    bits = rng.random(64) < activity
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value


def generate(
    spec: WorkloadSpec,
    tile: int = 0,
    base_addr: int | None = None,
    iterations: int | None = None,
) -> GeneratedWorkload:
    """Emit the workload for ``tile``.

    ``iterations=None`` produces the infinite measurement loop; a
    number produces a finite run for energy studies.
    """
    rng = np.random.default_rng(spec.seed + 7919 * tile)
    base = (
        base_addr
        if base_addr is not None
        else 0x0800_0000 + tile * (1 << 22)
    )
    lines = max(1, spec.footprint_bytes // 64)

    # The loop walks the footprint: memory ops address off
    # _ADDR_REG = base + walk, and the walk register strides through
    # the footprint each iteration — so the working set really spans
    # ``footprint_bytes`` even though the static loop is short.
    body: list[Instruction] = [
        Instruction("add", rd=_ADDR_REG, rs1=_BASE_REG, rs2=_WALK_REG)
    ]
    counts = {
        "load": round(spec.ops_per_iteration * spec.load_frac),
        "store": round(spec.ops_per_iteration * spec.store_frac),
        "mul": round(spec.ops_per_iteration * spec.mul_frac),
        "fp": round(spec.ops_per_iteration * spec.fp_frac),
    }
    alu_count = spec.ops_per_iteration - sum(counts.values())
    schedule = (
        ["load"] * counts["load"]
        + ["store"] * counts["store"]
        + ["mul"] * counts["mul"]
        + ["fp"] * counts["fp"]
        + ["alu"] * max(0, alu_count)
    )
    rng.shuffle(schedule)

    alu_ops = ("xor", "and", "or", "add")
    for i, kind in enumerate(schedule):
        dst = _DST_REGS[i % len(_DST_REGS)]
        src1 = _SRC_REGS[i % len(_SRC_REGS)]
        src2 = _SRC_REGS[(i + 1) % len(_SRC_REGS)]
        if kind == "load":
            offset = 64 * int(rng.integers(min(lines, 8)))
            body.append(
                Instruction("ldx", rd=dst, rs1=_ADDR_REG, imm=offset)
            )
        elif kind == "store":
            offset = 64 * int(rng.integers(min(lines, 8)))
            body.append(
                Instruction("stx", rs1=src1, rs2=_ADDR_REG, imm=offset)
            )
        elif kind == "mul":
            body.append(
                Instruction("mulx", rd=dst, rs1=src1, rs2=src2)
            )
        elif kind == "fp":
            body.append(
                Instruction("faddd", rd=dst, rs1=src1, rs2=src2)
            )
        else:
            op = alu_ops[i % len(alu_ops)]
            body.append(Instruction(op, rd=dst, rs1=src1, rs2=src2))

    # Forward branches (never taken: %r0 != 0 is false) sprinkle
    # control flow without changing the loop structure.
    extra_branches = round(spec.ops_per_iteration * spec.branchiness)
    for _ in range(extra_branches):
        at = int(rng.integers(len(body)))
        body.insert(
            at, Instruction("bne", rs1=0, target=0)  # patched below
        )

    prologue: list[Instruction] = []
    if iterations is not None:
        prologue.append(Instruction("set", rd=1, imm=iterations))
    loop_start = len(prologue)

    instrs = prologue + body
    # Patch branch targets: each forward branch jumps to the next
    # instruction (not taken anyway; targets must be valid).
    for index, instr in enumerate(instrs):
        if instr.op == "bne" and instr.rs1 == 0:
            instrs[index] = Instruction(
                "bne", rs1=0, target=min(index + 1, len(instrs))
            )
    # Advance the footprint walk: walk = (walk + stride) & mask.
    stride = 1024 if spec.footprint_bytes > 1024 else 64
    instrs.append(
        Instruction("add", rd=_WALK_REG, rs1=_WALK_REG, imm=stride)
    )
    instrs.append(
        Instruction(
            "and", rd=_WALK_REG, rs1=_WALK_REG,
            imm=spec.footprint_bytes - 1,
        )
    )
    if iterations is None:
        instrs.append(
            Instruction("bne", rs1=_LOOP_REG, target=loop_start)
        )
    else:
        instrs.append(Instruction("sub", rd=1, rs1=1, imm=1))
        instrs.append(Instruction("bne", rs1=1, target=loop_start))
    # Fix any branch that now points one past the end.
    for index, instr in enumerate(instrs):
        if instr.info.is_branch and instr.target >= len(instrs):
            instrs[index] = Instruction(
                instr.op, rs1=instr.rs1, target=len(instrs) - 1
            )

    program = flat_program(instrs)
    init_regs = {
        _BASE_REG: base,
        _WALK_REG: 0,
        _LOOP_REG: 1,
    }
    for reg in _SRC_REGS:
        init_regs[reg] = _operand_for_activity(spec.activity, rng)
    init_fregs = {reg: 1.5 + reg for reg in _SRC_REGS}
    memory_image = {
        base + 64 * i: int(rng.integers(0, 1 << 63)) & WORD_MASK
        for i in range(min(lines, 4096))
    }
    return GeneratedWorkload(
        spec=spec,
        tile_program=TileProgram(
            programs=[program],
            init_regs=init_regs,
            init_fregs=init_fregs,
            memory_image=memory_image,
        ),
        static_mix=program.instruction_mix(),
    )
