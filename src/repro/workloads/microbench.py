"""The Section IV-H microbenchmarks: Int, HP, and Hist.

* **Int** — a tight unrolled loop of integer instructions on
  high-toggle operand patterns ("maximize switching activity"). Work
  per thread is constant, so total work grows with thread count.
* **HP (High Power)** — two distinct thread types: an integer-loop
  thread, and a mixed thread executing loads, stores, and integer ops
  at a 5:1 compute-to-memory ratio. The paper's thread-mapping rules
  are reproduced by :func:`hp_thread_mapping`: with one thread per
  core the two types alternate across cores; with two threads per core
  each core runs one of each.
* **Hist** — a parallel shared-memory histogram: each thread loads
  elements from its slice of a shared input array, takes a global
  CAS-based spin lock, and increments a shared bucket — so lock
  contention and coherence misses grow with thread count while total
  work stays constant (the paper's scaling contrast with Int/HP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import PitonConfig
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.base import TileProgram

#: High-toggle operand patterns for Int/HP compute loops.
PATTERN_A = 0x5555555555555555
PATTERN_B = 0xAAAAAAAAAAAAAAAA

#: Shared-memory layout for Hist.
HIST_LOCK_ADDR = 0x0020_0000
HIST_BUCKETS_ADDR = 0x0020_1000
HIST_ARRAY_ADDR = 0x0030_0000
HIST_BUCKET_COUNT = 16
HIST_DEFAULT_ELEMENTS = 2048

#: HP private working sets, one span per tile.
HP_SPAN = 1 << 20
HP_BASE = 0x0100_0000


#: Integer ops per loop iteration. The paper's loops are unrolled far
#: enough that the taken loop branch is a negligible share — which is
#: what makes Int sustain one instruction per cycle in both T/C
#: configurations (Section IV-H2).
INT_UNROLL = 30


def _int_body(unroll: int = INT_UNROLL) -> str:
    """Logic/arithmetic ops cycling the two toggle patterns."""
    ops = ("xor", "and", "or", "xor", "add")
    lines = []
    for i in range(unroll):
        op = ops[i % len(ops)]
        src = "%r8" if i % 2 == 0 else "%r9"
        dst = 16 + (i % 10)
        prev = 16 + ((i - 1) % 10) if i else 8
        lines.append(f"    {op} %r{prev}, {src}, %r{dst}")
    return "\n".join(lines) + "\n"


def int_program(iterations: int | None = None) -> Program:
    """The Int loop; infinite when ``iterations`` is None."""
    body = _int_body()
    if iterations is None:
        return assemble(f"loop:\n{body}\n    bne %r31, loop\n")
    return assemble(
        f"""
    set {iterations}, %r1
loop:
{body}
    sub %r1, 1, %r1
    bne %r1, loop
"""
    )


def int_tile() -> TileProgram:
    return TileProgram(
        programs=[int_program()],
        init_regs={8: PATTERN_A, 9: PATTERN_B, 31: 1},
    )


def hp_compute_program(iterations: int | None = None) -> Program:
    """HP thread type A: the pure integer loop."""
    return int_program(iterations)


def hp_mixed_program(iterations: int | None = None) -> Program:
    """HP thread type B: integer ops mixed with loads and stores that
    always hit the L1/L1.5. The memory share is kept small enough that
    a lone thread leaves few pipeline bubbles — the paper's
    observation that HP "presents [few] instruction overlapping
    opportunities ... because memory instructions hit in the L1 cache",
    which is what pushes the MT/MC execution-time ratio toward two."""
    chunks = [
        _int_body(30),
        "    ldx [%r4 + 0], %r26\n",
        "    stx %r26, [%r4 + 64]\n",
    ]
    body = "".join(chunks)
    if iterations is None:
        return assemble(f"loop:\n{body}\n    bne %r31, loop\n")
    return assemble(
        f"""
    set {iterations}, %r1
loop:
{body}
    sub %r1, 1, %r1
    bne %r1, loop
"""
    )


def hp_thread_mapping(
    core_ids: list[int], threads_per_core: int
) -> dict[int, list[str]]:
    """The paper's HP mapping: with 1 T/C the two thread types execute
    on alternating cores; with 2 T/C each core runs one of each."""
    mapping: dict[int, list[str]] = {}
    for index, core in enumerate(core_ids):
        if threads_per_core == 1:
            mapping[core] = ["compute" if index % 2 == 0 else "mixed"]
        else:
            mapping[core] = ["compute", "mixed"]
    return mapping


def hp_tile(kinds: list[str], tile: int, iterations: int | None = None) -> TileProgram:
    """Build one HP tile running the given thread kinds."""
    programs = []
    for kind in kinds:
        if kind == "compute":
            programs.append(hp_compute_program(iterations))
        elif kind == "mixed":
            programs.append(hp_mixed_program(iterations))
        else:
            raise ValueError(f"unknown HP thread kind {kind!r}")
    base = HP_BASE + tile * HP_SPAN
    return TileProgram(
        programs=programs,
        init_regs={8: PATTERN_A, 9: PATTERN_B, 31: 1, 4: base},
        memory_image={base: 0x0123456789ABCDEF},
    )


# --------------------------------------------------------------------- Hist
def hist_program(
    start_addr: int,
    element_count: int,
    repeat_forever: bool = True,
    iterations: int = 1,
) -> Program:
    """One Hist thread: histogram ``element_count`` elements starting at
    ``start_addr`` into the shared buckets under the global lock.

    Register use: r1 element ptr, r2 end addr, r4 lock addr, r5 buckets
    base, r6..r11 scratch, r30 outer-loop counter.
    """
    outer = "bne %r31, outer" if repeat_forever else (
        "sub %r30, 1, %r30\n    bne %r30, outer"
    )
    prologue = "" if repeat_forever else f"    set {iterations}, %r30\n"
    return assemble(
        f"""
{prologue}outer:
    set {start_addr}, %r1
    set {start_addr + 8 * element_count}, %r2
element:
    ldx [%r1 + 0], %r6
    and %r6, {HIST_BUCKET_COUNT - 1}, %r7
spin:
    set 1, %r8
    cas [%r4], %r9, %r8
    bne %r8, spin
    sll %r7, 3, %r10
    add %r10, %r5, %r10
    ldx [%r10 + 0], %r11
    add %r11, 1, %r11
    stx %r11, [%r10 + 0]
    stx %r9, [%r4 + 0]
    add %r1, 8, %r1
    sub %r2, %r1, %r6
    bne %r6, element
    {outer}
"""
    )


@dataclass(frozen=True)
class HistWorkload:
    """A complete Hist run: per-tile programs + the shared data image."""

    tiles: dict[int, TileProgram]
    total_elements: int
    elements_per_thread: int


def hist_workload(
    core_ids: list[int],
    threads_per_core: int,
    total_elements: int = HIST_DEFAULT_ELEMENTS,
    repeat_forever: bool = True,
    iterations: int = 1,
    config: PitonConfig | None = None,
) -> HistWorkload:
    """Split a fixed-size histogram across threads (constant total
    work: more threads means less work per thread, the paper's Hist
    scaling rule)."""
    del config
    thread_count = len(core_ids) * threads_per_core
    if thread_count == 0:
        raise ValueError("need at least one thread")
    per_thread = max(1, total_elements // thread_count)

    image = {
        HIST_ARRAY_ADDR + 8 * i: (i * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        for i in range(total_elements)
    }
    image[HIST_LOCK_ADDR] = 0
    for b in range(HIST_BUCKET_COUNT):
        image[HIST_BUCKETS_ADDR + 8 * b] = 0

    tiles: dict[int, TileProgram] = {}
    thread_index = 0
    for core in core_ids:
        programs = []
        for _ in range(threads_per_core):
            start = HIST_ARRAY_ADDR + 8 * per_thread * thread_index
            programs.append(
                hist_program(
                    start, per_thread, repeat_forever, iterations
                )
            )
            thread_index += 1
        tiles[core] = TileProgram(
            programs=programs,
            init_regs={
                4: HIST_LOCK_ADDR,
                5: HIST_BUCKETS_ADDR,
                9: 0,
                31: 1,
            },
            memory_image=image if core == core_ids[0] else {},
        )
    return HistWorkload(
        tiles=tiles,
        total_elements=per_thread * thread_count,
        elements_per_thread=per_thread,
    )


def microbench_core_ids(count: int, config: PitonConfig | None = None) -> list[int]:
    """The first ``count`` tiles (the paper activates cores in order)."""
    config = config or PitonConfig()
    if not 1 <= count <= config.tile_count:
        raise ValueError(f"core count must be in 1..{config.tile_count}")
    return list(range(count))
