"""Section IV-G NoC energy tests (Figure 12).

The chipset is modified to stream dummy invalidation packets (one
routing header + six payload flits) into the chip through tile 0,
destined for tiles at increasing hop counts. The chip bridge's
bandwidth mismatch admits 7 valid flits every 47 core cycles, which
the EPF methodology divides back out. Four payload patterns sweep the
link activity factor:

* NSW  — all-zero payloads (router overhead only),
* HSW  — alternate 0x3333...3333 / zeros (half the bits toggle),
* FSW  — alternate all-ones / zeros (every bit toggles),
* FSWA — alternate 0xAAAA... / 0x5555... (every bit toggles *and*
  every adjacent pair toggles opposite ways: worst-case coupling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.noc.flit import make_invalidation_packet
from repro.noc.mesh import MeshNetwork
from repro.util.events import EventLedger

PATTERNS = ("NSW", "HSW", "FSW", "FSWA")

_ONES = (1 << 64) - 1
_PATTERN_PAIRS = {
    "NSW": (0x0, 0x0),
    "HSW": (0x3333333333333333, 0x0),
    "FSW": (_ONES, 0x0),
    "FSWA": (0xAAAAAAAAAAAAAAAA, 0x5555555555555555),
}

#: The paper's verified traffic pattern (see ChipBridge).
PATTERN_FLITS = 7
PATTERN_CYCLES = 47

#: The invalidation packets enter the mesh on NoC2 (the network that
#: carries L2->L1.5 invalidations).
INVALIDATION_NOC = 2


def payload_words(pattern: str, packet_index: int) -> list[int]:
    """Six payload words for the ``packet_index``-th packet.

    Consecutive *flits* alternate between the pattern's two words, and
    the alternation phase continues across packets so every payload
    flit transition exercises the pattern.
    """
    try:
        a, b = _PATTERN_PAIRS[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; expected one of {PATTERNS}"
        ) from None
    start = packet_index * 6
    return [a if (start + i) % 2 == 0 else b for i in range(6)]


@dataclass
class NocRun:
    """Result of one hop-count x pattern streaming run."""

    pattern: str
    hops: int
    dest_tile: int
    cycles: int
    packets_injected: int
    flits_injected: int
    packets_delivered: int
    ledger: EventLedger
    mean_packet_latency: float


def run_noc_stream(
    pattern: str,
    hops: int,
    packets: int = 60,
    config: PitonConfig | None = None,
    source_tile: int = 0,
    checker=None,
) -> NocRun:
    """Stream ``packets`` dummy packets at a tile ``hops`` away.

    Injection is paced at one 7-flit packet per 47-cycle repeat of the
    chip-bridge pattern; the run continues until the network drains.
    ``checker`` (a :class:`repro.check.CheckSuite`) enables mesh
    invariant sweeps during the run.
    """
    config = config or PitonConfig()
    floorplan = Floorplan(config)
    dest = floorplan.tile_at_hops(source_tile, hops)
    ledger = EventLedger()
    mesh = MeshNetwork(config, ledger, network_id=INVALIDATION_NOC)
    mesh.checker = checker

    injected_flits = 0
    for k in range(packets):
        # Pace injection on the bridge pattern.
        while mesh.now < k * PATTERN_CYCLES:
            mesh.step()
        packet = make_invalidation_packet(dest, payload_words(pattern, k))
        mesh.inject(packet, source_tile)
        injected_flits += len(packet)
    mesh.drain()

    latencies = [
        p.latency for p in mesh.delivered if p.latency is not None
    ]
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    # The measurement window is the full repeating-pattern span.
    cycles = max(mesh.now, packets * PATTERN_CYCLES)
    return NocRun(
        pattern=pattern,
        hops=hops,
        dest_tile=dest,
        cycles=cycles,
        packets_injected=packets,
        flits_injected=injected_flits,
        packets_delivered=len(mesh.delivered),
        ledger=ledger,
        mean_packet_latency=mean_latency,
    )
