"""Workload plumbing shared by all workload builders."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program


@dataclass
class TileProgram:
    """What one tile runs: one program per hardware thread, plus any
    registers the threads expect pre-loaded (operand values, base
    addresses, thread ids)."""

    programs: list[Program]
    init_regs: dict[int, int] = field(default_factory=dict)
    init_fregs: dict[int, float] = field(default_factory=dict)
    #: {byte_addr: 64-bit value} pre-loaded into shared memory before
    #: the run (the data the workload's loads will read).
    memory_image: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.programs:
            raise ValueError("a tile needs at least one thread program")


def normalize_workload(
    programs_by_tile: dict[int, "TileProgram | list[Program]"],
) -> dict[int, TileProgram]:
    """Accept either TilePrograms or bare program lists."""
    out: dict[int, TileProgram] = {}
    for tile, entry in programs_by_tile.items():
        if isinstance(entry, TileProgram):
            out[tile] = entry
        else:
            out[tile] = TileProgram(programs=list(entry))
    return out
