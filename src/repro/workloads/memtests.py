"""Section IV-F memory-system energy tests (Table VII).

Each scenario is an unrolled infinite loop of 20 ``ldx`` whose
addresses are constructed to steer every load at one level of the
hierarchy:

* **L1 hit** — 20 distinct resident lines;
* **L1 miss / L2 hit** — 20 addresses aliasing the *same L1 (and
  L1.5) set* (4-way, so every access conflicts out) while landing in
  distinct sets of the chosen home L2 slice (so the L2 always hits);
* **local vs remote** — the home slice is steered by address choice
  under the software-configurable line-to-slice interleaving, exactly
  the paper's method: the local slice, a slice 4 straight-line hops
  away, or 8 hops (with a turn) away;
* **L2 miss** — 20 addresses aliasing the *same L2 set* of the local
  slice, so every load goes to DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.cache.addressing import AddressMap
from repro.isa.program import Instruction, flat_program
from repro.workloads.base import TileProgram
from repro.workloads.epi_tests import ADDR_REG, DST_REGS, LOOP_REG, UNROLL

#: Table VII scenarios in presentation order.
SCENARIOS = (
    "l1_hit",
    "l2_hit_local",
    "l2_hit_remote_4",
    "l2_hit_remote_8",
    "l2_miss_local",
)


@dataclass(frozen=True)
class MemTest:
    """One Table VII scenario's workload for one tile."""

    scenario: str
    tile: int
    home_tile: int
    hops: int
    addresses: tuple[int, ...]
    tile_program: TileProgram


def _load_loop(addresses: list[int]) -> tuple[TileProgram, int]:
    """An unrolled ldx loop over ``addresses`` (base + offsets)."""
    base = min(addresses)
    body = [
        Instruction(
            "ldx",
            rd=DST_REGS[i % len(DST_REGS)],
            rs1=ADDR_REG,
            imm=addr - base,
        )
        for i, addr in enumerate(addresses)
    ]
    body.append(Instruction("bne", rs1=LOOP_REG, target=0))
    program = flat_program(body)
    return (
        TileProgram(
            programs=[program],
            init_regs={ADDR_REG: base, LOOP_REG: 1},
            memory_image={addr: (addr * 0x9E3779B9) & ((1 << 64) - 1)
                          for addr in addresses},
        ),
        base,
    )


def build_memtest(
    scenario: str,
    tile: int,
    config: PitonConfig | None = None,
    address_map: AddressMap | None = None,
    seed: int = 0,
) -> MemTest:
    """Construct the Table VII scenario for ``tile``."""
    config = config or PitonConfig()
    amap = address_map or AddressMap(config)
    floorplan = Floorplan(config)
    rng = np.random.default_rng(seed + tile)
    del rng  # address construction is deterministic

    if scenario == "l1_hit":
        # 20 lines in distinct L1 sets, homed anywhere (never leaves L1
        # after warm-up). Keep spans private per tile.
        base = 0x400000 + tile * (1 << 20)
        addresses = [base + 16 * i for i in range(UNROLL)]
        home = amap.home_tile(addresses[0])
        hops = 0
    elif scenario.startswith("l2_hit"):
        if scenario == "l2_hit_local":
            home, hops = tile, 0
        elif scenario == "l2_hit_remote_4":
            home, hops = floorplan.tile_at_hops(tile, 4), 4
        elif scenario == "l2_hit_remote_8":
            home, hops = floorplan.tile_at_hops(tile, 8), 8
        else:
            raise ValueError(f"unknown scenario {scenario!r}")
        # Same L1/L1.5 set (forces misses above the L2), distinct L2
        # sets (stays L2-resident), all homed at `home`. Vary the L1
        # set per requesting tile so concurrent tiles stay disjoint.
        set_index = (7 * tile + 3) % config.l1d.num_sets
        addresses = [
            amap.address_homed_at(
                home, sequence=i, set_index=set_index, cache=config.l1d
            )
            for i in range(UNROLL)
        ]
    elif scenario == "l2_miss_local":
        home, hops = tile, 0
        set_index = (11 * tile + 5) % config.l2_slice.num_sets
        addresses = [
            amap.address_homed_at(
                home, sequence=i, set_index=set_index, cache=config.l2_slice
            )
            for i in range(UNROLL)
        ]
    else:
        raise ValueError(f"unknown scenario {scenario!r}")

    tp, _base = _load_loop(addresses)
    return MemTest(
        scenario=scenario,
        tile=tile,
        home_tile=home,
        hops=hops,
        addresses=tuple(addresses),
        tile_program=tp,
    )
