"""Interrupt handling for resumable campaigns.

``repro run`` wraps experiment execution in :func:`resumable_signals`:
SIGINT and SIGTERM both raise :class:`GridInterrupted` in the main
thread, which unwinds through the supervised pool (terminating and
joining every worker on the way — see
:class:`~repro.resilience.pool.SupervisedPool`) with every completed
point already journaled, and the CLI converts it into the distinct
:data:`EXIT_RESUMABLE` exit code so wrappers (batch schedulers, CI
retries) can tell "re-run me with ``--resume``" apart from a real
failure.

:class:`GridInterrupted` subclasses :class:`KeyboardInterrupt` so any
pre-existing ``except KeyboardInterrupt`` cleanup (and pytest's own
interrupt handling) keeps working unchanged.
"""

from __future__ import annotations

import contextlib
import signal
from typing import Iterator

#: Exit code for "interrupted but resumable" — BSD's EX_TEMPFAIL, the
#: conventional "transient failure, retry later" status.
EXIT_RESUMABLE = 75


class GridInterrupted(KeyboardInterrupt):
    """SIGINT/SIGTERM arrived mid-campaign; completed work is journaled."""

    def __init__(self, signum: int = signal.SIGINT):
        super().__init__(signum)
        self.signum = signum


@contextlib.contextmanager
def resumable_signals() -> Iterator[None]:
    """Convert SIGINT/SIGTERM into :class:`GridInterrupted`.

    Installs handlers for the duration of the ``with`` block and
    restores the previous ones after. Must run in the main thread
    (signal handlers are process-global); anywhere else — e.g. a
    worker thread of an embedding application — it degrades to a
    no-op rather than failing.
    """
    def _raise(signum: int, frame: object) -> None:
        raise GridInterrupted(signum)

    try:
        previous = {
            signal.SIGINT: signal.signal(signal.SIGINT, _raise),
            signal.SIGTERM: signal.signal(signal.SIGTERM, _raise),
        }
    except ValueError:  # not the main thread
        yield
        return
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
