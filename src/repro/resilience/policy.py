"""Retry budgets, backoff schedules, and deadline derivation.

The supervisor's failure-handling knobs live in one frozen
:class:`RetryPolicy` so the CLI, :class:`~repro.experiments.RunContext`,
and the tests all speak the same vocabulary:

* ``retries`` — how many times a point may be re-queued to the pool
  after its first attempt; one further in-process attempt always
  remains after the budget is spent (see
  :class:`~repro.resilience.pool.SupervisedPool`).
* backoff — exponential with a cap: attempt *n* waits
  ``base * factor**(n-1)`` seconds, at most ``cap``.
* deadline — either pinned (``deadline_s``) or derived from the wall
  times of points that already finished: until the first completion
  there is no deadline (a fresh grid has nothing to compare a slow
  point against), afterwards a point is declared hung once it exceeds
  ``max(floor, factor * slowest completed point)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def backoff_schedule(
    attempt: int,
    base_s: float = 0.25,
    factor: float = 2.0,
    cap_s: float = 5.0,
) -> float:
    """Seconds to wait before retry number ``attempt`` (1-based).

    Deterministic exponential backoff: ``base * factor**(attempt-1)``,
    capped at ``cap_s``. Attempt 0 (the first try) never waits.
    """
    if attempt <= 0:
        return 0.0
    return min(cap_s, base_s * factor ** (attempt - 1))


def derive_deadline(
    observed_wall_s: Sequence[float],
    floor_s: float = 5.0,
    factor: float = 8.0,
) -> float | None:
    """Per-point deadline implied by completed-point wall times.

    ``None`` (no deadline) until at least one point has finished —
    with nothing to compare against, any cutoff would be a guess that
    could kill a legitimately slow first point. Once stats exist, a
    point is hung if it runs ``factor`` times longer than the slowest
    completed point, with ``floor_s`` preventing millisecond-scale
    grids from producing hair-trigger deadlines.
    """
    if not observed_wall_s:
        return None
    return max(floor_s, factor * max(observed_wall_s))


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor reacts to crashed, hung, or failing points."""

    #: Pool re-queue budget per point (beyond the first attempt).
    retries: int = 2
    #: Explicit per-point deadline; ``None`` derives one adaptively.
    deadline_s: float | None = None
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap_s: float = 5.0
    deadline_floor_s: float = 5.0
    deadline_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    def backoff_s(self, attempt: int) -> float:
        return backoff_schedule(
            attempt,
            base_s=self.backoff_base_s,
            factor=self.backoff_factor,
            cap_s=self.backoff_cap_s,
        )

    def deadline_for(
        self, observed_wall_s: Sequence[float]
    ) -> float | None:
        """The deadline in force given completed-point wall times."""
        if self.deadline_s is not None:
            return self.deadline_s
        return derive_deadline(
            observed_wall_s,
            floor_s=self.deadline_floor_s,
            factor=self.deadline_factor,
        )
