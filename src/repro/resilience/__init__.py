"""Fault-tolerant execution of long measurement campaigns.

The paper's characterization sweeps are hours-long grids of
independent simulation points. This package makes those grids survive
the failures long campaigns actually hit:

* **worker crashes and hangs** — :class:`SupervisedPool` replaces the
  bare ``multiprocessing.Pool`` fan-out with per-worker task queues,
  start-of-point heartbeats, and a per-point deadline derived from the
  wall times of already-completed points (:func:`derive_deadline`);
* **transient failures** — failed or timed-out points are retried
  with exponential backoff (:func:`backoff_schedule`) under a bounded
  attempt budget, and degrade to one final in-process serial attempt
  so a single poisoned point slows the grid down instead of killing
  it;
* **operator interrupts** — every completed
  :class:`~repro.system.SimOutcome` is journaled to an append-only,
  CRC-checked checkpoint (:class:`CheckpointJournal`; one atomic
  temp-file+rename segment per point), so SIGINT/SIGTERM
  (:func:`resumable_signals`) checkpoints, tears the pool down
  cleanly, and exits with :data:`EXIT_RESUMABLE`; ``repro run <exp>
  --resume`` then skips the already-simulated points.

The layer is zero-cost when idle: with no supervision configured the
serial path in :mod:`repro.experiments.parallel` is untouched, and
supervision never changes results — the simulator is a pure function
of its request, so a retried point is bit-identical to a first-try
point, and measurements always replay serially in grid order.
"""

from repro.resilience.checkpoint import (
    CheckpointJournal,
    JournalStatus,
    journal_status,
    request_digest,
)
from repro.resilience.policy import (
    RetryPolicy,
    backoff_schedule,
    derive_deadline,
)
from repro.resilience.pool import PointFailure, SupervisedPool, Supervision
from repro.resilience.signals import (
    EXIT_RESUMABLE,
    GridInterrupted,
    resumable_signals,
)

__all__ = [
    "CheckpointJournal",
    "EXIT_RESUMABLE",
    "GridInterrupted",
    "JournalStatus",
    "PointFailure",
    "RetryPolicy",
    "SupervisedPool",
    "Supervision",
    "backoff_schedule",
    "derive_deadline",
    "journal_status",
    "request_digest",
    "resumable_signals",
]
