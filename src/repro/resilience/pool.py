"""A supervised process pool that survives crashed and hung workers.

``multiprocessing.Pool`` treats a dead worker as a fatal, grid-wide
event: ``Pool.map`` either hangs or raises away the entire campaign.
:class:`SupervisedPool` replaces it for the experiment fan-out with a
small supervisor the parent process runs itself:

* each worker owns a **dedicated task queue**, so the supervisor
  always knows exactly which point a worker holds — a worker found
  dead implicates one specific point, never "somewhere in the shared
  queue";
* workers send a **heartbeat** the moment they begin a point; the
  supervisor measures the point's age from that heartbeat against the
  :class:`~repro.resilience.policy.RetryPolicy` deadline (pinned via
  ``--deadline``, or derived from completed-point wall times) and
  terminates workers that blow it;
* failed or timed-out points **retry with exponential backoff** under
  a bounded budget, the pool is kept at strength with replacement
  workers, and when the budget is spent the point gets one final
  in-process serial attempt — a point that poisons workers degrades
  the grid to serial speed for that one point instead of killing the
  run; only a point that fails in-process too raises
  :class:`PointFailure`;
* every completed point is reported through ``on_result`` *as it
  completes*, which is where the checkpoint journal appends — an
  interrupt at any moment loses only in-flight points.

Retries are invisible in results by construction: the simulator is a
pure function of its request, so attempt N is bit-identical to attempt
0. They are visible only as counters on the run manifest
(``retries``, ``timeouts``, ``worker_crashes``, ...).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.trace import NULL_TRACER, Tracer
from repro.resilience.checkpoint import CheckpointJournal
from repro.resilience.policy import RetryPolicy

#: How long the supervisor blocks on the result queue per loop pass.
_POLL_S = 0.05
#: Grace period between SIGTERM and SIGKILL for a hung worker.
_TERM_GRACE_S = 0.5


class PointFailure(RuntimeError):
    """One grid point failed every pool attempt *and* the in-process
    fallback — a real, deterministic error, not a flaky worker."""

    def __init__(self, index: int, attempts: int, detail: str):
        super().__init__(
            f"grid point {index} failed after {attempts} attempt(s): "
            f"{detail}"
        )
        self.index = index
        self.attempts = attempts
        self.detail = detail


@dataclass
class Supervision:
    """Everything the fan-out layer needs to run a grid supervised."""

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    journal: CheckpointJournal | None = None
    tracer: Tracer = NULL_TRACER
    experiment_id: str | None = None


def _worker_main(
    worker_id: int,
    fn: Callable[[object], object],
    task_q: "multiprocessing.Queue",
    result_q: "multiprocessing.Queue",
    forward_events: bool = False,
) -> None:
    """Worker loop: heartbeat, run, report; repeat until sentinel.

    SIGINT is ignored (Ctrl-C lands on the whole foreground process
    group; teardown is the supervisor's decision, delivered as
    SIGTERM), and SIGTERM is reset to its default so ``terminate()``
    kills even a worker wedged mid-point.

    With ``forward_events`` the task function is called as
    ``fn(payload, emit)``; anything it passes to ``emit`` (small
    JSON-able dicts, in practice tracer events) is relayed to the
    supervisor as an ``("event", ...)`` message while the point is
    still running — this is how the serve tier streams live telemetry
    out of an isolated worker process.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    from repro.check.faults import trigger_worker_fault

    while True:
        item = task_q.get()
        if item is None:
            return
        index, attempt, payload = item
        result_q.put(("start", worker_id, index, attempt, time.time()))
        try:
            trigger_worker_fault(index, attempt)
            if forward_events:

                def emit(event: object, _i=index, _a=attempt) -> None:
                    result_q.put(("event", worker_id, _i, _a, event))

                result = fn(payload, emit)
            else:
                result = fn(payload)
        except BaseException:
            result_q.put(
                ("error", worker_id, index, attempt, traceback.format_exc())
            )
        else:
            result_q.put(("done", worker_id, index, attempt, result))


@dataclass
class _Worker:
    """Supervisor-side view of one worker process."""

    proc: multiprocessing.Process
    task_q: "multiprocessing.Queue"
    #: (index, attempt) the worker currently holds, or None when idle.
    assigned: tuple[int, int] | None = None
    #: When the task was handed over, then refined by its heartbeat.
    assigned_at: float = 0.0
    started_at: float | None = None

    @property
    def age_basis(self) -> float:
        """The instant this worker's current point is aged from."""
        return (
            self.started_at
            if self.started_at is not None
            else self.assigned_at
        )


class SupervisedPool:
    """Run ``fn`` over tasks on supervised workers; results in order."""

    def __init__(
        self,
        fn: Callable[[object], object],
        jobs: int,
        policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        *,
        isolate: bool = False,
        daemon: bool = True,
        forward_events: bool = False,
        in_process_fallback: bool = True,
    ):
        """``isolate=True`` forces worker processes even for a single
        task or ``jobs=1`` — the serve tier needs the process boundary
        itself (a segfault must land in a child), not the parallelism.
        ``daemon=False`` makes workers non-daemonic so a worker can
        fan out its own inner pool (a served sweep with ``jobs > 1``).
        ``forward_events`` switches the task-function calling
        convention to ``fn(payload, emit)`` (see :func:`_worker_main`)
        and enables :meth:`map`'s ``on_event`` callback.
        ``in_process_fallback=False`` turns the last-resort serial
        attempt off: a point that exhausts its retry budget raises
        :class:`PointFailure` instead of re-running inside the
        supervising process — mandatory when the supervisor is a
        daemon that must survive a deterministically-crashing task.
        """
        self.fn = fn
        self.jobs = max(1, jobs)
        self.policy = policy if policy is not None else RetryPolicy()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.isolate = isolate
        self.daemon_workers = daemon
        self.forward_events = forward_events
        self.in_process_fallback = in_process_fallback
        self._next_worker_id = 0
        self._workers: dict[int, _Worker] = {}
        self._result_q: "multiprocessing.Queue | None" = None
        # Per-map state (set up by map(), used by the loop phases).
        self._tasks: Sequence[object] = ()
        self._results: dict[int, object] = {}
        self._pending: list[tuple[float, int, int]] = []
        self._durations: list[float] = []
        self._on_result: Callable[[int, object], None] | None = None
        self._on_event: Callable[[int, object], None] | None = None

    # -------------------------------------------------------------------- map
    def map(
        self,
        tasks: Sequence[object],
        on_result: Callable[[int, object], None] | None = None,
        on_event: Callable[[int, object], None] | None = None,
    ) -> list[object]:
        """``[fn(t) for t in tasks]`` on supervised workers.

        ``on_result(index, result)`` fires as each point completes
        (workers finish out of submission order); the returned list is
        always in submission order. ``on_event(index, event)`` (with
        ``forward_events``) fires for every event the running task
        emits, while it is still running — events from an attempt that
        is later retried are forwarded too, so consumers see honest
        per-attempt telemetry, not a deduplicated fiction.
        """
        if not tasks:
            return []
        if not self.isolate and (self.jobs <= 1 or len(tasks) == 1):
            results = []
            for index, task in enumerate(tasks):
                result = self._call_in_process(task, index, on_event)
                self.tracer.count("points_simulated")
                if on_result is not None:
                    on_result(index, result)
                results.append(result)
            return results

        self._tasks = tasks
        self._results = {}
        #: (ready_at, point index, attempt number) awaiting a worker.
        self._pending = [(0.0, index, 0) for index in range(len(tasks))]
        self._durations = []
        self._on_result = on_result
        self._on_event = on_event
        self._result_q = multiprocessing.Queue()
        try:
            self._maintain_strength()
            while len(self._results) < len(tasks):
                self._assign_ready()
                self._drain_results()
                self._reap_crashes()
                self._enforce_deadline()
                self._maintain_strength()
            return [self._results[i] for i in range(len(tasks))]
        finally:
            self._teardown()

    def _call_in_process(
        self,
        task: object,
        index: int,
        on_event: Callable[[int, object], None] | None,
    ) -> object:
        """Run one task in this process, honoring the calling convention."""
        if self.forward_events:
            if on_event is not None:
                return self.fn(task, lambda event: on_event(index, event))
            return self.fn(task, lambda event: None)
        return self.fn(task)

    # ---------------------------------------------------------------- workers
    def _spawn_worker(self) -> None:
        task_q: "multiprocessing.Queue" = multiprocessing.Queue()
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        proc = multiprocessing.Process(
            target=_worker_main,
            args=(
                worker_id,
                self.fn,
                task_q,
                self._result_q,
                self.forward_events,
            ),
            daemon=self.daemon_workers,
            name=f"repro-supervised-{worker_id}",
        )
        proc.start()
        self._workers[worker_id] = _Worker(proc=proc, task_q=task_q)

    def _dismiss_worker(self, worker_id: int, kill: bool = False) -> None:
        worker = self._workers.pop(worker_id)
        if kill and worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(_TERM_GRACE_S)
            if worker.proc.is_alive():  # wedged past SIGTERM
                worker.proc.kill()
        worker.proc.join()
        worker.task_q.close()
        worker.task_q.cancel_join_thread()

    def _maintain_strength(self) -> None:
        """Keep one worker per outstanding point, capped at ``jobs``."""
        outstanding = len(self._tasks) - len(self._results)
        while len(self._workers) < min(self.jobs, outstanding):
            self._spawn_worker()

    def _teardown(self) -> None:
        """Terminate and join every worker; drop the queues.

        Runs on success, on grid failure, and on interrupt — the
        regression the bare-``Pool`` path had (leaked workers after a
        ``KeyboardInterrupt`` mid-``map``) cannot recur by design.
        """
        for worker_id in list(self._workers):
            worker = self._workers[worker_id]
            if worker.proc.is_alive() and worker.assigned is None:
                try:
                    worker.task_q.put(None)
                except (ValueError, OSError):  # pragma: no cover
                    pass
                worker.proc.join(_TERM_GRACE_S)
            self._dismiss_worker(worker_id, kill=True)
        if self._result_q is not None:
            self._result_q.close()
            self._result_q.cancel_join_thread()
            self._result_q = None

    # ------------------------------------------------------------ loop phases
    def _assign_ready(self) -> None:
        idle = [w for w in self._workers.values() if w.assigned is None]
        if not idle:
            return
        now = time.monotonic()
        ready = sorted(p for p in self._pending if p[0] <= now)
        for worker, entry in zip(idle, ready):
            self._pending.remove(entry)
            _, index, attempt = entry
            worker.assigned = (index, attempt)
            worker.assigned_at = time.monotonic()
            worker.started_at = None
            worker.task_q.put((index, attempt, self._tasks[index]))

    def _drain_results(self) -> None:
        """Handle every queued worker message; block briefly for one."""
        timeout = _POLL_S
        while True:
            try:
                msg = self._result_q.get(timeout=timeout)
            except queue_mod.Empty:
                return
            timeout = 0.0  # drain the rest without blocking
            kind, worker_id, index, attempt, body = msg
            worker = self._workers.get(worker_id)
            held = worker is not None and worker.assigned == (
                index,
                attempt,
            )
            if kind == "start":
                if held:
                    worker.started_at = time.monotonic()
                continue
            if kind == "event":
                # Live telemetry from a running task; stale attempts
                # (already failed over) are silenced.
                if held and self._on_event is not None:
                    self._on_event(index, body)
                continue
            if held:
                self._durations.append(
                    time.monotonic() - worker.age_basis
                )
                worker.assigned = None
                worker.started_at = None
            if kind == "done":
                self._complete(index, body)
            else:  # "error"
                self._handle_failure(
                    index, attempt, reason="error", detail=body
                )

    def _reap_crashes(self) -> None:
        for worker_id, worker in list(self._workers.items()):
            if worker.proc.is_alive():
                continue
            assigned = worker.assigned
            exitcode = worker.proc.exitcode
            self._dismiss_worker(worker_id)
            if assigned is None:
                continue  # idle death; _maintain_strength replaces it
            self.tracer.count("worker_crashes")
            index, attempt = assigned
            self._handle_failure(
                index,
                attempt,
                reason="crash",
                detail=(
                    f"worker exited with code {exitcode} while "
                    f"simulating point {index}"
                ),
            )

    def _enforce_deadline(self) -> None:
        deadline = self.policy.deadline_for(self._durations)
        if deadline is None:
            return
        now = time.monotonic()
        for worker_id, worker in list(self._workers.items()):
            if worker.assigned is None:
                continue
            if now - worker.age_basis <= deadline:
                continue
            self.tracer.count("timeouts")
            index, attempt = worker.assigned
            worker.assigned = None  # don't double-fail via crash reap
            self._dismiss_worker(worker_id, kill=True)
            self._handle_failure(
                index,
                attempt,
                reason="timeout",
                detail=(
                    f"point {index} exceeded the {deadline:.1f}s "
                    "deadline"
                ),
            )

    # ----------------------------------------------------- completion/failure
    def _complete(self, index: int, result: object) -> None:
        if index in self._results:  # stale duplicate; results identical
            return
        self._results[index] = result
        self.tracer.count("points_simulated")
        if self._on_result is not None:
            self._on_result(index, result)

    def _handle_failure(
        self, index: int, attempt: int, reason: str, detail: str
    ) -> None:
        if index in self._results:  # a concurrent attempt finished
            return
        next_attempt = attempt + 1
        if next_attempt <= self.policy.retries:
            self.tracer.count("retries")
            ready_at = time.monotonic() + self.policy.backoff_s(
                next_attempt
            )
            self._pending.append((ready_at, index, next_attempt))
            return
        if not self.in_process_fallback:
            # The supervisor must outlive the task (it is a daemon, or
            # the task is known to crash its host): spent budget is a
            # hard failure, never an in-process re-run.
            raise PointFailure(
                index,
                next_attempt,
                f"last failure ({reason}): {detail}",
            )
        # Budget spent: one final serial attempt in this process. A
        # deterministic failure reproduces here and surfaces as a real
        # error, with the last worker-side detail attached.
        self.tracer.count("fallback_in_process")
        try:
            result = self._call_in_process(
                self._tasks[index], index, self._on_event
            )
        except Exception as exc:
            raise PointFailure(
                index,
                next_attempt + 1,
                f"last failure ({reason}): {detail}; in-process "
                f"fallback raised {exc!r}",
            ) from exc
        self._complete(index, result)
