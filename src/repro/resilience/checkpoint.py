"""Journaled checkpoints: crash-safe records of completed points.

A :class:`CheckpointJournal` is a directory holding one *segment* file
per completed grid point plus a small ``meta.json``. Appending a point
writes its segment to a same-directory temp file, fsyncs, then
``os.replace``\\ s it into place — the journal therefore never contains
a half-written segment under its final name; a torn write (power loss,
``kill -9`` mid-rename) at worst leaves a stray temp file that the
next open sweeps away.

Each segment frames a pickled payload (a stripped
:class:`~repro.system.SimOutcome`) with a magic string, the payload
length, a CRC32, and the SHA-256 digest of the :class:`SimRequest`
that produced it. On resume a point is only reused when its index
*and* request digest match — so a journal from a different grid shape
(``--quick`` vs full, different persona) can never leak stale outcomes
into a run — and any segment whose length or CRC does not verify is
treated as absent: only the damaged tail of an interrupted campaign is
re-simulated, never the whole grid.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import struct
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

#: Bump when the segment framing changes; unknown versions are damaged.
_MAGIC = b"RJRN1\0"
#: crc32(payload), len(payload), sha256(request) — after the magic.
_HEADER = struct.Struct(">IQ32s")
_SEGMENT_RE = re.compile(r"^point-(\d{6})\.seg$")
_META_NAME = "meta.json"

JOURNAL_SCHEMA_VERSION = 1


def request_digest(request: object) -> bytes:
    """SHA-256 identity of one grid point's simulation request.

    The digest is over the request's pickle. Requests are plain
    dataclasses of scalars, lists, and insertion-ordered dicts (no
    sets), so the bytes are stable across processes and runs of the
    same code — which is what lets ``--resume`` match points written
    by an earlier, interrupted process.
    """
    return hashlib.sha256(
        pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
    ).digest()


def _segment_name(index: int) -> str:
    return f"point-{index:06d}.seg"


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (best effort on exotic filesystems)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


@dataclass
class JournalStatus:
    """What ``repro status`` reports about one experiment's journal."""

    path: Path
    exists: bool
    points: int = 0
    points_expected: int | None = None
    damaged: list[str] = field(default_factory=list)
    bytes: int = 0
    updated_at: float | None = None
    experiment_id: str | None = None

    @property
    def complete(self) -> bool | None:
        if self.points_expected is None:
            return None
        return self.points >= self.points_expected

    def to_dict(self) -> dict[str, object]:
        return {
            "path": str(self.path),
            "exists": self.exists,
            "experiment_id": self.experiment_id,
            "points": self.points,
            "points_expected": self.points_expected,
            "complete": self.complete,
            "damaged": list(self.damaged),
            "bytes": self.bytes,
            "updated_at": self.updated_at,
        }


class CheckpointJournal:
    """Append-only, CRC-checked record of completed grid points."""

    def __init__(self, path: Path | str, resume: bool = False):
        self.path = Path(path)
        self.resume = resume
        #: index -> (request digest, segment path) for verified segments.
        self._index: dict[int, tuple[bytes, Path]] = {}
        #: Segment names that failed verification on scan.
        self.damaged: list[str] = []
        self.path.mkdir(parents=True, exist_ok=True)
        self._sweep_temp_files()
        if resume:
            self._scan()
        else:
            self._reset()

    # ------------------------------------------------------------- lifecycle
    def _sweep_temp_files(self) -> None:
        for tmp in self.path.glob(".tmp-*"):
            tmp.unlink(missing_ok=True)

    def _reset(self) -> None:
        """Drop any previous campaign's segments (fresh, non-resume run)."""
        for seg in self.path.glob("point-*.seg"):
            seg.unlink(missing_ok=True)
        self._index.clear()
        self.damaged.clear()

    def _scan(self) -> None:
        for seg in sorted(self.path.iterdir()):
            m = _SEGMENT_RE.match(seg.name)
            if m is None:
                continue
            digest = self._verify_segment(seg)
            if digest is None:
                self.damaged.append(seg.name)
            else:
                self._index[int(m.group(1))] = (digest, seg)

    def complete(self) -> None:
        """The campaign finished: the journal has served its purpose."""
        for entry in list(self.path.iterdir()):
            entry.unlink(missing_ok=True)
        self._index.clear()
        try:
            self.path.rmdir()
        except OSError:  # pragma: no cover - concurrent writer
            pass

    # --------------------------------------------------------------- segments
    @staticmethod
    def _verify_segment(seg: Path) -> bytes | None:
        """The request digest of a well-formed segment, else ``None``."""
        try:
            blob = seg.read_bytes()
        except OSError:  # pragma: no cover - unreadable file
            return None
        head = len(_MAGIC) + _HEADER.size
        if len(blob) < head or not blob.startswith(_MAGIC):
            return None
        crc, length, digest = _HEADER.unpack(blob[len(_MAGIC):head])
        payload = blob[head:]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return None
        return digest

    def append(self, index: int, digest: bytes, outcome: object) -> Path:
        """Journal one completed point (atomic temp-file + rename)."""
        payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
        blob = (
            _MAGIC
            + _HEADER.pack(zlib.crc32(payload), len(payload), digest)
            + payload
        )
        final = self.path / _segment_name(index)
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=self.path)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, final)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        _fsync_dir(self.path)
        self._index[index] = (digest, final)
        return final

    def get(self, index: int, digest: bytes) -> object | None:
        """The journaled outcome for ``(index, digest)``, if intact."""
        entry = self._index.get(index)
        if entry is None or entry[0] != digest:
            return None
        seg_digest = self._verify_segment(entry[1])
        if seg_digest != digest:  # damaged since the scan
            self._index.pop(index, None)
            self.damaged.append(entry[1].name)
            return None
        blob = entry[1].read_bytes()
        return pickle.loads(blob[len(_MAGIC) + _HEADER.size:])

    def __contains__(self, index: int) -> bool:
        return index in self._index

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------- meta
    def write_meta(
        self,
        experiment_id: str | None = None,
        points_expected: int | None = None,
    ) -> None:
        """Record campaign facts for ``repro status`` (atomic write)."""
        meta = {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "experiment_id": experiment_id,
            "points_expected": points_expected,
            "updated_at": time.time(),
        }
        from repro.util.io import atomic_write_text

        atomic_write_text(
            self.path / _META_NAME, json.dumps(meta, indent=2) + "\n"
        )


def journal_status(path: Path | str) -> JournalStatus:
    """Inspect a journal directory without opening it for writing."""
    path = Path(path)
    status = JournalStatus(path=path, exists=path.is_dir())
    if not status.exists:
        return status
    meta_path = path / _META_NAME
    if meta_path.exists():
        try:
            meta = json.loads(meta_path.read_text())
            status.experiment_id = meta.get("experiment_id")
            status.points_expected = meta.get("points_expected")
        except (OSError, json.JSONDecodeError):
            status.damaged.append(_META_NAME)
    newest = 0.0
    for seg in sorted(path.iterdir()):
        if _SEGMENT_RE.match(seg.name) is None:
            continue
        size = seg.stat().st_size
        status.bytes += size
        newest = max(newest, seg.stat().st_mtime)
        if CheckpointJournal._verify_segment(seg) is None:
            status.damaged.append(seg.name)
        else:
            status.points += 1
    status.updated_at = newest or None
    return status
