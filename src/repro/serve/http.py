"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

Just enough protocol for the simulation service: request-line +
headers + ``Content-Length`` bodies on the way in; fixed-length or
chunked (for the streaming job endpoint) responses on the way out.
Every response closes the connection — the service's requests are
long-lived simulations, not chatty RPCs, so keep-alive buys nothing
and connection state costs correctness.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

#: Refuse request bodies larger than this (a SweepSpec is ~1 KB).
MAX_BODY_BYTES = 4 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024


class ProtocolError(Exception):
    """The peer sent something that is not the HTTP we speak."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Peer address, filled in by the daemon (rate-limit identity).
    client: str = ""

    def json(self) -> object:
        try:
            return json.loads(self.body or b"null")
        except json.JSONDecodeError as exc:
            raise ProtocolError(
                400, f"request body is not valid JSON: {exc}"
            ) from exc


async def read_request(
    reader: asyncio.StreamReader,
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(431, "request head too large") from exc
    if len(head) > _MAX_HEADER_BYTES:
        raise ProtocolError(431, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise ProtocolError(
            400, f"malformed request line: {lines[0]!r}"
        ) from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = {
        k: v[-1] for k, v in parse_qs(split.query).items()
    }
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def response_head(
    status: int,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    content_length: int | None = None,
    chunked: bool = False,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    return (
        response_head(
            status,
            content_type=content_type,
            extra_headers=extra_headers,
            content_length=len(body),
        )
        + body
    )


def json_response(
    status: int,
    document: object,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    body = (json.dumps(document, indent=2) + "\n").encode("utf-8")
    return response(status, body, extra_headers=extra_headers)


def error_response(
    status: int,
    message: str,
    retry_after: float | None = None,
    **details: object,
) -> bytes:
    """An error document; ``retry_after`` (seconds) also becomes the
    ``Retry-After`` header — the 429/503 backpressure contract."""
    headers = None
    if retry_after is not None:
        seconds = max(1, math.ceil(retry_after))
        headers = {"Retry-After": str(seconds)}
        details = {"retry_after_s": seconds, **details}
    return json_response(
        status,
        {"error": {"message": message, **details}},
        extra_headers=headers,
    )


def chunk(data: bytes) -> bytes:
    """One chunked-transfer frame."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


#: The terminating zero-length chunk.
LAST_CHUNK = b"0\r\n\r\n"
