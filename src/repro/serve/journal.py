"""Durable job journal: the daemon's crash-safe memory of accepted work.

Every simulating request the daemon admits is journaled under
``results/serve/jobs/`` as one CRC-framed record *before* execution
starts, updated on state transitions, and retired (deleted) when the
job reaches a terminal state with its result safely in the
content-addressed store. A daemon that dies — ``SIGKILL``, power
loss, a drain that timed out — therefore leaves behind exactly the
set of jobs whose results it still owed, and the next daemon replays
them on startup through the normal execution path. Sweep points that
completed before the crash are already in the CAS (the
:class:`~repro.serve.cas.CasJournal` appends each point the moment it
exists), so a recovered sweep re-simulates only the missing tail —
the service-level twin of ``repro run --resume``.

Records use the same atomic write discipline as the checkpoint
journal (same-directory temp file + fsync + rename + directory
fsync) and the same defensive read: a record whose magic, length, or
CRC32 fails verification is quarantined (renamed ``*.damaged``) and
never replayed — a torn journal record must cost one lost job, not a
crashed recovery loop.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.resilience.checkpoint import _fsync_dir

#: Bump when the record framing changes; unknown frames are damaged.
_MAGIC = b"RJOB1\0"
#: crc32(payload), len(payload) — payload is UTF-8 JSON.
_HEADER = struct.Struct(">IQ")

JOB_JOURNAL_SCHEMA_VERSION = 1

#: Where ``repro serve`` keeps the journal unless told otherwise.
DEFAULT_JOBS_DIR = "results/serve/jobs"

#: States a scanned record may carry; all of them are recoverable
#: (a terminal job is retired, i.e. deleted, never left behind).
RECOVERABLE_STATES = ("accepted", "running", "interrupted")


@dataclass
class JobRecord:
    """One journaled job: everything needed to re-execute it."""

    kind: str  # "run" | "sweep"
    digest: str  # the request's canonical sha256
    state: str  # accepted | running | interrupted
    request: dict  # the parsed request document, verbatim
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": JOB_JOURNAL_SCHEMA_VERSION,
            "kind": self.kind,
            "digest": self.digest,
            "state": self.state,
            "request": self.request,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(
            kind=str(data["kind"]),
            digest=str(data["digest"]),
            state=str(data["state"]),
            request=dict(data["request"]),
            created_at=float(data.get("created_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
        )


class JobJournal:
    """CRC-framed, atomically-written job records, one file per job.

    Records are keyed ``<kind>-<digest>.job``: re-submitting an
    identical request while the original is still journaled updates
    the same record (the digest *is* the job's identity, exactly as
    in the CAS), so recovery never replays one piece of work twice.
    """

    def __init__(self, root: Path | str = DEFAULT_JOBS_DIR):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_temp_files()

    def _sweep_temp_files(self) -> None:
        for tmp in self.root.glob(".tmp-*"):
            tmp.unlink(missing_ok=True)

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / f"{kind}-{digest}.job"

    # ------------------------------------------------------------------ write
    def record(
        self, kind: str, digest: str, state: str, request: dict
    ) -> Path:
        """Journal (or update) one job atomically; returns its path."""
        if state not in RECOVERABLE_STATES:
            raise ValueError(
                f"unjournalable state {state!r}; terminal jobs are "
                f"retired, not recorded (recoverable: "
                f"{RECOVERABLE_STATES})"
            )
        path = self._path(kind, digest)
        existing = self._load(path)
        rec = JobRecord(
            kind=kind,
            digest=digest,
            state=state,
            request=request,
            created_at=(
                existing.created_at if existing else time.time()
            ),
        )
        payload = json.dumps(
            rec.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        blob = (
            _MAGIC
            + _HEADER.pack(zlib.crc32(payload), len(payload))
            + payload
        )
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=self.root)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        _fsync_dir(self.root)
        return path

    def retire(self, kind: str, digest: str) -> None:
        """The job reached a terminal state: forget it."""
        self._path(kind, digest).unlink(missing_ok=True)
        _fsync_dir(self.root)

    def mark_interrupted(self, kind: str, digest: str) -> None:
        """Shutdown abandoned this job: record that, keep the record."""
        existing = self.get(kind, digest)
        if existing is not None:
            self.record(kind, digest, "interrupted", existing.request)

    # ------------------------------------------------------------------- read
    @staticmethod
    def _decode(blob: bytes) -> JobRecord | None:
        head = len(_MAGIC) + _HEADER.size
        if len(blob) < head or not blob.startswith(_MAGIC):
            return None
        crc, length = _HEADER.unpack(blob[len(_MAGIC):head])
        payload = blob[head:]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return None
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if data.get("schema_version") != JOB_JOURNAL_SCHEMA_VERSION:
            return None
        try:
            return JobRecord.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def _load(self, path: Path) -> JobRecord | None:
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        return self._decode(blob)

    def get(self, kind: str, digest: str) -> JobRecord | None:
        return self._load(self._path(kind, digest))

    def scan(self) -> tuple[list[JobRecord], list[str]]:
        """Every recoverable record, oldest first, plus quarantined names.

        A record that fails verification — torn tail, flipped bits,
        an unknown schema — is renamed ``<name>.damaged`` so it is
        inspectable but never rescanned; the job it described is lost
        (its client will retry), the daemon is not.
        """
        records: list[JobRecord] = []
        damaged: list[str] = []
        for path in sorted(self.root.glob("*.job")):
            rec = self._load(path)
            if rec is None or rec.state not in RECOVERABLE_STATES:
                damaged.append(path.name)
                try:
                    os.replace(
                        path, path.with_name(path.name + ".damaged")
                    )
                except OSError:  # pragma: no cover - racing unlink
                    pass
                continue
            records.append(rec)
        records.sort(key=lambda r: r.created_at)
        return records, damaged

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.job"))
