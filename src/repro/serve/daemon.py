"""The ``repro serve`` daemon: simulation-as-a-service.

One asyncio process turns the repository's experiment runners into a
service with a memory:

* ``POST /v1/run``            — one registry experiment (by id, plus
  RunContext overrides: quick/persona/tier/fidelity/jobs/batch/checks);
  the response body is byte-identical to ``repro run --json``.
* ``POST /v1/sweep``          — a :class:`~repro.sweepspec.SweepSpec`
  document; the response is the same document ``repro sweep --json``
  emits (one shared serializer).
* ``GET /v1/jobs/<id>``       — job manifest + recorded telemetry
  events; ``?stream=1`` streams events live as chunked JSON lines.
* ``GET /v1/experiments``     — registry metadata (``repro list
  --json``'s document).
* ``GET /v1/status``          — the shared status document (``repro
  status --json``'s document), plus this daemon's job manifests.

Completed work is memoized in the content-addressed store under
``results/cas/`` (:mod:`repro.serve.cas`): whole response documents
keyed by the request's canonical digest, and — for sweeps — every
grid point individually via :class:`~repro.serve.cas.CasJournal`, so
a new sweep that overlaps an old one only simulates the novel points.
Identical in-flight requests coalesce onto one future: N concurrent
identical POSTs trigger exactly one simulation and N byte-identical
responses. The ``X-Repro-Cache`` response header says which path
served each request (``miss`` | ``hit`` | ``coalesced``), and
``X-Repro-Job`` names the job.

Simulations are CPU-bound, so they run on a small thread pool while
the event loop keeps serving status/stream requests.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hashlib
import json
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS, RunContext, get_spec
from repro.experiments.context import DEFAULT_CHECKPOINT_DIR
from repro.obs import Tracer
from repro.serve.cas import DEFAULT_CAS_DIR, CasJournal, ResultCache
from repro.serve.http import (
    LAST_CHUNK,
    HttpRequest,
    ProtocolError,
    chunk,
    error_response,
    json_response,
    read_request,
    response,
    response_head,
)
from repro.serve.jobs import Job, JobRegistry
from repro.serve.status import status_document
from repro.sweepspec import (
    SpecError,
    SweepSpec,
    run_sweepspec,
    sweep_document,
)

_RUN_FIELDS = {
    "experiment",
    "quick",
    "persona",
    "tier",
    "fidelity",
    "jobs",
    "batch",
    "checks",
}


class RequestError(Exception):
    """A well-formed HTTP request asking for something invalid."""

    def __init__(self, message: str, **details: object):
        self.details = details
        super().__init__(message)


def _canonical_digest(document: dict) -> str:
    """sha256 over canonical JSON: the service's request identity."""
    blob = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _parse_run_body(data: object) -> dict:
    """Validate a ``POST /v1/run`` body, field by field."""
    from repro.silicon.variation import PERSONAS

    if not isinstance(data, dict):
        raise RequestError(
            "request body must be a JSON object",
            got=type(data).__name__,
        )
    unknown = sorted(set(data) - _RUN_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown field {unknown[0]!r}",
            allowed=sorted(_RUN_FIELDS),
        )
    experiment = data.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise RequestError(
            "field 'experiment' is required",
            known=sorted(EXPERIMENTS),
        )
    if experiment not in EXPERIMENTS:
        raise RequestError(
            f"unknown experiment {experiment!r}",
            known=sorted(EXPERIMENTS),
        )
    persona = data.get("persona")
    if persona is not None and persona not in PERSONAS:
        raise RequestError(
            f"unknown persona {persona!r}",
            known=sorted(PERSONAS),
        )
    for name in ("quick", "batch", "checks"):
        if name in data and not isinstance(data[name], bool):
            raise RequestError(
                f"field {name!r} must be true/false",
                got=data[name],
            )
    tier = data.get("tier", "sim")
    if tier not in ("sim", "auto", "fast"):
        raise RequestError(
            f"field 'tier' must be one of sim/auto/fast, got {tier!r}"
        )
    fidelity = data.get("fidelity", 0.05)
    if (
        isinstance(fidelity, bool)
        or not isinstance(fidelity, (int, float))
        or fidelity <= 0
    ):
        raise RequestError(
            f"field 'fidelity' must be a positive number, "
            f"got {fidelity!r}"
        )
    jobs = data.get("jobs", 1)
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 0:
        raise RequestError(
            f"field 'jobs' must be a non-negative integer, got {jobs!r}"
        )
    return {
        "experiment": experiment,
        "quick": bool(data.get("quick", False)),
        "persona": persona,
        "tier": tier,
        "fidelity": float(fidelity),
        "jobs": jobs,
        "batch": bool(data.get("batch", True)),
        "checks": bool(data.get("checks", False)),
    }


class SimulationService:
    """The daemon: routing, cache arbitration, and job execution."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cas_dir: str | Path = DEFAULT_CAS_DIR,
        checkpoint_dir: str | Path = DEFAULT_CHECKPOINT_DIR,
        profile_dir: str | None = None,
        workers: int = 2,
    ):
        self.host = host
        self.port = port
        self.cache = ResultCache(cas_dir)
        self.checkpoint_dir = str(checkpoint_dir)
        self.profile_dir = profile_dir
        self.jobs = JobRegistry()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, workers),
            thread_name_prefix="repro-serve",
        )
        #: (digest, tier, tolerance) -> Future[bytes]; loop-thread only.
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._stop: asyncio.Event | None = None
        self.bound_port: int | None = None

    # ------------------------------------------------------------- identities
    @staticmethod
    def run_digest(params: dict) -> str:
        """Identity of a run request: only the fields that shape the
        simulated result. Tier/fidelity/jobs/batch/checks are excluded
        — they cannot change a cycle-level document's bytes — and tier
        arbitration instead happens against the *entry's* recorded
        tier (a surrogate-served document never satisfies ``sim``)."""
        return _canonical_digest(
            {
                "kind": "run",
                "experiment": params["experiment"],
                "quick": params["quick"],
                "persona": params["persona"],
            }
        )

    @staticmethod
    def sweep_digest(spec: SweepSpec) -> str:
        return _canonical_digest(
            {"kind": "sweep", "spec": spec.to_dict(), "seed": 0}
        )

    # -------------------------------------------------------------- lifecycle
    async def _serve(self, announce: bool = False,
                     ready=None) -> None:
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        if announce:
            print(
                f"serving on http://{self.host}:{self.bound_port}",
                flush=True,
            )
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def run_blocking(self) -> int:
        """Foreground mode (``repro serve``); SIGINT exits cleanly."""
        try:
            asyncio.run(self._serve(announce=True))
        except KeyboardInterrupt:
            pass
        return 0

    def start_background(self):
        """Run the daemon on a daemon thread (tests); returns once the
        socket is bound, with ``self.bound_port`` set."""
        import threading

        ready = threading.Event()
        loop_holder: dict[str, asyncio.AbstractEventLoop] = {}

        async def main() -> None:
            loop_holder["loop"] = asyncio.get_running_loop()
            await self._serve(ready=ready)

        thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            name="repro-serve",
            daemon=True,
        )
        thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        self._bg_loop = loop_holder["loop"]
        self._bg_thread = thread
        return thread

    def shutdown(self) -> None:
        """Stop a background daemon started by :meth:`start_background`."""
        loop = getattr(self, "_bg_loop", None)
        if loop is not None and self._stop is not None:
            loop.call_soon_threadsafe(self._stop.set)
            self._bg_thread.join(timeout=10)

    # -------------------------------------------------------------- transport
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(error_response(exc.status, str(exc)))
                return
            if request is None:
                return
            if request.query.get("stream") and (
                request.method == "GET"
                and request.path.startswith("/v1/jobs/")
            ):
                await self._stream_job(request, writer)
                return
            writer.write(await self._route(request))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()

    async def _route(self, request: HttpRequest) -> bytes:
        path, method = request.path, request.method
        try:
            if path == "/v1/experiments":
                if method != "GET":
                    return error_response(405, "GET only")
                from repro.experiments.registry import (
                    experiments_document,
                )

                return json_response(200, experiments_document())
            if path == "/v1/status":
                if method != "GET":
                    return error_response(405, "GET only")
                return json_response(
                    200,
                    status_document(
                        self.checkpoint_dir,
                        jobs=self.jobs.manifests(),
                    ),
                )
            if path.startswith("/v1/jobs/"):
                if method != "GET":
                    return error_response(405, "GET only")
                return self._job_response(path[len("/v1/jobs/"):])
            if path == "/v1/run":
                if method != "POST":
                    return error_response(405, "POST only")
                return await self._handle_run(request)
            if path == "/v1/sweep":
                if method != "POST":
                    return error_response(405, "POST only")
                return await self._handle_sweep(request)
            return error_response(404, f"no route for {path}")
        except ProtocolError as exc:
            return error_response(exc.status, str(exc))
        except RequestError as exc:
            return error_response(400, str(exc), **exc.details)
        except SpecError as exc:
            return error_response(
                400,
                str(exc),
                spec_field=exc.spec_field,
                problem=exc.problem,
                hint=exc.hint,
            )
        except Exception as exc:  # noqa: BLE001 - daemon must answer
            return error_response(
                500, f"{type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------------------------- jobs
    def _job_response(self, job_id: str) -> bytes:
        job = self.jobs.get(job_id)
        if job is None:
            return error_response(404, f"unknown job {job_id!r}")
        events, _ = job.events_since(0)
        doc = job.snapshot()
        doc["events"] = events
        return json_response(200, doc)

    async def _stream_job(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        job_id = request.path[len("/v1/jobs/"):]
        job = self.jobs.get(job_id)
        if job is None:
            writer.write(
                error_response(404, f"unknown job {job_id!r}")
            )
            return
        writer.write(
            response_head(
                200,
                content_type="application/x-ndjson",
                chunked=True,
                extra_headers={"X-Repro-Job": job.job_id},
            )
        )
        await writer.drain()
        cursor = 0
        while True:
            events, cursor = job.events_since(cursor)
            for event in events:
                writer.write(
                    chunk(
                        (json.dumps(event) + "\n").encode("utf-8")
                    )
                )
            if events:
                await writer.drain()
            if job.done:
                break
            await asyncio.sleep(0.05)
        final = {"event": "end", "manifest": job.snapshot()}
        writer.write(
            chunk((json.dumps(final) + "\n").encode("utf-8"))
        )
        writer.write(LAST_CHUNK)

    # --------------------------------------------------------------- /v1/run
    async def _handle_run(self, request: HttpRequest) -> bytes:
        params = _parse_run_body(request.json())
        digest = self.run_digest(params)
        return await self._serve_cached(
            kind="run",
            namespace="run",
            digest=digest,
            tier=params["tier"],
            tolerance=params["fidelity"],
            experiment_id=params["experiment"],
            execute=lambda job: self._execute_run(params, job),
        )

    def _execute_run(self, params: dict, job: Job):
        """Worker-thread body: run one experiment, JSON-serialized."""
        from repro.silicon.variation import PERSONAS

        tracer = Tracer()
        tracer.subscribe(job.record_event)
        ctx = RunContext(
            quick=params["quick"],
            jobs=params["jobs"],
            persona=(
                PERSONAS[params["persona"]]
                if params["persona"]
                else None
            ),
            tracer=tracer,
            out_format="json",
            checks=params["checks"],
            batch=params["batch"],
            tier=params["tier"],
            fidelity=params["fidelity"],
            profile_dir=self.profile_dir,
        )
        result = get_spec(params["experiment"]).resolve()(ctx)
        body = (result.to_json() + "\n").encode("utf-8")
        return body, dict(tracer.resilience), dict(tracer.meta)

    # ------------------------------------------------------------- /v1/sweep
    async def _handle_sweep(self, request: HttpRequest) -> bytes:
        spec = SweepSpec.from_dict(request.json())
        tier = request.query.get("tier", "sim")
        if tier not in ("sim", "auto", "fast"):
            raise RequestError(
                f"query parameter 'tier' must be sim/auto/fast, "
                f"got {tier!r}"
            )
        try:
            fidelity = float(request.query.get("fidelity", "0.05"))
            jobs = int(request.query.get("jobs", "1"))
        except ValueError as exc:
            raise RequestError(
                f"malformed query parameter: {exc}"
            ) from exc
        digest = self.sweep_digest(spec)
        return await self._serve_cached(
            kind="sweep",
            namespace="sweep",
            digest=digest,
            tier=tier,
            tolerance=fidelity,
            experiment_id=spec.experiment_id,
            execute=lambda job: self._execute_sweep(
                spec, tier, fidelity, jobs, job
            ),
        )

    def _execute_sweep(
        self,
        spec: SweepSpec,
        tier: str,
        fidelity: float,
        jobs: int,
        job: Job,
    ):
        """Worker-thread body: run one SweepSpec with per-point CAS."""
        from repro.resilience import RetryPolicy, Supervision

        tracer = Tracer()
        tracer.subscribe(job.record_event)
        ctx = RunContext(
            quick=spec.quick,
            jobs=jobs,
            tracer=tracer,
            out_format="json",
            tier=tier,
            fidelity=fidelity,
            profile_dir=self.profile_dir,
        )
        supervision = Supervision(
            policy=RetryPolicy(retries=2),
            journal=CasJournal(
                self.cache,
                tier=tier,
                tolerance=fidelity,
                tracer=tracer,
            ),
            tracer=tracer,
            experiment_id=spec.experiment_id,
        )
        start = time.perf_counter()
        result = run_sweepspec(spec, ctx, supervision=supervision)
        doc = sweep_document(
            spec,
            result,
            tier=tier,
            fidelity=fidelity,
            wall_s=time.perf_counter() - start,
            counters=dict(tracer.resilience),
            meta=dict(tracer.meta),
        )
        body = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
        return body, dict(tracer.resilience), dict(tracer.meta)

    # ------------------------------------------------- cache + coalescing
    async def _serve_cached(
        self,
        kind: str,
        namespace: str,
        digest: str,
        tier: str,
        tolerance: float,
        experiment_id: str,
        execute,
    ) -> bytes:
        """The tier-aware memo path every simulating endpoint shares.

        Order of arbitration: completed entry in the store → serve the
        stored bytes (``hit``); identical request currently executing
        → await its future (``coalesced``); otherwise simulate, store,
        and resolve the shared future (``miss``). The inflight table
        only mutates on the event-loop thread, so no lock.
        """
        entry = self.cache.lookup(
            namespace, digest, tier=tier, tolerance=tolerance
        )
        if entry is not None:
            job = self.jobs.create(kind, digest, experiment_id)
            job.add_counters({"cas_hits": 1})
            job.finish()
            return response(
                200,
                entry.payload,
                extra_headers={
                    "X-Repro-Cache": "hit",
                    "X-Repro-Job": job.job_id,
                },
            )

        key = (namespace, digest, tier, tolerance)
        shared = self._inflight.get(key)
        if shared is not None:
            job = self.jobs.create(kind, digest, experiment_id)
            job.add_counters({"inflight_coalesced": 1})
            try:
                body = await asyncio.shield(shared)
            except Exception as exc:  # the one simulation failed
                job.finish(error=str(exc))
                return error_response(
                    500,
                    f"coalesced request failed: {exc}",
                    job=job.job_id,
                )
            job.finish()
            return response(
                200,
                body,
                extra_headers={
                    "X-Repro-Cache": "coalesced",
                    "X-Repro-Job": job.job_id,
                },
            )

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # A failed simulation with zero coalesced waiters must not
        # complain about never-retrieved exceptions.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future
        job = self.jobs.create(kind, digest, experiment_id)
        job.mark_running()
        try:
            body, counters, meta = await loop.run_in_executor(
                self._executor, execute, job
            )
        except Exception as exc:
            job.finish(error=f"{type(exc).__name__}: {exc}")
            future.set_exception(exc)
            return error_response(
                500,
                f"{type(exc).__name__}: {exc}",
                job=job.job_id,
            )
        finally:
            self._inflight.pop(key, None)
        entry_tier = (
            "sim"
            if tier == "sim" or not counters.get("surrogate_hits")
            else "fast"
        )
        self.cache.put(
            namespace,
            digest,
            body,
            tier=entry_tier,
            tier_err=float(meta.get("surrogate_max_err", 0.0) or 0.0),
        )
        job.add_counters({"cas_misses": 1})
        job.add_counters(
            {k: v for k, v in counters.items() if isinstance(v, int)}
        )
        job.finish()
        future.set_result(body)
        return response(
            200,
            body,
            extra_headers={
                "X-Repro-Cache": "miss",
                "X-Repro-Job": job.job_id,
            },
        )
