"""The ``repro serve`` daemon: simulation-as-a-service.

One asyncio process turns the repository's experiment runners into a
service with a memory:

* ``POST /v1/run``            — one registry experiment (by id, plus
  RunContext overrides: quick/persona/tier/fidelity/jobs/batch/checks);
  the response body is byte-identical to ``repro run --json``.
* ``POST /v1/sweep``          — a :class:`~repro.sweepspec.SweepSpec`
  document; the response is the same document ``repro sweep --json``
  emits (one shared serializer).
* ``GET /v1/jobs/<id>``       — job manifest + recorded telemetry
  events; ``?stream=1`` streams events live as chunked JSON lines.
* ``GET /v1/experiments``     — registry metadata (``repro list
  --json``'s document).
* ``GET /v1/status``          — the shared status document (``repro
  status --json``'s document), plus this daemon's job manifests, CAS
  statistics, and service/admission counters.

Completed work is memoized in the content-addressed store under
``results/cas/`` (:mod:`repro.serve.cas`): whole response documents
keyed by the request's canonical digest, and — for sweeps — every
grid point individually via :class:`~repro.serve.cas.CasJournal`, so
a new sweep that overlaps an old one only simulates the novel points.
Identical in-flight requests coalesce onto one future: N concurrent
identical POSTs trigger exactly one simulation and N byte-identical
responses. The ``X-Repro-Cache`` response header says which path
served each request (``miss`` | ``hit`` | ``coalesced``), and
``X-Repro-Job`` names the job.

Execution is **process-isolated** (:mod:`repro.serve.workers`): every
admitted job runs in a supervised worker process with heartbeats, a
deadline, and bounded retries — a crashed or hung simulation is
retried and reported, never fatal to the daemon. Admitted jobs are
**durable** (:mod:`repro.serve.journal`): journaled before execution,
retired after, recovered on the next start if the daemon dies in
between (sweeps resume from their per-point CAS entries, so completed
work is never repeated). Admission is **bounded**: a saturated tier
answers ``503 + Retry-After``, a per-client token bucket answers
``429 + Retry-After``, and ``SIGTERM`` enters drain mode — running
jobs finish, new simulating requests get 503, and a drain that times
out journals the stragglers and exits 75 (the resumable exit code,
matching ``repro run``). The CAS itself is kept under a size quota
by background LRU eviction (``--cas-quota-mb``), with eviction and
scrub totals on ``/v1/status``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hashlib
import json
import os
import signal
import sys
from pathlib import Path

from repro.experiments import EXPERIMENTS, RunContext, get_spec
from repro.experiments.context import DEFAULT_CHECKPOINT_DIR
from repro.resilience.signals import EXIT_RESUMABLE
from repro.serve.cas import DEFAULT_CAS_DIR, ResultCache
from repro.serve.http import (
    LAST_CHUNK,
    HttpRequest,
    ProtocolError,
    chunk,
    error_response,
    json_response,
    read_request,
    response,
    response_head,
)
from repro.serve.jobs import Job, JobRegistry
from repro.serve.journal import DEFAULT_JOBS_DIR, JobJournal, JobRecord
from repro.serve.ratelimit import RateLimiter
from repro.serve.status import status_document
from repro.serve.workers import WorkerTier
from repro.sweepspec import SpecError, SweepSpec

_RUN_FIELDS = {
    "experiment",
    "quick",
    "persona",
    "tier",
    "fidelity",
    "jobs",
    "batch",
    "checks",
}


class RequestError(Exception):
    """A well-formed HTTP request asking for something invalid."""

    def __init__(self, message: str, **details: object):
        self.details = details
        super().__init__(message)


def _canonical_digest(document: dict) -> str:
    """sha256 over canonical JSON: the service's request identity."""
    blob = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _parse_run_body(data: object) -> dict:
    """Validate a ``POST /v1/run`` body, field by field."""
    from repro.silicon.variation import PERSONAS

    if not isinstance(data, dict):
        raise RequestError(
            "request body must be a JSON object",
            got=type(data).__name__,
        )
    unknown = sorted(set(data) - _RUN_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown field {unknown[0]!r}",
            allowed=sorted(_RUN_FIELDS),
        )
    experiment = data.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise RequestError(
            "field 'experiment' is required",
            known=sorted(EXPERIMENTS),
        )
    if experiment not in EXPERIMENTS:
        raise RequestError(
            f"unknown experiment {experiment!r}",
            known=sorted(EXPERIMENTS),
        )
    persona = data.get("persona")
    if persona is not None and persona not in PERSONAS:
        raise RequestError(
            f"unknown persona {persona!r}",
            known=sorted(PERSONAS),
        )
    for name in ("quick", "batch", "checks"):
        if name in data and not isinstance(data[name], bool):
            raise RequestError(
                f"field {name!r} must be true/false",
                got=data[name],
            )
    tier = data.get("tier", "sim")
    if tier not in ("sim", "auto", "fast"):
        raise RequestError(
            f"field 'tier' must be one of sim/auto/fast, got {tier!r}"
        )
    fidelity = data.get("fidelity", 0.05)
    if (
        isinstance(fidelity, bool)
        or not isinstance(fidelity, (int, float))
        or fidelity <= 0
    ):
        raise RequestError(
            f"field 'fidelity' must be a positive number, "
            f"got {fidelity!r}"
        )
    jobs = data.get("jobs", 1)
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 0:
        raise RequestError(
            f"field 'jobs' must be a non-negative integer, got {jobs!r}"
        )
    return {
        "experiment": experiment,
        "quick": bool(data.get("quick", False)),
        "persona": persona,
        "tier": tier,
        "fidelity": float(fidelity),
        "jobs": jobs,
        "batch": bool(data.get("batch", True)),
        "checks": bool(data.get("checks", False)),
    }


class SimulationService:
    """The daemon: routing, cache arbitration, and job execution."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cas_dir: str | Path = DEFAULT_CAS_DIR,
        checkpoint_dir: str | Path = DEFAULT_CHECKPOINT_DIR,
        profile_dir: str | None = None,
        workers: int = 2,
        *,
        jobs_dir: str | Path = DEFAULT_JOBS_DIR,
        queue_depth: int = 8,
        rate_limit: float = 0.0,
        rate_burst: float = 5.0,
        cas_quota_mb: float | None = None,
        gc_interval_s: float = 60.0,
        retries: int = 2,
        deadline_s: float | None = None,
        drain_timeout_s: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.cache = ResultCache(cas_dir)
        self.checkpoint_dir = str(checkpoint_dir)
        self.profile_dir = profile_dir
        self.jobs = JobRegistry()
        self.journal = JobJournal(jobs_dir)
        self.tier = WorkerTier(
            workers=workers, retries=retries, deadline_s=deadline_s
        )
        self.limiter = RateLimiter(rate=rate_limit, burst=rate_burst)
        self.queue_depth = max(0, queue_depth)
        self.cas_quota_bytes = (
            int(cas_quota_mb * 1024 * 1024)
            if cas_quota_mb is not None
            else None
        )
        self.gc_interval_s = gc_interval_s
        self.drain_timeout_s = drain_timeout_s
        #: (digest, tier, tolerance) -> Future[bytes]; loop-thread only.
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: Jobs currently admitted to the tier (running or queued).
        self._active = 0
        self._draining = False
        self._counters: dict[str, int] = {
            "accepted": 0,
            "rejected_saturated": 0,
            "rate_limited": 0,
            "jobs_recovered": 0,
            "jobs_recovery_failed": 0,
            "journal_quarantined": 0,
            "stream_detached": 0,
        }
        self._exit_code = 0
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.bound_port: int | None = None

    # ------------------------------------------------------------- identities
    @staticmethod
    def run_digest(params: dict) -> str:
        """Identity of a run request: only the fields that shape the
        simulated result. Tier/fidelity/jobs/batch/checks are excluded
        — they cannot change a cycle-level document's bytes — and tier
        arbitration instead happens against the *entry's* recorded
        tier (a surrogate-served document never satisfies ``sim``)."""
        return _canonical_digest(
            {
                "kind": "run",
                "experiment": params["experiment"],
                "quick": params["quick"],
                "persona": params["persona"],
            }
        )

    @staticmethod
    def sweep_digest(spec: SweepSpec) -> str:
        return _canonical_digest(
            {"kind": "sweep", "spec": spec.to_dict(), "seed": 0}
        )

    # -------------------------------------------------------------- lifecycle
    async def _serve(
        self,
        announce: bool = False,
        ready=None,
        install_signals: bool = False,
    ) -> None:
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        if install_signals:
            try:
                self._loop.add_signal_handler(
                    signal.SIGTERM,
                    lambda: asyncio.ensure_future(self._drain()),
                )
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or exotic platform
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        if announce:
            print(
                f"serving on http://{self.host}:{self.bound_port}",
                flush=True,
            )
        if ready is not None:
            ready.set()
        recovery = asyncio.ensure_future(self._recover_jobs())
        gc_task = (
            asyncio.ensure_future(self._gc_loop())
            if self.cas_quota_bytes is not None
            else None
        )
        try:
            async with server:
                await self._stop.wait()
        finally:
            recovery.cancel()
            if gc_task is not None:
                gc_task.cancel()
            self.tier.shutdown()
            self._interrupt_unfinished()

    def _interrupt_unfinished(self) -> None:
        """Shutdown reached jobs still queued/running: make that an
        explicit ``interrupted`` state (not a manifest forever claiming
        ``running``) and keep their journal records for recovery."""
        for job in self.jobs:
            if job.done:
                continue
            job.mark_interrupted()
            self.journal.mark_interrupted(
                job.manifest.kind, job.manifest.digest
            )

    async def _drain(self) -> None:
        """SIGTERM: finish running jobs, refuse new ones, then stop.

        Exits 0 when every active job finished inside the timeout;
        otherwise journals the stragglers (they are already journaled
        — the journal record is only retired on completion) and exits
        :data:`~repro.resilience.EXIT_RESUMABLE` so an operator's
        supervisor knows a restart will pick the work back up.
        """
        if self._draining:
            return
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout_s
        while self._active > 0 and loop.time() < deadline:
            await asyncio.sleep(0.05)
        self._exit_code = (
            EXIT_RESUMABLE if self._active > 0 else 0
        )
        assert self._stop is not None
        self._stop.set()

    def begin_drain(self) -> None:
        """Thread-safe drain trigger (tests and embedding code; the
        foreground daemon gets it from SIGTERM)."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self._drain())
        )

    def run_blocking(self) -> int:
        """Foreground mode (``repro serve``); SIGINT exits cleanly,
        SIGTERM drains."""
        try:
            asyncio.run(
                self._serve(announce=True, install_signals=True)
            )
        except KeyboardInterrupt:
            return 0
        if self._exit_code == EXIT_RESUMABLE:
            # Supervisor threads may still hold hung work; a normal
            # exit would block joining them. Everything unfinished is
            # journaled — leave abruptly, like the resumable-run path.
            sys.stdout.flush()
            sys.stderr.flush()
            os._exit(EXIT_RESUMABLE)
        return self._exit_code

    def start_background(self):
        """Run the daemon on a daemon thread (tests); returns once the
        socket is bound, with ``self.bound_port`` set."""
        import threading

        ready = threading.Event()
        loop_holder: dict[str, asyncio.AbstractEventLoop] = {}

        async def main() -> None:
            loop_holder["loop"] = asyncio.get_running_loop()
            await self._serve(ready=ready)

        thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            name="repro-serve",
            daemon=True,
        )
        thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        self._bg_loop = loop_holder["loop"]
        self._bg_thread = thread
        return thread

    def shutdown(self) -> None:
        """Stop a background daemon started by :meth:`start_background`."""
        loop = getattr(self, "_bg_loop", None)
        if loop is not None and self._stop is not None:
            loop.call_soon_threadsafe(self._stop.set)
            self._bg_thread.join(timeout=10)

    # --------------------------------------------------------------- recovery
    async def _recover_jobs(self) -> None:
        """Replay journaled jobs a previous daemon never finished.

        Runs as a startup task on the event loop: each record goes
        through the same admission-free execution path a fresh request
        would, so recovered work coalesces with (and is visible to)
        live traffic. Sweeps resume from their per-point CAS entries —
        the worker's ``CasJournal`` serves completed points back, and
        the run counts them as ``points_resumed``.
        """
        records, damaged = self.journal.scan()
        if damaged:
            self._counters["journal_quarantined"] += len(damaged)
        for rec in records:
            if self._draining:
                break
            try:
                await self._recover_one(rec)
            except asyncio.CancelledError:
                raise
            except Exception:
                self._counters["jobs_recovery_failed"] += 1
            else:
                self._counters["jobs_recovered"] += 1

    async def _recover_one(self, rec: JobRecord) -> None:
        if rec.kind == "run":
            params = _parse_run_body(rec.request["params"])
            digest = self.run_digest(params)
            plan = dict(
                kind="run",
                namespace="run",
                digest=digest,
                tier=params["tier"],
                tolerance=params["fidelity"],
                experiment_id=params["experiment"],
                task=self._run_task(params),
            )
        elif rec.kind == "sweep":
            spec = SweepSpec.from_dict(rec.request["spec"])
            tier = str(rec.request.get("tier", "sim"))
            fidelity = float(rec.request.get("fidelity", 0.05))
            jobs = int(rec.request.get("jobs", 1))
            plan = dict(
                kind="sweep",
                namespace="sweep",
                digest=self.sweep_digest(spec),
                tier=tier,
                tolerance=fidelity,
                experiment_id=spec.experiment_id,
                task=self._sweep_task(
                    spec.to_dict(), tier, fidelity, jobs
                ),
            )
        else:
            raise ValueError(f"unknown journaled kind {rec.kind!r}")
        # The dying daemon may have finished the work but not retired
        # the record (killed between CAS put and retire): a completed
        # entry means the job is already recovered.
        entry = self.cache.lookup(
            plan["namespace"],
            plan["digest"],
            tier=plan["tier"],
            tolerance=plan["tolerance"],
        )
        if entry is not None:
            self.journal.retire(rec.kind, plan["digest"])
            return
        if (plan["namespace"], plan["digest"], plan["tier"],
                plan["tolerance"]) in self._inflight:
            return  # a live request already resubmitted it
        body, _job, error = await self._execute_job(
            request_doc=rec.request, **plan
        )
        if body is None:
            raise RuntimeError(error or "recovery failed")

    # -------------------------------------------------------------- transport
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(error_response(exc.status, str(exc)))
                return
            if request is None:
                return
            peer = writer.get_extra_info("peername")
            request.client = peer[0] if peer else "unknown"
            if request.query.get("stream") and (
                request.method == "GET"
                and request.path.startswith("/v1/jobs/")
            ):
                await self._stream_job(request, writer)
                return
            writer.write(await self._route(request))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()

    async def _route(self, request: HttpRequest) -> bytes:
        path, method = request.path, request.method
        try:
            if path == "/v1/experiments":
                if method != "GET":
                    return error_response(405, "GET only")
                from repro.experiments.registry import (
                    experiments_document,
                )

                return json_response(200, experiments_document())
            if path == "/v1/status":
                if method != "GET":
                    return error_response(405, "GET only")
                return json_response(
                    200,
                    status_document(
                        self.checkpoint_dir,
                        jobs=self.jobs.manifests(),
                        cas=self.cache.stats(),
                        service=self._service_section(),
                    ),
                )
            if path.startswith("/v1/jobs/"):
                if method != "GET":
                    return error_response(405, "GET only")
                return self._job_response(path[len("/v1/jobs/"):])
            if path == "/v1/run":
                if method != "POST":
                    return error_response(405, "POST only")
                return await self._handle_run(request)
            if path == "/v1/sweep":
                if method != "POST":
                    return error_response(405, "POST only")
                return await self._handle_sweep(request)
            return error_response(404, f"no route for {path}")
        except ProtocolError as exc:
            return error_response(exc.status, str(exc))
        except RequestError as exc:
            return error_response(400, str(exc), **exc.details)
        except SpecError as exc:
            return error_response(
                400,
                str(exc),
                spec_field=exc.spec_field,
                problem=exc.problem,
                hint=exc.hint,
            )
        except Exception as exc:  # noqa: BLE001 - daemon must answer
            return error_response(
                500, f"{type(exc).__name__}: {exc}"
            )

    def _service_section(self) -> dict[str, object]:
        """The daemon half of the shared status document."""
        return {
            "draining": self._draining,
            "workers": self.tier.workers,
            "queue_depth": self.queue_depth,
            "active": self._active,
            "journal_dir": str(self.journal.root),
            "journaled_jobs": len(self.journal),
            "rate_limit": self.limiter.rate,
            "cas_quota_bytes": self.cas_quota_bytes,
            **self._counters,
        }

    # ------------------------------------------------------------------- jobs
    def _job_response(self, job_id: str) -> bytes:
        job = self.jobs.get(job_id)
        if job is None:
            return error_response(404, f"unknown job {job_id!r}")
        events, _ = job.events_since(0)
        doc = job.snapshot()
        doc["events"] = events
        return json_response(200, doc)

    async def _stream_job(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        job_id = request.path[len("/v1/jobs/"):]
        job = self.jobs.get(job_id)
        if job is None:
            writer.write(
                error_response(404, f"unknown job {job_id!r}")
            )
            return
        try:
            writer.write(
                response_head(
                    200,
                    content_type="application/x-ndjson",
                    chunked=True,
                    extra_headers={"X-Repro-Job": job.job_id},
                )
            )
            await writer.drain()
            cursor = 0
            while True:
                events, cursor = job.events_since(cursor)
                for event in events:
                    writer.write(
                        chunk(
                            (json.dumps(event) + "\n").encode("utf-8")
                        )
                    )
                if events:
                    await writer.drain()
                if writer.is_closing():
                    raise ConnectionResetError("client went away")
                if job.done:
                    break
                await asyncio.sleep(0.05)
            final = {"event": "end", "manifest": job.snapshot()}
            writer.write(
                chunk((json.dumps(final) + "\n").encode("utf-8"))
            )
            writer.write(LAST_CHUNK)
        except (ConnectionResetError, BrokenPipeError):
            # The subscriber disconnected; the job is not theirs to
            # kill. Detach and let it run — the next poll of
            # /v1/jobs/<id> still sees every event.
            self._counters["stream_detached"] += 1

    # --------------------------------------------------------------- /v1/run
    def _run_task(self, params: dict) -> dict:
        return {
            "kind": "run",
            "params": dict(params),
            "profile_dir": self.profile_dir,
        }

    async def _handle_run(self, request: HttpRequest) -> bytes:
        params = _parse_run_body(request.json())
        digest = self.run_digest(params)
        return await self._serve_cached(
            kind="run",
            namespace="run",
            digest=digest,
            tier=params["tier"],
            tolerance=params["fidelity"],
            experiment_id=params["experiment"],
            task=self._run_task(params),
            request_doc={"params": params},
            client=request.client,
        )

    # ------------------------------------------------------------- /v1/sweep
    def _sweep_task(
        self, spec_dict: dict, tier: str, fidelity: float, jobs: int
    ) -> dict:
        return {
            "kind": "sweep",
            "spec": spec_dict,
            "tier": tier,
            "fidelity": fidelity,
            "jobs": jobs,
            "cas_dir": str(self.cache.root),
            "profile_dir": self.profile_dir,
        }

    async def _handle_sweep(self, request: HttpRequest) -> bytes:
        spec = SweepSpec.from_dict(request.json())
        tier = request.query.get("tier", "sim")
        if tier not in ("sim", "auto", "fast"):
            raise RequestError(
                f"query parameter 'tier' must be sim/auto/fast, "
                f"got {tier!r}"
            )
        try:
            fidelity = float(request.query.get("fidelity", "0.05"))
            jobs = int(request.query.get("jobs", "1"))
        except ValueError as exc:
            raise RequestError(
                f"malformed query parameter: {exc}"
            ) from exc
        digest = self.sweep_digest(spec)
        return await self._serve_cached(
            kind="sweep",
            namespace="sweep",
            digest=digest,
            tier=tier,
            tolerance=fidelity,
            experiment_id=spec.experiment_id,
            task=self._sweep_task(spec.to_dict(), tier, fidelity, jobs),
            request_doc={
                "spec": spec.to_dict(),
                "tier": tier,
                "fidelity": fidelity,
                "jobs": jobs,
            },
            client=request.client,
        )

    # ------------------------------------------------- cache + coalescing
    async def _serve_cached(
        self,
        kind: str,
        namespace: str,
        digest: str,
        tier: str,
        tolerance: float,
        experiment_id: str,
        task: dict,
        request_doc: dict,
        client: str = "",
    ) -> bytes:
        """The admission + memo path every simulating endpoint shares.

        Order of arbitration: per-client rate limit (429) → completed
        entry in the store → serve the stored bytes (``hit``) →
        identical request currently executing → await its future
        (``coalesced``) → drain mode or saturated tier (503) →
        admit: journal, simulate in an isolated worker, store, resolve
        the shared future (``miss``). The inflight table only mutates
        on the event-loop thread, so no lock.
        """
        if self.limiter.enabled and client:
            wait = self.limiter.check(client)
            if wait > 0:
                self._counters["rate_limited"] += 1
                return error_response(
                    429,
                    "rate limit exceeded for this client",
                    retry_after=wait,
                )
        entry = self.cache.lookup(
            namespace, digest, tier=tier, tolerance=tolerance
        )
        if entry is not None:
            job = self.jobs.create(kind, digest, experiment_id)
            job.add_counters({"cas_hits": 1})
            job.finish()
            return response(
                200,
                entry.payload,
                extra_headers={
                    "X-Repro-Cache": "hit",
                    "X-Repro-Job": job.job_id,
                },
            )

        key = (namespace, digest, tier, tolerance)
        shared = self._inflight.get(key)
        if shared is not None:
            job = self.jobs.create(kind, digest, experiment_id)
            job.add_counters({"inflight_coalesced": 1})
            try:
                body = await asyncio.shield(shared)
            except Exception as exc:  # the one simulation failed
                job.finish(error=str(exc))
                return error_response(
                    500,
                    f"coalesced request failed: {exc}",
                    job=job.job_id,
                )
            job.finish()
            return response(
                200,
                body,
                extra_headers={
                    "X-Repro-Cache": "coalesced",
                    "X-Repro-Job": job.job_id,
                },
            )

        if self._draining:
            return error_response(
                503,
                "daemon is draining; not accepting new work",
                retry_after=self.drain_timeout_s,
            )
        if self._active >= self.tier.workers + self.queue_depth:
            self._counters["rejected_saturated"] += 1
            return error_response(
                503,
                "worker tier saturated",
                retry_after=5.0,
                active=self._active,
            )

        body, job, error = await self._execute_job(
            kind=kind,
            namespace=namespace,
            digest=digest,
            tier=tier,
            tolerance=tolerance,
            experiment_id=experiment_id,
            task=task,
            request_doc=request_doc,
        )
        if body is None:
            return error_response(500, error, job=job.job_id)
        return response(
            200,
            body,
            extra_headers={
                "X-Repro-Cache": "miss",
                "X-Repro-Job": job.job_id,
            },
        )

    async def _execute_job(
        self,
        kind: str,
        namespace: str,
        digest: str,
        tier: str,
        tolerance: float,
        experiment_id: str,
        task: dict,
        request_doc: dict,
    ) -> tuple[bytes | None, Job, str | None]:
        """Journal, execute on the isolated tier, store, retire.

        The one execution path shared by live requests and startup
        recovery. Returns ``(body, job, None)`` on success and
        ``(None, job, error)`` on a deterministic failure (which also
        retires the journal record: replaying a request that fails on
        its merits would fail forever).
        """
        from repro.check.faults import trigger_daemon_kill

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # A failed simulation with zero coalesced waiters must not
        # complain about never-retrieved exceptions.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        key = (namespace, digest, tier, tolerance)
        self._inflight[key] = future
        job = self.jobs.create(kind, digest, experiment_id)
        self.journal.record(kind, digest, "accepted", request_doc)
        self._counters["accepted"] += 1
        self._active += 1
        job.mark_running()
        self.journal.record(kind, digest, "running", request_doc)
        trigger_daemon_kill()
        try:
            body, counters, meta = await asyncio.wrap_future(
                self.tier.submit(task, job)
            )
        except (asyncio.CancelledError, concurrent.futures.CancelledError):
            # Shutdown cancelled a queued job: explicit interrupted
            # state, journal record kept for the next daemon.
            job.mark_interrupted()
            self.journal.mark_interrupted(kind, digest)
            if not future.done():
                future.cancel()
            raise
        except Exception as exc:
            job.finish(error=f"{type(exc).__name__}: {exc}")
            self.journal.retire(kind, digest)
            future.set_exception(exc)
            return None, job, f"{type(exc).__name__}: {exc}"
        finally:
            self._active -= 1
            self._inflight.pop(key, None)
        entry_tier = (
            "sim"
            if tier == "sim" or not counters.get("surrogate_hits")
            else "fast"
        )
        self.cache.put(
            namespace,
            digest,
            body,
            tier=entry_tier,
            tier_err=float(meta.get("surrogate_max_err", 0.0) or 0.0),
        )
        # Per-point CAS traffic happened in the worker process against
        # its own handle; fold it into the daemon's lifetime totals.
        self.cache.hits += int(counters.get("cas_hits", 0))
        self.cache.misses += int(counters.get("cas_misses", 0))
        job.add_counters({"cas_misses": 1})
        job.add_counters(
            {k: v for k, v in counters.items() if isinstance(v, int)}
        )
        job.finish()
        self.journal.retire(kind, digest)
        future.set_result(body)
        if self.cas_quota_bytes is not None:
            await loop.run_in_executor(
                None, self.cache.gc, self.cas_quota_bytes
            )
        return body, job, None

    # ------------------------------------------------------------ cas upkeep
    async def _gc_loop(self) -> None:
        """Background LRU enforcement of the CAS size quota."""
        assert self.cas_quota_bytes is not None
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.gc_interval_s)
            await loop.run_in_executor(
                None, self.cache.gc, self.cas_quota_bytes
            )
