"""Simulation-as-a-service: the ``repro serve`` daemon and its cache.

The package splits along the daemon's three concerns:

* :mod:`repro.serve.cas`    — the content-addressed result store and
  the :class:`~repro.serve.cas.CasJournal` adapter that lets the
  existing grid executors read/write it per point;
* :mod:`repro.serve.jobs`   — job manifests and live telemetry-event
  capture for ``GET /v1/jobs/<id>``;
* :mod:`repro.serve.http`   — the minimal stdlib HTTP/1.1 layer;
* :mod:`repro.serve.daemon` — routing, admission control (queue
  bound, rate limiting, drain mode), tier-aware cache arbitration,
  in-flight request coalescing, and startup recovery;
* :mod:`repro.serve.workers` — the process-isolated execution tier
  (supervised worker processes with heartbeats/deadlines/retries);
* :mod:`repro.serve.journal` — the durable job journal recovery
  replays after a crash;
* :mod:`repro.serve.ratelimit` — per-client token buckets behind
  the 429 contract;
* :mod:`repro.serve.status` — the status document shared with
  ``repro status --json``.
"""

from repro.serve.cas import (
    DEFAULT_CAS_DIR,
    CacheEntry,
    CasJournal,
    ResultCache,
)
from repro.serve.daemon import SimulationService
from repro.serve.jobs import Job, JobRegistry
from repro.serve.journal import (
    DEFAULT_JOBS_DIR,
    JobJournal,
    JobRecord,
)
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.status import STATUS_SCHEMA_VERSION, status_document
from repro.serve.workers import WorkerTier

__all__ = [
    "DEFAULT_CAS_DIR",
    "DEFAULT_JOBS_DIR",
    "CacheEntry",
    "CasJournal",
    "Job",
    "JobJournal",
    "JobRecord",
    "JobRegistry",
    "RateLimiter",
    "ResultCache",
    "STATUS_SCHEMA_VERSION",
    "SimulationService",
    "TokenBucket",
    "WorkerTier",
    "status_document",
]
