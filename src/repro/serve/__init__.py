"""Simulation-as-a-service: the ``repro serve`` daemon and its cache.

The package splits along the daemon's three concerns:

* :mod:`repro.serve.cas`    — the content-addressed result store and
  the :class:`~repro.serve.cas.CasJournal` adapter that lets the
  existing grid executors read/write it per point;
* :mod:`repro.serve.jobs`   — job manifests and live telemetry-event
  capture for ``GET /v1/jobs/<id>``;
* :mod:`repro.serve.http`   — the minimal stdlib HTTP/1.1 layer;
* :mod:`repro.serve.daemon` — routing, tier-aware cache arbitration,
  in-flight request coalescing, and execution;
* :mod:`repro.serve.status` — the status document shared with
  ``repro status --json``.
"""

from repro.serve.cas import (
    DEFAULT_CAS_DIR,
    CacheEntry,
    CasJournal,
    ResultCache,
)
from repro.serve.daemon import SimulationService
from repro.serve.jobs import Job, JobRegistry
from repro.serve.status import STATUS_SCHEMA_VERSION, status_document

__all__ = [
    "DEFAULT_CAS_DIR",
    "CacheEntry",
    "CasJournal",
    "Job",
    "JobRegistry",
    "ResultCache",
    "STATUS_SCHEMA_VERSION",
    "SimulationService",
    "status_document",
]
