"""The shared status document: one serializer for CLI and daemon.

``repro status --json`` and the daemon's ``GET /v1/status`` emit the
same schema-versioned document, built here, so a script watching a
campaign can switch between polling the CLI and polling the service
without reparsing: per-experiment checkpoint-journal completeness
(what ``run --resume`` would pick up) plus — when a daemon is
answering — its job manifests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

STATUS_SCHEMA_VERSION = 1


def status_document(
    checkpoint_dir: str | Path,
    experiment_ids: Iterable[str] | None = None,
    jobs: Iterable[Mapping[str, object]] | None = None,
) -> dict[str, object]:
    """Checkpoint completeness per experiment, plus daemon jobs.

    ``experiment_ids=None`` covers every registered experiment;
    ``jobs`` is the daemon's job-manifest dicts (the CLI, having no
    daemon, reports an empty list).
    """
    from repro.experiments import EXPERIMENTS
    from repro.resilience import journal_status

    root = Path(checkpoint_dir)
    ids = (
        list(experiment_ids)
        if experiment_ids
        else sorted(EXPERIMENTS)
    )
    return {
        "schema_version": STATUS_SCHEMA_VERSION,
        "checkpoint_dir": str(root),
        "experiments": {
            eid: journal_status(root / eid).to_dict() for eid in ids
        },
        "jobs": list(jobs) if jobs is not None else [],
    }
