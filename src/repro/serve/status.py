"""The shared status document: one serializer for CLI and daemon.

``repro status --json`` and the daemon's ``GET /v1/status`` emit the
same schema-versioned document, built here, so a script watching a
campaign can switch between polling the CLI and polling the service
without reparsing: per-experiment checkpoint-journal completeness
(what ``run --resume`` would pick up), content-addressed-store
statistics (entry count, bytes on disk, hit/miss/eviction/scrub
totals), and — when a daemon is answering — its job manifests plus
the service section (drain state, worker/queue shape, admission
counters).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

STATUS_SCHEMA_VERSION = 2


def status_document(
    checkpoint_dir: str | Path,
    experiment_ids: Iterable[str] | None = None,
    jobs: Iterable[Mapping[str, object]] | None = None,
    cas: Mapping[str, object] | None = None,
    service: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Checkpoint completeness per experiment, plus daemon facts.

    ``experiment_ids=None`` covers every registered experiment;
    ``jobs`` is the daemon's job-manifest dicts (the CLI, having no
    daemon, reports an empty list); ``cas`` is
    :meth:`~repro.serve.cas.ResultCache.stats` output (the CLI builds
    it from disk, the daemon from its live handle — identical shape
    either way); ``service`` is the daemon's admission/drain section,
    ``None`` from the CLI.
    """
    from repro.experiments import EXPERIMENTS
    from repro.resilience import journal_status

    root = Path(checkpoint_dir)
    ids = (
        list(experiment_ids)
        if experiment_ids
        else sorted(EXPERIMENTS)
    )
    return {
        "schema_version": STATUS_SCHEMA_VERSION,
        "checkpoint_dir": str(root),
        "experiments": {
            eid: journal_status(root / eid).to_dict() for eid in ids
        },
        "jobs": list(jobs) if jobs is not None else [],
        "cas": dict(cas) if cas is not None else None,
        "service": dict(service) if service is not None else None,
    }
