"""Content-addressed result store: simulate once, serve forever.

The store under ``results/cas/`` memoizes completed work keyed by the
sha256 digest of the request that produced it — the same digest the
checkpoint journal already proves stable across processes (see
:func:`repro.resilience.request_digest`). Two namespaces:

* ``point`` — pickled :class:`~repro.system.SimOutcome` per grid
  point, written/served through :class:`CasJournal` (which duck-types
  :class:`~repro.resilience.CheckpointJournal`, so the existing grid
  executors absorb and serve cache entries without learning anything
  new);
* ``run`` — complete ``ExperimentResult`` JSON documents for
  ``POST /v1/run``, returned byte-for-byte on a warm hit.

Entries are framed (magic, CRC32, payload length, fidelity tier,
error bound) and written atomically (same-directory temp + fsync +
rename), so a torn write can never serve a half-entry: a frame that
fails verification is treated as absent and the point simply
re-simulates — and overwrites the bad entry with a good one.

Cache policy is tier-aware, mirroring
:func:`repro.surrogate.dispatch.accepts_cached_outcome`: a ``sim``
entry (cycle-level) satisfies any requested tier; a ``fast`` entry
(surrogate-served) satisfies ``fast`` always, ``auto`` only within
the requested tolerance, and ``sim`` never.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import SimOutcome

#: Bump when the entry framing changes; unknown frames are misses.
_MAGIC = b"RCAS1\0"
#: crc32(payload), len(payload), tier code, tier error bound.
_HEADER = struct.Struct(">IQBd")

_TIER_TO_CODE = {"sim": 0, "fast": 1}
_CODE_TO_TIER = {v: k for k, v in _TIER_TO_CODE.items()}

#: Where ``repro serve`` keeps the store unless told otherwise.
DEFAULT_CAS_DIR = "results/cas"


@dataclass(frozen=True)
class CacheEntry:
    """One verified store entry: payload plus its fidelity provenance."""

    payload: bytes
    tier: str
    tier_err: float


def _normalize_key(key: bytes | str) -> str:
    if isinstance(key, bytes):
        return key.hex()
    return key


class ResultCache:
    """The on-disk content-addressed store (crash-safe, append-only)."""

    #: Quarantined frames land here, renamed so no glob re-reads them.
    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: Path | str = DEFAULT_CAS_DIR):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Lifetime counters for this handle (the daemon keeps one for
        # its whole life, so these are the service totals surfaced on
        # /v1/status; a CLI handle starts from zero).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.scrub_repairs = 0

    def _entry_path(self, namespace: str, key: bytes | str) -> Path:
        key = _normalize_key(key)
        # Two-character fan-out keeps directories small under dense
        # sweeps (65k points land ~256 per directory).
        return self.root / namespace / key[:2] / f"{key}.cas"

    # ----------------------------------------------------------------- write
    def put(
        self,
        namespace: str,
        key: bytes | str,
        payload: bytes,
        tier: str = "sim",
        tier_err: float = 0.0,
    ) -> Path:
        """Store one entry atomically (temp + fsync + rename)."""
        blob = (
            _MAGIC
            + _HEADER.pack(
                zlib.crc32(payload),
                len(payload),
                _TIER_TO_CODE.get(tier, 1),
                tier_err,
            )
            + payload
        )
        path = self._entry_path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        return path

    # ------------------------------------------------------------------ read
    @staticmethod
    def _decode(blob: bytes) -> CacheEntry | None:
        """Verify one frame; ``None`` on any damage (torn, flipped)."""
        head = len(_MAGIC) + _HEADER.size
        if len(blob) < head or not blob.startswith(_MAGIC):
            return None
        crc, length, tier_code, tier_err = _HEADER.unpack(
            blob[len(_MAGIC):head]
        )
        payload = blob[head:]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return None
        tier = _CODE_TO_TIER.get(tier_code)
        if tier is None:
            return None
        return CacheEntry(payload=payload, tier=tier, tier_err=tier_err)

    def get(self, namespace: str, key: bytes | str) -> CacheEntry | None:
        """The verified entry, or ``None`` (absent *or* corrupt)."""
        path = self._entry_path(namespace, key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        return self._decode(blob)

    @staticmethod
    def satisfies(
        entry: CacheEntry, tier: str, tolerance: float
    ) -> bool:
        """Tier-aware acceptance (mirrors ``accepts_cached_outcome``):
        cycle-level entries satisfy every tier; surrogate entries never
        satisfy ``sim`` and satisfy ``auto`` only within tolerance."""
        if entry.tier == "sim":
            return True
        if tier == "fast":
            return True
        if tier == "auto":
            return entry.tier_err <= tolerance
        return False

    def lookup(
        self,
        namespace: str,
        key: bytes | str,
        tier: str = "sim",
        tolerance: float = 0.05,
    ) -> CacheEntry | None:
        """:meth:`get` plus the tier gate in one call.

        Counts a hit/miss on this handle and — on a hit — touches the
        entry's mtime, which is the LRU clock :meth:`gc` evicts by:
        an entry a sweep keeps re-reading stays hot however old its
        write is.
        """
        entry = self.get(namespace, key)
        if entry is None or not self.satisfies(entry, tier, tolerance):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(self._entry_path(namespace, key))
        except OSError:  # pragma: no cover - racing eviction
            pass
        return entry

    # ----------------------------------------------------------- maintenance
    def entry_count(self, namespace: str | None = None) -> int:
        root = self.root / namespace if namespace else self.root
        if not root.is_dir():
            return 0
        return sum(1 for _ in root.rglob("*.cas"))

    def _entries(self) -> list[tuple[float, int, Path]]:
        """Every live entry as ``(mtime, size, path)``; racing-unlink
        tolerant (a concurrent GC or writer is normal operation)."""
        out: list[tuple[float, int, Path]] = []
        for path in self.root.rglob("*.cas"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path))
        return out

    def stats(self) -> dict[str, int]:
        """The CAS section of the shared status document."""
        entries = self._entries()
        return {
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "scrub_repairs": self.scrub_repairs,
        }

    def gc(self, quota_bytes: int) -> int:
        """Evict least-recently-used entries until under ``quota_bytes``.

        Returns how many entries were evicted. Eviction is safe at any
        moment: a reader that loses the race sees a miss and
        re-simulates; a writer re-creates the entry atomically.
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _mtime, size, path in sorted(entries):
            if total <= quota_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                continue
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted

    def scrub(self) -> int:
        """Quarantine every entry whose frame fails verification.

        A damaged entry is moved to ``quarantine/`` with a
        ``.damaged`` suffix — out of every read path (readers glob
        ``*.cas``) but inspectable — and counted as a repair: the next
        request for that key is a clean miss that overwrites nothing.
        Returns how many entries were quarantined.
        """
        quarantine = self.root / self.QUARANTINE_DIR
        repaired = 0
        for _mtime, _size, path in self._entries():
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            if self._decode(blob) is not None:
                continue
            quarantine.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(
                    path, quarantine / (path.name + ".damaged")
                )
            except OSError:  # pragma: no cover - racing unlink
                continue
            repaired += 1
        self.scrub_repairs += repaired
        return repaired


@dataclass
class CasJournal:
    """The CAS viewed as a checkpoint journal.

    Duck-types the :class:`~repro.resilience.CheckpointJournal`
    surface the grid executors consume (``get`` / ``append`` /
    ``write_meta`` / ``complete``), with two deliberate differences:
    points are keyed *purely* by request digest (the grid index is
    ignored — identical points hit from any grid, any shape), and
    ``complete()`` is a no-op (the store is the service's memory, not
    a crash artifact to be retired).

    Tier arbitration happens here, on the frame header, before any
    unpickle: a surrogate-tier entry that the requested tier cannot
    accept is a miss (and will be overwritten by the cycle-level
    outcome the executor then produces). ``cas_hits`` / ``cas_misses``
    land on the tracer's counters, which is how they reach job
    manifests and sweep documents.
    """

    cache: ResultCache
    tier: str = "sim"
    tolerance: float = 0.05
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)

    def get(self, index: int, digest: bytes) -> "SimOutcome | None":
        entry = self.cache.lookup(
            "point", digest, tier=self.tier, tolerance=self.tolerance
        )
        if entry is None:
            self.tracer.count("cas_misses")
            return None
        try:
            outcome = pickle.loads(entry.payload)
        except Exception:
            self.tracer.count("cas_misses")
            return None
        self.tracer.count("cas_hits")
        return outcome

    def append(self, index: int, digest: bytes, outcome: object) -> None:
        payload = pickle.dumps(
            outcome, protocol=pickle.HIGHEST_PROTOCOL
        )
        self.cache.put(
            "point",
            digest,
            payload,
            tier=getattr(outcome, "tier", "sim"),
            tier_err=getattr(outcome, "tier_err", 0.0),
        )

    def write_meta(self, **_kwargs: object) -> None:
        pass

    def complete(self) -> None:
        pass
