"""Per-client token-bucket rate limiting for the simulating endpoints.

Each client (keyed by peer address) owns one bucket holding up to
``burst`` tokens, refilled continuously at ``rate`` tokens per
second. A simulating POST costs one token; a client with an empty
bucket gets ``429 Too Many Requests`` plus a ``Retry-After`` telling
it exactly when the next token lands — polite backpressure instead
of silent queue growth. Read-only endpoints (status, job manifests,
streams) are never limited: observability must stay cheap precisely
when the service is busiest.

The limiter is deliberately tiny and deterministic: no background
refill thread (tokens are computed from elapsed time at check time)
and an injectable clock so tests never sleep.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate`` tokens/s."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; 0.0 on success, else seconds to wait.

        The returned wait is until the bucket holds ``cost`` tokens
        again — the honest ``Retry-After``.
        """
        now = self._clock()
        self._tokens = min(
            self.burst,
            self._tokens + (now - self._refilled_at) * self.rate,
        )
        self._refilled_at = now
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.rate


class RateLimiter:
    """Token buckets per client key; ``rate <= 0`` disables limiting."""

    #: Keep at most this many idle buckets before pruning the oldest.
    MAX_CLIENTS = 4096

    def __init__(
        self,
        rate: float = 0.0,
        burst: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client: str) -> float:
        """0.0 = admitted; positive = rejected, retry after that many s."""
        if not self.enabled:
            return 0.0
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.MAX_CLIENTS:
                    # Drop the stalest bucket: an attacker cycling
                    # source addresses buys fresh bursts, not memory.
                    oldest = min(
                        self._buckets,
                        key=lambda k: self._buckets[k]._refilled_at,
                    )
                    del self._buckets[oldest]
                bucket = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
                self._buckets[client] = bucket
            return bucket.try_acquire()
