"""Job bookkeeping for the simulation service.

Every ``POST /v1/run`` / ``POST /v1/sweep`` becomes a :class:`Job` —
even a request answered instantly from the content-addressed cache —
so ``GET /v1/jobs/<id>`` and ``GET /v1/status`` can always say how a
request was served (simulated, cache hit, or coalesced onto an
identical in-flight request). Jobs carry a
:class:`~repro.obs.manifest.JobManifest` plus the live event list
their run's :class:`~repro.obs.Tracer` published, which is what the
streaming job endpoint replays as JSON lines.

Execution happens on worker threads while the asyncio loop serves
HTTP, so every mutation here takes the registry lock.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

from repro.obs.manifest import JobManifest


class Job:
    """One service request's lifecycle, thread-safe."""

    def __init__(self, job_id: str, kind: str, digest: str,
                 experiment_id: str | None = None):
        self.manifest = JobManifest(
            job_id=job_id,
            kind=kind,
            state="queued",
            digest=digest,
            experiment_id=experiment_id,
            created_at=time.time(),
        )
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._done = threading.Event()

    @property
    def job_id(self) -> str:
        return self.manifest.job_id

    @property
    def done(self) -> bool:
        return self._done.is_set()

    # -------------------------------------------------------------- lifecycle
    def record_event(self, event: dict) -> None:
        """Tracer subscriber hook: append one live telemetry event."""
        with self._lock:
            self._events.append(dict(event))

    def mark_running(self) -> None:
        with self._lock:
            self.manifest.state = "running"

    def mark_interrupted(self, reason: str | None = None) -> None:
        """The daemon stopped before this job finished.

        Queued and running jobs abandoned by a shutdown land here —
        an explicit, queryable state (``/v1/status``, ``repro status
        --json``) instead of a manifest forever claiming ``running``.
        The job's journal record survives, so the next daemon recovers
        it. Idempotent, and a no-op on jobs that already finished.
        """
        with self._lock:
            if self.manifest.state in ("done", "failed", "interrupted"):
                return
            self.manifest.state = "interrupted"
            self.manifest.error = (
                reason
                or "daemon stopped before the job finished; "
                "journaled for recovery on restart"
            )
            self.manifest.finished_at = time.time()
            self.manifest.wall_s = (
                self.manifest.finished_at - self.manifest.created_at
            )
        self._done.set()

    def add_counters(self, counters: dict[str, int]) -> None:
        with self._lock:
            for name, value in counters.items():
                self.manifest.counters[name] = (
                    self.manifest.counters.get(name, 0) + int(value)
                )

    def finish(self, error: str | None = None) -> None:
        with self._lock:
            self.manifest.state = "failed" if error else "done"
            self.manifest.error = error
            self.manifest.finished_at = time.time()
            self.manifest.wall_s = (
                self.manifest.finished_at - self.manifest.created_at
            )
        self._done.set()

    # ---------------------------------------------------------------- reading
    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return self.manifest.to_dict()

    def events_since(self, start: int) -> tuple[list[dict], int]:
        """Events ``[start:]`` and the new cursor, for stream polling."""
        with self._lock:
            tail = [dict(e) for e in self._events[start:]]
            return tail, start + len(tail)


class JobRegistry:
    """All jobs this daemon has accepted, newest last."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._counter = 0

    def create(self, kind: str, digest: str,
               experiment_id: str | None = None) -> Job:
        with self._lock:
            self._counter += 1
            job = Job(
                f"job-{self._counter:04d}", kind, digest, experiment_id
            )
            self._jobs[job.job_id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def __iter__(self) -> Iterator[Job]:
        with self._lock:
            return iter(list(self._jobs.values()))

    def manifests(self) -> list[dict[str, object]]:
        return [job.snapshot() for job in self]
