"""The daemon's process-isolated execution tier.

``repro serve`` used to run simulations on an in-process thread pool:
one segfaulting point (a native-extension bug, an OOM kill) took the
whole daemon with it, and a hung point wedged a worker thread
forever. This module replaces that with supervised worker
*processes*: each admitted job gets a supervisor thread that drives a
single-task :class:`~repro.resilience.SupervisedPool` in isolation
mode — the simulation runs in a forked child with start-of-point
heartbeats, a per-job deadline, and bounded exponential-backoff
retries. A crashed or hung worker is detected, its job retried, and
the failure reported as counters on the job manifest
(``worker_crashes`` / ``timeouts`` / ``retries``); the daemon never
shares an address space with the work it supervises. The in-process
fallback the experiment pool uses as a last resort is disabled here:
a job that exhausts its budget fails with a 500, it does not get one
free shot at crashing the daemon.

Workers are non-daemonic so a served sweep can fan out its own inner
pool (``jobs > 1``), and live tracer events are forwarded across the
process boundary (``forward_events``) so ``GET /v1/jobs/<id>?stream=1``
streams telemetry out of the isolated child exactly as it did from a
thread.

The task function :func:`_service_task_main` is module-level (it must
pickle) and rebuilds everything it needs — tracer, CAS handle,
profiles — from the plain-dict task, because nothing rich survives
the process boundary.
"""

from __future__ import annotations

import concurrent.futures
import json
import time
from typing import Callable

from repro.obs import Tracer
from repro.resilience.policy import RetryPolicy
from repro.resilience.pool import SupervisedPool
from repro.serve.jobs import Job


def _service_task_main(task: dict, emit: Callable[[dict], None]):
    """Worker-process body: run one service job, return its document.

    Returns ``(body_bytes, counters, meta)`` — the exact triple the
    thread-tier executors returned, so everything downstream (CAS
    put, job counters, response assembly) is unchanged.
    """
    from repro.check.faults import trigger_serve_task_delay
    from repro.experiments import RunContext, get_spec
    from repro.serve.cas import CasJournal, ResultCache
    from repro.silicon.variation import PERSONAS
    from repro.sweepspec import (
        SweepSpec,
        run_sweepspec,
        sweep_document,
    )

    trigger_serve_task_delay()
    tracer = Tracer()
    tracer.subscribe(emit)
    if task["kind"] == "run":
        params = task["params"]
        ctx = RunContext(
            quick=params["quick"],
            jobs=params["jobs"],
            persona=(
                PERSONAS[params["persona"]]
                if params["persona"]
                else None
            ),
            tracer=tracer,
            out_format="json",
            checks=params["checks"],
            batch=params["batch"],
            tier=params["tier"],
            fidelity=params["fidelity"],
            profile_dir=task.get("profile_dir"),
        )
        result = get_spec(params["experiment"]).resolve()(ctx)
        body = (result.to_json() + "\n").encode("utf-8")
        return body, dict(tracer.resilience), dict(tracer.meta)

    spec = SweepSpec.from_dict(task["spec"])
    tier = task["tier"]
    fidelity = task["fidelity"]
    ctx = RunContext(
        quick=spec.quick,
        jobs=task["jobs"],
        tracer=tracer,
        out_format="json",
        tier=tier,
        fidelity=fidelity,
        profile_dir=task.get("profile_dir"),
    )
    from repro.resilience import Supervision

    supervision = Supervision(
        policy=RetryPolicy(retries=2),
        journal=CasJournal(
            ResultCache(task["cas_dir"]),
            tier=tier,
            tolerance=fidelity,
            tracer=tracer,
        ),
        tracer=tracer,
        experiment_id=spec.experiment_id,
    )
    start = time.perf_counter()
    result = run_sweepspec(spec, ctx, supervision=supervision)
    doc = sweep_document(
        spec,
        result,
        tier=tier,
        fidelity=fidelity,
        wall_s=time.perf_counter() - start,
        counters=dict(tracer.resilience),
        meta=dict(tracer.meta),
    )
    body = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
    return body, dict(tracer.resilience), dict(tracer.meta)


class WorkerTier:
    """Supervisor threads driving isolated worker processes.

    ``workers`` bounds concurrent *supervisors* (and therefore
    concurrent worker processes); jobs beyond that wait in the
    executor's queue, which is what the daemon's admission control
    measures saturation against.
    """

    def __init__(
        self,
        workers: int = 2,
        retries: int = 2,
        deadline_s: float | None = None,
    ):
        self.workers = max(1, workers)
        self.retries = retries
        self.deadline_s = deadline_s
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-serve-supervise",
        )

    def submit(
        self, task: dict, job: Job
    ) -> concurrent.futures.Future:
        return self._executor.submit(self._run_supervised, task, job)

    def _run_supervised(self, task: dict, job: Job):
        """Supervisor-thread body: one job, one isolated worker."""
        supervisor = Tracer()
        pool = SupervisedPool(
            _service_task_main,
            jobs=1,
            policy=RetryPolicy(
                retries=self.retries,
                deadline_s=self.deadline_s,
                # Adaptive deadlines need completed points to learn
                # from; a single-task pool has none, so without a
                # pinned deadline hangs are bounded by the pinned
                # floor never engaging — callers that care pass
                # deadline_s explicitly.
            ),
            tracer=supervisor,
            isolate=True,
            daemon=False,
            forward_events=True,
            in_process_fallback=False,
        )
        results = pool.map(
            [task],
            on_event=lambda _index, event: job.record_event(event),
        )
        body, counters, meta = results[0]
        # Fold supervisor-side facts (crashes, timeouts, retries the
        # worker could not know about — it was dead) into the job's
        # counters alongside the worker-side ones.
        merged = dict(counters)
        for name, value in supervisor.resilience.items():
            if name == "points_simulated":
                continue  # a tier implementation detail, not a result
            merged[name] = merged.get(name, 0) + value
        return body, merged, meta

    def shutdown(self, wait: bool = False) -> None:
        self._executor.shutdown(wait=wait, cancel_futures=True)
