"""The chipset FPGA: bridges, DRAM controller front-end, and I/O.

The Digilent Genesys2 board's Kintex-7 implements the chip-bridge
demultiplexer, a north bridge routing memory traffic to the DDR3
controller, and a south bridge fanning out to the SD card (boot disk +
filesystem), serial port, and network controller. The chipset is *not*
powered from the Piton rails, so its compute costs nothing in our power
accounting — but its latencies are on the critical path (Figure 15) and
its I/O devices set the system-level behaviour the SPEC study sees
(848 ns memory, SD-card filesystem).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.params import PitonConfig, SystemClocks
from repro.chip.dram import DramModel
from repro.util.events import EventLedger


@dataclass(frozen=True)
class IoDevice:
    """One south-bridge peripheral."""

    name: str
    bandwidth_bytes_per_s: float
    access_latency_s: float


def default_io_devices() -> dict[str, IoDevice]:
    clocks = SystemClocks()
    return {
        # SPI-mode SD card at 20 MHz: ~2.5 MB/s peak, slow random access.
        "sd": IoDevice("sd", clocks.sd_spi_hz / 8.0, 1.2e-3),
        # 115200-baud UART: 8N1 framing -> ~11.5 KB/s.
        "uart": IoDevice("uart", clocks.uart_baud / 10.0, 0.0),
        "nic": IoDevice("nic", 12.5e6, 50e-6),
    }


class Chipset:
    """Functional model of the chipset FPGA board."""

    def __init__(
        self,
        config: PitonConfig | None = None,
        ledger: EventLedger | None = None,
        dram: DramModel | None = None,
    ):
        self.config = config or PitonConfig()
        self.ledger = ledger if ledger is not None else EventLedger()
        self.dram = dram or DramModel(ledger=self.ledger)
        self.devices = default_io_devices()
        self.dram_bytes = 1 * 1024**3  # 1GB on the Genesys2
        self.requests_routed = 0

    def route_memory_request(self) -> None:
        """North-bridge accounting (latency lives in OffChipPath)."""
        self.requests_routed += 1
        self.ledger.record("chipset.request")

    def io_transfer_s(self, device: str, num_bytes: int) -> float:
        """Wall-clock seconds to move ``num_bytes`` via a peripheral."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        try:
            dev = self.devices[device]
        except KeyError:
            raise KeyError(
                f"unknown device {device!r}; have {sorted(self.devices)}"
            ) from None
        self.ledger.record(f"io.{device}_transfer", max(1, num_bytes // 512))
        return dev.access_latency_s + num_bytes / dev.bandwidth_bytes_per_s


@dataclass
class SystemDescription:
    """Static facts for the Table VIII comparison."""

    operating_system: str = "Debian Sid Linux"
    kernel: str = "4.9"
    memory_type: str = "DDR3-1866 (run at 1600 MT/s)"
    memory_bytes: int = 1 * 1024**3
    memory_data_bits: int = 32
    memory_latency_ns: float = 848.0
    storage: str = "SD Card"
    processor: str = "Piton"
    clock_hz: float = 500.05e6
    cores: int = 25
    threads_per_core: int = 2
    l2_bytes: int = 1_638_400
    l2_latency_ns_range: tuple[float, float] = (68.0, 108.0)
    notes: dict[str, str] = field(default_factory=dict)
