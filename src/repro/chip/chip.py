"""Chip-level structural composition (paper Figure 2a).

:class:`Chip` assembles the 25 tiles, the chip bridge, and the
chip-level support blocks, exposing the same structure-to-area and
structure-to-events mapping :class:`~repro.chip.tile.Tile` provides per
tile. Used by the block-level power reporter
(:mod:`repro.power.report`) and by documentation tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.area import AreaBreakdown
from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.chip.tile import Tile


@dataclass(frozen=True)
class ChipBlock:
    """One chip-level (non-tile) block."""

    name: str
    area_key: str
    event_prefixes: tuple[str, ...]
    description: str


CHIP_BLOCKS: tuple[ChipBlock, ...] = (
    ChipBlock(
        "chip_bridge",
        "chip_bridge",
        ("chipbridge.",),
        "multiplexes the three NoCs over the 32-bit off-chip link",
    ),
    ChipBlock(
        "io_cells",
        "io_cells",
        ("io.",),
        "pad ring: full-swing 1.8V I/O on the VIO rail",
    ),
    ChipBlock(
        "clock_circuitry",
        "clock_circuitry",
        (),
        "PLL and clock distribution roots",
    ),
    ChipBlock(
        "oram",
        "oram",
        (),
        "ORAM controller (present on die, unused in this work)",
    ),
)


@dataclass
class Chip:
    """The full 25-tile chip as a structural object."""

    config: PitonConfig = field(default_factory=PitonConfig)

    def __post_init__(self) -> None:
        self.floorplan = Floorplan(self.config)
        self.tiles = [
            Tile(t, self.config) for t in range((self.config.tile_count))
        ]

    @property
    def chip_blocks(self) -> tuple[ChipBlock, ...]:
        return CHIP_BLOCKS

    def tile(self, tile_id: int) -> Tile:
        if not 0 <= tile_id < self.config.tile_count:
            raise ValueError(f"tile {tile_id} out of range")
        return self.tiles[tile_id]

    def total_tile_area_mm2(self) -> float:
        area = AreaBreakdown()
        return self.config.tile_count * area.total_mm2("tile")

    def chip_block_area_mm2(self, name: str) -> float:
        area = AreaBreakdown()
        for block in CHIP_BLOCKS:
            if block.name == name:
                return area.block_mm2("chip", block.area_key)
        raise KeyError(f"no chip block {name!r}")

    def summary(self) -> dict[str, object]:
        """Headline facts (Table I / Section II)."""
        return {
            "tiles": self.config.tile_count,
            "threads": self.config.total_threads,
            "die_mm2": self.config.die_width_mm * self.config.die_height_mm,
            "transistors": self.config.transistor_count,
            "l2_total_bytes": self.config.l2_total_bytes,
            "nocs": self.config.noc.count,
            "noc_flit_bits": self.config.noc.flit_bits,
            "max_hops": self.config.max_hops,
        }
