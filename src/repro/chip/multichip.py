"""Multi-socket Piton systems: inter-chip shared memory modelling.

"The NoCs and coherence protocol extend off-chip, enabling multi-socket
Piton systems with support for inter-chip shared memory" (Section II).
This module models what that costs: a remote-socket L2 access leaves
through the requester's chip bridge, crosses the inter-chip link, rides
the remote mesh to the home slice, and returns — each leg priced with
the same latency segments and pad energies the single-chip models use.

The model is transaction-level (latency + energy per access class)
rather than a full cross-chip protocol simulation; it is the
quantitative scaffolding for topology studies like the Figure 2a
multi-chip arrangement, and composes with CDR
(:mod:`repro.cache.cdr`), which exists precisely to keep sharing
domains from paying these costs chip-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.floorplan import Floorplan
from repro.arch.params import PitonConfig
from repro.cache.latency import MemoryLatencyModel
from repro.chip.chipbridge import ChipBridge
from repro.util.events import EventLedger

#: Cycles for one crossing of the chip bridge + inter-chip wires, each
#: direction (the Figure 15 chip-bridge/gateway segments without the
#: DRAM-controller legs: AFIFO+mux 5, gateway 39, FMC 9, demux 11).
INTERCHIP_CROSSING_CYCLES = 5 + 39 + 9 + 11

#: Flits per remote L2 transaction (3-flit request + 3-flit response).
TRANSACTION_FLITS = 6


@dataclass(frozen=True)
class SocketCoord:
    """Position of a chip in the multi-socket array."""

    x: int
    y: int


@dataclass
class MultiChipTopology:
    """An WxH array of Piton chips joined by their chip bridges."""

    sockets_x: int = 2
    sockets_y: int = 1
    config: PitonConfig = field(default_factory=PitonConfig)

    def __post_init__(self) -> None:
        if self.sockets_x <= 0 or self.sockets_y <= 0:
            raise ValueError("socket array dimensions must be positive")
        self.floorplan = Floorplan(self.config)
        self.latency = MemoryLatencyModel()
        self.bridge = ChipBridge(self.config)

    @property
    def socket_count(self) -> int:
        return self.sockets_x * self.sockets_y

    @property
    def total_tiles(self) -> int:
        return self.socket_count * self.config.tile_count

    def socket_of(self, global_tile: int) -> int:
        if not 0 <= global_tile < self.total_tiles:
            raise ValueError(f"tile {global_tile} out of range")
        return global_tile // self.config.tile_count

    def local_tile(self, global_tile: int) -> int:
        return global_tile % self.config.tile_count

    def socket_hops(self, socket_a: int, socket_b: int) -> int:
        ax, ay = socket_a % self.sockets_x, socket_a // self.sockets_x
        bx, by = socket_b % self.sockets_x, socket_b // self.sockets_x
        return abs(ax - bx) + abs(ay - by)

    # ---------------------------------------------------------------- latency
    def l2_access_cycles(self, requester: int, home: int) -> int:
        """Round-trip cycles for a load that hits the L2 slice homed at
        global tile ``home``, requested from global tile ``requester``.

        On-socket accesses use the single-chip model. Cross-socket
        accesses additionally traverse: requester mesh to its chip
        bridge (tile 0), the inter-chip crossing(s), and the remote
        mesh from the remote bridge to the home slice — each way.
        """
        req_socket = self.socket_of(requester)
        home_socket = self.socket_of(home)
        req_local = self.local_tile(requester)
        home_local = self.local_tile(home)
        if req_socket == home_socket:
            hops = self.floorplan.hops(req_local, home_local)
            turns = (
                1 if self.floorplan.has_turn(req_local, home_local) else 0
            )
            return self.latency.l2_hit(hops, turns)

        # Leg 1: requester tile -> its chip bridge at tile 0.
        hops_out = self.floorplan.hops(req_local, 0)
        turns_out = 1 if self.floorplan.has_turn(req_local, 0) else 0
        # Leg 2: remote bridge (tile 0) -> home slice.
        hops_in = self.floorplan.hops(0, home_local)
        turns_in = 1 if self.floorplan.has_turn(0, home_local) else 0
        mesh = self.latency.l2_hit(
            hops_out + hops_in, turns_out + turns_in
        )
        crossings = self.socket_hops(req_socket, home_socket)
        return mesh + 2 * crossings * INTERCHIP_CROSSING_CYCLES

    # ----------------------------------------------------------------- energy
    def l2_access_energy_events(
        self, requester: int, home: int, ledger: EventLedger | None = None
    ) -> EventLedger:
        """Record the NoC + pad events of one remote L2 transaction."""
        ledger = ledger if ledger is not None else EventLedger()
        req_socket = self.socket_of(requester)
        home_socket = self.socket_of(home)
        req_local = self.local_tile(requester)
        home_local = self.local_tile(home)
        if req_socket == home_socket:
            mesh_hops = self.floorplan.hops(req_local, home_local)
        else:
            mesh_hops = self.floorplan.hops(
                req_local, 0
            ) + self.floorplan.hops(0, home_local)
            crossings = self.socket_hops(req_socket, home_socket)
            # Both chips' pads switch on each crossing, both directions.
            bridge = ChipBridge(self.config, ledger)
            for _ in range(2 * crossings):
                bridge.transfer_flits(TRANSACTION_FLITS)
        ledger.record("noc1.flit_hop", 3 * mesh_hops)
        ledger.record("noc3.flit_hop", 3 * mesh_hops)
        ledger.record("noc1.router_pass", 3 * (mesh_hops + 1))
        ledger.record("noc3.router_pass", 3 * (mesh_hops + 1))
        return ledger

    def mean_remote_penalty_cycles(self) -> float:
        """Average cross-socket minus on-socket L2 latency over uniform
        requester/home pairs — the headline cost CDR avoids."""
        local_total = remote_total = 0.0
        local_n = remote_n = 0
        for requester in range(self.total_tiles):
            for home in range(self.total_tiles):
                cycles = self.l2_access_cycles(requester, home)
                if self.socket_of(requester) == self.socket_of(home):
                    local_total += cycles
                    local_n += 1
                else:
                    remote_total += cycles
                    remote_n += 1
        if remote_n == 0:
            return 0.0
        return remote_total / remote_n - local_total / local_n
