"""The Figure 15 off-chip memory path.

Composes the full journey of an L2 miss from tile 0 to DRAM and back as
named latency segments, each normalized to core-clock cycles exactly as
the paper presents them. The segment list *is* the Figure 15
reproduction; :class:`OffChipPath` is also the live off-chip model the
coherent memory system calls on every L2 miss, adding DDR3 bank/row
behaviour and channel queueing on top of the fixed segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.arch.params import PitonConfig
from repro.chip.chipbridge import ChipBridge
from repro.chip.dram import DramModel
from repro.util.events import EventLedger

#: Extra on-chip cycles an L2 *miss* spends versus the 34-cycle hit
#: path: Figure 15's tile-array segments total 28 (miss detect) + 17
#: (L2 + L1 fills) = 45.
ONCHIP_MISS_OVERHEAD = 45 - 34


@dataclass(frozen=True)
class LatencySegment:
    """One hop of the Figure 15 breakdown, in core-clock cycles."""

    name: str
    cycles: int
    component: str  # which board/system component owns it
    direction: str  # "request" | "response" | "both"


#: The Figure 15 breakdown at the default 500.05 MHz core clock. The
#: tile-array segments (28 and 17 cycles) live in the on-chip latency
#: model; DRAM is dynamic; everything else is fixed pipeline/AFIFO cost.
FIG15_SEGMENTS: tuple[LatencySegment, ...] = (
    LatencySegment("L1 miss + L2 miss", 28, "tile array", "request"),
    LatencySegment("AFIFO + mux", 5, "chip bridge", "request"),
    LatencySegment("buf FFs + AFIFO", 39, "gateway FPGA", "request"),
    LatencySegment("buf FFs + AFIFO", 9, "FMC", "request"),
    LatencySegment("chip bridge demux", 11, "chipset FPGA", "request"),
    LatencySegment("buf FFs + route", 8, "north bridge", "request"),
    LatencySegment("AFIFO + buf FFs + req send", 16, "DRAM ctl", "request"),
    LatencySegment("mem ctl + DRAM access (x2)", 140, "DRAM", "both"),
    LatencySegment("32-bit bus data serialization", 21, "DRAM ctl", "response"),
    LatencySegment("resp process + AFIFO", 11, "DRAM ctl", "response"),
    LatencySegment("buf FFs + mux", 6, "north bridge", "response"),
    LatencySegment("buf FFs + mux", 12, "chipset FPGA", "response"),
    LatencySegment("buf FFs + AFIFO", 63, "gateway FPGA", "response"),
    LatencySegment("buf FFs + AFIFO", 9, "FMC", "response"),
    LatencySegment("L2 fill + L1 fill", 17, "tile array", "response"),
)


def fig15_total_cycles() -> int:
    """Nominal round trip (the paper quotes ~395 cycles = ~790 ns)."""
    return sum(s.cycles for s in FIG15_SEGMENTS)


# Flits per off-chip message: a miss request (3 flits out) and the
# 64B-line response (1 header + 8 data flits back).
REQUEST_FLITS = 3
LINE_RESPONSE_FLITS = 9


class OffChipPath:
    """Live off-chip model: fixed segments + dynamic DRAM + queueing.

    Instances are callable with the signature the coherent memory
    system expects: ``path(line_addr, write, now_cycles) -> cycles``.
    """

    def __init__(
        self,
        config: PitonConfig | None = None,
        ledger: EventLedger | None = None,
        dram: DramModel | None = None,
    ):
        self.config = config or PitonConfig()
        self.ledger = ledger if ledger is not None else EventLedger()
        self.dram = dram or DramModel(ledger=self.ledger)
        self.bridge = ChipBridge(self.config, self.ledger)
        self.core_clock_hz = 500.05e6
        self.requests = 0
        self.total_cycles = 0

    # Fixed pipeline cycles outside the tile array and outside DRAM.
    @property
    def fixed_transit_cycles(self) -> int:
        return sum(
            s.cycles
            for s in FIG15_SEGMENTS
            if s.component not in ("tile array", "DRAM")
        )

    def set_core_clock(self, hz: float) -> None:
        if hz <= 0:
            raise ValueError("core clock must be positive")
        self.core_clock_hz = hz

    def _cycles_to_ns(self, cycles: float) -> float:
        return cycles * 1e9 / self.core_clock_hz

    def _ns_to_cycles(self, ns: float) -> float:
        return ns * self.core_clock_hz / 1e9

    def __call__(
        self, line_addr: int, write: bool = False, now: int = 0
    ) -> int:
        """Round-trip cycles for one 64B line fetch or writeback.

        The returned count excludes the on-chip L2-hit path (the memory
        system adds that) but includes the extra on-chip miss-handling
        overhead, the fixed board transit, and the dynamic DRAM time
        (bank state + channel queueing via the shared DRAM clock).
        """
        self.requests += 1
        self.bridge.transfer_flits(REQUEST_FLITS)
        self.bridge.transfer_flits(LINE_RESPONSE_FLITS)
        self.ledger.record("chipset.request")

        transit = self.fixed_transit_cycles
        # The request reaches the DRAM controller after the request-side
        # fixed segments.
        request_side = sum(
            s.cycles
            for s in FIG15_SEGMENTS
            if s.direction == "request" and s.component != "tile array"
        )
        arrival_ns = self._cycles_to_ns(now + request_side)
        done_ns = self.dram.line_access_ns(
            line_addr,
            arrival_ns,
            line_bytes=self.config.l2_slice.line_bytes,
        )
        dram_cycles = self._ns_to_cycles(done_ns - arrival_ns)
        total = round(ONCHIP_MISS_OVERHEAD + transit + dram_cycles)
        self.total_cycles += total
        return total
