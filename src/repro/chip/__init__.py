"""Chip- and system-level composition: tiles, chip bridge, chipset, DRAM.

The experimental system of the paper (Figure 3) is a Piton chip socketed
on a test board, a gateway FPGA passing the chip bridge through an FMC
connector, and a chipset FPGA implementing the chip-bridge demux, north
bridge, DDR3 DRAM controller, and south-bridge I/O. This package models
that whole path: the Figure 15 latency segments, the chip bridge's
bandwidth mismatch (the 7-valid-flits-per-47-cycles pattern of the NoC
study), DDR3 bank/row timing with queueing (which is what turns the
nominal ~395-cycle round trip into the measured 424-cycle average), and
the VIO-rail pad activity that the SPEC power traces expose.
"""

from repro.chip.chipbridge import ChipBridge
from repro.chip.dram import DdrTimings, DramModel
from repro.chip.offchip import LatencySegment, OffChipPath
from repro.chip.chipset import Chipset

__all__ = [
    "ChipBridge",
    "DdrTimings",
    "DramModel",
    "LatencySegment",
    "OffChipPath",
    "Chipset",
]
