"""DDR3 DRAM timing model (the Genesys2 chipset's 1GB, 32-bit DIMM).

Models what the paper's Table VIII and Section IV-I describe:

* DDR3 at 800 MHz (1600 MT/s) — below the devices' 933 MHz rating due
  to the Xilinx controller limitation,
* timings quantized to controller cycles: 12-12-12 at 800 MHz = 15 ns,
  exactly the effective nanosecond timings of the T2000's DDR2,
* a 32-bit data bus, so every 64B line costs *two* bursts ("requires
  the Piton system to make two DRAM accesses for each memory request"),
* open-page row-buffer policy over 8 banks, plus FIFO queueing at the
  single channel — the queueing is what produces contention when many
  cores miss concurrently (the Table VII L2-miss energy scenario).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.events import EventLedger


@dataclass(frozen=True)
class DdrTimings:
    """DDR3 timing parameters, in DRAM-clock cycles at ``clock_hz``."""

    clock_hz: float = 800e6
    cl: int = 12  # CAS latency
    trcd: int = 12  # RAS-to-CAS
    trp: int = 12  # precharge
    burst_beats: int = 8  # BL8
    data_bits: int = 32

    @property
    def ns_per_cycle(self) -> float:
        return 1e9 / self.clock_hz

    def row_hit_ns(self) -> float:
        """Column access + burst transfer."""
        # Data transfers on both clock edges: burst_beats/2 clock cycles.
        return (self.cl + self.burst_beats / 2) * self.ns_per_cycle

    def row_miss_ns(self) -> float:
        """Precharge + activate + column access + burst transfer."""
        return (
            self.trp + self.trcd + self.cl + self.burst_beats / 2
        ) * self.ns_per_cycle

    def burst_bytes(self) -> int:
        return self.data_bits // 8 * self.burst_beats


class DramModel:
    """Single-channel, multi-bank DRAM with open rows and a FIFO queue.

    ``access`` is called once per *burst*; a 64B line needs two. Time is
    expressed in core-clock cycles (the caller supplies the conversion)
    so queueing interacts correctly with the simulator's clock.
    """

    #: Fixed memory-controller processing per burst, ns (Xilinx MIG IP
    #: request pipeline at its 200 MHz controller clock).
    CONTROLLER_NS = 55.0
    REFRESH_INTERVAL_NS = 7_800.0  # tREFI
    REFRESH_NS = 160.0  # tRFC

    def __init__(
        self,
        timings: DdrTimings | None = None,
        banks: int = 8,
        row_bytes: int = 4096,
        ledger: EventLedger | None = None,
    ):
        self.timings = timings or DdrTimings()
        self.banks = banks
        self.row_bytes = row_bytes
        self.ledger = ledger if ledger is not None else EventLedger()
        self._open_rows: dict[int, int] = {}
        self._busy_until_ns = 0.0
        self._next_refresh_ns = self.REFRESH_INTERVAL_NS
        self.stats_row_hits = 0
        self.stats_row_misses = 0
        self.stats_bursts = 0

    def _bank_and_row(self, addr: int) -> tuple[int, int]:
        row = addr // self.row_bytes
        return row % self.banks, row // self.banks

    def access_ns(self, addr: int, now_ns: float, write: bool = False) -> float:
        """Service one burst at ``addr`` arriving at ``now_ns``.

        Returns the completion time in ns (absolute). Queueing delay is
        the gap between arrival and when the channel frees up.
        """
        del write  # reads and writes share timing at this fidelity
        self.stats_bursts += 1
        self.ledger.record("dram.burst")
        start = max(now_ns, self._busy_until_ns)
        # Refresh steals the channel periodically.
        if start >= self._next_refresh_ns:
            start += self.REFRESH_NS
            self._next_refresh_ns += self.REFRESH_INTERVAL_NS
            self.ledger.record("dram.refresh")
        bank, row = self._bank_and_row(addr)
        if self._open_rows.get(bank) == row:
            self.stats_row_hits += 1
            service = self.timings.row_hit_ns()
        else:
            self.stats_row_misses += 1
            service = self.timings.row_miss_ns()
            self._open_rows[bank] = row
        service += self.CONTROLLER_NS
        done = start + service
        self._busy_until_ns = done
        return done

    def line_access_ns(
        self, addr: int, now_ns: float, line_bytes: int = 64
    ) -> float:
        """Fetch a whole cache line: ceil(line/burst) sequential bursts."""
        bursts = max(1, -(-line_bytes // self.timings.burst_bytes()))
        done = now_ns
        for i in range(bursts):
            done = self.access_ns(addr + i * self.timings.burst_bytes(), done)
        return done
