"""Structural tile composition (paper Figure 2b).

A :class:`Tile` is the structural inventory of one mesh node: the
modified OpenSPARC T1 core, the L1.5, the L2 slice with its directory,
the three NoC routers, the FPU, the CCX arbiter, and the MITTS traffic
shaper. It does not *simulate* (the engine and memory system do); it
cross-references each block to its Figure 8 area entry and to the
power-model events it generates — the structural map a researcher
needs to go from a measured number back to RTL blocks, which is the
open-source advantage the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.area import AreaBreakdown
from repro.arch.params import PitonConfig


@dataclass(frozen=True)
class TileBlock:
    """One structural block of a tile."""

    name: str
    area_key: str  # key into the Figure 8 tile-level breakdown
    event_prefixes: tuple[str, ...]  # ledger events this block emits
    description: str


TILE_BLOCKS: tuple[TileBlock, ...] = (
    TileBlock(
        "core",
        "core",
        ("instr.", "core."),
        "modified OpenSPARC T1: single-issue, 6-stage, 2-way FG-MT, "
        "Execution Drafting",
    ),
    TileBlock(
        "l15",
        "l15_cache",
        ("l15.",),
        "8KB write-back private data cache encapsulating the "
        "write-through L1D; CCX-to-NoC transducer",
    ),
    TileBlock(
        "l2_slice",
        "l2_cache",
        ("l2.", "dir."),
        "64KB shared-distributed L2 slice with integrated directory "
        "cache (MESI, CDR)",
    ),
    TileBlock(
        "noc1_router", "noc1_router", ("noc1.",),
        "request network router (dimension-ordered wormhole)",
    ),
    TileBlock(
        "noc2_router", "noc2_router", ("noc2.",),
        "forward/invalidate network router",
    ),
    TileBlock(
        "noc3_router", "noc3_router", ("noc3.",),
        "response network router",
    ),
    TileBlock("fpu", "fpu", ("instr.fp_",), "floating-point unit"),
    TileBlock(
        "mitts", "mitts", ("mitts.",),
        "memory inter-arrival time traffic shaper",
    ),
    TileBlock(
        "ccx", "config_regs", (),
        "CPU-cache crossbar arbiter + config registers",
    ),
)


@dataclass
class Tile:
    """Structural description of one tile."""

    tile_id: int
    config: PitonConfig = field(default_factory=PitonConfig)

    @property
    def blocks(self) -> tuple[TileBlock, ...]:
        return TILE_BLOCKS

    def block(self, name: str) -> TileBlock:
        for candidate in TILE_BLOCKS:
            if candidate.name == name:
                return candidate
        raise KeyError(
            f"no block {name!r}; have {[b.name for b in TILE_BLOCKS]}"
        )

    def block_area_mm2(self, name: str) -> float:
        """The block's Figure 8 silicon area."""
        return AreaBreakdown().block_mm2("tile", self.block(name).area_key)

    def events_of_block(self, name: str, ledger) -> dict[str, float]:
        """Filter an event ledger down to this block's events."""
        prefixes = self.block(name).event_prefixes
        return {
            event: count
            for event, count in ledger.counts.items()
            if any(event.startswith(p) for p in prefixes)
        }
