"""The chip bridge: three NoCs multiplexed over a 32-bit off-chip link.

Piton's three physical 64-bit NoCs leave the chip through tile 0 over a
pin-limited 32-bit (each direction) source-synchronous interface to the
gateway FPGA, using logical channels to keep the networks independent.
Two consequences the paper measures:

* every 64-bit flit costs two 32-bit beats of pad switching (VIO rail),
* inbound bandwidth is far below one flit per core cycle, producing the
  repeating 7-valid-flits-per-47-cycles pattern the Figure 12 EPF
  methodology depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import PitonConfig
from repro.util.events import EventLedger

#: Fraction of raw link bandwidth available to flit payload after
#: logical-channel framing/credit overhead. Calibrated so the inbound
#: flit rate reproduces the paper's simulation-verified traffic pattern
#: of 7 valid flits every 47 core cycles.
FRAMING_EFFICIENCY = 0.8274


@dataclass(frozen=True)
class BridgePattern:
    """The repeating inbound traffic pattern seen by the NoC."""

    valid_flits: int
    period_cycles: int

    @property
    def flits_per_cycle(self) -> float:
        return self.valid_flits / self.period_cycles


class ChipBridge:
    """Bandwidth and pad-energy model of the off-chip interface."""

    def __init__(
        self,
        config: PitonConfig | None = None,
        ledger: EventLedger | None = None,
    ):
        self.config = config or PitonConfig()
        self.ledger = ledger if ledger is not None else EventLedger()

    @property
    def link_bits_per_second(self) -> float:
        """Raw off-chip bandwidth, each direction."""
        return (
            self.config.chip_bridge_bits
            * self.config.clocks.gateway_to_piton_hz
        )

    def inbound_flits_per_core_cycle(self, core_clock_hz: float) -> float:
        """Sustained inbound NoC flit rate in flits per core cycle."""
        flit_bits = self.config.noc.flit_bits
        return (
            self.link_bits_per_second
            * FRAMING_EFFICIENCY
            / (flit_bits * core_clock_hz)
        )

    def traffic_pattern(self, core_clock_hz: float) -> BridgePattern:
        """Best small-integer repeating pattern for the flit rate.

        At the default 500.05 MHz core clock this returns the paper's
        7-per-47 pattern.
        """
        rate = self.inbound_flits_per_core_cycle(core_clock_hz)
        best = BridgePattern(1, max(1, round(1 / rate)))
        best_err = abs(best.flits_per_cycle - rate)
        for flits in range(1, 16):
            period = round(flits / rate)
            if period <= 0:
                continue
            err = abs(flits / period - rate)
            if err < best_err - 1e-12:
                best, best_err = BridgePattern(flits, period), err
        return best

    def transfer_flits(self, flits: int, payload_activity: float = 0.5) -> None:
        """Account pad energy for moving ``flits`` NoC flits off/on chip.

        Each 64-bit flit serializes into two 32-bit beats on the VIO
        pads; the framing overhead adds proportional extra beats.
        """
        if flits < 0:
            raise ValueError("flit count must be non-negative")
        beats = flits * (self.config.noc.flit_bits // 32)
        overhead = beats * (1.0 / FRAMING_EFFICIENCY - 1.0)
        self.ledger.record("io.beat", beats, activity=payload_activity)
        self.ledger.record("io.beat", overhead, activity=0.25)
        self.ledger.record("chipbridge.flit", flits)
