"""The closed control loop: sample at 17 Hz, decide, actuate, step.

:class:`Governor` wires a policy to the live coupled model: every
monitor tick it reads the die temperature and the board-measured power,
lets the policy pick a ladder level, actuates (V, f) if the level
changed, prices the chip at the new point, and advances the thermal
network one tick. The resulting :class:`GovernedTrace` carries the
full sample series plus the ledger totals and the invariant metadata
(cap, dwell, settle window, disturbance times) that
:meth:`repro.check.CheckSuite.check_governor` audits.

Timestamps are computed as ``k / poll_hz`` from the tick index — never
accumulated — so the actuation-on-tick-grid invariant holds exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.board import MONITOR_POLL_HZ
from repro.governor.ladder import LadderStep
from repro.governor.policies import GovernorPolicy, PolicyTick
from repro.governor.telemetry import PowerTelemetry
from repro.thermal.cooling import CoolingSetup
from repro.thermal.rc_network import ThermalNetwork

#: power(step, die_temp_c, t_s) -> watts: chip + workload at a ladder
#: point and temperature (the leakage-temperature coupling rides the
#: temp argument).
PowerFn = Callable[[LadderStep, float, float], float]

#: event(t_s, network) -> None: scenario disturbances applied at tick
#: boundaries (e.g. a fan failing).
EventFn = Callable[[float, ThermalNetwork], None]

#: Version of the :meth:`GovernedTrace.to_dict` document.
GOVERNED_TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class GovernorSample:
    """One 17 Hz control tick, post-actuation."""

    t_s: float
    level: int
    vdd: float
    freq_hz: float
    #: True model power applied over this tick (what the invariants
    #: judge).
    power_w: float
    #: What the board instruments reported to the policy.
    measured_w: float
    #: Die temperature at the end of the tick.
    die_temp_c: float
    actuated: bool


@dataclass
class GovernedTrace:
    """A governed run: samples, ledgers, and invariant metadata."""

    poll_hz: float
    n_levels: int
    cap_w: float | None = None
    min_dwell_s: float = 0.0
    #: Violations inside ``settle_s`` of t=0 or of any disturbance are
    #: transients the policy is still answering; the cap invariant
    #: exempts them.
    settle_s: float = 0.0
    disturbances_s: tuple[float, ...] = ()
    energy_j: float = 0.0
    work_cycles: float = 0.0
    samples: list[GovernorSample] = field(default_factory=list)

    # ------------------------------------------------------------- counters
    @property
    def gov_samples(self) -> int:
        return len(self.samples)

    @property
    def gov_actuations(self) -> int:
        return sum(1 for s in self.samples if s.actuated)

    def in_settle_window(self, t_s: float) -> bool:
        """True while the cap invariant gives the policy slack at
        ``t_s``: within ``settle_s`` of the start or a disturbance."""
        for origin in (0.0,) + self.disturbances_s:
            if origin <= t_s < origin + self.settle_s:
                return True
        return False

    def cap_violations(self) -> int:
        """Samples over budget outside every settle window."""
        if self.cap_w is None:
            return 0
        return sum(
            1
            for s in self.samples
            if s.power_w > self.cap_w * (1.0 + 1e-9)
            and not self.in_settle_window(s.t_s)
        )

    # -------------------------------------------------------------- summary
    def peak_temp_c(self) -> float:
        return max(s.die_temp_c for s in self.samples)

    def mean_freq_hz(self) -> float:
        return sum(s.freq_hz for s in self.samples) / len(self.samples)

    def mean_power_w(self) -> float:
        return sum(s.power_w for s in self.samples) / len(self.samples)

    def throttled_fraction(self) -> float:
        top = self.n_levels - 1
        return sum(1 for s in self.samples if s.level < top) / len(
            self.samples
        )

    def actuation_times(self) -> list[float]:
        return [s.t_s for s in self.samples if s.actuated]

    def completion_time_s(self, work_cycles: float) -> float | None:
        """When the running work integral first reaches ``work_cycles``
        (None if the trace never gets there)."""
        done = 0.0
        dt = 1.0 / self.poll_hz
        for s in self.samples:
            done += s.freq_hz * dt
            if done >= work_cycles:
                return s.t_s + dt
        return None

    # ----------------------------------------------------------------- json
    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": GOVERNED_TRACE_SCHEMA_VERSION,
            "poll_hz": self.poll_hz,
            "n_levels": self.n_levels,
            "cap_w": self.cap_w,
            "min_dwell_s": self.min_dwell_s,
            "settle_s": self.settle_s,
            "disturbances_s": list(self.disturbances_s),
            "energy_j": self.energy_j,
            "work_cycles": self.work_cycles,
            "t_s": [s.t_s for s in self.samples],
            "level": [s.level for s in self.samples],
            "vdd": [s.vdd for s in self.samples],
            "freq_hz": [s.freq_hz for s in self.samples],
            "power_w": [s.power_w for s in self.samples],
            "measured_w": [s.measured_w for s in self.samples],
            "die_temp_c": [s.die_temp_c for s in self.samples],
            "actuated": [s.actuated for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GovernedTrace":
        version = data.get("schema_version")
        if version != GOVERNED_TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported governed-trace schema_version {version!r} "
                f"(supported: {GOVERNED_TRACE_SCHEMA_VERSION})"
            )
        trace = cls(
            poll_hz=data["poll_hz"],
            n_levels=data["n_levels"],
            cap_w=data["cap_w"],
            min_dwell_s=data["min_dwell_s"],
            settle_s=data["settle_s"],
            disturbances_s=tuple(data["disturbances_s"]),
            energy_j=data["energy_j"],
            work_cycles=data["work_cycles"],
        )
        for i in range(len(data["t_s"])):
            trace.samples.append(
                GovernorSample(
                    t_s=data["t_s"][i],
                    level=data["level"][i],
                    vdd=data["vdd"][i],
                    freq_hz=data["freq_hz"][i],
                    power_w=data["power_w"][i],
                    measured_w=data["measured_w"][i],
                    die_temp_c=data["die_temp_c"][i],
                    actuated=data["actuated"][i],
                )
            )
        return trace


class Governor:
    """Closed-loop chip power controller at the monitor poll rate."""

    def __init__(
        self,
        ladder: tuple[LadderStep, ...],
        policy: GovernorPolicy,
        power_fn: PowerFn,
        cooling: CoolingSetup,
        *,
        poll_hz: float = MONITOR_POLL_HZ,
        telemetry: PowerTelemetry | None = None,
        settle_s: float = 0.0,
        disturbances_s: tuple[float, ...] = (),
        event_fn: EventFn | None = None,
        warm_start: bool = True,
        checker=None,
    ):
        if not ladder:
            raise ValueError("ladder must have at least one step")
        if poll_hz <= 0:
            raise ValueError("poll rate must be positive")
        self.ladder = tuple(ladder)
        self.policy = policy
        self.power_fn = power_fn
        self.cooling = cooling
        self.poll_hz = poll_hz
        self.telemetry = telemetry
        self.settle_s = settle_s
        self.disturbances_s = tuple(disturbances_s)
        self.event_fn = event_fn
        self.warm_start = warm_start
        self.checker = checker

    def _warm_start(
        self, network: ThermalNetwork, step: LadderStep
    ) -> None:
        """Settle the network at the initial operating point.

        The steady power depends on the steady temperature through
        leakage, so solve the small fixed point first.
        """
        temp = network.ambient_c
        power = self.power_fn(step, temp, 0.0)
        for _ in range(60):
            power = self.power_fn(step, temp, 0.0)
            new_temp = network.ambient_c + power * network.total_resistance
            if abs(new_temp - temp) < 0.01:
                break
            temp = new_temp
        network.settle(power)

    def run(self, duration_s: float) -> GovernedTrace:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        n = len(self.ladder)
        network = self.cooling.network()
        level = min(max(self.policy.start(n), 0), n - 1)
        if self.warm_start:
            self._warm_start(network, self.ladder[level])
        trace = GovernedTrace(
            poll_hz=self.poll_hz,
            n_levels=n,
            cap_w=self.policy.cap_w,
            min_dwell_s=self.policy.min_dwell_s,
            settle_s=self.settle_s,
            disturbances_s=self.disturbances_s,
        )
        dt = 1.0 / self.poll_hz
        ticks = int(round(duration_s * self.poll_hz))
        energy_j = 0.0
        work_cycles = 0.0
        for k in range(ticks):
            t = k / self.poll_hz
            if self.event_fn is not None:
                self.event_fn(t, network)
            temp = network.die_temp_c
            true_now = self.power_fn(self.ladder[level], temp, t)
            if self.telemetry is not None:
                measured = self.telemetry.read_power_w(
                    true_now, self.ladder[level].vdd
                )
            else:
                measured = true_now
            tick = PolicyTick(
                k=k,
                t_s=t,
                dt_s=dt,
                die_temp_c=temp,
                measured_w=measured,
                level=level,
                ladder=self.ladder,
                work_done_cycles=work_cycles,
                predict_w=lambda lv, _temp=temp, _t=t: self.power_fn(
                    self.ladder[lv], _temp, _t
                ),
            )
            new_level = min(max(self.policy.decide(tick), 0), n - 1)
            actuated = new_level != level
            level = new_level
            step = self.ladder[level]
            power = self.power_fn(step, temp, t)
            network.step(power, dt)
            energy_j += power * dt
            work_cycles += step.freq_hz * dt
            trace.samples.append(
                GovernorSample(
                    t_s=t,
                    level=level,
                    vdd=step.vdd,
                    freq_hz=step.freq_hz,
                    power_w=power,
                    measured_w=measured,
                    die_temp_c=network.die_temp_c,
                    actuated=actuated,
                )
            )
        trace.energy_j = energy_j
        trace.work_cycles = work_cycles
        if self.checker is not None:
            self.checker.check_governor(trace)
        return trace
