"""What the governor actually reads: the board's instruments.

The control loop does not get the model's exact watts — it samples the
same virtual I2C monitors the measurement protocol uses (quantized,
noisy, across a sense resistor), at the same
:data:`repro.board.MONITOR_POLL_HZ` tick. Feedback policies therefore
regulate against realistic telemetry while the invariants in
:mod:`repro.check` are judged on the true model power, exactly the gap
a real power-capping controller lives with.
"""

from __future__ import annotations

import numpy as np

from repro.board.sense import CurrentSenseChannel, SenseResistor, VoltageMonitor


class PowerTelemetry:
    """One seeded power-sense channel (voltage monitor + shunt).

    Deterministic for a given seed regardless of process: the stream
    comes from ``np.random.default_rng(seed)``, so a scenario measured
    in a worker pool reads bit-identical samples to one measured
    serially.
    """

    def __init__(self, seed: int, shunt: SenseResistor | None = None):
        rng = np.random.default_rng(seed)
        self._vmon = VoltageMonitor(rng)
        self._imon = CurrentSenseChannel(shunt or SenseResistor(), rng)

    def read_power_w(self, true_power_w: float, rail_v: float) -> float:
        """Measure a true draw through the instruments, in watts."""
        if rail_v <= 0:
            raise ValueError("rail voltage must be positive")
        true_current = true_power_w / rail_v
        v_meas = self._vmon.read(rail_v)
        i_meas = self._imon.read_current_a(true_current, rail_v)
        return v_meas * i_meas
