"""Pluggable governor policies.

Each policy sees one :class:`PolicyTick` per monitor sample and returns
the ladder level to hold for the next tick. Policies advertise the
invariants they guarantee through two attributes the controller copies
onto the trace for :meth:`repro.check.CheckSuite.check_governor`:

* ``cap_w`` — a power budget the policy enforces (``None`` if it does
  not cap);
* ``min_dwell_s`` — the minimum spacing it guarantees between
  actuations (0 if it may actuate on consecutive ticks).

The capping policies are *sound by construction*: before committing an
upward move (or, with protection enabled, any level) they price the
candidate rung through the tick's ``predict_w`` model and refuse rungs
over budget, so the applied power can only exceed the cap if even the
bottom rung does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.governor.ladder import LadderStep


@dataclass(frozen=True)
class PolicyTick:
    """Everything a policy may look at on one 17 Hz sample."""

    k: int
    t_s: float
    dt_s: float
    die_temp_c: float
    #: Power as the board instruments report it (noisy, quantized).
    measured_w: float
    level: int
    ladder: tuple[LadderStep, ...]
    work_done_cycles: float
    #: Model power if the chip held ``level`` at the current die
    #: temperature — the controller's plant model.
    predict_w: Callable[[int], float]

    @property
    def n_levels(self) -> int:
        return len(self.ladder)


class GovernorPolicy:
    """Base class; subclasses override :meth:`start` and :meth:`decide`."""

    #: See module docstring; the trace checker reads these.
    cap_w: float | None = None
    min_dwell_s: float = 0.0

    def start(self, n_levels: int) -> int:
        """Reset internal state; return the initial ladder level."""
        return n_levels - 1

    def decide(self, tick: PolicyTick) -> int:
        raise NotImplementedError


class StaticPolicy(GovernorPolicy):
    """No governing at all: hold one level (the baseline arm)."""

    def __init__(self, level: int | None = None):
        self._level = level

    def start(self, n_levels: int) -> int:
        if self._level is None:
            return n_levels - 1
        if not 0 <= self._level < n_levels:
            raise ValueError("static level outside the ladder")
        return self._level

    def decide(self, tick: PolicyTick) -> int:
        return tick.level


class ThermalTripPolicy(GovernorPolicy):
    """Hysteretic reactive thermal throttling with a dwell time.

    Drop one rung when the die crosses ``trip_c``, restore one rung
    below ``clear_c`` — the classic trip/clear pair — but never two
    actuations closer than ``min_dwell_s`` (one thermal time constant
    in the scenarios), which is what keeps the hysteresis from
    chattering when the die sits near a threshold.
    """

    def __init__(self, trip_c: float, clear_c: float, min_dwell_s: float):
        if clear_c >= trip_c:
            raise ValueError("clear temperature must be below trip")
        if min_dwell_s < 0:
            raise ValueError("dwell must be non-negative")
        self.trip_c = trip_c
        self.clear_c = clear_c
        self.min_dwell_s = min_dwell_s
        self._last_act_t: float | None = None

    def start(self, n_levels: int) -> int:
        self._last_act_t = None
        return n_levels - 1

    def decide(self, tick: PolicyTick) -> int:
        if (
            self._last_act_t is not None
            and tick.t_s - self._last_act_t < self.min_dwell_s - 1e-12
        ):
            return tick.level  # still dwelling
        if tick.die_temp_c >= self.trip_c and tick.level > 0:
            self._last_act_t = tick.t_s
            return tick.level - 1
        if tick.die_temp_c <= self.clear_c and tick.level < tick.n_levels - 1:
            self._last_act_t = tick.t_s
            return tick.level + 1
        return tick.level


class ReactiveCapPolicy(GovernorPolicy):
    """RAPL-style power capping, re-solved every tick.

    Each sample picks the *highest* rung whose model power at the
    current die temperature fits the budget, jumping multiple rungs at
    once if a workload phase demands it. Sound by construction whenever
    the bottom rung itself fits.
    """

    def __init__(self, cap_w: float):
        if cap_w <= 0:
            raise ValueError("cap must be positive")
        self.cap_w = cap_w

    def start(self, n_levels: int) -> int:
        return 0

    def decide(self, tick: PolicyTick) -> int:
        for level in range(tick.n_levels - 1, 0, -1):
            if tick.predict_w(level) <= self.cap_w:
                return level
        return 0


class PIPowerCapPolicy(GovernorPolicy):
    """A PI power-capping controller over the board's measured power.

    Velocity-form PI on the normalized budget error drives a continuous
    level command which is rounded onto the ladder; clamping the
    command to the ladder ends doubles as anti-windup. With
    ``protective=True`` (the default) a hard over-power protection
    stage walks any commanded rung down until the model prices it
    within budget — the safety net real controllers put after the
    tuned loop. Disabling it exposes the raw PI, which a mis-tuned
    gain set will happily pin over budget; the governor check suite
    exists to catch exactly that.
    """

    def __init__(
        self,
        cap_w: float,
        kp: float = 2.0,
        ki: float = 1.2,
        protective: bool = True,
    ):
        if cap_w <= 0:
            raise ValueError("cap must be positive")
        self.cap_w = cap_w
        self.kp = kp
        self.ki = ki
        self.protective = protective
        self._x = 0.0
        self._prev_e: float | None = None

    def start(self, n_levels: int) -> int:
        self._x = 0.0
        self._prev_e = None
        return 0

    def decide(self, tick: PolicyTick) -> int:
        e = (self.cap_w - tick.measured_w) / self.cap_w
        if self._prev_e is None:
            self._prev_e = e
        self._x += self.kp * (e - self._prev_e) + self.ki * tick.dt_s * e
        self._prev_e = e
        self._x = min(max(self._x, 0.0), float(tick.n_levels - 1))
        target = int(math.floor(self._x + 0.5))
        if self.protective:
            while target > 0 and tick.predict_w(target) > self.cap_w:
                target -= 1
        return target


class RaceToIdlePolicy(GovernorPolicy):
    """Finish a fixed work quantum flat out, then drop to the bottom.

    The classic energy question: sprint at the top rung and idle the
    remainder, betting that time-proportional (leakage + clock) energy
    saved by finishing early beats the CV^2 premium of the sprint.
    """

    def __init__(self, work_cycles: float):
        if work_cycles <= 0:
            raise ValueError("work quantum must be positive")
        self.work_cycles = work_cycles

    def decide(self, tick: PolicyTick) -> int:
        if tick.work_done_cycles >= self.work_cycles:
            return 0
        return tick.n_levels - 1


class PaceToDeadlinePolicy(GovernorPolicy):
    """Run the slowest rung that still makes the deadline.

    Every tick re-derives the required rate from remaining work over
    remaining time, so throttling by other causes (or a generous
    deadline) automatically lowers the pace — the just-in-time
    counterpart to :class:`RaceToIdlePolicy`.
    """

    def __init__(self, work_cycles: float, deadline_s: float):
        if work_cycles <= 0:
            raise ValueError("work quantum must be positive")
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        self.work_cycles = work_cycles
        self.deadline_s = deadline_s

    def start(self, n_levels: int) -> int:
        return 0

    def decide(self, tick: PolicyTick) -> int:
        remaining = self.work_cycles - tick.work_done_cycles
        if remaining <= 0:
            return 0
        time_left = self.deadline_s - tick.t_s
        if time_left <= tick.dt_s:
            return tick.n_levels - 1  # past due: flat out
        required_hz = remaining / time_left
        for level, step in enumerate(tick.ladder):
            if step.freq_hz >= required_hz:
                return level
        return tick.n_levels - 1
