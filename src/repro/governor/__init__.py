"""Closed-loop chip power management over the virtual bench.

The paper characterizes the 25-core chip open loop; this package adds
the control loop its measurements invite (ROADMAP item 4): a governor
that samples the board's monitors at the bench's 17 Hz poll rate and
actuates (V, f) along a :class:`~repro.power.vf_curve.VfCurve`-derived
ladder on the live power-temperature model, with pluggable policies —
hysteretic thermal trip/clear, reactive and PI power capping,
race-to-idle versus pace-to-deadline. Scenario value objects make runs
picklable and deterministic; :mod:`repro.check` audits every trace's
cap, hysteresis-dwell, tick-grid, and energy-ledger invariants.
"""

from repro.governor.controller import (
    GOVERNED_TRACE_SCHEMA_VERSION,
    GovernedTrace,
    Governor,
    GovernorSample,
)
from repro.governor.ladder import DEFAULT_VDD_GRID, LadderStep, vf_ladder
from repro.governor.policies import (
    GovernorPolicy,
    PaceToDeadlinePolicy,
    PIPowerCapPolicy,
    PolicyTick,
    RaceToIdlePolicy,
    ReactiveCapPolicy,
    StaticPolicy,
    ThermalTripPolicy,
)
from repro.governor.scenarios import (
    COOLING_SETUPS,
    NOMINAL_HZ,
    POLICY_NAMES,
    ScenarioSpec,
    run_scenario,
)
from repro.governor.telemetry import PowerTelemetry

__all__ = [
    "GOVERNED_TRACE_SCHEMA_VERSION",
    "GovernedTrace",
    "Governor",
    "GovernorSample",
    "DEFAULT_VDD_GRID",
    "LadderStep",
    "vf_ladder",
    "GovernorPolicy",
    "PolicyTick",
    "StaticPolicy",
    "ThermalTripPolicy",
    "ReactiveCapPolicy",
    "PIPowerCapPolicy",
    "RaceToIdlePolicy",
    "PaceToDeadlinePolicy",
    "COOLING_SETUPS",
    "NOMINAL_HZ",
    "POLICY_NAMES",
    "ScenarioSpec",
    "run_scenario",
    "PowerTelemetry",
]
