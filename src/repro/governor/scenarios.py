"""Declarative governor scenarios (picklable, pool-friendly).

A :class:`ScenarioSpec` is a frozen value object naming everything a
governed run needs — persona, cooling stack, VDD grid, workload
phases, policy and its knobs, disturbance events, telemetry seed — and
:func:`run_scenario` is the module-level function that executes one.
Both are picklable, so the ctl experiments fan scenario arms across
:func:`repro.experiments.parallel.parallel_map` workers and get
bit-identical traces serial or parallel (the telemetry stream is
seeded per spec, and :class:`~repro.power.vf_curve.VfCurve`'s memo
cache is a pure-function cache).

The workload is piecewise-constant activity power quoted at the
nominal operating point (1.0 V / 500.05 MHz) and rescaled to the
commanded rung as ``a * (f / f_nom) * (VDD / VDD_nom)^2`` — the same
shape the DTM ablation uses. Phase starts and fan events are reported
to the trace as disturbances so the cap invariant knows where
re-settle transients are legitimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.governor.controller import Governor, GovernedTrace, PowerFn
from repro.governor.ladder import DEFAULT_VDD_GRID, LadderStep, vf_ladder
from repro.governor.policies import (
    GovernorPolicy,
    PaceToDeadlinePolicy,
    PIPowerCapPolicy,
    RaceToIdlePolicy,
    ReactiveCapPolicy,
    StaticPolicy,
    ThermalTripPolicy,
)
from repro.governor.telemetry import PowerTelemetry
from repro.power.calibration import DEFAULT_CALIBRATION
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.silicon.variation import PERSONAS
from repro.thermal.cooling import NO_HEATSINK, STOCK_HEATSINK_FAN, CoolingSetup
from repro.thermal.rc_network import ThermalNetwork

#: The default operating point's clock: activity watts in specs are
#: quoted at this frequency and the nominal VDD.
NOMINAL_HZ = 500.05e6

#: Cooling stacks a spec may name.
COOLING_SETUPS: dict[str, CoolingSetup] = {
    "stock": STOCK_HEATSINK_FAN,
    "camera": NO_HEATSINK,
}

#: Policies a spec may name.
POLICY_NAMES = (
    "static",
    "thermal_trip",
    "reactive_cap",
    "pi_cap",
    "race",
    "pace",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One governed run, fully specified by value."""

    name: str
    policy: str
    persona: str = "chip2"
    cooling: str = "stock"
    vdd_grid: tuple[float, ...] = DEFAULT_VDD_GRID
    duration_s: float = 120.0
    warm_start: bool = True
    #: ((start_s, activity_w_at_nominal), ...) — piecewise constant.
    phases: tuple[tuple[float, float], ...] = ((0.0, 1.45),)
    #: Cap policies.
    cap_w: float | None = None
    kp: float = 2.0
    ki: float = 1.2
    protective: bool = True
    #: Thermal trip policy.
    trip_c: float = 88.0
    clear_c: float = 82.0
    #: None -> one die thermal time constant of the cooling stack.
    dwell_s: float | None = None
    #: Energy policies.
    work_gcycles: float | None = None
    deadline_s: float | None = None
    #: Static baseline.
    fixed_level: int | None = None
    #: Fan-failure event: multiply the final (convective) stage's
    #: resistance by ``fan_r_factor`` at ``fan_fail_s``, restore at
    #: ``fan_recover_s``.
    fan_fail_s: float | None = None
    fan_recover_s: float | None = None
    fan_r_factor: float = 3.0
    #: Board telemetry; None reads true power (noise-free loop).
    sensor_seed: int | None = None
    #: Cap-invariant slack after t=0 and each disturbance.
    settle_s: float = 10.0

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{POLICY_NAMES}"
            )
        if self.persona not in PERSONAS:
            raise ValueError(f"unknown persona {self.persona!r}")
        if self.cooling not in COOLING_SETUPS:
            raise ValueError(f"unknown cooling {self.cooling!r}")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not self.phases or self.phases[0][0] != 0.0:
            raise ValueError("phases must start at t=0")
        starts = [start for start, _ in self.phases]
        if sorted(starts) != starts or len(set(starts)) != len(starts):
            raise ValueError("phase starts must be strictly ascending")
        if any(watts < 0 for _, watts in self.phases):
            raise ValueError("activity power must be non-negative")
        if self.policy in ("reactive_cap", "pi_cap") and self.cap_w is None:
            raise ValueError(f"policy {self.policy!r} needs cap_w")
        if self.policy in ("race", "pace") and self.work_gcycles is None:
            raise ValueError(f"policy {self.policy!r} needs work_gcycles")
        if self.policy == "pace" and self.deadline_s is None:
            raise ValueError("policy 'pace' needs deadline_s")

    # ------------------------------------------------------------ derived
    def activity_w(self, t_s: float) -> float:
        """Workload activity at nominal conditions, at time ``t_s``."""
        current = self.phases[0][1]
        for start, watts in self.phases:
            if t_s >= start:
                current = watts
            else:
                break
        return current

    def disturbance_times(self) -> tuple[float, ...]:
        times = [start for start, _ in self.phases[1:]]
        if self.fan_fail_s is not None:
            times.append(self.fan_fail_s)
        if self.fan_recover_s is not None:
            times.append(self.fan_recover_s)
        return tuple(sorted(times))


#: Leakage-model validity ceiling. The exponential leakage fit is
#: calibrated up to the stability limit; past ``t_max_c + 40`` (the
#: same sentinel band :class:`~repro.power.vf_curve.VfCurve` treats as
#: runaway) we hold leakage at its ceiling value instead of
#: extrapolating without bound, so an ungoverned baseline arm settles
#: at a finite — still obviously unacceptable — temperature rather
#: than overflowing.
T_MODEL_MAX_C = DEFAULT_CALIBRATION.t_max_c + 40.0


def build_power_fn(spec: ScenarioSpec) -> PowerFn:
    """Chip idle power at the rung plus rescaled workload activity."""
    model = ChipPowerModel(PERSONAS[spec.persona], DEFAULT_CALIBRATION)
    vdd_nom = DEFAULT_CALIBRATION.vdd_nom

    def power_w(step: LadderStep, die_temp_c: float, t_s: float) -> float:
        op = OperatingPoint(
            vdd=step.vdd,
            vcs=step.vcs,
            freq_hz=step.freq_hz,
            temp_c=min(die_temp_c, T_MODEL_MAX_C),
        )
        idle = model.idle_power(op).total_w
        activity = (
            spec.activity_w(t_s)
            * (step.freq_hz / NOMINAL_HZ)
            * (step.vdd / vdd_nom) ** 2
        )
        return idle + activity

    return power_w


def build_policy(spec: ScenarioSpec, cooling: CoolingSetup) -> GovernorPolicy:
    if spec.policy == "static":
        return StaticPolicy(spec.fixed_level)
    if spec.policy == "thermal_trip":
        dwell = spec.dwell_s
        if dwell is None:
            dwell = cooling.stages[0].tau_s
        return ThermalTripPolicy(spec.trip_c, spec.clear_c, dwell)
    if spec.policy == "reactive_cap":
        return ReactiveCapPolicy(spec.cap_w)
    if spec.policy == "pi_cap":
        return PIPowerCapPolicy(
            spec.cap_w, spec.kp, spec.ki, spec.protective
        )
    if spec.policy == "race":
        return RaceToIdlePolicy(spec.work_gcycles * 1e9)
    return PaceToDeadlinePolicy(spec.work_gcycles * 1e9, spec.deadline_s)


def build_fan_event(spec: ScenarioSpec, cooling: CoolingSetup):
    """Event hook degrading/restoring the convective stage, or None."""
    if spec.fan_fail_s is None:
        return None
    stage_index = len(cooling.stages) - 1
    base_r = cooling.stages[stage_index].r_c_per_w
    state = {"failed": False}

    def event(t_s: float, network: ThermalNetwork) -> None:
        recover = spec.fan_recover_s
        if not state["failed"] and t_s >= spec.fan_fail_s and (
            recover is None or t_s < recover
        ):
            network.set_stage_resistance(
                stage_index, base_r * spec.fan_r_factor
            )
            state["failed"] = True
        elif state["failed"] and recover is not None and t_s >= recover:
            network.set_stage_resistance(stage_index, base_r)
            state["failed"] = False

    return event


def run_scenario(spec: ScenarioSpec, checker=None) -> GovernedTrace:
    """Execute one scenario end to end.

    Module-level and driven purely by the spec, so
    ``parallel_map(run_scenario, specs, jobs)`` works and reproduces
    serial results bit for bit.
    """
    cooling = COOLING_SETUPS[spec.cooling]
    ladder = vf_ladder(
        PERSONAS[spec.persona],
        spec.vdd_grid,
        ambient_c=cooling.ambient_c,
    )
    telemetry = (
        PowerTelemetry(spec.sensor_seed)
        if spec.sensor_seed is not None
        else None
    )
    governor = Governor(
        ladder,
        build_policy(spec, cooling),
        build_power_fn(spec),
        cooling,
        telemetry=telemetry,
        settle_s=spec.settle_s,
        disturbances_s=spec.disturbance_times(),
        event_fn=build_fan_event(spec, cooling),
        warm_start=spec.warm_start,
        checker=checker,
    )
    return governor.run(spec.duration_s)
