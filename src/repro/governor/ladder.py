"""The governor's actuation ladder: (V, f) operating points.

A real power controller does not command arbitrary voltage/frequency
pairs — it walks a table of validated operating points. Here the table
comes from the chip itself: for each VDD on the bench grid,
:class:`repro.power.vf_curve.VfCurve` gives the highest bootable grid
frequency (thermal limiting included), and VCS rides 0.05 V above VDD
exactly as in every paper experiment. Points that buy no frequency for
more voltage (Chip #1's 1.2 V droop) are dominated and dropped, so the
ladder is strictly ascending in frequency and a governor never holds a
hotter rung than it needs for the clock it delivers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.power.vf_curve import VfCurve
from repro.silicon.variation import ChipPersona

#: The bench VDD sweep grid (Figure 9's x axis): 0.80 V to 1.20 V in
#: 50 mV steps.
DEFAULT_VDD_GRID: tuple[float, ...] = tuple(
    round(0.80 + 0.05 * i, 2) for i in range(9)
)


@dataclass(frozen=True)
class LadderStep:
    """One validated operating point the governor may command."""

    level: int
    vdd: float
    vcs: float
    freq_hz: float


def vf_ladder(
    persona: ChipPersona,
    vdd_grid: tuple[float, ...] = DEFAULT_VDD_GRID,
    calib: Calibration = DEFAULT_CALIBRATION,
    ambient_c: float = 25.0,
) -> tuple[LadderStep, ...]:
    """Build the actuation ladder for one chip persona.

    Levels are indexed from 0 (slowest, lowest voltage) upward;
    ``ladder[-1]`` is the fastest validated point.
    """
    if not vdd_grid:
        raise ValueError("need at least one VDD grid point")
    if sorted(vdd_grid) != list(vdd_grid):
        raise ValueError("VDD grid must be ascending")
    curve = VfCurve(persona, calib, ambient_c)
    steps: list[LadderStep] = []
    for vdd in vdd_grid:
        point = curve.boot_frequency(vdd)
        if point.fmax_hz <= 0:
            continue  # does not boot at this voltage
        if steps and point.fmax_hz <= steps[-1].freq_hz:
            continue  # dominated: more volts, no more clock
        steps.append(
            LadderStep(
                level=len(steps),
                vdd=vdd,
                vcs=vdd + 0.05,
                freq_hz=point.fmax_hz,
            )
        )
    if not steps:
        raise ValueError("no bootable operating point on the VDD grid")
    return tuple(steps)
