"""Lumped RC thermal network (Cauer ladder).

Die -> package/encapsulation -> heat sink -> ambient, each stage a
thermal resistance into the next node and a heat capacitance at the
node. This is the standard compact model (HotSpot-style [71]) at the
granularity the paper's package-level measurements support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class RcStage:
    """One ladder rung: resistance to the next node, capacity here."""

    name: str
    r_c_per_w: float  # thermal resistance, degC per watt
    c_j_per_c: float  # heat capacity, joules per degC

    def __post_init__(self) -> None:
        if self.r_c_per_w <= 0 or self.c_j_per_c <= 0:
            raise ValueError("thermal R and C must be positive")

    @property
    def tau_s(self) -> float:
        return self.r_c_per_w * self.c_j_per_c


class ThermalNetwork:
    """Cauer ladder driven by die power, grounded at ambient."""

    def __init__(self, stages: Sequence[RcStage], ambient_c: float = 25.0):
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = list(stages)
        self.ambient_c = ambient_c
        self.temps = [ambient_c] * len(stages)
        #: Largest die power ever applied; the boundedness checker
        #: derives its temperature ceiling from this watermark.
        self.power_peak_w = 0.0
        #: Optional :class:`repro.check.CheckSuite`; ``None`` keeps
        #: stepping check-free.
        self.checker = None

    @property
    def die_temp_c(self) -> float:
        return self.temps[0]

    @property
    def total_resistance(self) -> float:
        return sum(s.r_c_per_w for s in self.stages)

    def set_stage_resistance(self, index: int, r_c_per_w: float) -> None:
        """Swap one stage's thermal resistance in place, keeping the
        node temperatures (they are physical state).

        This models a cooling change while the system runs — a fan
        failing (convective resistance jumps) or recovering — which the
        closed-loop governor scenarios drive mid-simulation. Validation
        rides on :class:`RcStage`'s own ``__post_init__``.
        """
        stage = self.stages[index]
        self.stages[index] = RcStage(
            stage.name, r_c_per_w, stage.c_j_per_c
        )

    def steady_state(self, power_w: float) -> list[float]:
        """Node temperatures once everything settles at ``power_w``."""
        temps = []
        temp = self.ambient_c
        # Walk from ambient inward: all power flows through every R.
        for stage in reversed(self.stages):
            temp = temp + power_w * stage.r_c_per_w
            temps.append(temp)
        return list(reversed(temps))

    def settle(self, power_w: float) -> None:
        """Jump the state to the steady point (initial conditions)."""
        self.power_peak_w = max(self.power_peak_w, power_w)
        self.temps = self.steady_state(power_w)
        if self.checker is not None:
            self.checker.check_thermal(self)

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the network ``dt_s`` seconds with ``power_w`` at the
        die node; returns the new die temperature. Uses forward Euler
        with internal sub-stepping for stability."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        self.power_peak_w = max(self.power_peak_w, power_w)
        # Explicit-Euler stability is set by each node's *effective*
        # time constant: its capacity over the total conductance
        # attached to it (own R downstream plus the upstream stage's R
        # coupling heat in), not by the stage's own R*C alone.
        taus = []
        for i, stage in enumerate(self.stages):
            g = 1.0 / stage.r_c_per_w
            if i > 0:
                g += 1.0 / self.stages[i - 1].r_c_per_w
            taus.append(stage.c_j_per_c / g)
        min_tau = min(taus)
        substeps = max(1, int(dt_s / (0.1 * min_tau)) + 1)
        h = dt_s / substeps
        n = len(self.stages)
        for _ in range(substeps):
            flows = []
            for i, stage in enumerate(self.stages):
                downstream = (
                    self.temps[i + 1] if i + 1 < n else self.ambient_c
                )
                flows.append((self.temps[i] - downstream) / stage.r_c_per_w)
            new_temps = list(self.temps)
            for i, stage in enumerate(self.stages):
                inflow = power_w if i == 0 else flows[i - 1]
                new_temps[i] += h * (inflow - flows[i]) / stage.c_j_per_c
            self.temps = new_temps
        if self.checker is not None:
            self.checker.check_thermal(self)
        return self.die_temp_c
