"""Coupled power-temperature time simulation.

Power depends on temperature (leakage) and temperature depends on power
(the RC network): this module closes the loop and integrates it in
time, which is what produces Figure 18's hysteresis — after a phase
change, power jumps immediately but temperature lags with the package
time constants, then leakage follows temperature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.thermal.cooling import CoolingSetup
from repro.thermal.rc_network import ThermalNetwork

#: power_fn(die_temp_c, time_s) -> total chip watts
PowerFunction = Callable[[float, float], float]


@dataclass(frozen=True)
class TraceSample:
    """One point of a power/temperature time series."""

    time_s: float
    power_w: float
    die_temp_c: float
    surface_temp_c: float


class PowerTemperatureSimulator:
    """Integrates the power-thermal feedback loop."""

    def __init__(self, cooling: CoolingSetup, checker=None):
        self.cooling = cooling
        self.network: ThermalNetwork = cooling.network()
        #: Optional :class:`repro.check.CheckSuite`, installed on the
        #: RC network so every settle/step is bounds-checked.
        self.network.checker = checker

    def settle(self, power_fn: PowerFunction, max_iter: int = 200) -> float:
        """Find the steady operating point of the feedback loop and set
        the network state there; returns the die temperature."""
        temp = self.network.ambient_c
        for _ in range(max_iter):
            power = power_fn(temp, 0.0)
            steady = self.network.steady_state(power)
            if abs(steady[0] - temp) < 0.005:
                self.network.settle(power)
                return steady[0]
            temp = temp + 0.5 * (steady[0] - temp)
        self.network.settle(power_fn(temp, 0.0))
        return self.network.die_temp_c

    def run(
        self,
        power_fn: PowerFunction,
        duration_s: float,
        dt_s: float = 0.1,
    ) -> list[TraceSample]:
        """Integrate for ``duration_s``, sampling every ``dt_s``."""
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and dt must be positive")
        samples: list[TraceSample] = []
        steps = int(round(duration_s / dt_s))
        t = 0.0
        for _ in range(steps):
            die_temp = self.network.die_temp_c
            power = power_fn(die_temp, t)
            self.network.step(power, dt_s)
            t += dt_s
            samples.append(
                TraceSample(
                    time_s=t,
                    power_w=power,
                    die_temp_c=self.network.die_temp_c,
                    surface_temp_c=self.network.temps[-1],
                )
            )
        return samples

    @staticmethod
    def hysteresis_area(
        samples: Sequence[TraceSample],
    ) -> float:
        """Signed shoelace area of the power-temperature orbit — the
        quantitative size of the Figure 18 hysteresis loop (W x degC)."""
        if len(samples) < 3:
            return 0.0
        area = 0.0
        n = len(samples)
        for i in range(n):
            a = samples[i]
            b = samples[(i + 1) % n]
            area += (
                a.surface_temp_c * b.power_w - b.surface_temp_c * a.power_w
            )
        return abs(area) / 2.0
