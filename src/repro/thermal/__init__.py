"""Thermal modelling: lumped RC network, cooling options, feedback.

The paper's thermal story has three parts we reproduce:

* a *static* picture — die temperature is the fixed point of
  T = T_amb + R_ja * P(T), with leakage making P exponential in T
  (Figure 17's power-versus-temperature curves, swept by tilting the
  fan, i.e. varying the convective resistance);
* a *dynamic* picture — package and heat-sink thermal capacitances give
  the system seconds-scale time constants, so application phase changes
  drag temperature (and through leakage, power) behind them, producing
  Figure 18's hysteresis loops;
* a *packaging* story — the cavity-up QFP + socket + epoxy stack has a
  high junction-to-ambient resistance, which is what thermally limits
  Fmax at high voltage (Figure 9).
"""

from repro.thermal.cooling import (
    CoolingSetup,
    NO_HEATSINK,
    STOCK_HEATSINK_FAN,
    fan_angle_resistance,
)
from repro.thermal.dtm import PowerCapGovernor, ThermalThrottleGovernor
from repro.thermal.rc_network import RcStage, ThermalNetwork
from repro.thermal.feedback import PowerTemperatureSimulator, TraceSample

__all__ = [
    "CoolingSetup",
    "NO_HEATSINK",
    "STOCK_HEATSINK_FAN",
    "fan_angle_resistance",
    "RcStage",
    "ThermalNetwork",
    "PowerTemperatureSimulator",
    "TraceSample",
    "PowerCapGovernor",
    "ThermalThrottleGovernor",
]
