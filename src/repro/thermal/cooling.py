"""Cooling configurations of the two experimental setups.

* The main setup (Figure 6/7): stock heat sink on aluminium spacers
  over the cavity-up QFP, 44 cfm case fan. Deliberately over-provisioned
  in capacity, but the die-to-sink path through the epoxy/package is
  poor — which is the paper's explanation for the thermal Fmax limit.
* The Section IV-J setup: heat sink removed (for camera access), chip
  at 100.01 MHz / 0.9V, temperature swept by tilting the fan, i.e.
  varying the convective resistance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thermal.rc_network import RcStage, ThermalNetwork


@dataclass(frozen=True)
class CoolingSetup:
    """Named stack of RC stages."""

    name: str
    stages: tuple[RcStage, ...]
    ambient_c: float = 25.0

    def network(self) -> ThermalNetwork:
        return ThermalNetwork(list(self.stages), self.ambient_c)

    @property
    def r_ja(self) -> float:
        return sum(s.r_c_per_w for s in self.stages)


# Die + spreader: small mass, fast tau. Package/epoxy: the dominant
# resistance (cavity-up + encapsulation + socket). Heat sink: large
# mass, slow tau, low resistance to ambient thanks to the fan.
STOCK_HEATSINK_FAN = CoolingSetup(
    name="stock heatsink + 44cfm fan",
    stages=(
        RcStage("die", 1.0, 0.8),
        RcStage("package+epoxy+spacers", 10.0, 6.0),
        RcStage("heatsink", 2.0, 60.0),
    ),
)

# Without the heat sink the package sheds heat straight to moving air.
NO_HEATSINK = CoolingSetup(
    name="no heatsink (thermal-camera setup)",
    stages=(
        RcStage("die", 1.0, 0.8),
        RcStage("package+epoxy", 12.0, 6.0),
        RcStage("package-to-air", 25.0, 3.0),
    ),
    ambient_c=20.0,
)


def fan_angle_resistance(angle_deg: float) -> float:
    """Package-to-air resistance as the fan tilts away (Section IV-J).

    0 degrees = fan square on the package (best convection); 90 = fully
    parallel (worst). The paper sweeps temperature by adjusting this
    angle; we model the convective resistance rising smoothly by ~3x.
    """
    if not 0.0 <= angle_deg <= 90.0:
        raise ValueError("fan angle must be within [0, 90] degrees")
    worst, best = 46.0, 22.0
    frac = angle_deg / 90.0
    return best + (worst - best) * frac**1.5


def no_heatsink_at_angle(angle_deg: float) -> CoolingSetup:
    """The Section IV-J stack with the fan at ``angle_deg``."""
    stages = (
        RcStage("die", 1.0, 0.8),
        RcStage("package+epoxy", 12.0, 6.0),
        RcStage("package-to-air", fan_angle_resistance(angle_deg), 3.0),
    )
    return CoolingSetup(
        name=f"no heatsink, fan at {angle_deg:.0f} deg",
        stages=stages,
        ambient_c=20.0,
    )
