"""Dynamic thermal management: throttling governors.

The paper's Section IV-J motivates thermal-aware scheduling and cites
the power-capping / TSP literature [52][53]; Piton itself has no
hardware DTM, making it a natural extension study. This module provides
two governors over the power-temperature feedback simulator:

* :class:`ThermalThrottleGovernor` — classic reactive DTM: drop the
  clock one step when the die crosses the trip temperature, restore it
  below the clear temperature (hysteretic, like Intel's thermal
  monitor);
* :class:`PowerCapGovernor` — a power-capping controller: keep a
  running power estimate under a budget by the same frequency ladder.

Both emit a :class:`GovernedTrace` suitable for the ablation
experiment and the thermal examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.thermal.cooling import CoolingSetup
from repro.thermal.rc_network import ThermalNetwork

#: power_at(freq_hz, die_temp_c) -> watts: the workload/chip model the
#: governor is driving.
PowerModelFn = Callable[[float, float], float]


@dataclass(frozen=True)
class GovernorSample:
    time_s: float
    freq_hz: float
    power_w: float
    die_temp_c: float
    throttled: bool


@dataclass
class GovernedTrace:
    samples: list[GovernorSample] = field(default_factory=list)

    def peak_temp_c(self) -> float:
        return max(s.die_temp_c for s in self.samples)

    def mean_freq_hz(self) -> float:
        return sum(s.freq_hz for s in self.samples) / len(self.samples)

    def throttled_fraction(self) -> float:
        return sum(s.throttled for s in self.samples) / len(self.samples)

    def work_done(self) -> float:
        """Integral of frequency over time: cycles executed."""
        if len(self.samples) < 2:
            return 0.0
        total = 0.0
        for a, b in zip(self.samples, self.samples[1:]):
            total += a.freq_hz * (b.time_s - a.time_s)
        return total


class ThermalThrottleGovernor:
    """Hysteretic reactive thermal throttling."""

    def __init__(
        self,
        freq_ladder_hz: list[float],
        trip_c: float = 85.0,
        clear_c: float = 78.0,
    ):
        if not freq_ladder_hz:
            raise ValueError("need at least one frequency step")
        if sorted(freq_ladder_hz) != freq_ladder_hz:
            raise ValueError("ladder must be ascending")
        if clear_c >= trip_c:
            raise ValueError("clear temperature must be below trip")
        self.ladder = freq_ladder_hz
        self.trip_c = trip_c
        self.clear_c = clear_c

    def run(
        self,
        power_model: PowerModelFn,
        cooling: CoolingSetup,
        duration_s: float,
        dt_s: float = 0.2,
    ) -> GovernedTrace:
        network: ThermalNetwork = cooling.network()
        step_index = len(self.ladder) - 1  # start at full speed
        trace = GovernedTrace()
        t = 0.0
        while t < duration_s:
            temp = network.die_temp_c
            if temp >= self.trip_c and step_index > 0:
                step_index -= 1
            elif temp <= self.clear_c and step_index < len(self.ladder) - 1:
                step_index += 1
            freq = self.ladder[step_index]
            power = power_model(freq, temp)
            network.step(power, dt_s)
            t += dt_s
            trace.samples.append(
                GovernorSample(
                    time_s=t,
                    freq_hz=freq,
                    power_w=power,
                    die_temp_c=network.die_temp_c,
                    throttled=step_index < len(self.ladder) - 1,
                )
            )
        return trace


class PowerCapGovernor:
    """Frequency-ladder power capping (RAPL-style, first order)."""

    def __init__(self, freq_ladder_hz: list[float], cap_w: float):
        if not freq_ladder_hz:
            raise ValueError("need at least one frequency step")
        if sorted(freq_ladder_hz) != freq_ladder_hz:
            raise ValueError("ladder must be ascending")
        if cap_w <= 0:
            raise ValueError("cap must be positive")
        self.ladder = freq_ladder_hz
        self.cap_w = cap_w

    def run(
        self,
        power_model: PowerModelFn,
        cooling: CoolingSetup,
        duration_s: float,
        dt_s: float = 0.2,
    ) -> GovernedTrace:
        network: ThermalNetwork = cooling.network()
        step_index = len(self.ladder) - 1
        trace = GovernedTrace()
        t = 0.0
        while t < duration_s:
            temp = network.die_temp_c
            power = power_model(self.ladder[step_index], temp)
            if power > self.cap_w and step_index > 0:
                step_index -= 1
            elif step_index < len(self.ladder) - 1:
                # Probe upward only if the next step stays under cap.
                candidate = power_model(
                    self.ladder[step_index + 1], temp
                )
                if candidate <= self.cap_w:
                    step_index += 1
            freq = self.ladder[step_index]
            power = power_model(freq, temp)
            network.step(power, dt_s)
            t += dt_s
            trace.samples.append(
                GovernorSample(
                    time_s=t,
                    freq_hz=freq,
                    power_w=power,
                    die_temp_c=network.die_temp_c,
                    throttled=step_index < len(self.ladder) - 1,
                )
            )
        return trace
