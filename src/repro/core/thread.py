"""Per-thread architectural state and run statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import NUM_FP_REGS, NUM_INT_REGS, WORD_MASK
from repro.isa.program import Program


@dataclass
class ThreadStats:
    """Committed-work counters for one hardware thread."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    branches_taken: int = 0
    rollbacks: int = 0
    iterations: int = 0  # incremented by backward taken branches

    def merge(self, other: "ThreadStats") -> None:
        self.instructions += other.instructions
        self.loads += other.loads
        self.stores += other.stores
        self.branches += other.branches
        self.branches_taken += other.branches_taken
        self.rollbacks += other.rollbacks
        self.iterations += other.iterations


@dataclass
class ThreadContext:
    """One hardware thread: program, registers, and readiness.

    ``ready_at`` is the next cycle at which the thread may issue.
    ``done`` becomes True when the PC runs off the end of the program
    (infinite-loop tests never finish; fixed-iteration runs do).

    ``instructions``/``infos``/``end`` mirror the program's instruction
    list, resolved info list, and length — cached here so the issue
    loop reads them without attribute chains through ``program``.
    """

    thread_id: int
    program: Program
    pc: int = 0
    ready_at: int = 0
    done: bool = False
    regs: list[int] = field(default_factory=lambda: [0] * NUM_INT_REGS)
    fregs: list[float] = field(default_factory=lambda: [0.0] * NUM_FP_REGS)
    stats: ThreadStats = field(default_factory=ThreadStats)
    instructions: list = field(init=False, repr=False, compare=False)
    infos: list = field(init=False, repr=False, compare=False)
    end: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.instructions = self.program.instructions
        self.infos = self.program.infos
        self.end = len(self.instructions)

    def read_int(self, index: int) -> int:
        if index == 0:
            return 0  # %r0 is hard-wired zero, as on SPARC's %g0
        return self.regs[index]

    def write_int(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & WORD_MASK

    def read_fp(self, index: int) -> float:
        return self.fregs[index]

    def write_fp(self, index: int, value: float) -> None:
        self.fregs[index] = value

    def advance(self) -> None:
        """Move to the next sequential instruction."""
        self.pc += 1
        if self.pc >= self.end:
            self.done = True

    def jump(self, target: int) -> None:
        self.pc = target

    @property
    def finished(self) -> bool:
        return self.done
