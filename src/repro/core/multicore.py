"""Lockstep multicore engine and the shared functional memory.

The engine steps every active core cycle-by-cycle against the shared
coherent memory system. Idle gaps (all threads stalled on long
latencies) are fast-forwarded, so the cost of simulation scales with
instructions executed rather than cycles elapsed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import PitonConfig
from repro.cache.system import CoherentMemorySystem
from repro.core.pipeline import Core
from repro.isa.program import Program
from repro.util.events import EventLedger


class SharedMemory:
    """Flat 64-bit-word architectural memory shared by all cores.

    Addresses are byte addresses; reads/writes operate on the aligned
    8-byte word containing the address (the ISA subset is ldx/stx only).
    Unwritten memory reads as zero.
    """

    def __init__(self):
        self._words: dict[int, int] = {}

    @staticmethod
    def _word(addr: int) -> int:
        return addr >> 3

    def read(self, addr: int) -> int:
        return self._words.get(self._word(addr), 0)

    def write(self, addr: int, value: int) -> None:
        self._words[self._word(addr)] = value & ((1 << 64) - 1)

    def load_image(self, image: dict[int, int]) -> None:
        """Pre-load {byte_addr: value} pairs (test fixtures)."""
        for addr, value in image.items():
            self.write(addr, value)


@dataclass
class RunResult:
    """Outcome of one engine run."""

    cycles: int
    instructions: int
    completed: bool

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class MulticoreEngine:
    """Steps a set of cores in lockstep over shared memory."""

    #: Cycle interval between full invariant sweeps when a checker is
    #: installed (sweeps also run once at the end of every run).
    CHECK_INTERVAL = 4096

    def __init__(
        self,
        config: PitonConfig | None = None,
        ledger: EventLedger | None = None,
        memsys: CoherentMemorySystem | None = None,
        execution_drafting: bool = False,
        checker=None,
    ):
        self.config = config or PitonConfig()
        self.ledger = ledger if ledger is not None else EventLedger()
        self.memsys = memsys or CoherentMemorySystem(
            self.config, ledger=self.ledger
        )
        self.memory = SharedMemory()
        self.cores: dict[int, Core] = {}
        self.execution_drafting = execution_drafting
        #: Optional :class:`repro.check.CheckSuite`; ``None`` (the
        #: default) keeps the run loop check-free.
        self.checker = checker
        self.now = 0

    def add_core(
        self,
        tile_id: int,
        programs: list[Program],
        init_regs: dict[int, int] | None = None,
        init_fregs: dict[int, float] | None = None,
    ) -> Core:
        """Activate ``tile_id`` with one program per hardware thread.

        ``init_regs``/``init_fregs`` pre-load architectural registers in
        every thread — how the EPI assembly tests plant their minimum /
        random / maximum operand values (the real tests do this with a
        setup preamble; pre-loading keeps the measured loop pure).
        """
        if tile_id in self.cores:
            raise ValueError(f"tile {tile_id} already active")
        if not 0 <= tile_id < self.config.tile_count:
            raise ValueError(f"tile {tile_id} out of range")
        core = Core(
            tile_id,
            self.config,
            self.memsys,
            self.memory,
            self.ledger,
            programs,
            execution_drafting=self.execution_drafting,
        )
        for thread in core.threads:
            for reg, value in (init_regs or {}).items():
                thread.write_int(reg, value)
            for reg, value in (init_fregs or {}).items():
                thread.write_fp(reg, value)
        self.cores[tile_id] = core
        return core

    @property
    def active_core_count(self) -> int:
        return len(self.cores)

    @property
    def total_instructions(self) -> int:
        return sum(c.stats.issued for c in self.cores.values())

    def run(
        self,
        cycles: int | None = None,
        until_done: bool = False,
        max_cycles: int = 50_000_000,
    ) -> RunResult:
        """Run for ``cycles`` cycles, or until every thread finishes.

        Returns cycle and instruction counts for the run window.
        ``max_cycles`` bounds ``until_done`` so a livelocked workload
        fails loudly instead of hanging.
        """
        if not self.cores:
            raise RuntimeError("no active cores")
        if cycles is None and not until_done:
            raise ValueError("specify cycles or until_done")
        start_cycle = self.now
        start_instrs = self.total_instructions
        deadline = None if cycles is None else self.now + cycles
        cores = list(self.cores.values())
        active = [c for c in cores if not c.done]
        far_future = 1 << 62
        ff_stall_events = 0
        checker = self.checker
        next_check = (
            self.now + self.CHECK_INTERVAL
            if checker is not None
            else far_future
        )

        try:
            while active:
                now = self.now
                if checker is not None and now >= next_check:
                    checker.check_engine(self)
                    next_check = now + self.CHECK_INTERVAL
                if deadline is not None and now >= deadline:
                    break
                if now - start_cycle >= max_cycles:
                    raise RuntimeError(
                        f"workload did not finish within {max_cycles} cycles"
                    )
                # Step every active core; each step returns the core's
                # next-event cycle so the fast-forward target needs no
                # second scan over threads and store buffers.
                next_now = far_future
                finished = False
                for core in active:
                    next_event = core.step(now)
                    if core.done:
                        finished = True
                    elif next_event < next_now:
                        next_now = next_event
                if finished:
                    active = [c for c in active if not c.done]
                    if not active:
                        self.now = now + 1
                        break
                if deadline is not None and next_now > deadline:
                    next_now = deadline
                skipped = next_now - now - 1
                if skipped > 0:
                    # Fast-forward across globally idle cycles; the
                    # skipped cycles are stall cycles for every core
                    # that is still active (cores that finished this
                    # cycle accrue neither stats nor ledger stalls).
                    for core in active:
                        core.stats.cycles += skipped
                        core.stats.stall_cycles += skipped
                    ff_stall_events += skipped * len(active)
                self.now = next_now if next_now > now + 1 else now + 1
        finally:
            if ff_stall_events:
                self.ledger.record("core.stall_cycle", ff_stall_events)
            for core in cores:
                core.flush_events()
        if checker is not None:
            checker.check_engine(self)

        return RunResult(
            cycles=self.now - start_cycle,
            instructions=self.total_instructions - start_instrs,
            completed=all(c.done for c in cores),
        )
