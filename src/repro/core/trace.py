"""Instruction tracing for the core pipeline.

The open-source advantage the paper leans on is being able to correlate
measurements with the RTL; the simulator's equivalent is an
instruction-level trace. :class:`TraceRecorder` attaches to a
:class:`~repro.core.pipeline.Core` and captures every issue (cycle,
thread, pc, opcode, memory address, latency class), with bounded memory
and simple query helpers — enough to verify "no extraneous activity
occurred", the check the paper performed on its EPI tests through RTL
simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.core.pipeline import Core


@dataclass(frozen=True)
class TraceEntry:
    """One issued instruction."""

    cycle: int
    tile: int
    thread: int
    pc: int
    op: str
    mem_addr: int | None


class TraceRecorder:
    """Bounded instruction trace attached to one core.

    Wraps the core's ``step`` with a recording shim; detach restores
    the original. Keeping the hook outside the pipeline keeps the hot
    loop clean when tracing is off.
    """

    def __init__(self, core: Core, capacity: int = 100_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.core = core
        self.entries: deque[TraceEntry] = deque(maxlen=capacity)
        self._original_step = None

    # ------------------------------------------------------------ lifecycle
    def attach(self) -> "TraceRecorder":
        if self._original_step is not None:
            raise RuntimeError("already attached")
        core = self.core
        original = core.step
        entries = self.entries

        def traced_step(now: int) -> int:
            # Snapshot per-thread commit counts and PCs, step, then
            # attribute the issue (if any) to the thread that advanced
            # — exact, and immune to roll-backs (which issue nothing).
            before = [
                (t.stats.instructions, t.pc) for t in core.threads
            ]
            next_event = original(now)
            for thread, (count, pc) in zip(core.threads, before):
                if thread.stats.instructions == count + 1:
                    instr = thread.program[pc]
                    entries.append(
                        TraceEntry(
                            cycle=now,
                            tile=core.tile_id,
                            thread=thread.thread_id,
                            pc=pc,
                            op=instr.op,
                            mem_addr=None,
                        )
                    )
                    break
            return next_event

        self._original_step = original
        core.step = traced_step  # type: ignore[method-assign]
        return self

    def detach(self) -> None:
        if self._original_step is None:
            return
        # Remove the instance-level shim so lookup falls back to the
        # class method (the true original).
        self.core.__dict__.pop("step", None)
        self._original_step = None

    def __enter__(self) -> "TraceRecorder":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # --------------------------------------------------------------- queries
    def ops(self) -> list[str]:
        return [e.op for e in self.entries]

    def count_op(self, op: str) -> int:
        return sum(1 for e in self.entries if e.op == op)

    def only_ops(self, allowed: Iterable[str]) -> bool:
        """The paper's 'no extraneous activity' check: every issued
        instruction is from the expected set."""
        allowed_set = set(allowed)
        return all(e.op in allowed_set for e in self.entries)

    def issues_per_cycle(self) -> float:
        if not self.entries:
            return 0.0
        span = self.entries[-1].cycle - self.entries[0].cycle + 1
        return len(self.entries) / span
