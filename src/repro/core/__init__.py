"""OpenSPARC-T1-style core model: 6-stage, single-issue, in-order,
two-way fine-grained multithreaded.

The model is *functional + timing*: instructions really execute (register
and memory values change), and the issue loop reproduces the T1 timing
behaviours the paper's measurements hinge on —

* round-robin thread selection among ready threads,
* long-latency unit stalls (Table VI latencies),
* the 8-entry store buffer with speculative issue and roll-back when
  full (the paper's ``stx (F)`` vs ``stx (NF)`` distinction),
* load-miss roll-back and thread stall until the memory system returns,
* 3-cycle branch latency.

Energy-relevant activity (instruction class, operand bit activity,
rollbacks, active/stall cycles) is recorded into an
:class:`~repro.util.events.EventLedger` for the power model to price.
"""

from repro.core.multicore import MulticoreEngine, SharedMemory
from repro.core.pipeline import Core, CoreStats
from repro.core.storebuffer import StoreBuffer
from repro.core.thread import ThreadContext

__all__ = [
    "MulticoreEngine",
    "SharedMemory",
    "Core",
    "CoreStats",
    "StoreBuffer",
    "ThreadContext",
]
