"""Functional semantics of the ISA subset.

Executes one instruction against a thread context and a shared memory,
returning what the pipeline needs for timing and energy: the effective
address (for memory ops), branch outcome, and the operand bit patterns
that drive the activity-factor energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.thread import ThreadContext
from repro.isa.instructions import WORD_MASK
from repro.isa.operands import bit_pattern
from repro.isa.program import Instruction


class SharedMemoryProtocol:
    """Minimal interface semantics needs from memory (duck-typed)."""

    def read(self, addr: int) -> int:  # pragma: no cover - interface stub
        raise NotImplementedError

    def write(self, addr: int, value: int) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class ExecOutcome:
    """Result of functionally executing one instruction."""

    mem_addr: int | None = None
    is_load: bool = False
    is_store: bool = False
    is_atomic: bool = False
    store_value: int = 0
    branch_taken: bool | None = None
    branch_target: int | None = None
    operand_bits: list[int] = field(default_factory=list)

    @property
    def activity(self) -> float:
        """Mean datapath activity factor of the source operands."""
        if not self.operand_bits:
            return 0.0
        total = sum(int(b).bit_count() for b in self.operand_bits)
        return total / (64.0 * len(self.operand_bits))


def _sign64(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 64) if value >> 63 else value


def execute(
    instr: Instruction,
    thread: ThreadContext,
    memory: SharedMemoryProtocol,
) -> ExecOutcome:
    """Execute ``instr``, updating ``thread`` registers and PC.

    Memory *values* move here, but memory *timing and coherence* are the
    pipeline's job: loads read the architectural memory immediately
    (correct because the coherent system serializes transactions), and
    stores return their value for the store buffer to drain later.
    """
    op = instr.op
    out = ExecOutcome()

    if op == "nop":
        thread.advance()
        return out

    if op == "set":
        thread.write_int(instr.rd, instr.imm)
        thread.advance()
        return out

    if op == "mov":
        if instr.info.is_fp:
            value = thread.read_fp(instr.rs1)
            thread.write_fp(instr.rd, value)
        else:
            value = thread.read_int(instr.rs1)
            thread.write_int(instr.rd, value)
        out.operand_bits = [bit_pattern(value)]
        thread.advance()
        return out

    if instr.info.is_branch:
        value = thread.read_int(instr.rs1)
        out.operand_bits = [bit_pattern(value)]
        taken = (value == 0) if op == "beq" else (value != 0)
        out.branch_taken = taken
        out.branch_target = instr.target
        if taken:
            thread.jump(instr.target)
        else:
            thread.advance()
        return out

    if instr.info.is_load:
        addr = (thread.read_int(instr.rs1) + (instr.imm or 0)) & WORD_MASK
        value = memory.read(addr)
        thread.write_int(instr.rd, value)
        out.mem_addr = addr
        out.is_load = True
        out.operand_bits = [bit_pattern(value)]
        thread.advance()
        return out

    if instr.info.is_store:
        addr = (thread.read_int(instr.rs2) + (instr.imm or 0)) & WORD_MASK
        value = thread.read_int(instr.rs1)
        out.mem_addr = addr
        out.is_store = True
        out.store_value = value
        out.operand_bits = [bit_pattern(value)]
        thread.advance()
        return out

    if op == "cas":
        addr = thread.read_int(instr.rs1) & WORD_MASK
        compare = thread.read_int(instr.rs2)
        swap = thread.read_int(instr.rd)
        old = memory.read(addr)
        if old == compare:
            memory.write(addr, swap)
        thread.write_int(instr.rd, old)
        out.mem_addr = addr
        out.is_atomic = True
        out.operand_bits = [bit_pattern(compare), bit_pattern(old)]
        thread.advance()
        return out

    if instr.info.is_fp:
        a = thread.read_fp(instr.rs1)
        b = thread.read_fp(instr.rs2)
        out.operand_bits = [bit_pattern(a), bit_pattern(b)]
        thread.write_fp(instr.rd, _fp_op(op, a, b))
        thread.advance()
        return out

    # Integer two-source ALU / MUL / DIV.
    a = thread.read_int(instr.rs1)
    b = instr.imm if instr.rs2 is None else thread.read_int(instr.rs2)
    b &= WORD_MASK
    out.operand_bits = [bit_pattern(a), bit_pattern(b)]
    thread.write_int(instr.rd, _int_op(op, a, b))
    thread.advance()
    return out


def _int_op(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "sll":
        return a << (b & 63)
    if op == "srl":
        return (a & WORD_MASK) >> (b & 63)
    if op == "mulx":
        return a * b
    if op == "sdivx":
        if b == 0:
            return WORD_MASK  # SPARC would trap; saturate instead
        q = abs(_sign64(a)) // abs(_sign64(b))
        if (_sign64(a) < 0) != (_sign64(b) < 0):
            q = -q
        return q
    raise ValueError(f"unhandled integer op {op!r}")


def _fp_op(op: str, a: float, b: float) -> float:
    kind = op[1:4]
    if kind == "add":
        return a + b
    if kind == "sub":
        return a - b
    if kind == "mul":
        return a * b
    if kind == "div":
        if b == 0.0:
            return float("inf")
        return a / b
    raise ValueError(f"unhandled fp op {op!r}")
