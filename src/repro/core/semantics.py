"""Functional semantics of the ISA subset.

Executes one instruction against a thread context and a shared memory,
returning what the pipeline needs for timing and energy: the effective
address (for memory ops), branch outcome, and the operand switching
activity that drives the activity-factor energy model.

Dispatch is a per-opcode handler table (built once at import) rather
than an if-chain, and the handlers read the register files directly:
this module sits directly inside the simulator's issue loop and runs
once per executed instruction — millions of times per experiment.
Register reads skip the ``%r0`` guard because nothing ever writes
``regs[0]`` (``write_int`` refuses index 0), so it is always 0.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

from repro.core.thread import ThreadContext
from repro.isa.instructions import WORD_MASK
from repro.isa.operands import float_bits
from repro.isa.program import Instruction


class SharedMemoryProtocol:
    """Minimal interface semantics needs from memory (duck-typed)."""

    def read(self, addr: int) -> int:  # pragma: no cover - interface stub
        raise NotImplementedError

    def write(self, addr: int, value: int) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass(slots=True)
class ExecOutcome:
    """Result of functionally executing one instruction.

    ``activity`` is the mean datapath activity factor of the source
    operands (mean set-bit fraction of their 64-bit patterns),
    precomputed by the handler so the pipeline reads a plain float.
    """

    mem_addr: int | None = None
    is_load: bool = False
    is_store: bool = False
    is_atomic: bool = False
    store_value: int = 0
    branch_taken: bool | None = None
    branch_target: int | None = None
    activity: float = 0.0


def _sign64(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 64) if value >> 63 else value


# ------------------------------------------------------------------ handlers
# Each handler executes one opcode family: updates thread registers and
# PC, fills ``out``. ``thread.advance()`` is inlined (pc bump + end
# check) in the hot handlers.


def _h_nop(instr, thread, memory, out):
    pc = thread.pc + 1
    thread.pc = pc
    if pc >= thread.end:
        thread.done = True


def _h_set(instr, thread, memory, out):
    rd = instr.rd
    if rd:
        thread.regs[rd] = instr.imm & WORD_MASK
    pc = thread.pc + 1
    thread.pc = pc
    if pc >= thread.end:
        thread.done = True


def _h_mov(instr, thread, memory, out):
    regs = thread.regs
    value = regs[instr.rs1]
    rd = instr.rd
    if rd:
        regs[rd] = value
    out.activity = value.bit_count() / 64.0
    pc = thread.pc + 1
    thread.pc = pc
    if pc >= thread.end:
        thread.done = True


def _make_branch(op: str):
    taken_on_zero = op == "beq"

    def handler(instr, thread, memory, out):
        value = thread.regs[instr.rs1]
        out.activity = value.bit_count() / 64.0
        taken = (value == 0) if taken_on_zero else (value != 0)
        out.branch_taken = taken
        out.branch_target = instr.target
        if taken:
            thread.pc = instr.target
        else:
            pc = thread.pc + 1
            thread.pc = pc
            if pc >= thread.end:
                thread.done = True

    return handler


def _h_ldx(instr, thread, memory, out):
    addr = (thread.regs[instr.rs1] + (instr.imm or 0)) & WORD_MASK
    value = memory.read(addr)
    rd = instr.rd
    if rd:
        thread.regs[rd] = value
    out.mem_addr = addr
    out.is_load = True
    out.activity = value.bit_count() / 64.0
    pc = thread.pc + 1
    thread.pc = pc
    if pc >= thread.end:
        thread.done = True


def _h_stx(instr, thread, memory, out):
    regs = thread.regs
    addr = (regs[instr.rs2] + (instr.imm or 0)) & WORD_MASK
    value = regs[instr.rs1]
    out.mem_addr = addr
    out.is_store = True
    out.store_value = value
    out.activity = value.bit_count() / 64.0
    pc = thread.pc + 1
    thread.pc = pc
    if pc >= thread.end:
        thread.done = True


def _h_cas(instr, thread, memory, out):
    regs = thread.regs
    addr = regs[instr.rs1]
    compare = regs[instr.rs2]
    swap = regs[instr.rd]
    old = memory.read(addr)
    if old == compare:
        memory.write(addr, swap)
    rd = instr.rd
    if rd:
        regs[rd] = old
    out.mem_addr = addr
    out.is_atomic = True
    out.activity = (compare.bit_count() + old.bit_count()) / 128.0
    pc = thread.pc + 1
    thread.pc = pc
    if pc >= thread.end:
        thread.done = True


def _make_int(fn):
    def handler(instr, thread, memory, out):
        regs = thread.regs
        a = regs[instr.rs1]
        rs2 = instr.rs2
        b = (instr.imm & WORD_MASK) if rs2 is None else regs[rs2]
        out.activity = (a.bit_count() + b.bit_count()) / 128.0
        rd = instr.rd
        if rd:
            regs[rd] = fn(a, b) & WORD_MASK
        pc = thread.pc + 1
        thread.pc = pc
        if pc >= thread.end:
            thread.done = True

    return handler


def _make_fp(fn):
    def handler(instr, thread, memory, out):
        fregs = thread.fregs
        a = fregs[instr.rs1]
        b = fregs[instr.rs2]
        out.activity = (
            float_bits(a).bit_count() + float_bits(b).bit_count()
        ) / 128.0
        fregs[instr.rd] = fn(a, b)
        pc = thread.pc + 1
        thread.pc = pc
        if pc >= thread.end:
            thread.done = True

    return handler


def _sdivx(a: int, b: int) -> int:
    if b == 0:
        return WORD_MASK  # SPARC would trap; saturate instead
    q = abs(_sign64(a)) // abs(_sign64(b))
    if (_sign64(a) < 0) != (_sign64(b) < 0):
        q = -q
    return q


def _fp_div(a: float, b: float) -> float:
    if b == 0.0:
        return float("inf")
    return a / b


_HANDLERS = {
    "nop": _h_nop,
    "set": _h_set,
    "mov": _h_mov,
    "beq": _make_branch("beq"),
    "bne": _make_branch("bne"),
    "ldx": _h_ldx,
    "stx": _h_stx,
    "cas": _h_cas,
    "add": _make_int(operator.add),
    "sub": _make_int(operator.sub),
    "and": _make_int(operator.and_),
    "or": _make_int(operator.or_),
    "xor": _make_int(operator.xor),
    "sll": _make_int(lambda a, b: a << (b & 63)),
    "srl": _make_int(lambda a, b: a >> (b & 63)),
    "mulx": _make_int(operator.mul),
    "sdivx": _make_int(_sdivx),
    "faddd": _make_fp(operator.add),
    "fsubd": _make_fp(operator.sub),
    "fmuld": _make_fp(operator.mul),
    "fdivd": _make_fp(_fp_div),
    "fadds": _make_fp(operator.add),
    "fsubs": _make_fp(operator.sub),
    "fmuls": _make_fp(operator.mul),
    "fdivs": _make_fp(_fp_div),
}


def execute(
    instr: Instruction,
    thread: ThreadContext,
    memory: SharedMemoryProtocol,
    info=None,
) -> ExecOutcome:
    """Execute ``instr``, updating ``thread`` registers and PC.

    Memory *values* move here, but memory *timing and coherence* are the
    pipeline's job: loads read the architectural memory immediately
    (correct because the coherent system serializes transactions), and
    stores return their value for the store buffer to drain later.

    ``info`` is accepted for compatibility with callers holding the
    resolved :class:`OpcodeInfo`; dispatch no longer needs it.
    """
    del info
    out = ExecOutcome()
    handler = _HANDLERS.get(instr.op)
    if handler is None:
        raise ValueError(f"unhandled op {instr.op!r}")
    handler(instr, thread, memory, out)
    return out
