"""The core issue pipeline: fine-grained MT timing + energy events.

Timing rules (all from the paper / OpenSPARC T1 documentation):

* one instruction issues per cycle, round-robin among *ready* threads;
* a thread that issued a ``latency``-cycle instruction is not ready
  again for ``latency`` cycles (single-issue, in-order, blocking);
* loads speculate L1 hit: a hit costs the 3-cycle load-use latency; a
  miss triggers a roll-back (energy event) and stalls the thread for
  the memory system's computed latency;
* stores issue speculatively into the 8-entry store buffer; a full
  buffer forces a roll-back and replay (``stx (F)``);
* the store buffer drains serially at the 10-cycle ``stx`` latency and
  performs the real (coherent) L1.5 write at drain time.

Hot-loop design: the issue loop runs once per core per simulated
cycle — millions of times per experiment — so it avoids per-event
string hashing and per-instruction opcode lookups. Core-side energy
events accumulate in interned integer counters (per instruction class)
and are folded into the shared :class:`EventLedger` once per engine
run via :meth:`Core.flush_events`; per-instruction ``OpcodeInfo`` is
read from the program's precomputed ``infos`` list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import PitonConfig
from repro.cache.system import CoherentMemorySystem
from repro.core.semantics import execute
from repro.core.storebuffer import StoreBuffer, StoreEntry
from repro.core.thread import ThreadContext
from repro.isa.instructions import INSTR_EVENT_NAMES, NUM_INSTR_CLASSES
from repro.isa.program import Program
from repro.util.events import EventLedger

#: Cycles to refill the pipeline after a speculative-issue roll-back
#: (the 6-stage depth of the T1 pipeline).
ROLLBACK_PENALTY = 6

#: Sentinel "never" cycle for cores with no schedulable event.
_FAR_FUTURE = 1_000_000_000


@dataclass
class CoreStats:
    """Per-core aggregate counters."""

    cycles: int = 0
    issued: int = 0
    stall_cycles: int = 0
    rollbacks: int = 0
    store_buffer_rollbacks: int = 0
    load_miss_rollbacks: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.issued / self.cycles


class Core:
    """One tile's core: threads, store buffer, and the issue loop."""

    def __init__(
        self,
        tile_id: int,
        config: PitonConfig,
        memsys: CoherentMemorySystem,
        memory,
        ledger: EventLedger,
        programs: list[Program],
        execution_drafting: bool = False,
    ):
        if not 1 <= len(programs) <= config.threads_per_core:
            raise ValueError(
                f"core takes 1..{config.threads_per_core} thread programs"
            )
        self.tile_id = tile_id
        self.config = config
        self.memsys = memsys
        self.memory = memory
        self.ledger = ledger
        self.execution_drafting = execution_drafting
        self.threads = [
            ThreadContext(thread_id=i, program=p)
            for i, p in enumerate(programs)
        ]
        self.store_buffer = StoreBuffer(
            config.store_buffer_entries, memsys.latency.store_buffer
        )
        self.stats = CoreStats()
        self._rr_next = 0
        self._last_issued_thread: int | None = None
        # Incrementally-maintained completion state: ``done`` flips True
        # once every thread ran off its program end and the store buffer
        # drained. The engine reads the flag instead of re-deriving it.
        self._undone = sum(1 for t in self.threads if not t.done)
        self.done = self._undone == 0 and self.store_buffer.empty
        self._reset_event_counters()

    def _reset_event_counters(self) -> None:
        # Interned event accumulators, flushed by flush_events(). All
        # of these carry the ledger's default activity except the
        # per-class instruction counters, which sum real activities.
        self._issues = 0  # core.active_cycle + core.fetch
        self._thread_switches = 0
        self._stall_cycle_events = 0
        self._rollback_events = 0
        self._replay_bubbles = 0
        self._class_counts = [0.0] * NUM_INSTR_CLASSES
        self._class_weights = [0.0] * NUM_INSTR_CLASSES

    # ------------------------------------------------------------------ state
    def next_event_cycle(self, now: int) -> int:
        """Earliest future cycle at which this core can make progress."""
        best = None
        for t in self.threads:
            if not t.done:
                r = t.ready_at
                if best is None or r < best:
                    best = r
        drain = self.store_buffer._head_done_at
        if drain is not None and (best is None or drain < best):
            best = drain
        if best is None:
            return now + _FAR_FUTURE  # effectively never
        return best if best > now else now + 1

    # ----------------------------------------------------------------- events
    def flush_events(self) -> None:
        """Fold the interned event counters into the shared ledger.

        Called once per engine run — the point of accumulating locally
        is that the hot loop never hashes event-name strings. Exact
        with respect to per-event recording: all accumulated counts and
        activity weights are small dyadic rationals, so float addition
        here is associative (no rounding).
        """
        ledger = self.ledger
        n = self._issues
        if n:
            ledger.add_bulk("core.active_cycle", n, n * 0.5)
            ledger.add_bulk("core.fetch", n, n * 0.5)
        n = self._thread_switches
        if n:
            ledger.add_bulk("core.thread_switch", n, n * 0.5)
        n = self._stall_cycle_events
        if n:
            ledger.add_bulk("core.stall_cycle", n, n * 0.5)
        n = self._rollback_events
        if n:
            ledger.add_bulk("core.rollback", n, n * 0.5)
        n = self._replay_bubbles
        if n:
            ledger.add_bulk("core.replay_bubble", n, n * 0.5)
        counts = self._class_counts
        weights = self._class_weights
        for i in range(NUM_INSTR_CLASSES):
            if counts[i]:
                ledger.add_bulk(INSTR_EVENT_NAMES[i], counts[i], weights[i])
        self._reset_event_counters()

    # ------------------------------------------------------------------- step
    def step(self, now: int) -> int:
        """Advance one cycle: drain stores, select a thread, issue.

        Returns the core's next-event cycle (its post-step
        :meth:`next_event_cycle`), which the engine uses to fast-forward
        globally idle gaps without a second scan over the threads.
        """
        stats = self.stats
        stats.cycles += 1
        store_buffer = self.store_buffer
        if (
            store_buffer._head_done_at is not None
            and now >= store_buffer._head_done_at
        ):
            self._drain_stores(now)

        thread = self._select_thread(now)
        if thread is None:
            if self._undone:
                stats.stall_cycles += 1
                self._stall_cycle_events += 1
            elif not self.done and store_buffer.empty:
                self.done = True
            return self.next_event_cycle(now)

        instr = thread.instructions[thread.pc]
        info = thread.infos[thread.pc]

        # Speculative store issue: detect a full buffer *before* the
        # architectural write, roll back and replay later.
        if info.is_store and store_buffer.full:
            self._rollback(thread, now, kind="store_buffer")
            return self.next_event_cycle(now)

        outcome = execute(instr, thread, self.memory, info)
        stats.issued += 1
        thread.stats.instructions += 1
        self._issues += 1
        last = self._last_issued_thread
        if last is not None and last != thread.thread_id:
            self._thread_switches += 1
        self._last_issued_thread = thread.thread_id
        drafted = self.execution_drafting and self._draftable(instr)
        n = 0.5 if drafted else 1.0
        class_index = info.class_index
        self._class_counts[class_index] += n
        self._class_weights[class_index] += n * outcome.activity

        if info.is_store:
            thread.stats.stores += 1
            store_buffer.push(
                StoreEntry(outcome.mem_addr, outcome.store_value,
                           thread.thread_id),
                now,
            )
            thread.ready_at = now + 1
        elif info.is_load:
            thread.stats.loads += 1
            # RAW through the store buffer: a younger buffered store to
            # the same word forwards its value to this load.
            forwarded = store_buffer.forward_value(outcome.mem_addr)
            if forwarded is not None:
                thread.write_int(instr.rd, forwarded)
            mem = self.memsys.load(self.tile_id, outcome.mem_addr, now)
            if mem.level != "l1":
                stats.load_miss_rollbacks += 1
                stats.rollbacks += 1
                thread.stats.rollbacks += 1
                self._rollback_events += 1
            thread.ready_at = now + mem.latency
        elif outcome.is_atomic:
            mem = self.memsys.atomic(self.tile_id, outcome.mem_addr, now)
            thread.ready_at = now + mem.latency
        elif info.is_branch:
            thread.stats.branches += 1
            if outcome.branch_taken:
                thread.stats.branches_taken += 1
                if outcome.branch_target is not None and (
                    outcome.branch_target <= thread.pc
                ):
                    thread.stats.iterations += 1
            thread.ready_at = now + info.latency
        else:
            thread.ready_at = now + info.latency

        if thread.done:
            self._undone -= 1
            if self._undone == 0 and store_buffer.empty:
                self.done = True
        return self.next_event_cycle(now)

    # ------------------------------------------------------------------ parts
    def _drain_stores(self, now: int) -> None:
        entry = self.store_buffer.drain_ready(now)
        if entry is None:
            return
        # The store becomes architecturally visible at drain time.
        self.memory.write(entry.addr, entry.value)
        outcome = self.memsys.store(self.tile_id, entry.addr, now)
        extra = outcome.latency - self.memsys.latency.store_buffer
        if extra > 0:
            # Memory backpressure delays the next drain.
            self.store_buffer.delay_head(extra)

    def _select_thread(self, now: int) -> ThreadContext | None:
        threads = self.threads
        n = len(threads)
        if n == 1:
            thread = threads[0]
            if not thread.done and thread.ready_at <= now:
                return thread
            return None
        rr_next = self._rr_next
        for offset in range(n):
            idx = rr_next + offset
            if idx >= n:
                idx -= n
            thread = threads[idx]
            if not thread.done and thread.ready_at <= now:
                self._rr_next = (idx + 1) % n
                return thread
        return None

    def _rollback(self, thread: ThreadContext, now: int, kind: str) -> None:
        """Speculative-issue failure: replay after the pipeline refills."""
        self.stats.rollbacks += 1
        self.stats.store_buffer_rollbacks += kind == "store_buffer"
        thread.stats.rollbacks += 1
        self._rollback_events += 1
        # The replayed instructions burn fetch/decode energy again.
        self._replay_bubbles += ROLLBACK_PENALTY
        thread.ready_at = now + ROLLBACK_PENALTY

    def _draftable(self, instr) -> bool:
        """Execution Drafting: when both threads sit at the same PC of
        the same program, the second execution drafts behind the first
        and the front-end energy is shared. A simple, honest stand-in
        for McKeown et al.'s MICRO-47 mechanism."""
        if len(self.threads) < 2:
            return False
        a, b = self.threads[0], self.threads[1]
        return a.program is b.program and a.pc == b.pc
