"""The core issue pipeline: fine-grained MT timing + energy events.

Timing rules (all from the paper / OpenSPARC T1 documentation):

* one instruction issues per cycle, round-robin among *ready* threads;
* a thread that issued a ``latency``-cycle instruction is not ready
  again for ``latency`` cycles (single-issue, in-order, blocking);
* loads speculate L1 hit: a hit costs the 3-cycle load-use latency; a
  miss triggers a roll-back (energy event) and stalls the thread for
  the memory system's computed latency;
* stores issue speculatively into the 8-entry store buffer; a full
  buffer forces a roll-back and replay (``stx (F)``);
* the store buffer drains serially at the 10-cycle ``stx`` latency and
  performs the real (coherent) L1.5 write at drain time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import PitonConfig
from repro.cache.system import CoherentMemorySystem
from repro.core.semantics import execute
from repro.core.storebuffer import StoreBuffer, StoreEntry
from repro.core.thread import ThreadContext
from repro.isa.program import Program
from repro.util.events import EventLedger

#: Cycles to refill the pipeline after a speculative-issue roll-back
#: (the 6-stage depth of the T1 pipeline).
ROLLBACK_PENALTY = 6


@dataclass
class CoreStats:
    """Per-core aggregate counters."""

    cycles: int = 0
    issued: int = 0
    stall_cycles: int = 0
    rollbacks: int = 0
    store_buffer_rollbacks: int = 0
    load_miss_rollbacks: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.issued / self.cycles


class Core:
    """One tile's core: threads, store buffer, and the issue loop."""

    def __init__(
        self,
        tile_id: int,
        config: PitonConfig,
        memsys: CoherentMemorySystem,
        memory,
        ledger: EventLedger,
        programs: list[Program],
        execution_drafting: bool = False,
    ):
        if not 1 <= len(programs) <= config.threads_per_core:
            raise ValueError(
                f"core takes 1..{config.threads_per_core} thread programs"
            )
        self.tile_id = tile_id
        self.config = config
        self.memsys = memsys
        self.memory = memory
        self.ledger = ledger
        self.execution_drafting = execution_drafting
        self.threads = [
            ThreadContext(thread_id=i, program=p)
            for i, p in enumerate(programs)
        ]
        self.store_buffer = StoreBuffer(
            config.store_buffer_entries, memsys.latency.store_buffer
        )
        self.stats = CoreStats()
        self._rr_next = 0
        self._last_issued_thread: int | None = None

    # ------------------------------------------------------------------ state
    @property
    def done(self) -> bool:
        return all(t.done for t in self.threads) and self.store_buffer.empty

    def next_event_cycle(self, now: int) -> int:
        """Earliest future cycle at which this core can make progress."""
        candidates = [
            t.ready_at for t in self.threads if not t.done
        ]
        drain = self.store_buffer.next_event_cycle()
        if drain is not None:
            candidates.append(drain)
        if not candidates:
            return now + 1_000_000_000  # effectively never
        return max(now + 1, min(candidates))

    # ------------------------------------------------------------------- step
    def step(self, now: int) -> None:
        """Advance one cycle: drain stores, select a thread, issue."""
        self.stats.cycles += 1
        self._drain_stores(now)

        thread = self._select_thread(now)
        if thread is None:
            if any(not t.done for t in self.threads):
                self.stats.stall_cycles += 1
                self.ledger.record("core.stall_cycle")
            return

        instr = thread.program[thread.pc]
        info = instr.info

        # Speculative store issue: detect a full buffer *before* the
        # architectural write, roll back and replay later.
        if info.is_store and self.store_buffer.full:
            self._rollback(thread, now, kind="store_buffer")
            return

        outcome = execute(instr, thread, self.memory)
        self.stats.issued += 1
        thread.stats.instructions += 1
        self.ledger.record("core.active_cycle")
        self.ledger.record("core.fetch")
        if (
            self._last_issued_thread is not None
            and self._last_issued_thread != thread.thread_id
        ):
            self.ledger.record("core.thread_switch")
        self._last_issued_thread = thread.thread_id
        drafted = self.execution_drafting and self._draftable(instr)
        self.ledger.record(
            f"instr.{info.instr_class.value}",
            activity=outcome.activity,
            n=0.5 if drafted else 1.0,
        )

        if info.is_store:
            thread.stats.stores += 1
            self.store_buffer.push(
                StoreEntry(outcome.mem_addr, outcome.store_value,
                           thread.thread_id),
                now,
            )
            thread.ready_at = now + 1
        elif info.is_load:
            thread.stats.loads += 1
            # RAW through the store buffer: a younger buffered store to
            # the same word forwards its value to this load.
            forwarded = self.store_buffer.forward_value(outcome.mem_addr)
            if forwarded is not None:
                thread.write_int(instr.rd, forwarded)
            mem = self.memsys.load(self.tile_id, outcome.mem_addr, now)
            if mem.level != "l1":
                self.stats.load_miss_rollbacks += 1
                self.stats.rollbacks += 1
                thread.stats.rollbacks += 1
                self.ledger.record("core.rollback")
            thread.ready_at = now + mem.latency
        elif outcome.is_atomic:
            mem = self.memsys.atomic(self.tile_id, outcome.mem_addr, now)
            thread.ready_at = now + mem.latency
        elif info.is_branch:
            thread.stats.branches += 1
            if outcome.branch_taken:
                thread.stats.branches_taken += 1
                if outcome.branch_target is not None and (
                    outcome.branch_target <= thread.pc
                ):
                    thread.stats.iterations += 1
            thread.ready_at = now + info.latency
        else:
            thread.ready_at = now + info.latency

    # ------------------------------------------------------------------ parts
    def _drain_stores(self, now: int) -> None:
        entry = self.store_buffer.drain_ready(now)
        if entry is None:
            return
        # The store becomes architecturally visible at drain time.
        self.memory.write(entry.addr, entry.value)
        outcome = self.memsys.store(self.tile_id, entry.addr, now)
        extra = outcome.latency - self.memsys.latency.store_buffer
        if extra > 0 and self.store_buffer.next_event_cycle() is not None:
            # Memory backpressure delays the next drain.
            self.store_buffer._head_done_at += extra

    def _select_thread(self, now: int) -> ThreadContext | None:
        n = len(self.threads)
        for offset in range(n):
            idx = (self._rr_next + offset) % n
            thread = self.threads[idx]
            if not thread.done and thread.ready_at <= now:
                self._rr_next = (idx + 1) % n
                return thread
        return None

    def _rollback(self, thread: ThreadContext, now: int, kind: str) -> None:
        """Speculative-issue failure: replay after the pipeline refills."""
        self.stats.rollbacks += 1
        self.stats.store_buffer_rollbacks += kind == "store_buffer"
        thread.stats.rollbacks += 1
        self.ledger.record("core.rollback")
        # The replayed instructions burn fetch/decode energy again.
        self.ledger.record("core.replay_bubble", ROLLBACK_PENALTY)
        thread.ready_at = now + ROLLBACK_PENALTY

    def _draftable(self, instr) -> bool:
        """Execution Drafting: when both threads sit at the same PC of
        the same program, the second execution drafts behind the first
        and the front-end energy is shared. A simple, honest stand-in
        for McKeown et al.'s MICRO-47 mechanism."""
        if len(self.threads) < 2:
            return False
        a, b = self.threads[0], self.threads[1]
        return a.program is b.program and a.pc == b.pc
