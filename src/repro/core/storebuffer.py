"""The T1's eight-entry store buffer.

Stores retire into the buffer and drain serially to the L1.5 — one
entry every ``drain_cycles`` (the 10-cycle ``stx`` latency of Table VI).
The core issues stores *speculatively*, assuming space: when the buffer
is actually full the issue is rolled back and replayed, which is the
extra energy the paper isolates as ``stx (F)`` versus ``stx (NF)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class StoreEntry:
    addr: int
    value: int
    thread_id: int
    #: Push order stamp (set by :meth:`StoreBuffer.push`); the invariant
    #: checkers use it to prove the FIFO never reorders.
    seq: int = -1


class StoreBuffer:
    """FIFO store buffer with timed serial drain."""

    def __init__(self, capacity: int = 8, drain_cycles: int = 10):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.drain_cycles = drain_cycles
        self._entries: deque[StoreEntry] = deque()
        self._head_done_at: int | None = None
        self.drained = 0
        self.pushed = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: StoreEntry, now: int) -> None:
        """Insert a store; caller must have checked :attr:`full`."""
        if self.full:
            raise OverflowError("store buffer full")
        entry.seq = self.pushed
        self.pushed += 1
        self._entries.append(entry)
        if self._head_done_at is None:
            self._head_done_at = now + self.drain_cycles

    def drain_ready(self, now: int) -> StoreEntry | None:
        """Pop the head entry if its drain interval has elapsed.

        The caller performs the actual L1.5 write (and records its
        energy); the buffer only sequences the timing.
        """
        if self._head_done_at is None or now < self._head_done_at:
            return None
        entry = self._entries.popleft()
        self.drained += 1
        self._head_done_at = (
            None if not self._entries else now + self.drain_cycles
        )
        return entry

    def next_event_cycle(self) -> int | None:
        """Cycle of the next drain completion, for idle fast-forwarding."""
        return self._head_done_at

    def delay_head(self, extra: int) -> None:
        """Push the pending head drain back by ``extra`` cycles.

        Models memory backpressure: when the L1.5 write behind a drain
        takes longer than the nominal drain interval, the next drain
        completes correspondingly later. No-op when nothing is pending.
        """
        if extra < 0:
            raise ValueError("delay must be non-negative")
        if self._head_done_at is not None:
            self._head_done_at += extra

    def forward_value(self, addr: int) -> int | None:
        """Store-to-load forwarding: the youngest buffered store to the
        same 64-bit word, or None. Real T1 store buffers bypass their
        contents to dependent loads (RAW through the buffer)."""
        word = addr >> 3
        for entry in reversed(self._entries):
            if entry.addr >> 3 == word:
                return entry.value
        return None
