"""On-disk profile store: sha256-keyed, atomically written.

One JSON file per workload-affinity class under ``results/surrogate/``
(override with ``--profile-dir``), named ``<key>.json`` where ``key``
is the hex clockless request digest — the same content-addressing
scheme the checkpoint journal uses for resume, so a profile can only
ever be found by a request it is valid for.

Reads are forgiving: a missing, damaged, or schema-incompatible file
simply means "no profile", and the dispatcher falls back to the
cycle-level simulator — stale calibration state can slow a sweep down
but can never corrupt it.
"""

from __future__ import annotations

from pathlib import Path

from repro.surrogate.profile import WorkloadProfile
from repro.util.io import atomic_write_text

#: Default profile directory, sibling to ``results/checkpoints``.
DEFAULT_PROFILE_DIR = "results/surrogate"


class ProfileStore:
    """Loads and persists :class:`WorkloadProfile`\\ s by digest key."""

    def __init__(self, root: str | Path = DEFAULT_PROFILE_DIR):
        self.root = Path(root)
        # Cache both hits and misses: a sweep probes the same handful
        # of keys thousands of times.
        self._cache: dict[str, WorkloadProfile | None] = {}

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ---------------------------------------------------------------- access
    def get(self, key: str) -> WorkloadProfile | None:
        if key in self._cache:
            return self._cache[key]
        profile: WorkloadProfile | None
        try:
            profile = WorkloadProfile.from_json(
                self.path_for(key).read_text()
            )
        except (OSError, ValueError, KeyError, TypeError):
            profile = None
        if profile is not None and profile.key != key:
            profile = None  # file renamed/copied under a foreign key
        self._cache[key] = profile
        return profile

    def save(self, profile: WorkloadProfile) -> Path:
        path = self.path_for(profile.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, profile.to_json(), ensure_newline=True)
        self._cache[profile.key] = profile
        return path

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load_all(self) -> list[WorkloadProfile]:
        profiles = [self.get(key) for key in self.keys()]
        return [p for p in profiles if p is not None]

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None
