"""The closed-form fast path: profile + power equations -> SimOutcome.

:class:`SurrogateModel` predicts what the cycle-level simulator *would*
produce for a request, in microseconds instead of seconds. It builds a
synthetic :class:`~repro.system.SimOutcome` — event ledger, cycle and
instruction counts — by interpolating the profile's anchor runs along
the clock axis, and hands it to the exact same downstream measurement
path (:meth:`repro.system.PitonSystem.measure_outcome` →
:class:`repro.power.chip_power.ChipPowerModel`) a real simulation would
take. Voltage, persona, temperature, and per-event pricing are
therefore evaluated *exactly*; only the event counts of
frequency-dependent workloads carry interpolation error, and that error
is bounded by the profile's validation-fitted bars.

Predicted outcomes are stamped ``tier="fast"`` with the profile's
error bound in ``tier_err``, which is how checkpoint journals stay
tier-aware across ``--resume``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING

from repro.batch.key import affinity_key
from repro.core.multicore import RunResult
from repro.surrogate.profile import AnchorRun, WorkloadProfile
from repro.surrogate.store import ProfileStore
from repro.system import SimOutcome
from repro.util.events import EventLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import SimRequest


def profile_key(request: "SimRequest") -> str:
    """The store key of ``request``'s workload-affinity class."""
    return affinity_key(request).hex()


class SurrogateModel:
    """Predicts simulation outcomes from one calibrated profile."""

    def __init__(self, profile: WorkloadProfile):
        self.profile = profile
        self._freqs = [a.freq_hz for a in profile.anchors]

    # ----------------------------------------------------------- applicability
    @classmethod
    def for_request(
        cls, store: ProfileStore, request: "SimRequest"
    ) -> "SurrogateModel | None":
        """The model for ``request``'s affinity class, if calibrated."""
        profile = store.get(profile_key(request))
        return None if profile is None else cls(profile)

    @property
    def error_bound(self) -> float:
        return self.profile.error_bound

    def in_envelope(self, request: "SimRequest") -> bool:
        """Whether ``request`` sits inside the calibrated envelope.

        Frequency-independent workloads are exact at any clock; for
        frequency-dependent ones only clocks bracketed by anchors are
        interpolatable — extrapolation is never attempted.
        """
        if self.profile.freq_independent:
            return True
        return (
            self.profile.freq_min_hz
            <= request.freq_hz
            <= self.profile.freq_max_hz
        )

    # ------------------------------------------------------------- prediction
    def predict(self, request: "SimRequest") -> SimOutcome:
        """The synthetic outcome for an in-envelope request."""
        if not self.in_envelope(request):
            raise ValueError(
                f"frequency {request.freq_hz/1e6:.1f} MHz outside "
                f"calibrated envelope "
                f"[{self.profile.freq_min_hz/1e6:.1f}, "
                f"{self.profile.freq_max_hz/1e6:.1f}] MHz"
            )
        anchors = self.profile.anchors
        if self.profile.freq_independent or len(anchors) == 1:
            return self._from_anchor(anchors[0], exact=True)

        f = request.freq_hz
        idx = bisect_right(self._freqs, f)
        if idx > 0 and self._freqs[idx - 1] == f:
            # Exactly on an anchor: reproduce its ledger bit-for-bit.
            return self._from_anchor(anchors[idx - 1], exact=True)
        lo, hi = anchors[idx - 1], anchors[idx]
        return self._interpolate(lo, hi, f)

    def _from_anchor(self, anchor: AnchorRun, exact: bool) -> SimOutcome:
        ledger = EventLedger()
        for name, n in anchor.counts.items():
            ledger.counts[name] = n
        for name, w in anchor.weights.items():
            ledger.weights[name] = w
        return SimOutcome(
            ledger=ledger,
            result=RunResult(
                cycles=anchor.cycles,
                instructions=anchor.instructions,
                completed=anchor.completed,
            ),
            engine=None,
            tier="fast",
            tier_err=0.0 if exact else self.error_bound,
        )

    def _interpolate(
        self, lo: AnchorRun, hi: AnchorRun, freq_hz: float
    ) -> SimOutcome:
        t = (freq_hz - lo.freq_hz) / (hi.freq_hz - lo.freq_hz)
        ledger = EventLedger()
        for name in set(lo.counts) | set(hi.counts):
            a, b = lo.counts.get(name, 0.0), hi.counts.get(name, 0.0)
            ledger.counts[name] = a + t * (b - a)
        for name in set(lo.weights) | set(hi.weights):
            a, b = lo.weights.get(name, 0.0), hi.weights.get(name, 0.0)
            ledger.weights[name] = a + t * (b - a)
        cycles = round(lo.cycles + t * (hi.cycles - lo.cycles))
        instructions = round(
            lo.instructions + t * (hi.instructions - lo.instructions)
        )
        return SimOutcome(
            ledger=ledger,
            result=RunResult(
                cycles=int(cycles),
                instructions=int(instructions),
                completed=lo.completed and hi.completed,
            ),
            engine=None,
            tier="fast",
            tier_err=self.error_bound,
        )
