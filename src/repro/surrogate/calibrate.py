"""Fit a workload profile from cycle-level anchor runs.

Calibration is the one place the surrogate pays cycle-level cost:

1. run the simulator at K anchor clocks spanning the sweep range
   (frequency-independent workloads need exactly one anchor — their
   outcome provably cannot depend on the clock);
2. run held-out **validation** clocks between each anchor pair and
   compare the simulator against the interpolated prediction on every
   tracked metric (cycles, instructions, per-rail power, EPI);
3. persist the anchors plus ``max(validation error) * safety`` as the
   profile's per-metric error bars.

The bars are what ``--tier auto`` gates on: a point is served by the
surrogate only when the profile's worst bar fits inside the requested
``--fidelity`` tolerance, so "within the persisted bound" is a
property the dispatcher enforces by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.power.calibration import DEFAULT_CALIBRATION, Calibration
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.silicon.variation import ChipPersona, TYPICAL
from repro.surrogate.model import SurrogateModel, profile_key
from repro.surrogate.profile import (
    PROFILE_METRICS,
    AnchorRun,
    WorkloadProfile,
)
from repro.surrogate.store import ProfileStore
from repro.surrogate.workloads import CALIBRATION_WORKLOADS
from repro.system import SimOutcome, run_simulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import SimRequest

#: Default anchor clock range: brackets every achievable Fmax the
#: Figure 9 V/f envelope reaches between 0.75V and 1.2V.
DEFAULT_FREQ_RANGE_HZ = (150e6, 900e6)
DEFAULT_ANCHORS = 4
#: Held-out validation clocks per anchor interval (interval fractions).
VALIDATION_FRACTIONS = (0.25, 0.5, 0.75)
#: Error bars are worst validation error times this safety margin — a
#: hedge against the validation grid missing the worst point between
#: anchors — plus a tiny floor so a bound of exactly 0 is reserved for
#: provably exact (frequency-independent) profiles.
DEFAULT_SAFETY = 3.0
BOUND_FLOOR = 1e-6

#: Die temperature at which validation metrics are priced. Any fixed
#: point works — relative error in event counts is what is being
#: measured, and rails/temp scale predicted and actual identically —
#: but a realistic loaded-die temperature keeps the report's absolute
#: watts meaningful.
VALIDATION_TEMP_C = 45.0


def default_anchor_freqs(
    count: int = DEFAULT_ANCHORS,
    freq_range_hz: tuple[float, float] = DEFAULT_FREQ_RANGE_HZ,
) -> list[float]:
    lo, hi = freq_range_hz
    if count < 2:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def outcome_metrics(
    outcome: SimOutcome,
    freq_hz: float,
    persona: ChipPersona = TYPICAL,
    calib: Calibration = DEFAULT_CALIBRATION,
    vdd: float | None = None,
) -> dict[str, float]:
    """The tracked figures of one outcome, priced noise-free.

    Evaluates the deterministic :class:`ChipPowerModel` directly (no
    bench monitor noise), which is the honest way to compare surrogate
    against simulator: both tiers share the stochastic measurement
    layer downstream, so model-vs-model is the only error the
    surrogate introduces.
    """
    vdd = calib.vdd_nom if vdd is None else vdd
    op = OperatingPoint(
        vdd=vdd,
        vcs=vdd + 0.05,
        vio=calib.vio_nom,
        freq_hz=freq_hz,
        temp_c=VALIDATION_TEMP_C,
    )
    model = ChipPowerModel(persona, calib)
    cycles = outcome.result.cycles
    event = model.event_power(outcome.ledger, cycles, op)
    total = model.total_power(outcome.ledger, cycles, op)
    window_s = cycles / freq_hz
    instructions = max(outcome.result.instructions, 1)
    return {
        "cycles": float(cycles),
        "instructions": float(outcome.result.instructions),
        "event_core_w": event.core_w,
        "vdd_w": total.vdd_w,
        "vcs_w": total.vcs_w,
        "core_w": total.core_w,
        "total_w": total.total_w,
        "epi_pj": event.core_w * window_s / instructions * 1e12,
    }


def relative_error(predicted: float, actual: float) -> float:
    return abs(predicted - actual) / max(abs(actual), 1e-18)


@dataclass
class CalibrationReport:
    """What one calibration run cost and how well the fit held."""

    workload: str
    key: str
    freq_independent: bool
    anchor_freqs_hz: list[float]
    error_bounds: dict[str, float]
    validation: list[dict[str, float]] = field(default_factory=list)
    sim_wall_s: float = 0.0
    sim_runs: int = 0
    path: str | None = None

    @property
    def error_bound(self) -> float:
        """Worst gated-metric bound (mirrors the profile's gate)."""
        from repro.surrogate.profile import GATE_METRICS

        return max(
            (
                bound
                for metric, bound in self.error_bounds.items()
                if metric in GATE_METRICS
            ),
            default=0.0,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "key": self.key,
            "freq_independent": self.freq_independent,
            "anchor_freqs_hz": list(self.anchor_freqs_hz),
            "error_bound": self.error_bound,
            "error_bounds": dict(self.error_bounds),
            "validation": [dict(v) for v in self.validation],
            "sim_wall_s": self.sim_wall_s,
            "sim_runs": self.sim_runs,
            "path": self.path,
        }

    def summary(self) -> str:
        kind = (
            "freq-independent (exact)"
            if self.freq_independent
            else f"bound {self.error_bound:.4%}"
        )
        return (
            f"calibrated {self.workload}: {len(self.anchor_freqs_hz)} "
            f"anchor(s), {self.sim_runs} cycle-level runs "
            f"({self.sim_wall_s:.2f}s), {kind}"
        )


def calibrate_request(
    request: "SimRequest",
    workload_name: str = "?",
    anchor_freqs: list[float] | None = None,
    safety: float = DEFAULT_SAFETY,
    persona: ChipPersona = TYPICAL,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> tuple[WorkloadProfile, CalibrationReport]:
    """Fit the profile for one request's workload-affinity class."""
    from repro.batch.key import workload_can_touch_memory

    freq_dependent = workload_can_touch_memory(request.workload)
    key = profile_key(request)
    if not freq_dependent:
        # One anchor reproduces the simulator exactly at every clock.
        freqs = [request.freq_hz]
    else:
        freqs = sorted(set(anchor_freqs or default_anchor_freqs()))
        if len(freqs) < 2:
            raise ValueError(
                "frequency-dependent workloads need at least two "
                "anchor clocks to interpolate between"
            )

    wall = 0.0
    runs = 0

    def simulate(freq_hz: float) -> SimOutcome:
        nonlocal wall, runs
        outcome = run_simulation(replace(request, freq_hz=freq_hz))
        wall += outcome.build_wall_s + outcome.sim_wall_s
        runs += 1
        return outcome

    anchors = []
    for freq in freqs:
        outcome = simulate(freq)
        anchors.append(
            AnchorRun(
                freq_hz=freq,
                cycles=outcome.result.cycles,
                instructions=outcome.result.instructions,
                completed=outcome.result.completed,
                counts=dict(outcome.ledger.counts),
                weights=dict(outcome.ledger.weights),
                sim_wall_s=outcome.build_wall_s + outcome.sim_wall_s,
            )
        )

    profile = WorkloadProfile(
        key=key,
        workload=workload_name,
        freq_independent=not freq_dependent,
        anchors=anchors,
    )

    validation: list[dict[str, float]] = []
    if freq_dependent:
        model = SurrogateModel(profile)
        anchor_set = set(freqs)
        for lo, hi in zip(freqs, freqs[1:]):
            for frac in VALIDATION_FRACTIONS:
                freq = lo + frac * (hi - lo)
                if freq in anchor_set:
                    continue
                probe = replace(request, freq_hz=freq)
                actual = outcome_metrics(
                    simulate(freq), freq, persona, calib
                )
                predicted = outcome_metrics(
                    model.predict(probe), freq, persona, calib
                )
                row: dict[str, float] = {"freq_hz": freq}
                for metric in PROFILE_METRICS:
                    row[metric] = relative_error(
                        predicted[metric], actual[metric]
                    )
                validation.append(row)

    if validation:
        profile.error_bounds = {
            metric: max(row[metric] for row in validation) * safety
            + BOUND_FLOOR
            for metric in PROFILE_METRICS
        }
        profile.validation = validation

    report = CalibrationReport(
        workload=workload_name,
        key=key,
        freq_independent=profile.freq_independent,
        anchor_freqs_hz=list(freqs),
        error_bounds=dict(profile.error_bounds),
        validation=list(validation),
        sim_wall_s=wall,
        sim_runs=runs,
    )
    return profile, report


def calibrate_named(
    name: str,
    quick: bool = False,
    anchor_freqs: list[float] | None = None,
    store: ProfileStore | None = None,
    safety: float = DEFAULT_SAFETY,
    persona: ChipPersona = TYPICAL,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> CalibrationReport:
    """Calibrate one registry workload and persist its profile."""
    try:
        named = CALIBRATION_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(CALIBRATION_WORKLOADS))
        raise SystemExit(
            f"unknown calibration workload {name!r} (known: {known})"
        ) from None
    profile, report = calibrate_request(
        named.base_request(quick=quick),
        workload_name=name,
        anchor_freqs=anchor_freqs,
        safety=safety,
        persona=persona,
        calib=calib,
    )
    store = store if store is not None else ProfileStore()
    report.path = str(store.save(profile))
    return report
